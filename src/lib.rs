//! # lift — stencil code generation with rewrite rules
//!
//! A Rust reproduction of *High Performance Stencil Code Generation with
//! Lift* (Hagedorn et al., CGO 2018).
//!
//! # The primary API: a staged pipeline session
//!
//! The whole flow — high-level expression → rewrite-based exploration →
//! view-based OpenCL codegen → auto-tuned execution — is one typed,
//! staged session ([`Pipeline`], re-exported from [`lift_driver`]). Each
//! stage is inspectable, every fallible call returns
//! [`Result<_, LiftError>`], and compiled kernels are memoised in a
//! process-wide cache so serving the same stencil twice compiles once:
//!
//! ```
//! use lift::{Pipeline, Budget};
//! use lift::lift_oclsim::{DeviceProfile, VirtualDevice};
//!
//! # fn main() -> Result<(), lift::LiftError> {
//! let device = VirtualDevice::new(DeviceProfile::k20c());
//! let stencil = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])? // typed program
//!     .explore()?                        // derive tiled/local/unrolled variants
//!     .on(&device)                       // fix the execution target
//!     .tune(Budget::evaluations(4))?;    // search, validate, compile the winner
//! println!("{}", stencil.source());      // the generated OpenCL C
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for the paper's 3-point Jacobi example
//! (Listing 2) built by hand and pushed through the same stages, and
//! `examples/acoustic_room.rs` for host-side time stepping with
//! [`CompiledStencil::run_iterated`].
//!
//! # Layer crates
//!
//! * [`lift_arith`] — symbolic size/index arithmetic,
//! * [`lift_core`] — the Lift IR: primitives (`map`, `reduce`, `zip`, …)
//!   plus the paper's stencil extensions `slide` and `pad`,
//! * [`lift_rewrite`] — optimisations as rewrite rules (overlapped tiling,
//!   local memory, loop unrolling) and lowering strategies,
//! * [`lift_codegen`] — view-based OpenCL-C code generation,
//! * [`lift_oclsim`] — a virtual OpenCL GPU that executes generated kernels
//!   and models their performance on K20c / HD 7970 / Mali profiles,
//! * [`lift_tuner`] — ATF-style auto-tuning (batched ask/tell search with
//!   snapshot/restore checkpointing),
//! * [`lift_ppcg`] — the PPCG-like polyhedral baseline,
//! * [`lift_stencils`] — the paper's benchmark suite (Table 1),
//! * [`lift_driver`] — the staged pipeline, unified errors, kernel cache,
//! * [`lift_harness`] — drivers regenerating Figures 7 and 8.

#![forbid(unsafe_code)]

pub use lift_arith;
pub use lift_codegen;
pub use lift_core;
pub use lift_driver;
pub use lift_harness;
pub use lift_oclsim;
pub use lift_ppcg;
pub use lift_rewrite;
pub use lift_stencils;
pub use lift_tuner;

pub use lift_driver::{
    BenchResult, Budget, CacheStats, CheckpointManager, CompiledStencil, CostModel, DeviceSession,
    KernelCache, LiftError, Pipeline, TuneOptions, TuneOutcome, TunedVariant, VariantSet,
};
