//! # lift — stencil code generation with rewrite rules
//!
//! A Rust reproduction of *High Performance Stencil Code Generation with
//! Lift* (Hagedorn et al., CGO 2018). This facade crate re-exports the whole
//! pipeline:
//!
//! * [`lift_arith`] — symbolic size/index arithmetic,
//! * [`lift_core`] — the Lift IR: primitives (`map`, `reduce`, `zip`, …) plus
//!   the paper's stencil extensions `slide` and `pad`,
//! * [`lift_rewrite`] — optimisations as rewrite rules (overlapped tiling,
//!   local memory, loop unrolling) and lowering strategies,
//! * [`lift_codegen`] — view-based OpenCL-C code generation,
//! * [`lift_oclsim`] — a virtual OpenCL GPU that executes generated kernels
//!   and models their performance on K20c / HD 7970 / Mali profiles,
//! * [`lift_tuner`] — ATF-style auto-tuning,
//! * [`lift_ppcg`] — the PPCG-like polyhedral baseline,
//! * [`lift_stencils`] — the paper's benchmark suite (Table 1),
//! * [`lift_harness`] — drivers regenerating Figures 7 and 8.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the paper's 3-point Jacobi example
//! (Listing 2) compiled to OpenCL and executed on the virtual GPU.

pub use lift_arith;
pub use lift_codegen;
pub use lift_core;
pub use lift_harness;
pub use lift_oclsim;
pub use lift_ppcg;
pub use lift_rewrite;
pub use lift_stencils;
pub use lift_tuner;
