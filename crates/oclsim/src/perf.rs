//! Event counting and the analytic timing model.

use std::collections::HashSet;

use crate::device::DeviceProfile;

/// Size of one global-memory transaction segment in bytes (one cache line /
/// coalescing unit).
pub const SEGMENT_BYTES: u64 = 128;

/// Events observed while executing a kernel on the virtual device.
///
/// Equality is field-wise and exact — the differential tests compare the
/// plan engine against the reference interpreter with `==`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Raw scalar loads from global memory.
    pub global_loads: u64,
    /// Raw scalar stores to global memory.
    pub global_stores: u64,
    /// Coalesced global load transactions (128-byte segments per warp).
    pub load_transactions: u64,
    /// Coalesced global store transactions.
    pub store_transactions: u64,
    /// Distinct global segments touched (compulsory traffic).
    pub unique_segments: u64,
    /// Scalar local-memory accesses (loads + stores).
    pub local_accesses: u64,
    /// Arithmetic operations retired (all work-items, including idle-lane
    /// charges from divergence).
    pub alu_ops: u64,
    /// The portion of `alu_ops` charged for idle SIMD lanes (divergence).
    pub divergence_ops: u64,
    /// Work-group barriers executed (per group).
    pub barriers: u64,
    /// Total work-items launched.
    pub work_items: u64,
    /// Total work-groups launched.
    pub work_groups: u64,
    /// Work-items per group.
    pub wg_size: u64,
    /// Local memory bytes used per group.
    pub local_bytes_per_group: u64,
    /// Internal: segment dedup set (not part of the public report).
    pub(crate) seen_segments: HashSet<u64>,
}

impl KernelStats {
    /// Total coalesced transactions (loads + stores).
    pub fn transactions(&self) -> u64 {
        self.load_transactions + self.store_transactions
    }

    /// Models the kernel runtime in seconds on `dev`.
    ///
    /// The model combines four throughput terms and a latency term:
    ///
    /// * ALU: `alu_ops / (CUs · lanes · clock)`;
    /// * DRAM: compulsory traffic plus the fraction of redundant
    ///   transactions that miss the cache, at peak bandwidth;
    /// * local memory: accesses at LDS throughput on devices with hardware
    ///   local memory — on devices without (Mali), local traffic is billed
    ///   as additional global traffic instead;
    /// * barriers;
    /// * latency: one memory round-trip per transaction, divided by the
    ///   warps available to hide it (occupancy-limited).
    ///
    /// All throughput terms are scaled by an underutilisation factor when
    /// the launch cannot fill the machine (this is what starves the small
    /// SRAD grids on the big GPUs, §7.1).
    pub fn model_time(&self, dev: &DeviceProfile) -> f64 {
        let cus = dev.compute_units as f64;
        let clock_hz = dev.clock_ghz * 1e9;

        // --- occupancy ---------------------------------------------------
        let wg_size = self.wg_size.max(1) as f64;
        let warps_per_group = (wg_size / dev.warp_width as f64).ceil().max(1.0);
        let lmem_groups = if self.local_bytes_per_group > 0 {
            (dev.lmem_bytes_per_cu as f64 / self.local_bytes_per_group as f64).max(1.0)
        } else {
            f64::INFINITY
        };
        let groups_per_cu = (dev.max_groups_per_cu as f64)
            .min(lmem_groups)
            .min((dev.max_wg_size as f64 / wg_size).max(1.0) * dev.max_groups_per_cu as f64);
        let total_groups = self.work_groups.max(1) as f64;
        let resident_groups = groups_per_cu.min((total_groups / cus).max(1.0));
        let warps_per_cu = (resident_groups * warps_per_group).max(1.0);

        // Underutilisation: not enough parallelism to fill all CUs/lanes.
        let total_warps = (self.work_items.max(1) as f64 / dev.warp_width as f64).ceil();
        let fill = (total_warps / (cus * dev.warps_to_hide_latency)).clamp(0.05, 1.0);

        // --- throughput terms --------------------------------------------
        let t_alu = self.alu_ops as f64 / (cus * dev.alu_ops_per_cu_cycle * clock_hz) / fill;

        let redundant = self.transactions().saturating_sub(self.unique_segments) as f64;
        let dram_transactions =
            self.unique_segments as f64 + redundant * (1.0 - dev.cache_hit_redundant);
        let mut dram_bytes = dram_transactions * SEGMENT_BYTES as f64;

        let t_local = if dev.has_hw_local {
            self.local_accesses as f64 / (cus * dev.lmem_ops_per_cu_cycle * clock_hz) / fill
        } else {
            // No hardware local memory (Mali): "local" buffers live in
            // ordinary memory, so every staging access is plain memory
            // traffic — `toLocal` is pure overhead on this device.
            dram_bytes += self.local_accesses as f64 * 16.0;
            0.0
        };

        let t_mem = dram_bytes / (dev.gmem_bandwidth_gbps * 1e9) / fill;

        // --- latency term -------------------------------------------------
        // Only transactions that actually reach DRAM pay the full round
        // trip; cache hits resolve quickly enough to be hidden.
        let lat_cycles = dram_transactions * dev.gmem_latency_cycles / (cus * warps_per_cu);
        let t_lat = lat_cycles / clock_hz;

        // --- barriers ------------------------------------------------------
        // A barrier costs roughly a pipeline drain per resident group.
        let t_bar = self.barriers as f64 * 40.0 / clock_hz / cus.max(1.0);

        dev.launch_overhead_us * 1e-6 + t_alu.max(t_mem).max(t_local).max(t_lat) + t_bar
    }

    /// Elements updated per second given an output element count.
    pub fn elements_per_second(&self, dev: &DeviceProfile, out_elements: usize) -> f64 {
        out_elements as f64 / self.model_time(dev)
    }

    /// Finalises internal bookkeeping (called once by the executor).
    pub(crate) fn finalise(&mut self) {
        self.unique_segments = self.seen_segments.len() as u64;
        self.seen_segments = HashSet::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_stats() -> KernelStats {
        KernelStats {
            global_loads: 5_000_000,
            divergence_ops: 0,
            global_stores: 1_000_000,
            load_transactions: 700_000,
            store_transactions: 130_000,
            unique_segments: 160_000,
            local_accesses: 0,
            alu_ops: 10_000_000,
            barriers: 0,
            work_items: 1_000_000,
            work_groups: 4096,
            wg_size: 256,
            local_bytes_per_group: 0,
            seen_segments: HashSet::new(),
        }
    }

    #[test]
    fn bigger_gpu_is_faster_on_big_kernels() {
        let s = base_stats();
        let t_nv = s.model_time(&DeviceProfile::k20c());
        let t_arm = s.model_time(&DeviceProfile::mali_t628());
        assert!(
            t_arm > t_nv * 5.0,
            "Mali ({t_arm:.2e}s) should be much slower than K20c ({t_nv:.2e}s)"
        );
    }

    #[test]
    fn removing_redundant_traffic_helps_more_on_weak_caches() {
        // Same kernel, once with heavy redundant traffic, once with the
        // redundancy eliminated (as overlapped tiling + local memory does).
        let redundant = base_stats();
        let mut tiled = base_stats();
        tiled.load_transactions = 200_000; // mostly compulsory
        tiled.local_accesses = 6_000_000;
        tiled.local_bytes_per_group = 5 * 1024;
        tiled.barriers = 8192;

        let nv = DeviceProfile::k20c();
        let amd = DeviceProfile::hd7970();
        let speedup_nv = redundant.model_time(&nv) / tiled.model_time(&nv);
        let speedup_amd = redundant.model_time(&amd) / tiled.model_time(&amd);
        assert!(
            speedup_nv > speedup_amd,
            "tiling should pay off more on the K20c ({speedup_nv:.2}x) than on the \
             cache-rich HD7970 ({speedup_amd:.2}x)"
        );
    }

    #[test]
    fn local_memory_staging_hurts_on_mali() {
        let plain = base_stats();
        let mut staged = base_stats();
        staged.local_accesses = 12_000_000;
        staged.local_bytes_per_group = 4 * 1024;
        staged.barriers = 8192;

        let arm = DeviceProfile::mali_t628();
        assert!(
            staged.model_time(&arm) > plain.model_time(&arm),
            "toLocal staging must be pure overhead on Mali"
        );
    }

    #[test]
    fn small_grids_starve_big_gpus() {
        let mut small = base_stats();
        small.work_items = 4096; // SRAD-sized
        small.work_groups = 16;
        small.global_loads /= 256;
        small.global_stores /= 256;
        small.load_transactions /= 256;
        small.store_transactions /= 256;
        small.unique_segments /= 256;
        small.alu_ops /= 256;

        let nv = DeviceProfile::k20c();
        let big_rate = base_stats().elements_per_second(&nv, 1_000_000);
        let small_rate = small.elements_per_second(&nv, 4096);
        assert!(
            small_rate < big_rate / 3.0,
            "small grids should achieve a fraction of peak element rate \
             (got {small_rate:.2e} vs {big_rate:.2e})"
        );
    }
}
