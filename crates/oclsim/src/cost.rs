//! Static analytical cost model: predict a kernel's [`KernelStats`] — and
//! through [`KernelStats::model_time`] its modeled runtime — for one launch
//! configuration **without executing a single lane of data**.
//!
//! # Data-free index replay
//!
//! The simulator's modeled time is a pure function of the event counts the
//! executor collects (transactions, ALU ops, barriers, occupancy inputs).
//! For the kernels Lift generates those counts never depend on buffer
//! *contents*: indices, loop bounds and branch conditions are arithmetic
//! over work-item ids and sizes. So this module re-runs the compiled
//! [`Plan`] bytecode with a degenerate value domain ([`Lv`]): integer index
//! math is tracked concretely per lane, float data collapses to a unit
//! "some float" value, and anything derived from buffer contents becomes
//! *unknown*. Every statistic is counted with exactly the same rules as
//! [`crate::exec::PlanMachine`] — same per-lane counting, same SIMD
//! idle-lane charge, same per-warp 128-byte coalescing flush — so on
//! kernels whose control flow and addressing are data-independent the
//! predicted [`KernelStats`] equal the measured ones **bit for bit**
//! ([`CostEstimate::exact`] is `true`).
//!
//! # Soundness when data leaks into control
//!
//! Where an unknown value *is* consumed the model degrades conservatively
//! and flips `exact` off, never under-counting:
//!
//! * **unknown branch condition** — both arms execute under superset lane
//!   masks (lanes with unknown conditions join both sides); scalar and
//!   buffer state is forked before the then-arm and merged element-wise
//!   afterwards (disagreeing values become unknown). Since the per-lane op
//!   charges and access sets of each arm grow monotonically with the mask,
//!   the resulting counts are an upper bound on any real execution.
//! * **unknown global-memory index** — the access is charged as fully
//!   uncoalesced: one transaction and one fresh unique segment per lane, an
//!   upper bound on whatever address the real index resolves to.
//! * **unknown loop bound or counter** — no sound bound on the trip count
//!   exists; the estimate is refused with [`SimError::Estimate`]. Loop
//!   replay is additionally guarded by a [`lift_arith`] interval trip-count
//!   ceiling so a non-terminating loop fails fast instead of spinning.
//!
//! The estimate is a pure function of (plan, launch, warp width): no RNG,
//! no ambient state, bit-identical across thread counts and shards — the
//! property the tuner's pruning layer relies on (see ARCHITECTURE.md).

use lift_arith::range::Interval;
use lift_codegen::clike::{BinOp, CType, UnOp, WorkItemFn};

use crate::device::DeviceProfile;
use crate::exec::{simd_charge, SimError};
use crate::perf::KernelStats;
use crate::plan::{BufSlot, EOp, ExprRef, Inst, Plan, Row};
use crate::runtime::LaunchConfig;

/// Ceiling on replayed iterations of a single loop when the interval bound
/// is huge (a safety valve against adversarial or miscompiled plans).
const REPLAY_MAX_TRIPS: u64 = 1 << 20;

/// A statically predicted [`KernelStats`], priced by the same
/// [`KernelStats::model_time`] the simulator uses.
#[derive(Debug, Clone)]
pub struct CostEstimate {
    /// The predicted event counts.
    pub stats: KernelStats,
    /// `true` when every count is provably equal to what the simulator
    /// would measure; `false` when data-dependent control flow or indexing
    /// forced conservative over-counting.
    pub exact: bool,
}

impl CostEstimate {
    /// The predicted runtime on `dev`, in seconds — the exact quantity
    /// [`crate::runtime::RunOutput::time_s`] reports for a real launch.
    pub fn time(&self, dev: &DeviceProfile) -> f64 {
        self.stats.model_time(dev)
    }
}

/// Statically estimates the stats of launching `plan` under `cfg` with the
/// given warp width. `params` carries each global parameter's element type
/// and length in declaration order (the plan itself only stores bases).
pub(crate) fn estimate_plan(
    plan: &Plan,
    params: &[(CType, usize)],
    cfg: LaunchConfig,
    warp: usize,
) -> Result<CostEstimate, SimError> {
    for d in 0..3 {
        if cfg.local[d] == 0 || cfg.global[d] == 0 {
            return Err(SimError::BadLaunch("zero-sized launch dimension".into()));
        }
        if !cfg.global[d].is_multiple_of(cfg.local[d]) {
            return Err(SimError::BadLaunch(format!(
                "global size {} not divisible by local size {} in dim {d}",
                cfg.global[d], cfg.local[d]
            )));
        }
    }
    let mut m = CostMachine::new(plan, params, cfg, warp);
    m.run()?;
    Ok(CostEstimate {
        exact: m.exact,
        stats: m.stats,
    })
}

fn est_err(msg: &str) -> SimError {
    SimError::Estimate(msg.into())
}

/// The replay value domain: concrete integers and booleans (index math),
/// a unit float (data whose value is never tracked), and unknown.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Lv {
    I(i64),
    B(bool),
    F,
    Un,
}

/// The lane as a buffer index ([`crate::exec::V::as_i`] semantics):
/// `Ok(None)` means "unknown", a float is the fault the real run raises.
fn index_of(v: Lv) -> Result<Option<i64>, SimError> {
    match v {
        Lv::I(x) => Ok(Some(x)),
        Lv::B(b) => Ok(Some(b as i64)),
        Lv::Un => Ok(None),
        Lv::F => Err(SimError::TypeMismatch("expected int, found float".into())),
    }
}

/// The lane as a condition ([`crate::exec::V::as_b`] semantics).
fn cond_of(v: Lv) -> Result<Option<bool>, SimError> {
    match v {
        Lv::B(b) => Ok(Some(b)),
        Lv::I(x) => Ok(Some(x != 0)),
        Lv::Un => Ok(None),
        Lv::F => Err(SimError::TypeMismatch("expected bool, found float".into())),
    }
}

/// Declaration coercion ([`crate::exec::coerce`] over [`Lv`]).
fn coerce_lv(v: Lv, ty: CType) -> Lv {
    match (ty, v) {
        (CType::Float, Lv::I(_)) => Lv::F,
        (CType::Int, Lv::B(x)) => Lv::I(x as i64),
        _ => v,
    }
}

/// Explicit cast ([`crate::exec`]'s scalar `cast` over [`Lv`]): an
/// int-from-float cast has an unknown result because float values are
/// never tracked.
fn cast_lv(t: CType, v: Lv) -> Lv {
    match (t, v) {
        (CType::Float, Lv::I(_)) => Lv::F,
        (CType::Int, Lv::F) => Lv::Un,
        (CType::Float, Lv::Un) | (CType::Int, Lv::Un) => Lv::Un,
        (_, v) => v,
    }
}

/// One binary op on replay lanes. The only replicated fault is division by
/// a *known* zero (the real run faults identically); every combination the
/// real engine would reject as a kind mismatch degrades to unknown — such
/// a config fails simulation anyway, so its estimate is irrelevant.
fn lv_bin(op: BinOp, a: Lv, b: Lv) -> Result<Lv, SimError> {
    use BinOp::*;
    Ok(match (op, a, b) {
        (Add, Lv::I(x), Lv::I(y)) => Lv::I(x.wrapping_add(y)),
        (Sub, Lv::I(x), Lv::I(y)) => Lv::I(x.wrapping_sub(y)),
        (Mul, Lv::I(x), Lv::I(y)) => Lv::I(x.wrapping_mul(y)),
        (Min, Lv::I(x), Lv::I(y)) => Lv::I(x.min(y)),
        (Max, Lv::I(x), Lv::I(y)) => Lv::I(x.max(y)),
        (Div | Mod, Lv::I(x), Lv::I(y)) => {
            if y == 0 {
                return Err(SimError::DivisionByZero);
            }
            if matches!(op, Div) {
                Lv::I(x.wrapping_div(y))
            } else {
                Lv::I(x.wrapping_rem(y))
            }
        }
        (Lt, Lv::I(x), Lv::I(y)) => Lv::B(x < y),
        (Le, Lv::I(x), Lv::I(y)) => Lv::B(x <= y),
        (Gt, Lv::I(x), Lv::I(y)) => Lv::B(x > y),
        (Ge, Lv::I(x), Lv::I(y)) => Lv::B(x >= y),
        (Eq, Lv::I(x), Lv::I(y)) => Lv::B(x == y),
        (Ne, Lv::I(x), Lv::I(y)) => Lv::B(x != y),
        (And, Lv::B(x), Lv::B(y)) => Lv::B(x && y),
        (Or, Lv::B(x), Lv::B(y)) => Lv::B(x || y),
        // Short-circuit refinement: one known side can decide the result.
        (And, Lv::B(false), _) | (And, _, Lv::B(false)) => Lv::B(false),
        (Or, Lv::B(true), _) | (Or, _, Lv::B(true)) => Lv::B(true),
        // Float arithmetic keeps the float kind; values are untracked, so
        // float comparisons are unknown.
        (Add | Sub | Mul | Div | Min | Max, Lv::F, Lv::F) => Lv::F,
        _ => Lv::Un,
    })
}

fn lv_un(op: UnOp, a: Lv) -> Lv {
    match (op, a) {
        (UnOp::Neg, Lv::I(x)) => Lv::I(x.wrapping_neg()),
        (UnOp::Neg, Lv::F) => Lv::F,
        (UnOp::Not, Lv::B(x)) => Lv::B(!x),
        _ => Lv::Un,
    }
}

/// Merge two possible values of the same storage cell: agreement is kept,
/// disagreement is unknown.
fn lv_join(a: Lv, b: Lv) -> Lv {
    if a == b {
        a
    } else {
        Lv::Un
    }
}

/// One `?:` select in flight (mirrors the executor's `SelFrame`); lanes
/// with an unknown condition are members of *both* arm masks.
struct CFrame {
    mask_then: Vec<bool>,
    count_then: u64,
    mask_else: Vec<bool>,
    count_else: u64,
    in_else: bool,
    saved: Option<Vec<Lv>>,
}

/// Forked mutable state for a both-arms branch replay.
#[derive(Default)]
struct Snap {
    ivals: Vec<Lv>,
    vvals: Vec<Lv>,
    locals_v: Vec<Lv>,
    privs_v: Vec<Lv>,
}

/// A statement-level `if` whose condition was unknown for some lane: both
/// arms run under superset masks and the state merges at the `EndIf`.
struct Fallback {
    /// pc of the `ElseJoin` where the then-arm state is parked and the
    /// entry state restored.
    join_pc: usize,
    /// pc of the matching `EndIf` where the two arm states merge.
    end_pc: usize,
    tmask: usize,
    emask: usize,
    /// State on branch entry (moved back into the machine at `join_pc`).
    entry: Snap,
    /// State after the then-arm (merged at `end_pc`).
    after_then: Option<Snap>,
}

struct CostMachine<'a> {
    plan: &'a Plan,
    /// Element type and length per global parameter slot.
    params: &'a [(CType, usize)],
    stats: KernelStats,
    warp: usize,
    cfg: LaunchConfig,
    n_items: usize,
    group_id: [usize; 3],
    lids: Vec<[usize; 3]>,
    /// Replay lanes for the executor's `i64` / tagged scalar register rows
    /// (slot-major, `rows × n_items`, like the real arenas).
    ivals: Vec<Lv>,
    vvals: Vec<Lv>,
    /// Replay lanes for the tagged local / private arenas. The *float*
    /// arenas need no storage at all: every load from them is `Lv::F`.
    locals_v: Vec<Lv>,
    privs_v: Vec<Lv>,
    pend_loads: Vec<Vec<u64>>,
    pend_stores: Vec<Vec<u64>>,
    any_pend: bool,
    masks: Vec<Vec<bool>>,
    mask_any: Vec<bool>,
    mask_stack: Vec<u16>,
    uni_mask: Vec<bool>,
    segs: Vec<u64>,
    /// Slab pool for the op-major evaluator.
    pool: Vec<Vec<Lv>>,
    exact: bool,
    /// Unique-segment upper bound for unknown-index accesses, added to
    /// `unique_segments` at finalise.
    synthetic_segments: u64,
    fallbacks: Vec<Fallback>,
    /// Per-`ForHead` iteration counters and their interval-derived trip
    /// ceilings, indexed by pc.
    loop_iters: Vec<u64>,
    loop_limits: Vec<u64>,
}

impl<'a> CostMachine<'a> {
    fn new(plan: &'a Plan, params: &'a [(CType, usize)], cfg: LaunchConfig, warp: usize) -> Self {
        let wg = cfg.local;
        let n_items = wg.iter().product::<usize>();
        let lids = (0..n_items)
            .map(|i| [i % wg[0], (i / wg[0]) % wg[1], i / (wg[0] * wg[1])])
            .collect();
        let stats = KernelStats {
            wg_size: n_items as u64,
            work_groups: (cfg.groups().iter().product::<usize>()) as u64,
            work_items: (cfg.global.iter().product::<usize>()) as u64,
            local_bytes_per_group: plan.local_bytes as u64,
            ..KernelStats::default()
        };
        let n_masks = plan.n_masks.max(1);
        CostMachine {
            plan,
            params,
            stats,
            warp,
            cfg,
            n_items,
            group_id: [0, 0, 0],
            lids,
            ivals: vec![Lv::I(0); plan.n_int_rows * n_items],
            vvals: vec![Lv::I(0); plan.n_var_rows * n_items],
            locals_v: vec![Lv::F; plan.local_v_total],
            privs_v: vec![Lv::F; plan.priv_v_total * n_items],
            pend_loads: vec![Vec::new(); n_items],
            pend_stores: vec![Vec::new(); n_items],
            any_pend: false,
            masks: (0..n_masks).map(|i| vec![i == 0; n_items]).collect(),
            mask_any: vec![false; n_masks],
            mask_stack: Vec::with_capacity(n_masks),
            uni_mask: {
                let mut m = vec![false; n_items.max(1)];
                m[0] = true;
                m
            },
            segs: Vec::with_capacity(warp.max(1)),
            pool: Vec::new(),
            exact: true,
            synthetic_segments: 0,
            fallbacks: Vec::new(),
            loop_iters: vec![0; plan.code.len()],
            loop_limits: vec![0; plan.code.len()],
        }
    }

    fn run(&mut self) -> Result<(), SimError> {
        let groups = self.cfg.groups();
        for gz in 0..groups[2] {
            for gy in 0..groups[1] {
                for gx in 0..groups[0] {
                    self.group_id = [gx, gy, gz];
                    self.reset_group();
                    self.exec()?;
                }
            }
        }
        self.stats.finalise();
        self.stats.unique_segments += self.synthetic_segments;
        Ok(())
    }

    /// Group-start state, mirroring the executor: scalars are integer
    /// zero, local/private storage is float zero.
    fn reset_group(&mut self) {
        self.ivals.fill(Lv::I(0));
        self.vvals.fill(Lv::I(0));
        self.locals_v.fill(Lv::F);
        self.privs_v.fill(Lv::F);
        self.mask_stack.clear();
        self.mask_stack.push(0);
        self.loop_iters.fill(0);
        self.fallbacks.clear();
    }

    #[inline]
    fn top_mask(&self) -> usize {
        *self.mask_stack.last().expect("mask stack never empties") as usize
    }

    fn get(&mut self) -> Vec<Lv> {
        self.pool
            .pop()
            .unwrap_or_else(|| vec![Lv::Un; self.n_items])
    }

    fn put(&mut self, v: Vec<Lv>) {
        self.pool.push(v);
    }

    fn take_state(&mut self) -> Snap {
        Snap {
            ivals: std::mem::take(&mut self.ivals),
            vvals: std::mem::take(&mut self.vvals),
            locals_v: std::mem::take(&mut self.locals_v),
            privs_v: std::mem::take(&mut self.privs_v),
        }
    }

    fn put_state(&mut self, s: Snap) {
        self.ivals = s.ivals;
        self.vvals = s.vvals;
        self.locals_v = s.locals_v;
        self.privs_v = s.privs_v;
    }

    fn clone_state(&self) -> Snap {
        Snap {
            ivals: self.ivals.clone(),
            vvals: self.vvals.clone(),
            locals_v: self.locals_v.clone(),
            privs_v: self.privs_v.clone(),
        }
    }

    fn exec(&mut self) -> Result<(), SimError> {
        let mut pc = 0usize;
        while pc < self.plan.code.len() {
            match self.plan.code[pc].clone() {
                Inst::SetScalar {
                    row,
                    value,
                    coerce,
                    charge,
                } => {
                    let ms = self.top_mask();
                    let mask = std::mem::take(&mut self.masks[ms]);
                    let before = self.stats.alu_ops;
                    let r = self.set_scalar(&mask, row, value, coerce);
                    if r.is_ok() {
                        if charge {
                            simd_charge(&mut self.stats, self.warp, &mask, before);
                        }
                        self.flush(&mask);
                    }
                    self.masks[ms] = mask;
                    r?;
                    pc += 1;
                }
                Inst::Store { buf, idx, value } => {
                    let ms = self.top_mask();
                    let mask = std::mem::take(&mut self.masks[ms]);
                    let before = self.stats.alu_ops;
                    let r = self.store_stmt(&mask, buf, idx, value);
                    if r.is_ok() {
                        simd_charge(&mut self.stats, self.warp, &mask, before);
                        self.flush(&mask);
                    }
                    self.masks[ms] = mask;
                    r?;
                    pc += 1;
                }
                Inst::ForHead {
                    row,
                    bound,
                    mask,
                    exit,
                } => {
                    let mslot = mask as usize;
                    let ps = self.top_mask();
                    let parent = std::mem::take(&mut self.masks[ps]);
                    let mut child = std::mem::take(&mut self.masks[mslot]);
                    let r = self.for_head(&parent, &mut child, row, bound, pc);
                    self.masks[ps] = parent;
                    self.masks[mslot] = child;
                    if r? {
                        self.mask_stack.push(mslot as u16);
                        pc += 1;
                    } else {
                        pc = exit as usize;
                    }
                }
                Inst::ForStep { row, step, head } => {
                    let ms = self.top_mask();
                    let mask = std::mem::take(&mut self.masks[ms]);
                    let r = self.for_step(&mask, row, step);
                    self.masks[ms] = mask;
                    r?;
                    self.mask_stack.pop();
                    pc = head as usize;
                }
                Inst::IfHead {
                    cond,
                    tmask,
                    emask,
                    els,
                    end,
                } => {
                    let (tm, em) = (tmask as usize, emask as usize);
                    let (els, end) = (els as usize, end as usize);
                    let ps = self.top_mask();
                    let parent = std::mem::take(&mut self.masks[ps]);
                    let mut t = std::mem::take(&mut self.masks[tm]);
                    let mut e = std::mem::take(&mut self.masks[em]);
                    let r = self.if_head(&parent, &mut t, &mut e, cond);
                    self.masks[ps] = parent;
                    self.masks[tm] = t;
                    self.masks[em] = e;
                    let (any_t, any_e, unknown) = r?;
                    self.mask_any[tm] = any_t;
                    self.mask_any[em] = any_e;
                    if unknown {
                        // Both arms will run under superset masks; fork the
                        // state so the else-arm starts from branch entry.
                        self.fallbacks.push(Fallback {
                            join_pc: els - 1,
                            end_pc: end - 1,
                            tmask: tm,
                            emask: em,
                            entry: self.clone_state(),
                            after_then: None,
                        });
                    }
                    if any_t {
                        self.mask_stack.push(tm as u16);
                        pc += 1;
                    } else if any_e {
                        self.mask_stack.push(em as u16);
                        pc = els;
                    } else {
                        pc = end;
                    }
                }
                Inst::ElseJoin { emask, els, end } => {
                    if self.fallbacks.last().is_some_and(|f| f.join_pc == pc) {
                        // Park the then-arm outcome, rewind to branch entry
                        // for the (forced) else-arm.
                        let cur = self.take_state();
                        let f = self.fallbacks.last_mut().expect("checked above");
                        let entry = std::mem::take(&mut f.entry);
                        f.after_then = Some(cur);
                        self.put_state(entry);
                    }
                    self.mask_stack.pop();
                    if self.mask_any[emask as usize] {
                        self.mask_stack.push(emask);
                        pc = els as usize;
                    } else {
                        pc = end as usize;
                    }
                }
                Inst::EndIf => {
                    if self.fallbacks.last().is_some_and(|f| f.end_pc == pc) {
                        self.merge_fallback()?;
                    }
                    self.mask_stack.pop();
                    pc += 1;
                }
                Inst::Barrier => {
                    let ms = self.top_mask();
                    if self.masks[ms].iter().any(|&b| !b) {
                        return Err(SimError::BarrierDivergence);
                    }
                    self.stats.barriers += 1;
                    pc += 1;
                }
            }
        }
        Ok(())
    }

    /// Merges the two arm states of a both-arms branch: per-lane storage
    /// is attributed through the arm masks (a lane in exactly one arm
    /// keeps that arm's value; a lane in both keeps agreeing values),
    /// shared local storage merges by agreement.
    fn merge_fallback(&mut self) -> Result<(), SimError> {
        let f = self.fallbacks.pop().expect("checked by caller");
        let then = f
            .after_then
            .ok_or_else(|| est_err("branch replay desynchronised"))?;
        let n = self.n_items;
        let (tmask, emask) = (&self.masks[f.tmask], &self.masks[f.emask]);
        let merge_lanes = |cur: &mut [Lv], then: &[Lv]| {
            for (j, slot) in cur.iter_mut().enumerate() {
                let i = j % n;
                match (tmask[i], emask[i]) {
                    (true, true) => *slot = lv_join(then[j], *slot),
                    (true, false) | (false, false) => *slot = then[j],
                    (false, true) => {}
                }
            }
        };
        merge_lanes(&mut self.ivals, &then.ivals);
        merge_lanes(&mut self.vvals, &then.vvals);
        // Private arenas are item-major: element j belongs to lane
        // j / priv_v_total.
        let stride = self.plan.priv_v_total.max(1);
        for (j, slot) in self.privs_v.iter_mut().enumerate() {
            let i = j / stride;
            match (tmask[i], emask[i]) {
                (true, true) => *slot = lv_join(then.privs_v[j], *slot),
                (true, false) | (false, false) => *slot = then.privs_v[j],
                (false, true) => {}
            }
        }
        // Local memory is shared across lanes: no attribution is possible.
        for (slot, &t) in self.locals_v.iter_mut().zip(&then.locals_v) {
            *slot = lv_join(t, *slot);
        }
        Ok(())
    }

    fn row_lane(&self, row: Row, i: usize) -> Lv {
        let n = self.n_items;
        match row {
            Row::I(r) => self.ivals[r as usize * n + i],
            Row::V(r) => self.vvals[r as usize * n + i],
        }
    }

    fn set_row_lane(&mut self, row: Row, i: usize, v: Lv) {
        let n = self.n_items;
        match row {
            Row::I(r) => self.ivals[r as usize * n + i] = v,
            Row::V(r) => self.vvals[r as usize * n + i] = v,
        }
    }

    fn set_scalar(
        &mut self,
        mask: &[bool],
        row: Row,
        value: ExprRef,
        co: Option<CType>,
    ) -> Result<(), SimError> {
        if value.uniform {
            let mut ops = 0u64;
            let mut v = self.eval_uniform(value, &mut ops)?;
            if let Some(t) = co {
                v = coerce_lv(v, t);
            }
            let mut count = 0u64;
            for (i, &live) in mask.iter().enumerate().take(self.n_items) {
                if live {
                    self.set_row_lane(row, i, v);
                    count += 1;
                }
            }
            self.stats.alu_ops += ops * count;
        } else {
            let mut ops = 0u64;
            let v = self.eval_vec(value, mask, &mut ops)?;
            for i in 0..self.n_items {
                if mask[i] {
                    let x = match co {
                        Some(t) => coerce_lv(v[i], t),
                        None => v[i],
                    };
                    self.set_row_lane(row, i, x);
                }
            }
            self.put(v);
            self.stats.alu_ops += ops;
        }
        Ok(())
    }

    fn store_stmt(
        &mut self,
        mask: &[bool],
        buf: BufSlot,
        idx: ExprRef,
        value: ExprRef,
    ) -> Result<(), SimError> {
        let mut hoist_ops = 0u64;
        let mut ops = 0u64;
        // `Err` carries the hoisted (uniform) value, `Ok` the per-lane slab.
        let idx_src = if idx.uniform {
            let v = self.eval_uniform(idx, &mut hoist_ops)?;
            if matches!(v, Lv::F) {
                return Err(SimError::TypeMismatch("expected int, found float".into()));
            }
            Err(v)
        } else {
            Ok(self.eval_vec(idx, mask, &mut ops)?)
        };
        let val_src = if value.uniform {
            Err(self.eval_uniform(value, &mut hoist_ops)?)
        } else {
            Ok(self.eval_vec(value, mask, &mut ops)?)
        };
        let mut count = 0u64;
        let r = self.store_lanes(mask, buf, &idx_src, &val_src, &mut count);
        if let Ok(s) = idx_src {
            self.put(s);
        }
        if let Ok(s) = val_src {
            self.put(s);
        }
        r?;
        self.stats.alu_ops += ops + hoist_ops * count;
        Ok(())
    }

    fn store_lanes(
        &mut self,
        mask: &[bool],
        buf: BufSlot,
        idx_src: &Result<Vec<Lv>, Lv>,
        val_src: &Result<Vec<Lv>, Lv>,
        count: &mut u64,
    ) -> Result<(), SimError> {
        let n = self.n_items;
        let lane_idx = |i: usize| match idx_src {
            Ok(s) => index_of(s[i]),
            Err(pre) => index_of(*pre),
        };
        let lane_val = |i: usize| match val_src {
            Ok(s) => s[i],
            Err(pre) => *pre,
        };
        match buf {
            BufSlot::Global { slot, name } => {
                let base = self.plan.global_bases[slot as usize];
                let len = self.params[slot as usize].1;
                let mut stores = 0u64;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    match lane_idx(i)? {
                        Some(index) => {
                            if index < 0 || index as usize >= len {
                                return Err(self.oob(name, index, len));
                            }
                            self.pend_stores[i].push(base + index as u64 * 4);
                        }
                        None => {
                            // Worst case: the store coalesces with nothing
                            // and touches a never-seen segment.
                            self.stats.store_transactions += 1;
                            self.synthetic_segments += 1;
                            self.exact = false;
                        }
                    }
                    stores += 1;
                }
                self.stats.global_stores += stores;
                if stores > 0 {
                    self.any_pend = true;
                }
                Ok(())
            }
            BufSlot::LocalF { off: _, len, name } => {
                let len = len as usize;
                let mut accesses = 0u64;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    if let Some(index) = lane_idx(i)? {
                        if index < 0 || index as usize >= len {
                            return Err(self.oob(name, index, len));
                        }
                    }
                    accesses += 1;
                }
                self.stats.local_accesses += accesses;
                Ok(())
            }
            BufSlot::LocalV { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let mut accesses = 0u64;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    let v = lane_val(i);
                    match lane_idx(i)? {
                        Some(index) => {
                            if index < 0 || index as usize >= len {
                                return Err(self.oob(name, index, len));
                            }
                            self.locals_v[off + index as usize] = v;
                        }
                        None => {
                            // The write could land anywhere in the buffer.
                            for slot in &mut self.locals_v[off..off + len] {
                                *slot = lv_join(*slot, v);
                            }
                        }
                    }
                    accesses += 1;
                }
                self.stats.local_accesses += accesses;
                Ok(())
            }
            BufSlot::PrivF { off: _, len, name } => {
                let len = len as usize;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    if let Some(index) = lane_idx(i)? {
                        if index < 0 || index as usize >= len {
                            return Err(self.oob(name, index, len));
                        }
                    }
                }
                Ok(())
            }
            BufSlot::PrivV { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let stride = self.plan.priv_v_total;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    let v = lane_val(i);
                    match lane_idx(i)? {
                        Some(index) => {
                            if index < 0 || index as usize >= len {
                                return Err(self.oob(name, index, len));
                            }
                            self.privs_v[i * stride + off + index as usize] = v;
                        }
                        None => {
                            for slot in &mut self.privs_v[i * stride + off..i * stride + off + len]
                            {
                                *slot = lv_join(*slot, v);
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn for_head(
        &mut self,
        parent: &[bool],
        child: &mut Vec<bool>,
        row: Row,
        bound: ExprRef,
        pc: usize,
    ) -> Result<bool, SimError> {
        child.clear();
        child.resize(self.n_items, false);
        let n = self.n_items;
        let before = self.stats.alu_ops;
        let mut any = false;
        let mut row_iv: Option<Interval> = None;
        let mut bound_iv: Option<Interval> = None;
        let join = |iv: &mut Option<Interval>, v: i64| {
            *iv = Some(match *iv {
                None => Interval::point(v),
                Some(cur) => cur.join(Interval::point(v)),
            });
        };
        if bound.uniform {
            let mut ops = 0u64;
            let b = self.eval_uniform(bound, &mut ops)?;
            let Some(b) = index_of(b)? else {
                return Err(est_err("loop bound depends on untracked data"));
            };
            join(&mut bound_iv, b);
            let mut count = 0u64;
            for i in 0..n {
                if !parent[i] {
                    continue;
                }
                let Some(cur) = index_of(self.row_lane(row, i))? else {
                    return Err(est_err("loop counter depends on untracked data"));
                };
                self.stats.alu_ops += 1; // the comparison
                if cur < b {
                    child[i] = true;
                    any = true;
                }
                count += 1;
                join(&mut row_iv, cur);
            }
            self.stats.alu_ops += ops * count;
        } else {
            let mut ops = 0u64;
            let bv = self.eval_vec(bound, parent, &mut ops)?;
            let mut compared = 0u64;
            let mut fault = None;
            for i in 0..n {
                if !parent[i] {
                    continue;
                }
                let cur = match index_of(self.row_lane(row, i)) {
                    Ok(Some(v)) => v,
                    Ok(None) => {
                        fault = Some(est_err("loop counter depends on untracked data"));
                        break;
                    }
                    Err(e) => {
                        fault = Some(e);
                        break;
                    }
                };
                let b = match index_of(bv[i]) {
                    Ok(Some(v)) => v,
                    Ok(None) => {
                        fault = Some(est_err("loop bound depends on untracked data"));
                        break;
                    }
                    Err(e) => {
                        fault = Some(e);
                        break;
                    }
                };
                compared += 1;
                if cur < b {
                    child[i] = true;
                    any = true;
                }
                join(&mut row_iv, cur);
                join(&mut bound_iv, b);
            }
            self.put(bv);
            if let Some(e) = fault {
                return Err(e);
            }
            self.stats.alu_ops += compared + ops;
        }
        if any {
            if self.loop_iters[pc] == 0 {
                // A minimum step of one gives the largest possible trip
                // count; a non-positive step never terminates.
                let (ri, bi) = (
                    row_iv.expect("any implies a compared lane"),
                    bound_iv.expect("any implies a compared lane"),
                );
                self.loop_limits[pc] = ri
                    .trip_count(bi, 1)
                    .unwrap_or(u64::MAX)
                    .min(REPLAY_MAX_TRIPS);
            }
            self.loop_iters[pc] += 1;
            if self.loop_iters[pc] > self.loop_limits[pc] {
                return Err(est_err("loop replay exceeded its interval trip bound"));
            }
        } else {
            self.loop_iters[pc] = 0;
        }
        simd_charge(&mut self.stats, self.warp, parent, before);
        self.flush(parent);
        Ok(any)
    }

    fn for_step(&mut self, mask: &[bool], row: Row, step: ExprRef) -> Result<(), SimError> {
        let n = self.n_items;
        let before = self.stats.alu_ops;
        let add = |cur: Lv, st: Lv| -> Result<Lv, SimError> {
            let c = index_of(cur)?;
            let s = index_of(st)?;
            Ok(match (c, s) {
                (Some(a), Some(b)) => Lv::I(a.wrapping_add(b)),
                _ => Lv::Un,
            })
        };
        if step.uniform {
            let mut ops = 0u64;
            let st = self.eval_uniform(step, &mut ops)?;
            let mut count = 0u64;
            for (i, &live) in mask.iter().enumerate().take(n) {
                if !live {
                    continue;
                }
                let next = add(self.row_lane(row, i), st)?;
                self.set_row_lane(row, i, next);
                count += 1;
            }
            self.stats.alu_ops += count + ops * count;
        } else {
            let mut ops = 0u64;
            let sv = self.eval_vec(step, mask, &mut ops)?;
            let mut count = 0u64;
            let mut fault = None;
            for i in 0..n {
                if !mask[i] {
                    continue;
                }
                match add(self.row_lane(row, i), sv[i]) {
                    Ok(next) => {
                        self.set_row_lane(row, i, next);
                        count += 1;
                    }
                    Err(e) => {
                        fault = Some(e);
                        break;
                    }
                }
            }
            self.put(sv);
            if let Some(e) = fault {
                return Err(e);
            }
            self.stats.alu_ops += count + ops;
        }
        simd_charge(&mut self.stats, self.warp, mask, before);
        self.flush(mask);
        Ok(())
    }

    fn if_head(
        &mut self,
        parent: &[bool],
        t: &mut Vec<bool>,
        e: &mut Vec<bool>,
        cond: ExprRef,
    ) -> Result<(bool, bool, bool), SimError> {
        t.clear();
        t.resize(self.n_items, false);
        e.clear();
        e.resize(self.n_items, false);
        let before = self.stats.alu_ops;
        let (mut any_t, mut any_e, mut unknown) = (false, false, false);
        if cond.uniform {
            let mut ops = 0u64;
            let c = cond_of(self.eval_uniform(cond, &mut ops)?)?;
            let mut count = 0u64;
            for i in 0..self.n_items {
                if !parent[i] {
                    continue;
                }
                match c {
                    Some(true) => {
                        t[i] = true;
                        any_t = true;
                    }
                    Some(false) => {
                        e[i] = true;
                        any_e = true;
                    }
                    None => {
                        t[i] = true;
                        e[i] = true;
                        any_t = true;
                        any_e = true;
                        unknown = true;
                    }
                }
                count += 1;
            }
            self.stats.alu_ops += ops * count;
        } else {
            let mut ops = 0u64;
            let cv = self.eval_vec(cond, parent, &mut ops)?;
            let mut fault = None;
            for i in 0..self.n_items {
                if !parent[i] {
                    continue;
                }
                match cond_of(cv[i]) {
                    Ok(Some(true)) => {
                        t[i] = true;
                        any_t = true;
                    }
                    Ok(Some(false)) => {
                        e[i] = true;
                        any_e = true;
                    }
                    Ok(None) => {
                        t[i] = true;
                        e[i] = true;
                        any_t = true;
                        any_e = true;
                        unknown = true;
                    }
                    Err(err) => {
                        fault = Some(err);
                        break;
                    }
                }
            }
            self.put(cv);
            if let Some(err) = fault {
                return Err(err);
            }
            self.stats.alu_ops += ops;
        }
        if unknown {
            self.exact = false;
        }
        simd_charge(&mut self.stats, self.warp, parent, before);
        self.flush(parent);
        Ok((any_t, any_e, unknown))
    }

    /// Evaluates a lane-invariant expression once under the one-lane mask;
    /// the caller multiplies `ops` by the active-lane count (uniform
    /// expressions read no scalars, loads or ids, so lane 0 is every lane).
    fn eval_uniform(&mut self, er: ExprRef, ops: &mut u64) -> Result<Lv, SimError> {
        let um = std::mem::take(&mut self.uni_mask);
        let r = self.eval_vec(er, &um, ops);
        self.uni_mask = um;
        let v = r?;
        let out = v[0];
        self.put(v);
        Ok(out)
    }

    /// Op-major replay of one compiled expression over the active lanes of
    /// `mask`, with the executor's exact op counting; returns the per-lane
    /// result slab (inactive lanes are unknown and never consumed).
    fn eval_vec(
        &mut self,
        er: ExprRef,
        stmt_mask: &[bool],
        ops: &mut u64,
    ) -> Result<Vec<Lv>, SimError> {
        let n = self.n_items;
        let stmt_count = stmt_mask.iter().filter(|&&b| b).count() as u64;
        let mut stack: Vec<Vec<Lv>> = Vec::new();
        let mut frames: Vec<CFrame> = Vec::new();
        macro_rules! cur_mask {
            () => {
                match frames.last() {
                    Some(f) if f.in_else => (f.mask_else.as_slice(), f.count_else),
                    Some(f) => (f.mask_then.as_slice(), f.count_then),
                    None => (stmt_mask, stmt_count),
                }
            };
        }
        macro_rules! bail {
            ($e:expr) => {{
                for s in stack.drain(..) {
                    self.put(s);
                }
                for f in frames.drain(..) {
                    if let Some(s) = f.saved {
                        self.put(s);
                    }
                }
                return Err($e);
            }};
        }
        for pc in er.start as usize..er.end as usize {
            match self.plan.ecode[pc] {
                EOp::I(c) => {
                    let mut v = self.get();
                    v.fill(Lv::I(c));
                    stack.push(v);
                }
                EOp::F(_) => {
                    let mut v = self.get();
                    v.fill(Lv::F);
                    stack.push(v);
                }
                EOp::B(c) => {
                    let mut v = self.get();
                    v.fill(Lv::B(c));
                    stack.push(v);
                }
                EOp::Scalar(row) => {
                    let mut v = self.get();
                    match row {
                        Row::I(r) => {
                            v.copy_from_slice(&self.ivals[r as usize * n..(r as usize + 1) * n]);
                        }
                        Row::V(r) => {
                            v.copy_from_slice(&self.vvals[r as usize * n..(r as usize + 1) * n]);
                        }
                    }
                    stack.push(v);
                }
                EOp::WorkItem(f, d) => {
                    let mut v = self.get();
                    let d = d as usize;
                    match f {
                        WorkItemFn::GlobalId => {
                            let base = self.group_id[d] * self.cfg.local[d];
                            for (i, slot) in v.iter_mut().enumerate() {
                                *slot = Lv::I((base + self.lids[i][d]) as i64);
                            }
                        }
                        WorkItemFn::LocalId => {
                            for (i, slot) in v.iter_mut().enumerate() {
                                *slot = Lv::I(self.lids[i][d] as i64);
                            }
                        }
                        WorkItemFn::GroupId => v.fill(Lv::I(self.group_id[d] as i64)),
                        WorkItemFn::GlobalSize => v.fill(Lv::I(self.cfg.global[d] as i64)),
                        WorkItemFn::LocalSize => v.fill(Lv::I(self.cfg.local[d] as i64)),
                        WorkItemFn::NumGroups => v.fill(Lv::I(self.cfg.groups()[d] as i64)),
                    }
                    stack.push(v);
                }
                EOp::Bin(op) => {
                    let b = stack.pop().expect("binary operand");
                    let mut a = stack.pop().expect("binary operand");
                    let (mask, count) = cur_mask!();
                    *ops += count;
                    let mut fault = None;
                    for i in 0..n {
                        if !mask[i] {
                            a[i] = Lv::Un;
                            continue;
                        }
                        match lv_bin(op, a[i], b[i]) {
                            Ok(v) => a[i] = v,
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        }
                    }
                    self.put(b);
                    if let Some(e) = fault {
                        self.put(a);
                        bail!(e);
                    }
                    stack.push(a);
                }
                EOp::Un(op) => {
                    let mut a = stack.pop().expect("unary operand");
                    let (mask, count) = cur_mask!();
                    *ops += count;
                    for i in 0..n {
                        a[i] = if mask[i] { lv_un(op, a[i]) } else { Lv::Un };
                    }
                    stack.push(a);
                }
                EOp::Call { fun: _, argc, cost } => {
                    let (_, count) = cur_mask!();
                    *ops += cost * count;
                    for _ in 0..argc {
                        let v = stack.pop().expect("call argument");
                        self.put(v);
                    }
                    // A user function's result depends on its (float)
                    // arguments, which are untracked.
                    let mut out = self.get();
                    out.fill(Lv::Un);
                    stack.push(out);
                }
                EOp::Load(buf) => {
                    let idx = stack.pop().expect("load index");
                    let (mask, _) = cur_mask!();
                    // Split borrows: copy the mask ref is fine (frames not
                    // touched by load_vec).
                    let r = self.load_vec(buf, &idx, mask);
                    self.put(idx);
                    match r {
                        Ok(v) => stack.push(v),
                        Err(e) => bail!(e),
                    }
                }
                EOp::Cast(t) => {
                    let mut a = stack.pop().expect("cast operand");
                    for slot in a.iter_mut() {
                        *slot = cast_lv(t, *slot);
                    }
                    stack.push(a);
                }
                EOp::SelSplit => {
                    let cond = stack.pop().expect("select condition");
                    let (mask, count) = cur_mask!();
                    *ops += count;
                    let mut mt = vec![false; n];
                    let mut me = vec![false; n];
                    let (mut ct, mut ce) = (0u64, 0u64);
                    let mut fault = None;
                    let mut unknown = false;
                    for i in 0..n {
                        if !mask[i] {
                            continue;
                        }
                        match cond_of(cond[i]) {
                            Ok(Some(true)) => {
                                mt[i] = true;
                                ct += 1;
                            }
                            Ok(Some(false)) => {
                                me[i] = true;
                                ce += 1;
                            }
                            Ok(None) => {
                                // Unknown: the lane evaluates one arm in
                                // reality; charge both (upper bound).
                                mt[i] = true;
                                me[i] = true;
                                ct += 1;
                                ce += 1;
                                unknown = true;
                            }
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        }
                    }
                    self.put(cond);
                    if let Some(e) = fault {
                        bail!(e);
                    }
                    if unknown {
                        self.exact = false;
                    }
                    frames.push(CFrame {
                        mask_then: mt,
                        count_then: ct,
                        mask_else: me,
                        count_else: ce,
                        in_else: false,
                        saved: None,
                    });
                }
                EOp::SelSwap => {
                    let f = frames.last_mut().expect("select frame");
                    f.saved = Some(stack.pop().expect("then value"));
                    f.in_else = true;
                }
                EOp::SelJoin => {
                    let f = frames.pop().expect("select frame");
                    let mut e = stack.pop().expect("else value");
                    let t = f.saved.expect("then value parked");
                    for i in 0..n {
                        e[i] = match (f.mask_then[i], f.mask_else[i]) {
                            (true, true) => lv_join(t[i], e[i]),
                            (true, false) => t[i],
                            (false, true) => e[i],
                            (false, false) => Lv::Un,
                        };
                    }
                    self.put(t);
                    stack.push(e);
                }
            }
        }
        Ok(stack.pop().expect("expression produces a value"))
    }

    fn load_vec(&mut self, buf: BufSlot, idx: &[Lv], mask: &[bool]) -> Result<Vec<Lv>, SimError> {
        let n = self.n_items;
        let mut out = self.get();
        out.fill(Lv::Un);
        match buf {
            BufSlot::Global { slot, name } => {
                let base = self.plan.global_bases[slot as usize];
                let (elem, len) = self.params[slot as usize];
                let loaded = if elem == CType::Float { Lv::F } else { Lv::Un };
                let mut count = 0u64;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    match index_of(idx[i]) {
                        Ok(Some(index)) => {
                            if index < 0 || index as usize >= len {
                                let e = self.oob(name, index, len);
                                self.put(out);
                                return Err(e);
                            }
                            self.pend_loads[i].push(base + index as u64 * 4);
                        }
                        Ok(None) => {
                            self.stats.load_transactions += 1;
                            self.synthetic_segments += 1;
                            self.exact = false;
                        }
                        Err(e) => {
                            self.put(out);
                            return Err(e);
                        }
                    }
                    out[i] = loaded;
                    count += 1;
                }
                self.stats.global_loads += count;
                if count > 0 {
                    self.any_pend = true;
                }
                Ok(out)
            }
            BufSlot::LocalF { off: _, len, name } => {
                let len = len as usize;
                let mut count = 0u64;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    match index_of(idx[i]) {
                        Ok(Some(index)) if index < 0 || index as usize >= len => {
                            let e = self.oob(name, index, len);
                            self.put(out);
                            return Err(e);
                        }
                        Ok(_) => {}
                        Err(e) => {
                            self.put(out);
                            return Err(e);
                        }
                    }
                    out[i] = Lv::F;
                    count += 1;
                }
                self.stats.local_accesses += count;
                Ok(out)
            }
            BufSlot::LocalV { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let mut count = 0u64;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    match index_of(idx[i]) {
                        Ok(Some(index)) => {
                            if index < 0 || index as usize >= len {
                                let e = self.oob(name, index, len);
                                self.put(out);
                                return Err(e);
                            }
                            out[i] = self.locals_v[off + index as usize];
                        }
                        Ok(None) => out[i] = Lv::Un,
                        Err(e) => {
                            self.put(out);
                            return Err(e);
                        }
                    }
                    count += 1;
                }
                self.stats.local_accesses += count;
                Ok(out)
            }
            BufSlot::PrivF { off: _, len, name } => {
                let len = len as usize;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    match index_of(idx[i]) {
                        Ok(Some(index)) if index < 0 || index as usize >= len => {
                            let e = self.oob(name, index, len);
                            self.put(out);
                            return Err(e);
                        }
                        Ok(_) => {}
                        Err(e) => {
                            self.put(out);
                            return Err(e);
                        }
                    }
                    out[i] = Lv::F;
                }
                Ok(out)
            }
            BufSlot::PrivV { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let stride = self.plan.priv_v_total;
                for (i, &m) in mask.iter().enumerate().take(n) {
                    if !m {
                        continue;
                    }
                    match index_of(idx[i]) {
                        Ok(Some(index)) => {
                            if index < 0 || index as usize >= len {
                                let e = self.oob(name, index, len);
                                self.put(out);
                                return Err(e);
                            }
                            out[i] = self.privs_v[i * stride + off + index as usize];
                        }
                        Ok(None) => out[i] = Lv::Un,
                        Err(e) => {
                            self.put(out);
                            return Err(e);
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    fn oob(&self, name: u16, index: i64, len: usize) -> SimError {
        SimError::OutOfBounds {
            buffer: self.plan.buf_names[name as usize].clone(),
            index,
            len,
        }
    }

    /// The per-warp 128-byte coalescing flush, identical to the executor's.
    fn flush(&mut self, mask: &[bool]) {
        if !self.any_pend {
            return;
        }
        let warp = self.warp.max(1);
        let n = self.n_items;
        for kind in 0..2 {
            let pend = if kind == 0 {
                &self.pend_loads
            } else {
                &self.pend_stores
            };
            let max_ord = pend.iter().map(|p| p.len()).max().unwrap_or(0);
            if max_ord == 0 {
                continue;
            }
            for warp_start in (0..n).step_by(warp) {
                for k in 0..max_ord {
                    self.segs.clear();
                    #[allow(clippy::needless_range_loop)] // parallel indexing into mask + pends
                    for i in warp_start..(warp_start + warp).min(n) {
                        if !mask[i] {
                            continue;
                        }
                        if let Some(addr) = pend[i].get(k) {
                            self.segs.push(addr / crate::perf::SEGMENT_BYTES);
                        }
                    }
                    if self.segs.is_empty() {
                        continue;
                    }
                    self.segs.sort_unstable();
                    self.segs.dedup();
                    if kind == 0 {
                        self.stats.load_transactions += self.segs.len() as u64;
                    } else {
                        self.stats.store_transactions += self.segs.len() as u64;
                    }
                    for s in &self.segs {
                        self.stats.seen_segments.insert(*s);
                    }
                }
            }
        }
        for p in &mut self.pend_loads {
            p.clear();
        }
        for p in &mut self.pend_stores {
            p.clear();
        }
        self.any_pend = false;
    }
}
