//! Static kernel verification over compiled [`Plan`]s.
//!
//! GPUVerify-style checks, run per (kernel × [`LaunchConfig`]) without
//! executing a single work-item:
//!
//! * **array bounds** — every load/store index is evaluated over an
//!   interval domain ([`lift_arith::range::Interval`]) seeded with the
//!   concrete launch sizes; an index whose interval escapes the declared
//!   buffer extent (or cannot be bounded at all) is a finding. The
//!   transfer functions use the simulator's *truncating* `/` and `%`
//!   semantics, not the Euclidean flavour `ArithExpr` evaluation uses.
//! * **barrier divergence** — a barrier is safe only when every enclosing
//!   loop condition and unproven branch condition is lane-invariant
//!   within a work-group; otherwise some lanes could reach the barrier
//!   while siblings have already left the structured region.
//! * **local-memory races** — distinct lanes touching the same `__local`
//!   slot without a separating barrier. Accesses are collected with an
//!   *affine* shape (`Σ cᵢ·local_idᵢ + base`, the base a strided set from
//!   loop induction), pairs are tested for barrier-free concurrency over
//!   the plan's jump graph, and a sorted-stride joint-injectivity test
//!   proves lane-disjointness; anything unprovable is a finding.
//! * **definite initialization** — reads of scalar rows with no dominating
//!   write (a must-write dataflow through branches and loops), plus loads
//!   from local/private arrays no statement ever stores to.
//!
//! The analysis walks the structured instruction stream abstractly: `if`
//! joins both branch states (refined by the branch condition where it
//! syntactically bounds a scalar row), `for` runs a widening fixpoint over
//! the body and then one reporting pass, and the lazy `?:` select narrows
//! each arm with the interval facts implied by its condition — which is
//! exactly what proves the `mirror` boundary's `m < n ? m : 2n-1-m`
//! in-bounds on both arms.
//!
//! Soundness bias: every check errs toward reporting. A finding is a
//! *may*-fault (the abstraction could not prove safety), an empty report
//! is a proof — of these properties, for this launch configuration.

use std::collections::{HashMap, HashSet};
use std::fmt;

use lift_arith::range::Interval;
use lift_codegen::clike::{BinOp, CType, Kernel, UnOp, WorkItemFn};

use crate::device::DeviceProfile;
use crate::plan::{BufSlot, EOp, ExprRef, Inst, Plan, Row};
use crate::runtime::LaunchConfig;

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// The class of defect a [`VerifyFinding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A load/store index interval escapes (or cannot be proven inside)
    /// the buffer extent.
    OutOfBounds,
    /// A barrier under lane-varying control flow.
    BarrierDivergence,
    /// Two lanes may touch the same `__local` slot between barriers, at
    /// least one writing.
    LocalRace,
    /// A read with no dominating write (scalar row or never-stored array).
    UninitRead,
    /// The kernel's `__local` footprint exceeds the device's per-CU
    /// capacity — the launch would be rejected before running.
    LocalMemCapacity,
}

impl FindingKind {
    /// Stable lower-snake identifier, used in JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::OutOfBounds => "out_of_bounds",
            FindingKind::BarrierDivergence => "barrier_divergence",
            FindingKind::LocalRace => "local_race",
            FindingKind::UninitRead => "uninit_read",
            FindingKind::LocalMemCapacity => "local_mem_capacity",
        }
    }
}

/// One structured diagnostic from the static verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFinding {
    pub kind: FindingKind,
    /// Kernel (C function) name.
    pub kernel: String,
    /// Index of the offending instruction in the compiled plan.
    pub stmt: usize,
    /// The buffer involved, when the finding concerns one.
    pub buffer: Option<String>,
    /// The interval/shape evidence: why the property could not be proven.
    pub witness: String,
}

impl fmt::Display for VerifyFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FindingKind::OutOfBounds => write!(f, "out-of-bounds access")?,
            FindingKind::BarrierDivergence => write!(f, "barrier divergence")?,
            FindingKind::LocalRace => write!(f, "local-memory race")?,
            FindingKind::UninitRead => write!(f, "uninitialized read")?,
            FindingKind::LocalMemCapacity => {
                // The full story is in the witness ("... local memory ...").
                return write!(f, "kernel `{}`: {}", self.kernel, self.witness);
            }
        }
        write!(f, " in kernel `{}`, stmt #{}", self.kernel, self.stmt)?;
        if let Some(b) = &self.buffer {
            write!(f, ", buffer `{b}`")?;
        }
        write!(f, ": {}", self.witness)
    }
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// The lane-invariant part of an affine index: an offset plus up to
/// [`MAX_COMPS`] independent strided choice dimensions — the set
/// `{lo + Σ stepᵢ·kᵢ | 0 ≤ kᵢ < countᵢ}`, one component per enclosing
/// loop. Keeping the components separate (instead of a single gcd-strided
/// hull) is what proves a 3D tile staging `tile[(i0·R + i1)·C + i2]`
/// race-free: the mixed-radix injectivity test needs each loop's own
/// stride and trip count. Steps are positive and counts ≥ 2 by
/// construction; a singleton has `len == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Base {
    lo: i64,
    comps: [Comp; MAX_COMPS],
    len: u8,
}

/// One choice dimension of a [`Base`]: the values `{0, step, …,
/// (count-1)·step}`. `fused == Some((d, f))` records that this component
/// came from a loop `row = lid_d + k·local[d]`: jointly with lane
/// dimension `d`, its contribution tiles `(step/local[d])·[0, f)`
/// contiguously and *injectively* — exactly what a coalesced tile-staging
/// loop does, and the only way to prove it race-free when the trip count
/// and the lane range interlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Comp {
    step: i64,
    count: i64,
    fused: Option<(u8, i64)>,
}

const NO_COMP: Comp = Comp {
    step: 0,
    count: 0,
    fused: None,
};

/// Components beyond this collapse pairwise into gcd hulls (sound, less
/// precise). Four covers the deepest loop nests the code generator emits.
const MAX_COMPS: usize = 4;

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Base {
    fn point(v: i64) -> Base {
        Base {
            lo: v,
            comps: [NO_COMP; MAX_COMPS],
            len: 0,
        }
    }

    fn is_point(self) -> bool {
        self.len == 0
    }

    /// The largest value in the set.
    fn hi(self) -> i64 {
        let mut h = self.lo;
        for i in 0..self.len as usize {
            let c = self.comps[i];
            h = h.saturating_add(c.step.saturating_mul(c.count - 1));
        }
        h
    }

    /// The set extended by one choice dimension `{0, step, …, (n-1)·step}`.
    fn with_comp(self, step: i64, n: i64) -> Base {
        self.push(Comp {
            step,
            count: n,
            fused: None,
        })
    }

    fn push(mut self, mut c: Comp) -> Base {
        if c.step == 0 || c.count <= 1 {
            return self;
        }
        if c.step < 0 {
            // Normalize to a positive stride by shifting the offset down.
            self.lo = self.lo.saturating_add(c.step.saturating_mul(c.count - 1));
            c.step = -c.step;
        }
        if (self.len as usize) == MAX_COMPS {
            self = self.collapse();
        }
        self.comps[self.len as usize] = c;
        self.len += 1;
        self
    }

    /// Merges the two smallest-stride components into one gcd hull — a
    /// superset, so always sound (the merged pair loses any fused tags).
    fn collapse(mut self) -> Base {
        debug_assert!(self.len >= 2);
        let mut comps: Vec<Comp> = self.comps[..self.len as usize].to_vec();
        comps.sort_unstable_by_key(|c| (c.step, c.count));
        let a = comps[0];
        let b = comps[1];
        let g = gcd(a.step, b.step);
        let span = a
            .step
            .saturating_mul(a.count - 1)
            .saturating_add(b.step.saturating_mul(b.count - 1));
        comps[0] = Comp {
            step: g,
            count: span / g + 1,
            fused: None,
        };
        comps.remove(1);
        self.comps = [NO_COMP; MAX_COMPS];
        for (i, c) in comps.iter().enumerate() {
            self.comps[i] = *c;
        }
        self.len -= 1;
        self
    }

    /// Whether some component is fused with lane dimension `d`.
    fn fused_on(self, d: usize) -> bool {
        (0..self.len as usize)
            .any(|i| matches!(self.comps[i].fused, Some((fd, _)) if fd as usize == d))
    }

    fn clear_fused(&mut self, d: usize) {
        for i in 0..self.len as usize {
            if matches!(self.comps[i].fused, Some((fd, _)) if fd as usize == d) {
                self.comps[i].fused = None;
            }
        }
    }

    fn add(self, o: Base) -> Base {
        let mut out = self;
        out.lo = out.lo.saturating_add(o.lo);
        for i in 0..o.len as usize {
            out = out.push(o.comps[i]);
        }
        out
    }

    fn neg(self) -> Base {
        Base {
            lo: -self.hi(),
            ..self
        }
    }

    fn mul_k(self, k: i64) -> Base {
        if k == 0 {
            return Base::point(0);
        }
        let mut out = Base::point(self.lo.saturating_mul(k.abs()));
        for i in 0..self.len as usize {
            let mut c = self.comps[i];
            c.step = c.step.saturating_mul(k.abs());
            out = out.push(c);
        }
        if k < 0 {
            out.neg()
        } else {
            out
        }
    }

    /// A superset of the union. Identical component lists keep their
    /// precision (any offset difference becomes one extra two-element
    /// dimension); anything else falls back to a single gcd-strided hull.
    fn join(self, o: Base) -> Base {
        if self.len == o.len && self.comps == o.comps {
            return if self.lo == o.lo {
                self
            } else {
                Base {
                    lo: self.lo.min(o.lo),
                    ..self
                }
                .with_comp((self.lo - o.lo).abs(), 2)
            };
        }
        let lo = self.lo.min(o.lo);
        let hi = self.hi().max(o.hi());
        let mut g = (self.lo - o.lo).abs();
        for i in 0..self.len as usize {
            g = gcd(g, self.comps[i].step);
        }
        for i in 0..o.len as usize {
            g = gcd(g, o.comps[i].step);
        }
        if hi == lo || g == 0 {
            return Base::point(lo);
        }
        Base::point(lo).with_comp(g, (hi - lo) / g + 1)
    }
}

/// An affine index shape `c[0]·lid₀ + c[1]·lid₁ + c[2]·lid₂ + base`.
/// Describes how a value varies *within one work-group*: group-id terms
/// (uniform per group) fold into `base`'s being per-iteration only when
/// constant, and conservatively kill the shape otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Affine {
    c: [i64; 3],
    base: Base,
}

impl Affine {
    fn konst(v: i64) -> Affine {
        Affine {
            c: [0; 3],
            base: Base::point(v),
        }
    }

    fn add(self, o: Affine) -> Affine {
        let mut base = self.base.add(o.base);
        // A fused tag claims its component and lane dim `d` jointly tile a
        // contiguous range; that only survives addition when the *other*
        // operand contributes nothing along `d`.
        for d in 0..3 {
            let fa = self.base.fused_on(d);
            let fb = o.base.fused_on(d);
            if (fa && (o.c[d] != 0 || fb)) || (fb && (self.c[d] != 0 || fa)) {
                base.clear_fused(d);
            }
        }
        Affine {
            c: [
                self.c[0].saturating_add(o.c[0]),
                self.c[1].saturating_add(o.c[1]),
                self.c[2].saturating_add(o.c[2]),
            ],
            base,
        }
    }

    fn neg(self) -> Affine {
        Affine {
            c: [-self.c[0], -self.c[1], -self.c[2]],
            base: self.base.neg(),
        }
    }

    fn mul_k(self, k: i64) -> Affine {
        Affine {
            c: [
                self.c[0].saturating_mul(k),
                self.c[1].saturating_mul(k),
                self.c[2].saturating_mul(k),
            ],
            base: self.base.mul_k(k),
        }
    }

    /// The smallest value `Σ cᵢ·lidᵢ` takes over the group's lanes.
    fn lane_min(&self, local: [usize; 3]) -> i64 {
        (0..3)
            .map(|d| 0.min(self.c[d].saturating_mul(local[d] as i64 - 1)))
            .sum()
    }
}

/// The abstract value of one expression (or scalar row): an interval
/// over-approximation, a lane-invariance fact, and — for integer values
/// built from local ids and loop induction — an affine shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsVal {
    iv: Option<Interval>,
    uniform: bool,
    affine: Option<Affine>,
}

impl AbsVal {
    fn unknown() -> AbsVal {
        AbsVal {
            iv: None,
            uniform: false,
            affine: None,
        }
    }

    fn int_point(v: i64) -> AbsVal {
        AbsVal {
            iv: Some(Interval::point(v)),
            uniform: true,
            affine: Some(Affine::konst(v)),
        }
    }

    /// A uniform value of unknown magnitude (float literals, uniform
    /// float math).
    fn uniform_unknown() -> AbsVal {
        AbsVal {
            iv: None,
            uniform: true,
            affine: None,
        }
    }

    fn join(self, o: AbsVal) -> AbsVal {
        AbsVal {
            iv: match (self.iv, o.iv) {
                (Some(a), Some(b)) => Some(a.join(b)),
                _ => None,
            },
            uniform: self.uniform && o.uniform,
            affine: match (self.affine, o.affine) {
                (Some(a), Some(b)) if a.c == b.c => Some(Affine {
                    c: a.c,
                    base: a.base.join(b.base),
                }),
                _ => None,
            },
        }
    }

    fn add(self, o: AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.zip(o.iv).map(|(a, b)| a.add(b)),
            uniform: self.uniform && o.uniform,
            affine: self.affine.zip(o.affine).map(|(a, b)| a.add(b)),
        }
    }

    /// The single integer this value provably is, if any.
    fn as_const(self) -> Option<i64> {
        self.iv.filter(|iv| iv.lo == iv.hi).map(|iv| iv.lo)
    }
}

/// Three-valued truth of a boolean interval ({0,1}-encoded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Unknown,
}

fn tri_of(iv: Option<Interval>) -> Tri {
    match iv {
        Some(iv) if iv.lo >= 1 => Tri::True,
        Some(iv) if iv.hi <= 0 => Tri::False,
        _ => Tri::Unknown,
    }
}

// ---------------------------------------------------------------------------
// Condition decomposition (branch/select refinement)
// ---------------------------------------------------------------------------

/// A comparison's operands, kept as `ecode` slices so a syntactically
/// identical subexpression inside a select arm can be narrowed by the
/// condition (both operands are pure within one statement: rows and
/// memory cannot change mid-expression).
#[derive(Debug, Clone, Copy)]
struct CmpInfo {
    op: BinOp,
    lhs: (u32, u32),
    rhs: (u32, u32),
    lhs_iv: Option<Interval>,
    rhs_iv: Option<Interval>,
}

/// "Every completed subexpression whose ops equal `ecode[range]` has a
/// value inside `iv`" — the refinement a condition grants one arm.
#[derive(Debug, Clone, Copy)]
struct Assume {
    range: (u32, u32),
    iv: Interval,
}

/// A boolean condition as a tree over comparisons, kept so guards like
/// `i >= 1 && i < N` (the zero-padding boundary idiom) refine both sides.
/// Conjunction/disjunction lists may be *partial* — dropping an unknown
/// conjunct only weakens what `truth` implies, never falsifies it.
#[derive(Debug, Clone)]
enum Cond {
    Cmp(CmpInfo),
    All(Vec<Cond>),
    Any(Vec<Cond>),
    Not(Box<Cond>),
}

impl Cond {
    /// The interval facts `self == truth` implies, recursively: a true
    /// conjunction makes every conjunct true; a false disjunction makes
    /// every disjunct false; nothing follows from the other two cases.
    fn assumes(&self, truth: bool, out: &mut Vec<Assume>) {
        match self {
            Cond::Cmp(c) => out.extend(cmp_assumes(c, truth)),
            Cond::All(cs) if truth => {
                for c in cs {
                    c.assumes(true, out);
                }
            }
            Cond::Any(cs) if !truth => {
                for c in cs {
                    c.assumes(false, out);
                }
            }
            Cond::Not(c) => c.assumes(!truth, out),
            _ => {}
        }
    }

    fn assume_vec(&self, truth: bool) -> Vec<Assume> {
        let mut out = Vec::new();
        self.assumes(truth, &mut out);
        out
    }

    /// Combines the operand conditions of `a op b` for `&&` / `||` / `!`.
    fn combine(op: BinOp, a: Option<Cond>, b: Option<Cond>) -> Option<Cond> {
        let kids: Vec<Cond> = [a, b].into_iter().flatten().collect();
        if kids.is_empty() {
            return None;
        }
        match op {
            BinOp::And => Some(Cond::All(kids)),
            BinOp::Or => Some(Cond::Any(kids)),
            _ => None,
        }
    }
}

/// The interval facts `cmp == truth` implies for each operand.
fn cmp_assumes(cmp: &CmpInfo, truth: bool) -> Vec<Assume> {
    // Normalize to `lhs ≤ rhs - d` / `lhs ≥ rhs + d` / `lhs = rhs`.
    enum Rel {
        Le(i64),
        Ge(i64),
        Eq,
    }
    let rel = match (cmp.op, truth) {
        (BinOp::Lt, true) | (BinOp::Ge, false) => Rel::Le(1),
        (BinOp::Le, true) | (BinOp::Gt, false) => Rel::Le(0),
        (BinOp::Gt, true) | (BinOp::Le, false) => Rel::Ge(1),
        (BinOp::Ge, true) | (BinOp::Lt, false) => Rel::Ge(0),
        (BinOp::Eq, true) | (BinOp::Ne, false) => Rel::Eq,
        _ => return Vec::new(),
    };
    let mut out = Vec::new();
    match rel {
        Rel::Le(d) => {
            if let Some(r) = cmp.rhs_iv {
                out.push(Assume {
                    range: cmp.lhs,
                    iv: Interval::new(i64::MIN, r.hi.saturating_sub(d)),
                });
            }
            if let Some(l) = cmp.lhs_iv {
                out.push(Assume {
                    range: cmp.rhs,
                    iv: Interval::new(l.lo.saturating_add(d), i64::MAX),
                });
            }
        }
        Rel::Ge(d) => {
            if let Some(r) = cmp.rhs_iv {
                out.push(Assume {
                    range: cmp.lhs,
                    iv: Interval::new(r.lo.saturating_add(d), i64::MAX),
                });
            }
            if let Some(l) = cmp.lhs_iv {
                out.push(Assume {
                    range: cmp.rhs,
                    iv: Interval::new(i64::MIN, l.hi.saturating_sub(d)),
                });
            }
        }
        Rel::Eq => {
            if let Some(r) = cmp.rhs_iv {
                out.push(Assume {
                    range: cmp.lhs,
                    iv: r,
                });
            }
            if let Some(l) = cmp.lhs_iv {
                out.push(Assume {
                    range: cmp.rhs,
                    iv: l,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Access records (race analysis)
// ---------------------------------------------------------------------------

/// Arena identity of a local buffer: the `F`/`V` split plus arena offset.
type LocalKey = (bool, u32);

#[derive(Debug, Clone)]
struct Access {
    stmt: usize,
    write: bool,
    key: LocalKey,
    name: u16,
    idx: AbsVal,
    /// Per dimension: how many distinct `lid_d` values the lanes *active
    /// at this statement* can have (loop guards over `lid_d + const`
    /// rows mask lanes out — see [`Verifier::active`]).
    n: [i64; 3],
}

// ---------------------------------------------------------------------------
// The verifier
// ---------------------------------------------------------------------------

/// Runs all checks on one compiled kernel under one launch configuration.
///
/// An empty vector is a proof (within the abstraction) that the kernel is
/// free of out-of-bounds accesses, divergent barriers, local-memory races
/// and uninitialized reads *for this configuration*, and fits the
/// device's local memory.
pub fn verify_kernel(
    kernel: &Kernel,
    plan: &Plan,
    cfg: LaunchConfig,
    profile: &DeviceProfile,
) -> Vec<VerifyFinding> {
    let mut findings = Vec::new();
    if plan.local_bytes > profile.lmem_bytes_per_cu {
        findings.push(VerifyFinding {
            kind: FindingKind::LocalMemCapacity,
            kernel: kernel.name.clone(),
            stmt: 0,
            buffer: None,
            witness: format!(
                "needs {} bytes of local memory, device `{}` has {} per compute unit",
                plan.local_bytes, profile.name, profile.lmem_bytes_per_cu
            ),
        });
    }
    let mut v = Verifier::new(kernel, plan, cfg);
    v.run();
    findings.extend(v.findings);
    findings
}

/// Snapshot of the mutable abstract state (for branch joins and loop
/// fixpoints).
#[derive(Clone, PartialEq)]
struct EnvSnap {
    int_env: Vec<AbsVal>,
    var_env: Vec<AbsVal>,
    int_init: Vec<bool>,
    var_init: Vec<bool>,
}

struct Verifier<'a> {
    kernel: &'a Kernel,
    plan: &'a Plan,
    cfg: LaunchConfig,
    findings: Vec<VerifyFinding>,
    reported: HashSet<(FindingKind, usize, u64)>,
    int_env: Vec<AbsVal>,
    var_env: Vec<AbsVal>,
    int_init: Vec<bool>,
    var_init: Vec<bool>,
    /// Local/private arena ranges some `Store` targets (never-stored
    /// arrays are definite uninitialized reads).
    stored: HashSet<(u8, u32)>,
    accesses: Vec<Access>,
    /// `false` during loop-fixpoint probe passes: no findings, no access
    /// records — only the final pass over the stabilized state reports.
    report: bool,
    /// One flag per enclosing structured region: `true` when its
    /// condition may vary across the lanes of a work-group.
    div_ctx: Vec<bool>,
    /// Upper bound, per dimension, on the number of distinct `lid_d`
    /// values among currently-active lanes. Starts at the local size;
    /// a loop whose induction row is exactly `lid_d + c0` and whose
    /// bound tops out at `B` masks every lane with `lid_d ≥ B - c0`
    /// out of its body, shrinking the bound to `B - c0`.
    active: [i64; 3],
    /// Active select-arm refinements (cleared between expressions).
    assumes: Vec<Assume>,
}

/// One in-flight value on the abstract expression stack.
#[derive(Debug, Clone)]
struct Slot {
    v: AbsVal,
    start: u32,
    cmp: Option<Cond>,
}

/// One in-flight `?:` select.
struct SelFrame {
    start: u32,
    cond_iv: Option<Interval>,
    cond_uniform: bool,
    then_val: Option<AbsVal>,
    t_assumes: Vec<Assume>,
    f_assumes: Vec<Assume>,
    assume_base: usize,
    saved_report: bool,
}

impl<'a> Verifier<'a> {
    fn new(kernel: &'a Kernel, plan: &'a Plan, cfg: LaunchConfig) -> Self {
        let mut stored = HashSet::new();
        for inst in &plan.code {
            if let Inst::Store { buf, .. } = inst {
                if let Some((tag, off, _, _)) = arena_key(buf) {
                    stored.insert((tag, off));
                }
            }
        }
        Verifier {
            kernel,
            plan,
            cfg,
            findings: Vec::new(),
            reported: HashSet::new(),
            int_env: vec![AbsVal::unknown(); plan.n_int_rows],
            var_env: vec![AbsVal::unknown(); plan.n_var_rows],
            int_init: vec![false; plan.n_int_rows],
            var_init: vec![false; plan.n_var_rows],
            stored,
            accesses: Vec::new(),
            report: true,
            div_ctx: Vec::new(),
            active: [
                (cfg.local[0] as i64).max(1),
                (cfg.local[1] as i64).max(1),
                (cfg.local[2] as i64).max(1),
            ],
            assumes: Vec::new(),
        }
    }

    fn run(&mut self) {
        self.walk(0, self.plan.code.len());
        self.race_pass();
    }

    // -- findings -----------------------------------------------------------

    fn push_finding(
        &mut self,
        kind: FindingKind,
        stmt: usize,
        extra: u64,
        buffer: Option<String>,
        witness: String,
    ) {
        if !self.report || !self.reported.insert((kind, stmt, extra)) {
            return;
        }
        self.findings.push(VerifyFinding {
            kind,
            kernel: self.kernel.name.clone(),
            stmt,
            buffer,
            witness,
        });
    }

    // -- environment --------------------------------------------------------

    fn row_get(&mut self, row: Row, stmt: usize) -> AbsVal {
        let (init, v) = match row {
            Row::I(r) => (self.int_init[r as usize], self.int_env[r as usize]),
            Row::V(r) => (self.var_init[r as usize], self.var_env[r as usize]),
        };
        if !init {
            let (tag, r) = match row {
                Row::I(r) => (0u64, r),
                Row::V(r) => (1u64, r),
            };
            self.push_finding(
                FindingKind::UninitRead,
                stmt,
                (tag << 32) | u64::from(r),
                None,
                format!("scalar row {row:?} is read with no dominating write"),
            );
        }
        v
    }

    fn row_peek(&self, row: Row) -> AbsVal {
        match row {
            Row::I(r) => self.int_env[r as usize],
            Row::V(r) => self.var_env[r as usize],
        }
    }

    fn row_set(&mut self, row: Row, v: AbsVal) {
        match row {
            Row::I(r) => {
                self.int_env[r as usize] = v;
                self.int_init[r as usize] = true;
            }
            Row::V(r) => {
                self.var_env[r as usize] = v;
                self.var_init[r as usize] = true;
            }
        }
    }

    /// Narrow a row in place (branch refinement): meet intervals, keep
    /// the initialization flag as-is.
    fn row_meet(&mut self, row: Row, iv: Interval) {
        let slot = match row {
            Row::I(r) => &mut self.int_env[r as usize],
            Row::V(r) => &mut self.var_env[r as usize],
        };
        slot.iv = match slot.iv {
            Some(cur) => Some(cur.intersect(iv).unwrap_or(iv)),
            None => Some(iv),
        };
    }

    fn snapshot(&self) -> EnvSnap {
        EnvSnap {
            int_env: self.int_env.clone(),
            var_env: self.var_env.clone(),
            int_init: self.int_init.clone(),
            var_init: self.var_init.clone(),
        }
    }

    fn restore(&mut self, s: &EnvSnap) {
        self.int_env.clone_from(&s.int_env);
        self.var_env.clone_from(&s.var_env);
        self.int_init.clone_from(&s.int_init);
        self.var_init.clone_from(&s.var_init);
    }

    /// `state := state ⊔ other` (row-wise join; must-init intersects).
    fn join_with(&mut self, other: &EnvSnap) {
        for (a, b) in self.int_env.iter_mut().zip(&other.int_env) {
            *a = a.join(*b);
        }
        for (a, b) in self.var_env.iter_mut().zip(&other.var_env) {
            *a = a.join(*b);
        }
        for (a, b) in self.int_init.iter_mut().zip(&other.int_init) {
            *a = *a && *b;
        }
        for (a, b) in self.var_init.iter_mut().zip(&other.var_init) {
            *a = *a && *b;
        }
    }

    fn env_eq(&self, s: &EnvSnap) -> bool {
        self.int_env == s.int_env
            && self.var_env == s.var_env
            && self.int_init == s.int_init
            && self.var_init == s.var_init
    }

    /// Widen every row that still moved on the last pass to ⊤ (keeping
    /// only lane-invariance, which is monotone under `&&`).
    fn widen_changed(&mut self, before: &EnvSnap) {
        for (a, b) in self.int_env.iter_mut().zip(&before.int_env) {
            if a != b {
                *a = AbsVal {
                    iv: None,
                    uniform: a.uniform && b.uniform,
                    affine: None,
                };
            }
        }
        for (a, b) in self.var_env.iter_mut().zip(&before.var_env) {
            if a != b {
                *a = AbsVal {
                    iv: None,
                    uniform: a.uniform && b.uniform,
                    affine: None,
                };
            }
        }
    }

    // -- statement walk -----------------------------------------------------

    fn walk(&mut self, start: usize, end: usize) {
        let mut i = start;
        while i < end {
            match self.plan.code[i].clone() {
                Inst::SetScalar {
                    row, value, coerce, ..
                } => {
                    let mut v = self.eval(value, i).v;
                    if coerce == Some(CType::Float) {
                        v = AbsVal {
                            iv: None,
                            uniform: v.uniform,
                            affine: None,
                        };
                    }
                    self.row_set(row, v);
                    i += 1;
                }
                Inst::Store { buf, idx, value } => {
                    let iv = self.eval(idx, i).v;
                    self.eval(value, i);
                    self.check_access(i, &buf, iv, true);
                    i += 1;
                }
                Inst::ForHead {
                    row, bound, exit, ..
                } => {
                    i = self.do_for(i, row, bound, exit as usize);
                }
                Inst::ForStep { row, step, .. } => {
                    let s = self.eval(step, i).v;
                    let cur = self.row_peek(row);
                    self.row_set(row, cur.add(s));
                    i += 1;
                }
                Inst::IfHead {
                    cond, els, end: e, ..
                } => {
                    i = self.do_if(i, cond, els as usize, e as usize);
                }
                Inst::ElseJoin { .. } | Inst::EndIf => i += 1,
                Inst::Barrier => {
                    if self.div_ctx.iter().any(|&d| d) {
                        self.push_finding(
                            FindingKind::BarrierDivergence,
                            i,
                            0,
                            None,
                            "barrier under control flow that may vary across the \
                             lanes of a work-group"
                                .to_string(),
                        );
                    }
                    i += 1;
                }
            }
        }
    }

    fn do_if(&mut self, head: usize, cond: ExprRef, els: usize, end: usize) -> usize {
        let c = self.eval(cond, head);
        let tri = tri_of(c.v.iv);
        self.div_ctx.push(!c.v.uniform && tri == Tri::Unknown);
        match tri {
            Tri::True => {
                self.refine_rows(c.cmp.as_ref(), true);
                self.walk(head + 1, els - 1);
            }
            Tri::False => {
                self.refine_rows(c.cmp.as_ref(), false);
                self.walk(els, end - 1);
            }
            Tri::Unknown => {
                let entry = self.snapshot();
                self.refine_rows(c.cmp.as_ref(), true);
                self.walk(head + 1, els - 1);
                let after_then = self.snapshot();
                self.restore(&entry);
                self.refine_rows(c.cmp.as_ref(), false);
                self.walk(els, end - 1);
                self.join_with(&after_then);
            }
        }
        self.div_ctx.pop();
        end
    }

    /// Meet the branch condition's implied bounds into scalar rows the
    /// condition compares directly (`row < e`, `e <= row`, …).
    fn refine_rows(&mut self, cmp: Option<&Cond>, truth: bool) {
        let Some(cmp) = cmp else { return };
        for a in cmp.assume_vec(truth) {
            let ops = &self.plan.ecode[a.range.0 as usize..a.range.1 as usize];
            if let [EOp::Scalar(row)] = ops {
                self.row_meet(*row, a.iv);
            }
        }
    }

    fn do_for(&mut self, head: usize, row: Row, bound: ExprRef, exit: usize) -> usize {
        let step = match &self.plan.code[exit - 1] {
            Inst::ForStep { step, .. } => *step,
            other => unreachable!("loop latch expected at exit-1, found {other:?}"),
        };
        let entry_val = self.row_peek(row);
        let entry = self.snapshot();

        // The head always evaluates the bound at least once; the step only
        // runs for iterating lanes (probe it silently).
        let bv = self.eval(bound, head).v;
        let sv = self.quiet(|s| s.eval(step, exit - 1).v);

        // `row < bound` false for every lane: the body is dead code.
        if let (Some(e), Some(b)) = (entry_val.iv, bv.iv) {
            if e.lo >= b.hi {
                return exit;
            }
        }
        // Every lane runs ≥ 1 iteration: body must-writes survive the loop.
        let guaranteed = matches!(
            (entry_val.iv, bv.iv),
            (Some(e), Some(b)) if e.hi < b.lo
        );
        let body_uniform = entry_val.uniform && bv.uniform && sv.uniform;
        self.div_ctx.push(!body_uniform);

        // A loop whose induction row enters as exactly `lid_d + c0` masks
        // every lane with `lid_d + c0 >= bound` out of its body (that lane
        // runs zero iterations), so inside the body at most `B - c0`
        // distinct `lid_d` values are active. This is what makes the
        // canonical `for (l = get_local_id(d); l < n; l += get_local_size(d))`
        // staging loop race-free even when `n < local[d]`.
        let saved_active = self.active;
        if let (Some(f), Some(b)) = (entry_val.affine, bv.iv) {
            for d in 0..3 {
                if f.c == unit(d) && f.base.is_point() {
                    self.active[d] = self.active[d].min((b.hi - f.base.lo).max(0));
                }
            }
        }

        // Probe the body to a (widened) fixpoint without reporting, then
        // make one reporting pass over the stabilized state.
        let saved_report = self.report;
        self.report = false;
        self.row_set(
            row,
            body_row(entry_val, bv, sv, body_uniform, self.cfg.local),
        );
        for pass in 0..8 {
            let before = self.snapshot();
            self.walk(head + 1, exit);
            let bv2 = self.quiet(|s| s.eval(bound, head).v);
            self.row_set(
                row,
                body_row(entry_val, bv2, sv, body_uniform, self.cfg.local),
            );
            self.join_with(&before);
            if pass >= 1 {
                self.widen_changed(&before);
            }
            if self.env_eq(&before) {
                break;
            }
        }
        // Reads in iteration 1 see only the entry's writes.
        self.int_init.clone_from(&entry.int_init);
        self.var_init.clone_from(&entry.var_init);
        self.report = saved_report;
        self.walk(head + 1, exit);
        self.div_ctx.pop();
        self.active = saved_active;

        // After the loop: zero iterations were possible unless proven
        // otherwise, so join with the entry state (and drop body writes).
        self.join_with(&entry);
        if !guaranteed {
            self.int_init.clone_from(&entry.int_init);
            self.var_init.clone_from(&entry.var_init);
        }
        exit
    }

    fn quiet<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let saved = self.report;
        self.report = false;
        let out = f(self);
        self.report = saved;
        out
    }

    // -- memory accesses ----------------------------------------------------

    fn buffer_len(&self, buf: &BufSlot) -> (i64, u16) {
        match *buf {
            BufSlot::Global { slot, name } => (self.kernel.params[slot as usize].len as i64, name),
            BufSlot::LocalF { len, name, .. }
            | BufSlot::LocalV { len, name, .. }
            | BufSlot::PrivF { len, name, .. }
            | BufSlot::PrivV { len, name, .. } => (i64::from(len), name),
        }
    }

    fn check_access(&mut self, stmt: usize, buf: &BufSlot, idx: AbsVal, write: bool) {
        let (len, name) = self.buffer_len(buf);
        let bname = self.plan.buf_names[name as usize].clone();
        match idx.iv {
            None => self.push_finding(
                FindingKind::OutOfBounds,
                stmt,
                u64::from(name),
                Some(bname.clone()),
                format!("index not provably bounded ({len} elements)"),
            ),
            Some(iv) if iv.lo < 0 || iv.hi >= len => self.push_finding(
                FindingKind::OutOfBounds,
                stmt,
                u64::from(name),
                Some(bname.clone()),
                format!("index in [{}, {}] but only {len} elements", iv.lo, iv.hi),
            ),
            Some(_) => {}
        }
        if let Some((tag, off, _, _)) = arena_key(buf) {
            if !write && !self.stored.contains(&(tag, off)) {
                self.push_finding(
                    FindingKind::UninitRead,
                    stmt,
                    u64::from(name) | (1 << 32),
                    Some(bname),
                    "loaded but no statement ever stores to it".to_string(),
                );
            }
            // Only work-group-shared arenas can race across lanes.
            if self.report && tag <= 1 {
                self.accesses.push(Access {
                    stmt,
                    write,
                    key: (tag == 1, off),
                    name,
                    idx,
                    n: self.active,
                });
            }
        }
    }

    // -- race analysis ------------------------------------------------------

    /// Nodes from which `from` is reachable without passing a barrier
    /// (including `from` itself): the program points some lane may still
    /// occupy while another lane has advanced to `from`.
    fn barrier_free_ancestors(&self, from: usize, preds: &[Vec<usize>]) -> HashSet<usize> {
        let mut seen = HashSet::from([from]);
        let mut work = vec![from];
        while let Some(n) = work.pop() {
            for &p in &preds[n] {
                if matches!(self.plan.code[p], Inst::Barrier) {
                    continue;
                }
                if seen.insert(p) {
                    work.push(p);
                }
            }
        }
        seen
    }

    fn predecessors(&self) -> Vec<Vec<usize>> {
        let n = self.plan.code.len();
        let mut preds = vec![Vec::new(); n];
        let mut edge = |from: usize, to: usize| {
            if to < n {
                preds[to].push(from);
            }
        };
        for (i, inst) in self.plan.code.iter().enumerate() {
            match inst {
                Inst::ForHead { exit, .. } => {
                    edge(i, i + 1);
                    edge(i, *exit as usize);
                }
                Inst::ForStep { head, .. } => edge(i, *head as usize),
                Inst::IfHead { els, .. } => {
                    edge(i, i + 1);
                    edge(i, *els as usize);
                }
                Inst::ElseJoin { els, end, .. } => {
                    edge(i, *els as usize);
                    edge(i, *end as usize);
                }
                _ => edge(i, i + 1),
            }
        }
        preds
    }

    fn race_pass(&mut self) {
        if self.accesses.is_empty() {
            return;
        }
        let preds = self.predecessors();
        let mut reach: HashMap<usize, HashSet<usize>> = HashMap::new();
        for a in &self.accesses {
            reach
                .entry(a.stmt)
                .or_insert_with(|| self.barrier_free_ancestors(a.stmt, &preds));
        }
        let accesses = std::mem::take(&mut self.accesses);
        for (i, a) in accesses.iter().enumerate() {
            for b in &accesses[i..] {
                if !(a.write || b.write) || a.key != b.key {
                    continue;
                }
                // Concurrent iff some barrier-free point reaches both.
                if reach[&a.stmt].is_disjoint(&reach[&b.stmt]) {
                    continue;
                }
                if self.lane_disjoint(a, b) {
                    continue;
                }
                let bname = self.plan.buf_names[a.name as usize].clone();
                self.push_finding(
                    FindingKind::LocalRace,
                    a.stmt,
                    (b.stmt as u64) << 3 | u64::from(a.write) << 1 | u64::from(b.write),
                    Some(bname.clone()),
                    format!(
                        "{} at stmt #{} and {} at stmt #{} on `{}` are not \
                         separated by a barrier and may touch the same element \
                         from distinct lanes ({} vs {})",
                        dir(a.write),
                        a.stmt,
                        dir(b.write),
                        b.stmt,
                        bname,
                        shape(&a.idx),
                        shape(&b.idx),
                    ),
                );
            }
        }
    }

    /// Can two *distinct* lanes of one work-group produce the same index,
    /// one through `a` and one through `b`? `true` means provably not.
    fn lane_disjoint(&self, a: &Access, b: &Access) -> bool {
        // Disjoint intervals cannot collide at all.
        if let (Some(x), Some(y)) = (a.idx.iv, b.idx.iv) {
            if x.intersect(y).is_none() {
                return true;
            }
        }
        let (Some(fa), Some(fb)) = (a.idx.affine, b.idx.affine) else {
            return false;
        };
        if fa.c != fb.c {
            return false;
        }
        let local = self.cfg.local;
        // Collisions need both lanes active at their access, so the
        // effective lane count per dimension is the larger of the two
        // accesses' active-lane bounds (clamped by the local size).
        let n_of = |d: usize| (local[d] as i64).min(a.n[d].max(b.n[d]));
        let base = fa.base.join(fb.base);
        // A lane dimension the index ignores: two lanes differing only
        // there always collide (unless a fused component accounts for it).
        for d in 0..3 {
            if n_of(d) > 1 && fa.c[d] == 0 && !base.fused_on(d) {
                return false;
            }
        }
        // Joint injectivity of (lanes × base choices) → index, by the
        // mixed-radix criterion over coefficients sorted by magnitude:
        // each must exceed the total span of everything below it. A fused
        // component absorbs its lane dimension: together they contribute
        // one contiguous dimension `(step/local, f)` instead of two.
        let mut dims: Vec<(i64, i64)> = Vec::new();
        // `d` indexes `local`, `fa.c` and the fused tags in lock-step.
        #[allow(clippy::needless_range_loop)]
        for d in 0..3 {
            if n_of(d) <= 1 {
                continue;
            }
            match (0..base.len as usize)
                .find_map(|i| base.comps[i].fused.filter(|(fd, _)| *fd as usize == d))
            {
                Some((_, f)) => {
                    let lane_step = base
                        .comps
                        .iter()
                        .take(base.len as usize)
                        .find(|c| matches!(c.fused, Some((fd, _)) if fd as usize == d))
                        .map(|c| c.step / (local[d].max(1) as i64))
                        .unwrap_or(fa.c[d].abs());
                    dims.push((lane_step, f));
                }
                None => dims.push((fa.c[d].abs(), n_of(d))),
            }
        }
        for i in 0..base.len as usize {
            let c = base.comps[i];
            // Fused components already entered through their lane dim —
            // but only when that lane dim was live (`n_of > 1`).
            if matches!(c.fused, Some((fd, _)) if n_of(fd as usize) > 1) {
                continue;
            }
            dims.push((c.step, c.count));
        }
        dims.sort_unstable();
        let mut span = 0i64;
        for (coef, n) in dims {
            if coef <= span {
                return false;
            }
            span = span.saturating_add(coef.saturating_mul(n - 1));
        }
        true
    }

    // -- expression evaluation ---------------------------------------------

    fn eval(&mut self, e: ExprRef, stmt: usize) -> Slot {
        debug_assert!(self.assumes.is_empty());
        let mut stack: Vec<Slot> = Vec::new();
        let mut frames: Vec<SelFrame> = Vec::new();
        let mut p = e.start as usize;
        while p < e.end as usize {
            let op = self.plan.ecode[p];
            match op {
                EOp::I(v) => self.push_slot(&mut stack, p, AbsVal::int_point(v), None, p as u32),
                EOp::F(_) => {
                    self.push_slot(&mut stack, p, AbsVal::uniform_unknown(), None, p as u32)
                }
                EOp::B(b) => self.push_slot(
                    &mut stack,
                    p,
                    AbsVal {
                        iv: Some(Interval::point(i64::from(b))),
                        uniform: true,
                        affine: None,
                    },
                    None,
                    p as u32,
                ),
                EOp::Scalar(row) => {
                    let v = self.row_get(row, stmt);
                    self.push_slot(&mut stack, p, v, None, p as u32);
                }
                EOp::WorkItem(f, d) => {
                    let v = self.work_item(f, d as usize);
                    self.push_slot(&mut stack, p, v, None, p as u32);
                }
                EOp::Bin(op) => {
                    let b = stack.pop().expect("binary rhs");
                    let a = stack.pop().expect("binary lhs");
                    let v = bin_abs(op, a.v, b.v);
                    let cmp = if matches!(
                        op,
                        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
                    ) {
                        Some(Cond::Cmp(CmpInfo {
                            op,
                            lhs: (a.start, b.start),
                            rhs: (b.start, p as u32),
                            lhs_iv: a.v.iv,
                            rhs_iv: b.v.iv,
                        }))
                    } else {
                        Cond::combine(op, a.cmp, b.cmp)
                    };
                    self.push_slot(&mut stack, p, v, cmp, a.start);
                }
                EOp::Un(op) => {
                    let a = stack.pop().expect("unary operand");
                    let cmp = if matches!(op, UnOp::Not) {
                        a.cmp.map(|c| Cond::Not(Box::new(c)))
                    } else {
                        None
                    };
                    self.push_slot(&mut stack, p, un_abs(op, a.v), cmp, a.start);
                }
                EOp::Call { argc, .. } => {
                    let mut uniform = true;
                    let mut start = p as u32;
                    for _ in 0..argc {
                        let a = stack.pop().expect("call argument");
                        uniform &= a.v.uniform;
                        start = start.min(a.start);
                    }
                    self.push_slot(
                        &mut stack,
                        p,
                        AbsVal {
                            iv: None,
                            uniform,
                            affine: None,
                        },
                        None,
                        start,
                    );
                }
                EOp::Load(buf) => {
                    let idx = stack.pop().expect("load index");
                    self.check_access(stmt, &buf, idx.v, false);
                    self.push_slot(&mut stack, p, AbsVal::unknown(), None, idx.start);
                }
                EOp::Cast(t) => {
                    let a = stack.pop().expect("cast operand");
                    let v = match t {
                        CType::Int => a.v,
                        CType::Bool => AbsVal {
                            iv: Some(match a.v.iv {
                                Some(iv) if bool_iv(iv) => iv,
                                _ => Interval::new(0, 1),
                            }),
                            uniform: a.v.uniform,
                            affine: None,
                        },
                        CType::Float => AbsVal {
                            iv: None,
                            uniform: a.v.uniform,
                            affine: None,
                        },
                    };
                    self.push_slot(&mut stack, p, v, None, a.start);
                }
                EOp::SelSplit => {
                    let cond = stack.pop().expect("select condition");
                    let tri = tri_of(cond.v.iv);
                    let (t_assumes, f_assumes) = match cond.cmp.as_ref() {
                        Some(c) => (c.assume_vec(true), c.assume_vec(false)),
                        None => (Vec::new(), Vec::new()),
                    };
                    let frame = SelFrame {
                        start: cond.start,
                        cond_iv: cond.v.iv,
                        cond_uniform: cond.v.uniform,
                        then_val: None,
                        assume_base: self.assumes.len(),
                        saved_report: self.report,
                        t_assumes,
                        f_assumes,
                    };
                    self.assumes.extend_from_slice(&frame.t_assumes);
                    // A proven-constant condition makes one arm dead code:
                    // nothing in it executes for any lane.
                    if tri == Tri::False {
                        self.report = false;
                    }
                    frames.push(frame);
                }
                EOp::SelSwap => {
                    let f = frames.last_mut().expect("select frame");
                    f.then_val = Some(stack.pop().expect("then value").v);
                    self.assumes.truncate(f.assume_base);
                    self.assumes.extend_from_slice(&f.f_assumes);
                    self.report = f.saved_report;
                    if tri_of(f.cond_iv) == Tri::True {
                        self.report = false;
                    }
                }
                EOp::SelJoin => {
                    let f = frames.pop().expect("select frame");
                    let e_val = stack.pop().expect("else value").v;
                    let t_val = f.then_val.expect("parked then value");
                    self.assumes.truncate(f.assume_base);
                    self.report = f.saved_report;
                    let mut v = match tri_of(f.cond_iv) {
                        Tri::True => t_val,
                        Tri::False => e_val,
                        Tri::Unknown => t_val.join(e_val),
                    };
                    v.uniform &= f.cond_uniform;
                    self.push_slot(&mut stack, p, v, None, f.start);
                }
            }
            p += 1;
        }
        self.assumes.clear();
        stack.pop().unwrap_or(Slot {
            v: AbsVal::unknown(),
            start: e.start,
            cmp: None,
        })
    }

    /// Push a completed value, narrowing it by any active select-arm
    /// assumption over the same `ecode` slice.
    fn push_slot(
        &mut self,
        stack: &mut Vec<Slot>,
        p: usize,
        mut v: AbsVal,
        cmp: Option<Cond>,
        start: u32,
    ) {
        let end = (p + 1) as u32;
        let slice = &self.plan.ecode[start as usize..end as usize];
        for a in &self.assumes {
            // Same ops ⇒ same per-lane value (rows and memory cannot
            // change mid-statement), so the condition's bound applies.
            if slice == &self.plan.ecode[a.range.0 as usize..a.range.1 as usize] {
                v.iv = match v.iv {
                    Some(iv) => Some(iv.intersect(a.iv).unwrap_or(a.iv)),
                    None => Some(a.iv),
                };
            }
        }
        stack.push(Slot { v, start, cmp });
    }

    fn work_item(&self, f: WorkItemFn, d: usize) -> AbsVal {
        let g = self.cfg.global[d] as i64;
        let l = (self.cfg.local[d] as i64).max(1);
        let groups = (g / l).max(1);
        match f {
            WorkItemFn::GlobalId => AbsVal {
                iv: Some(Interval::new(0, (g - 1).max(0))),
                uniform: g <= 1,
                affine: Some(Affine {
                    c: unit(d),
                    base: Base::point(0).with_comp(l, groups),
                }),
            },
            WorkItemFn::LocalId => AbsVal {
                iv: Some(Interval::new(0, l - 1)),
                uniform: l <= 1,
                affine: Some(Affine {
                    c: unit(d),
                    base: Base::point(0),
                }),
            },
            WorkItemFn::GroupId => AbsVal {
                iv: Some(Interval::new(0, groups - 1)),
                uniform: true,
                // Uniform per group but not per iteration-base: only a
                // single-group launch keeps the affine shape.
                affine: (groups == 1).then(|| Affine::konst(0)),
            },
            WorkItemFn::GlobalSize => AbsVal::int_point(g),
            WorkItemFn::LocalSize => AbsVal::int_point(l),
            WorkItemFn::NumGroups => AbsVal::int_point(groups),
        }
    }
}

/// The abstract value of the induction row while the body runs: interval
/// from `[init.lo, bound.hi - 1]`, affine base extended along the step.
fn body_row(
    entry: AbsVal,
    bound: AbsVal,
    step: AbsVal,
    uniform: bool,
    local: [usize; 3],
) -> AbsVal {
    let iv = match (entry.iv, bound.iv, step.iv) {
        (Some(e), Some(b), Some(s)) if s.lo >= 1 => {
            Some(Interval::new(e.lo, b.hi.saturating_sub(1).max(e.lo)))
        }
        _ => None,
    };
    let affine = match (entry.affine, bound.iv, step.as_const()) {
        (Some(a), Some(b), Some(s)) if s >= 1 => {
            let hi = b.hi.saturating_sub(1).saturating_sub(a.lane_min(local));
            // Iterating lanes satisfy `entry + k·s ≤ hi`, so the trip
            // count is bounded even when the entry set has several
            // components (use its smallest member).
            let trips = if hi >= a.base.lo {
                (hi - a.base.lo) / s + 1
            } else {
                1
            };
            // `for (r = c·lid_d + lo; r < B; r += c·local[d])` makes lane
            // and iteration jointly tile `lo + c·[0, f)` injectively: tag
            // the component so the race test can use the joint shape.
            let fused = (0..3)
                .find(|&d| {
                    a.c[d] > 0
                        && a.c.iter().enumerate().all(|(e, &v)| e == d || v == 0)
                        && a.base.is_point()
                        && s == a.c[d].saturating_mul(local[d].max(1) as i64)
                })
                .map(|d| {
                    let f = if b.hi.saturating_sub(1) >= a.base.lo {
                        (b.hi - 1 - a.base.lo) / a.c[d] + 1
                    } else {
                        1
                    };
                    (d as u8, f)
                });
            Some(Affine {
                c: a.c,
                base: a.base.push(Comp {
                    step: s,
                    count: trips,
                    fused,
                }),
            })
        }
        _ => None,
    };
    AbsVal {
        iv,
        uniform,
        affine,
    }
}

fn unit(d: usize) -> [i64; 3] {
    let mut c = [0i64; 3];
    if d < 3 {
        c[d] = 1;
    }
    c
}

/// `(arena tag, offset, len, name)` for local/private slots; tags 0/1 are
/// the work-group-shared arenas, 2/3 the per-lane private ones.
fn arena_key(buf: &BufSlot) -> Option<(u8, u32, u32, u16)> {
    match *buf {
        BufSlot::Global { .. } => None,
        BufSlot::LocalF { off, len, name } => Some((0, off, len, name)),
        BufSlot::LocalV { off, len, name } => Some((1, off, len, name)),
        BufSlot::PrivF { off, len, name } => Some((2, off, len, name)),
        BufSlot::PrivV { off, len, name } => Some((3, off, len, name)),
    }
}

fn dir(write: bool) -> &'static str {
    if write {
        "store"
    } else {
        "load"
    }
}

fn shape(v: &AbsVal) -> String {
    match (v.affine, v.iv) {
        (Some(a), _) => {
            let mut base = format!("{}", a.base.lo);
            for i in 0..a.base.len as usize {
                let c = a.base.comps[i];
                base.push_str(&format!("+{}·k<{}", c.step, c.count));
            }
            format!("{}·lx+{}·ly+{}·lz+{{{base}}}", a.c[0], a.c[1], a.c[2])
        }
        (None, Some(iv)) => format!("[{}, {}]", iv.lo, iv.hi),
        (None, None) => "unbounded".to_string(),
    }
}

/// Interval/uniform/affine transfer for one binary operation, using the
/// simulator's truncating `/` and `%`.
fn bin_abs(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    let iv = match (op, a.iv, b.iv) {
        (BinOp::Add, Some(x), Some(y)) => Some(x.add(y)),
        (BinOp::Sub, Some(x), Some(y)) => Some(x.sub(y)),
        (BinOp::Mul, Some(x), Some(y)) => Some(x.mul(y)),
        (BinOp::Div, Some(x), Some(y)) => x.div_trunc(y),
        (BinOp::Mod, Some(x), Some(y)) => x.rem_trunc(y),
        (BinOp::Min, Some(x), Some(y)) => Some(x.min(y)),
        (BinOp::Max, Some(x), Some(y)) => Some(x.max(y)),
        (BinOp::Lt, Some(x), Some(y)) => Some(tri_iv(x.hi < y.lo, x.lo >= y.hi)),
        (BinOp::Le, Some(x), Some(y)) => Some(tri_iv(x.hi <= y.lo, x.lo > y.hi)),
        (BinOp::Gt, Some(x), Some(y)) => Some(tri_iv(x.lo > y.hi, x.hi <= y.lo)),
        (BinOp::Ge, Some(x), Some(y)) => Some(tri_iv(x.lo >= y.hi, x.hi < y.lo)),
        (BinOp::Eq, Some(x), Some(y)) => Some(tri_iv(
            x.lo == x.hi && y.lo == y.hi && x.lo == y.lo,
            x.intersect(y).is_none(),
        )),
        (BinOp::Ne, Some(x), Some(y)) => Some(tri_iv(
            x.intersect(y).is_none(),
            x.lo == x.hi && y.lo == y.hi && x.lo == y.lo,
        )),
        (BinOp::And, Some(x), Some(y)) if bool_iv(x) && bool_iv(y) => {
            Some(Interval::new(x.lo.min(y.lo), x.hi.min(y.hi)))
        }
        (BinOp::Or, Some(x), Some(y)) if bool_iv(x) && bool_iv(y) => {
            Some(Interval::new(x.lo.max(y.lo), x.hi.max(y.hi)))
        }
        // Comparisons/logic over unbounded operands still yield a bool.
        (
            BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::And
            | BinOp::Or,
            _,
            _,
        ) => Some(Interval::new(0, 1)),
        _ => None,
    };
    let affine = match op {
        BinOp::Add => a.affine.zip(b.affine).map(|(x, y)| x.add(y)),
        BinOp::Sub => a.affine.zip(b.affine).map(|(x, y)| x.add(y.neg())),
        BinOp::Mul => match (a.as_const(), b.as_const()) {
            (Some(k), _) => b.affine.map(|f| f.mul_k(k)),
            (_, Some(k)) => a.affine.map(|f| f.mul_k(k)),
            _ => None,
        },
        _ => None,
    };
    AbsVal {
        iv,
        uniform: a.uniform && b.uniform,
        affine,
    }
}

fn bool_iv(iv: Interval) -> bool {
    iv.lo >= 0 && iv.hi <= 1
}

fn tri_iv(definitely: bool, impossible: bool) -> Interval {
    if definitely {
        Interval::point(1)
    } else if impossible {
        Interval::point(0)
    } else {
        Interval::new(0, 1)
    }
}

fn un_abs(op: UnOp, a: AbsVal) -> AbsVal {
    match op {
        UnOp::Neg => AbsVal {
            iv: a.iv.map(Interval::neg),
            uniform: a.uniform,
            affine: a.affine.map(Affine::neg),
        },
        UnOp::Not => AbsVal {
            iv: Some(match a.iv {
                Some(iv) if bool_iv(iv) => Interval::new(1 - iv.hi, 1 - iv.lo),
                _ => Interval::new(0, 1),
            }),
            uniform: a.uniform,
            affine: None,
        },
    }
}
