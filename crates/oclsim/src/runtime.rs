//! Host-side runtime: buffers, launch configurations and kernel execution.

use lift_codegen::clike::{CType, Kernel};

use crate::device::DeviceProfile;
use crate::exec::{Machine, PlanMachine, SimError};
use crate::perf::KernelStats;
use crate::plan::{Plan, PlannedKernel};

/// Which executor drives a launch.
///
/// Both engines implement identical semantics — outputs, [`KernelStats`]
/// and modeled times are byte-for-byte equal; they differ only in host-side
/// speed. The default is [`SimEngine::Plan`]; set `LIFT_SIM_ENGINE=tree` to
/// force the reference interpreter (CI uses this to byte-diff whole
/// experiment sweeps across engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEngine {
    /// The slot-resolved bytecode plan executed by the register-machine
    /// inner loop (see [`crate::plan`]). Fast; the default.
    Plan,
    /// The original tree-walking interpreter, kept as the executable
    /// reference semantics.
    Tree,
}

impl SimEngine {
    /// The engine selected by `LIFT_SIM_ENGINE`: `"tree"` forces the
    /// reference interpreter, `"plan"` (or unset/empty) the bytecode plan
    /// — case-insensitively.
    ///
    /// # Panics
    ///
    /// On any other value. A typo like `LIFT_SIM_ENGINE=Tree-engine`
    /// silently selecting the plan would make the cross-engine byte-diffs
    /// CI relies on compare the plan against itself and pass vacuously, so
    /// a misconfigured switch fails loudly at the first launch instead.
    pub fn from_env() -> SimEngine {
        match std::env::var("LIFT_SIM_ENGINE") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "tree" => SimEngine::Tree,
                "plan" | "" => SimEngine::Plan,
                other => {
                    panic!("unrecognised LIFT_SIM_ENGINE value `{other}`; use \"plan\" or \"tree\"")
                }
            },
            Err(_) => SimEngine::Plan,
        }
    }
}

/// A host/device buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 32-bit integers.
    I32(Vec<i32>),
}

impl BufferData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len(),
            BufferData::I32(v) => v.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the float data.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds integers.
    pub fn as_f32(&self) -> &[f32] {
        match self {
            BufferData::F32(v) => v,
            BufferData::I32(_) => panic!("expected f32 buffer"),
        }
    }

    /// Borrows the integer data.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds floats.
    pub fn as_i32(&self) -> &[i32] {
        match self {
            BufferData::I32(v) => v,
            BufferData::F32(_) => panic!("expected i32 buffer"),
        }
    }
}

impl From<Vec<f32>> for BufferData {
    fn from(v: Vec<f32>) -> Self {
        BufferData::F32(v)
    }
}

impl From<Vec<i32>> for BufferData {
    fn from(v: Vec<i32>) -> Self {
        BufferData::I32(v)
    }
}

/// An NDRange launch configuration (global and local sizes per dimension;
/// unused dimensions are 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Global work size per dimension.
    pub global: [usize; 3],
    /// Work-group size per dimension.
    pub local: [usize; 3],
}

impl LaunchConfig {
    /// One-dimensional launch.
    pub fn d1(global: usize, local: usize) -> Self {
        LaunchConfig {
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// Two-dimensional launch (`x` fastest-varying, as in OpenCL).
    pub fn d2(gx: usize, gy: usize, lx: usize, ly: usize) -> Self {
        LaunchConfig {
            global: [gx, gy, 1],
            local: [lx, ly, 1],
        }
    }

    /// Three-dimensional launch.
    pub fn d3(g: [usize; 3], l: [usize; 3]) -> Self {
        LaunchConfig {
            global: g,
            local: l,
        }
    }

    /// Work-groups per dimension.
    pub fn groups(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Work-items per group.
    pub fn wg_size(&self) -> usize {
        self.local.iter().product()
    }

    fn validate(&self, dev: &DeviceProfile) -> Result<(), SimError> {
        for d in 0..3 {
            if self.local[d] == 0 || self.global[d] == 0 {
                return Err(SimError::BadLaunch(format!("zero size in dimension {d}")));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(SimError::BadLaunch(format!(
                    "global size {} not a multiple of local size {} in dimension {d}",
                    self.global[d], self.local[d]
                )));
            }
        }
        if self.wg_size() > dev.max_wg_size {
            return Err(SimError::BadLaunch(format!(
                "work-group size {} exceeds device maximum {}",
                self.wg_size(),
                dev.max_wg_size
            )));
        }
        Ok(())
    }
}

/// The result of one kernel execution.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The output buffer.
    pub output: BufferData,
    /// Collected execution statistics.
    pub stats: KernelStats,
    /// Modeled runtime in seconds on the device profile.
    pub time_s: f64,
}

/// A virtual OpenCL device with a fixed [`DeviceProfile`].
///
/// The device is **immutable and freely shareable across threads**: the
/// parallel tuner hands one `&VirtualDevice` to every worker evaluating a
/// configuration. All mutable execution state (argument buffers, the
/// work-item interpreter, per-run statistics) is created locally inside
/// each [`VirtualDevice::run`] call, so concurrent runs never observe each
/// other.
#[derive(Debug, Clone)]
pub struct VirtualDevice {
    profile: DeviceProfile,
}

// Compile-time audit of the guarantee above: concurrent tuning relies on
// sharing devices (and compiled kernels, behind `Arc`) across worker
// threads. If a future change introduces interior mutability here, this
// must fail to compile rather than silently race.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VirtualDevice>();
    assert_send_sync::<DeviceProfile>();
    assert_send_sync::<BufferData>();
    assert_send_sync::<LaunchConfig>();
};

impl VirtualDevice {
    /// Creates a device with the given profile.
    pub fn new(profile: DeviceProfile) -> Self {
        VirtualDevice { profile }
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Executes `kernel` on `inputs` (one per non-output parameter, in
    /// order) with the given launch configuration, using the engine
    /// selected by `LIFT_SIM_ENGINE` (the bytecode plan by default).
    ///
    /// The output buffer is allocated zero-initialised by the runtime.
    /// Under the plan engine the kernel is plan-compiled on every call; use
    /// [`VirtualDevice::run_planned`] with a [`PlannedKernel`] to compile
    /// once and run many times (the tuning hot path does).
    ///
    /// # Errors
    ///
    /// Fails on launch misconfiguration (sizes, local-memory overflow,
    /// argument mismatch) and on any runtime fault the executor detects
    /// (out-of-bounds access, barrier divergence, division by zero).
    pub fn run(
        &self,
        kernel: &Kernel,
        inputs: &[BufferData],
        cfg: LaunchConfig,
    ) -> Result<RunOutput, SimError> {
        self.run_with_engine(kernel, inputs, cfg, SimEngine::from_env())
    }

    /// [`VirtualDevice::run`] on an explicitly-chosen engine (the
    /// differential tests drive both and assert bit-identical results).
    ///
    /// # Errors
    ///
    /// As [`VirtualDevice::run`], plus plan-compilation faults under
    /// [`SimEngine::Plan`].
    pub fn run_with_engine(
        &self,
        kernel: &Kernel,
        inputs: &[BufferData],
        cfg: LaunchConfig,
        engine: SimEngine,
    ) -> Result<RunOutput, SimError> {
        match engine {
            SimEngine::Tree => self.run_inner(kernel, None, inputs, cfg),
            SimEngine::Plan => {
                let plan = Plan::compile(kernel)?;
                self.run_inner(kernel, Some(&plan), inputs, cfg)
            }
        }
    }

    /// Executes a pre-planned kernel: the plan is compiled at most once for
    /// the kernel's lifetime (the driver's kernel cache holds
    /// [`PlannedKernel`]s, so tuning a variant across hundreds of
    /// configurations never re-plans).
    ///
    /// # Errors
    ///
    /// As [`VirtualDevice::run`].
    pub fn run_planned(
        &self,
        kernel: &PlannedKernel,
        inputs: &[BufferData],
        cfg: LaunchConfig,
    ) -> Result<RunOutput, SimError> {
        match SimEngine::from_env() {
            SimEngine::Tree => self.run_inner(kernel.kernel(), None, inputs, cfg),
            SimEngine::Plan => {
                let plan = kernel.plan()?;
                self.run_inner(kernel.kernel(), Some(&plan), inputs, cfg)
            }
        }
    }

    /// Validates the launch, binds buffers and drives one of the two
    /// executors (`plan: None` selects the tree interpreter).
    fn run_inner(
        &self,
        kernel: &Kernel,
        plan: Option<&Plan>,
        inputs: &[BufferData],
        cfg: LaunchConfig,
    ) -> Result<RunOutput, SimError> {
        cfg.validate(&self.profile)?;
        if kernel.local_bytes() > self.profile.lmem_bytes_per_cu {
            return Err(SimError::BadLaunch(format!(
                "kernel uses {} bytes of local memory, device has {}",
                kernel.local_bytes(),
                self.profile.lmem_bytes_per_cu
            )));
        }
        let n_in = kernel.params.iter().filter(|p| !p.is_output).count();
        if inputs.len() != n_in {
            return Err(SimError::BadLaunch(format!(
                "kernel expects {n_in} input buffers, got {}",
                inputs.len()
            )));
        }

        let mut buffers: Vec<BufferData> = Vec::with_capacity(kernel.params.len());
        let mut input_iter = inputs.iter();
        for p in &kernel.params {
            if p.is_output {
                buffers.push(match p.elem {
                    CType::Float => BufferData::F32(vec![0.0; p.len]),
                    CType::Int | CType::Bool => BufferData::I32(vec![0; p.len]),
                });
            } else {
                let data = input_iter.next().expect("counted above").clone();
                if data.len() != p.len {
                    return Err(SimError::BadLaunch(format!(
                        "buffer for `{}` has {} elements, kernel expects {}",
                        p.var.name(),
                        data.len(),
                        p.len
                    )));
                }
                buffers.push(data);
            }
        }

        let warp = self.profile.warp_width as usize;
        let stats = match plan {
            Some(plan) => {
                let mut machine = PlanMachine::new(plan, &mut buffers, cfg, warp);
                machine.run()?;
                machine.stats
            }
            None => {
                let mut machine = Machine::new(kernel, &mut buffers, cfg, warp)?;
                machine.run()?;
                machine.stats
            }
        };
        let time_s = stats.model_time(&self.profile);

        let out_pos = kernel
            .params
            .iter()
            .position(|p| p.is_output)
            .expect("kernel has an output");
        Ok(RunOutput {
            output: buffers.swap_remove(out_pos),
            stats,
            time_s,
        })
    }
}

/// How buffers rotate between time steps in [`VirtualDevice::run_iterated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rotation {
    /// One state grid: the output becomes the (only) input
    /// (Jacobi/heat-style `u ← f(u)`).
    SingleBuffer,
    /// Two state grids (leapfrog, as in the acoustic simulation §3.5):
    /// `prev ← cur`, `cur ← out`; any further inputs stay fixed.
    Leapfrog,
}

/// Accumulated outcome of a multi-step run.
#[derive(Debug, Clone)]
pub struct IteratedOutput {
    /// The final state buffer.
    pub output: BufferData,
    /// Total modeled time over all launches.
    pub time_s: f64,
    /// Number of kernel launches executed.
    pub steps: usize,
}

impl VirtualDevice {
    /// Executes `steps` time steps of a stencil kernel, rotating buffers on
    /// the host between launches — this is how the paper's `iterate`
    /// semantics are realised at evaluation time (each launch performs one
    /// iteration; see §6).
    ///
    /// # Errors
    ///
    /// Fails as [`VirtualDevice::run`] does; additionally when `inputs`
    /// does not provide the state buffers the rotation policy needs.
    pub fn run_iterated(
        &self,
        kernel: &Kernel,
        inputs: &[BufferData],
        cfg: LaunchConfig,
        steps: usize,
        rotation: Rotation,
    ) -> Result<IteratedOutput, SimError> {
        // Compile once, launch `steps` times.
        let plan = match SimEngine::from_env() {
            SimEngine::Plan => Some(Plan::compile(kernel)?),
            SimEngine::Tree => None,
        };
        self.run_iterated_inner(kernel, plan.as_ref(), inputs, cfg, steps, rotation)
    }

    /// [`VirtualDevice::run_iterated`] for a pre-planned kernel — the plan
    /// is reused across all `steps` launches (and every other launch of the
    /// same [`PlannedKernel`]).
    ///
    /// # Errors
    ///
    /// As [`VirtualDevice::run_iterated`].
    pub fn run_iterated_planned(
        &self,
        kernel: &PlannedKernel,
        inputs: &[BufferData],
        cfg: LaunchConfig,
        steps: usize,
        rotation: Rotation,
    ) -> Result<IteratedOutput, SimError> {
        let plan = match SimEngine::from_env() {
            SimEngine::Plan => Some(kernel.plan()?),
            SimEngine::Tree => None,
        };
        self.run_iterated_inner(
            kernel.kernel(),
            plan.as_deref(),
            inputs,
            cfg,
            steps,
            rotation,
        )
    }

    fn run_iterated_inner(
        &self,
        kernel: &Kernel,
        plan: Option<&Plan>,
        inputs: &[BufferData],
        cfg: LaunchConfig,
        steps: usize,
        rotation: Rotation,
    ) -> Result<IteratedOutput, SimError> {
        let needed = match rotation {
            Rotation::SingleBuffer => 1,
            Rotation::Leapfrog => 2,
        };
        if inputs.len() < needed {
            return Err(SimError::BadLaunch(format!(
                "{rotation:?} rotation needs {needed} state buffers, got {}",
                inputs.len()
            )));
        }
        let mut state: Vec<BufferData> = inputs.to_vec();
        let mut total_time = 0.0;
        let mut last = state[needed - 1].clone();
        for _ in 0..steps {
            let out = self.run_inner(kernel, plan, &state, cfg)?;
            total_time += out.time_s;
            match rotation {
                Rotation::SingleBuffer => {
                    state[0] = out.output.clone();
                }
                Rotation::Leapfrog => {
                    state[0] = state[1].clone();
                    state[1] = out.output.clone();
                }
            }
            last = out.output;
        }
        Ok(IteratedOutput {
            output: last,
            time_s: total_time,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_codegen::compile_kernel;
    use lift_core::prelude::*;

    fn jacobi3pt_lowered(n: i64) -> lift_codegen::Kernel {
        let prog = lam_named("A", Type::array(Type::f32(), n), |a| {
            let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                reduce_seq(add_f32(), Expr::f32(0.0), nbh)
            });
            map_glb(0, sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        compile_kernel("jacobi3pt", &prog).expect("compiles")
    }

    fn reference_jacobi3pt(input: &[f32]) -> Vec<f32> {
        let n = input.len() as i64;
        (0..n)
            .map(|i| {
                let at = |j: i64| input[j.clamp(0, n - 1) as usize];
                at(i - 1) + at(i) + at(i + 1)
            })
            .collect()
    }

    #[test]
    fn executes_listing2_bit_exact() {
        let n = 64;
        let kernel = jacobi3pt_lowered(n as i64);
        let input: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let out = dev
            .run(&kernel, &[input.clone().into()], LaunchConfig::d1(64, 16))
            .expect("runs");
        assert_eq!(out.output.as_f32(), reference_jacobi3pt(&input).as_slice());
        assert!(out.stats.global_loads > 0);
        assert!(out.time_s > 0.0);
    }

    #[test]
    fn fewer_threads_than_elements_still_correct() {
        let n = 64;
        let kernel = jacobi3pt_lowered(n as i64);
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let dev = VirtualDevice::new(DeviceProfile::mali_t628());
        // Only 16 global threads: the generated loop strides.
        let out = dev
            .run(&kernel, &[input.clone().into()], LaunchConfig::d1(16, 8))
            .expect("runs");
        assert_eq!(out.output.as_f32(), reference_jacobi3pt(&input).as_slice());
    }

    #[test]
    fn misaligned_launch_rejected() {
        let kernel = jacobi3pt_lowered(64);
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let err = dev
            .run(
                &kernel,
                &[vec![0.0f32; 64].into()],
                LaunchConfig::d1(60, 16),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
    }

    #[test]
    fn wrong_buffer_size_rejected() {
        let kernel = jacobi3pt_lowered(64);
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let err = dev
            .run(
                &kernel,
                &[vec![0.0f32; 63].into()],
                LaunchConfig::d1(64, 16),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
    }

    #[test]
    fn coalesced_access_counts_transactions() {
        let n = 1024;
        let kernel = jacobi3pt_lowered(n as i64);
        let input: Vec<f32> = vec![1.0; n];
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let out = dev
            .run(&kernel, &[input.into()], LaunchConfig::d1(1024, 256))
            .expect("runs");
        // 3 loads per element = 3072 raw loads; coalescing brings the
        // transaction count well below raw (one 128B segment covers 32
        // consecutive floats for a 32-wide warp).
        assert_eq!(out.stats.global_loads, 3 * n as u64);
        assert!(
            out.stats.load_transactions < out.stats.global_loads / 8,
            "expected coalescing: {} transactions for {} loads",
            out.stats.load_transactions,
            out.stats.global_loads
        );
        // Compulsory traffic: the input spans 1024*4/128 = 32 segments, plus
        // the store side.
        assert!(out.stats.unique_segments >= 32 + 32);
    }

    #[test]
    fn run_iterated_matches_the_ir_iterate_semantics() {
        // Host-side stepping must equal the `iterate` primitive evaluated
        // by the reference interpreter.
        let n = 16usize;
        let kernel = jacobi3pt_lowered(n as i64);
        let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin()).collect();
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let steps = 3usize;
        let stepped = dev
            .run_iterated(
                &kernel,
                &[input.clone().into()],
                LaunchConfig::d1(16, 8),
                steps,
                Rotation::SingleBuffer,
            )
            .expect("runs");
        assert_eq!(stepped.steps, steps);

        // The same program via Pattern::Iterate through the evaluator.
        let one_step = lam(Type::array(Type::f32(), n), |a| {
            let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                reduce_seq(add_f32(), Expr::f32(0.0), nbh)
            });
            map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        let iterated = lam(Type::array(Type::f32(), n), move |a| {
            iterate(steps, one_step, a)
        });
        let expected =
            lift_core::eval::eval_fun(&iterated, &[lift_core::eval::DataValue::from_f32s(input)])
                .expect("evaluates")
                .flatten_f32();
        assert_eq!(stepped.output.as_f32(), expected.as_slice());
    }

    #[test]
    fn run_iterated_rejects_missing_state() {
        let kernel = jacobi3pt_lowered(8);
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let err = dev
            .run_iterated(&kernel, &[], LaunchConfig::d1(8, 4), 2, Rotation::Leapfrog)
            .expect_err("must fail");
        assert!(matches!(err, SimError::BadLaunch(_)));
    }

    #[test]
    fn local_memory_tile_kernel_runs_with_barrier_semantics() {
        // Tiled variant: work-group stages its tile into local memory;
        // correctness requires the barrier between copy and compute.
        let n = 64i64;
        let prog = lam_named("A", Type::array(Type::f32(), n), |a| {
            let tile_ty = Type::array(Type::f32(), 10);
            let per_tile = lam(tile_ty, |tile| {
                let copy = FunDecl::pattern(lift_core::pattern::Pattern::Map {
                    kind: lift_core::pattern::MapKind::Lcl(0),
                    f: id(),
                });
                let copied = Expr::apply(to_local(copy), [tile]);
                let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                    reduce_seq(add_f32(), Expr::f32(0.0), nbh)
                });
                map_lcl(0, sum, slide(3, 1, copied))
            });
            join(map_wrg(
                0,
                per_tile,
                slide(10, 8, pad(1, 1, Boundary::Clamp, a)),
            ))
        });
        let kernel = compile_kernel("jacobi3pt_tiled", &prog).expect("compiles");
        let input: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5).collect();
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let out = dev
            .run(&kernel, &[input.clone().into()], LaunchConfig::d1(64, 8))
            .expect("runs");
        assert_eq!(out.output.as_f32(), reference_jacobi3pt(&input).as_slice());
        assert!(out.stats.local_accesses > 0);
        assert!(out.stats.barriers > 0);
    }
}
