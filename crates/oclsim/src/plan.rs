//! Execution-plan compilation: lowering a [`Kernel`] AST into a flat,
//! slot-resolved bytecode program.
//!
//! The tree-walking interpreter in [`crate::exec`] resolves every variable
//! through a `HashMap`, clones the kernel body per work-group and re-walks
//! `CStmt`/`CExpr` trees per work-item — fine for one launch, ruinous when
//! the autotuner scores thousands of configurations. This module performs
//! that resolution **once per kernel**:
//!
//! * every scalar variable and buffer becomes a dense slot index (an
//!   unresolvable variable is a *plan-compile* error, not a mid-simulation
//!   fault);
//! * expressions become a stack-machine bytecode (`EOp`) the executor
//!   evaluates **op-major across all active lanes at once** (each op runs
//!   for every active work-item before the next op), with the lazy `?:`
//!   select compiled to per-lane mask splits;
//! * structured control flow becomes statement instructions (`Inst`) with
//!   explicit jump offsets and statically-assigned active-mask slots;
//! * lane-invariant (work-item-independent) expressions are marked
//!   `uniform` so the executor evaluates them once per group and charges
//!   the per-lane ALU cost arithmetically;
//! * a sound kind-inference fixpoint types the storage: scalar slots whose
//!   every write is provably an integer live in raw `i64` rows, and
//!   local/private buffers whose every store is provably a float live in
//!   raw `f32` arenas — so the hot index math and stencil data paths run
//!   on unboxed vectors instead of per-lane tagged values.
//!
//! The resulting [`Plan`] is immutable and freely shareable; the
//! register-machine inner loop in [`crate::exec`] drives it with one
//! reusable scratch arena across all work-groups of a launch.
//!
//! # Determinism contract
//!
//! For every kernel the plan path produces **byte-identical** outputs,
//! [`KernelStats`] and modeled times to the tree interpreter: both engines
//! execute the same statements over the same active lanes, count the same
//! events, and differ only in how fast the host simulates them. The
//! differential suite in `tests/sim_differential.rs` asserts this for
//! every Table-1 benchmark × variant × device.
//!
//! [`KernelStats`]: crate::perf::KernelStats

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use lift_codegen::clike::{BinOp, CExpr, CStmt, CType, Kernel, UnOp, VarRef, WorkItemFn};
use lift_core::scalar::ScalarKind;
use lift_core::userfun::UserFun;

use crate::exec::{call_cost, SimError};
use crate::verify::VerifyFinding;

/// Where a scalar variable's per-lane storage lives: a raw `i64` row (for
/// slots whose every write is provably an integer) or a tagged-value row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Row {
    /// Row index into the `i64` register arena.
    I(u32),
    /// Row index into the tagged-value register arena.
    V(u32),
}

/// Where a buffer access resolves to, decided at plan-compile time. Local
/// and private buffers carry their arena offset and length; the `F`/`V`
/// split mirrors the storage typing (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BufSlot {
    /// Global-memory parameter `slot`; `name` indexes [`Plan::buf_names`].
    Global { slot: u16, name: u16 },
    /// Float-typed work-group local buffer.
    LocalF { off: u32, len: u32, name: u16 },
    /// Tagged-value local buffer (a store with unprovable kind exists).
    LocalV { off: u32, len: u32, name: u16 },
    /// Float-typed per-work-item private array (`off` within one item's
    /// block).
    PrivF { off: u32, len: u32, name: u16 },
    /// Tagged-value private array.
    PrivV { off: u32, len: u32, name: u16 },
}

/// One stack-machine expression operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EOp {
    /// Push an integer literal.
    I(i64),
    /// Push a float literal.
    F(f32),
    /// Push a boolean literal.
    B(bool),
    /// Push the lanes of a scalar register row.
    Scalar(Row),
    /// Push a work-item query result.
    WorkItem(WorkItemFn, u8),
    /// Pop two operands, push the result; charges one ALU op per lane.
    Bin(BinOp),
    /// Pop one operand, push the result; charges one ALU op per lane.
    Un(UnOp),
    /// Pop `argc` arguments, call [`Plan::funs`]`[fun]` per lane, push the
    /// result; charges `cost` ALU ops per lane.
    Call { fun: u16, argc: u8, cost: u64 },
    /// Pop an index, push the loaded element (with the load's stats and
    /// coalescing side effects).
    Load(BufSlot),
    /// Pop, convert, push.
    Cast(CType),
    /// Pop the `?:` select condition and split the active lanes into
    /// then/else sub-masks (charging one ALU op per active lane). The
    /// then-arm ops that follow run under the then-mask only, so the
    /// select stays lazy per lane, exactly as the tree interpreter
    /// evaluates it.
    SelSplit,
    /// End of the then-arm: park its value, switch to the else-mask.
    SelSwap,
    /// End of the else-arm: merge the two arm values lane-wise.
    SelJoin,
}

/// A compiled expression: a `[start, end)` range of [`Plan::ecode`] plus
/// the lane-invariance flag the executor uses for once-per-group hoisting.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExprRef {
    pub start: u32,
    pub end: u32,
    /// `true` when the value (and its ALU-op count) is identical for every
    /// work-item of a group: no scalar-variable reads, no loads, no calls,
    /// no `get_local_id`/`get_global_id`.
    pub uniform: bool,
}

/// One statement-level instruction of the flattened program.
///
/// Control flow is expressed as jump targets into [`Plan::code`]; active
/// masks live in statically-assigned scratch slots (slot 0 is the all-true
/// base mask), so the executor never allocates during a launch.
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// Evaluate `value` for every active lane and write scalar row `row`
    /// (`coerce` applies the declaration coercion; `charge` runs the
    /// SIMD idle-lane charge as assignments do — `for`-loop initialisers
    /// do not).
    SetScalar {
        row: Row,
        value: ExprRef,
        coerce: Option<CType>,
        charge: bool,
    },
    /// Evaluate `idx` and `value` for every active lane and store.
    Store {
        buf: BufSlot,
        idx: ExprRef,
        value: ExprRef,
    },
    /// Loop head: build this iteration's mask in slot `mask` from the
    /// current mask and `row < bound`; jump to `exit` when no lane
    /// continues.
    ForHead {
        row: Row,
        bound: ExprRef,
        mask: u16,
        exit: u32,
    },
    /// Loop latch: advance `row` by `step` for the iteration's lanes, pop
    /// the iteration mask and jump back to `head`.
    ForStep { row: Row, step: ExprRef, head: u32 },
    /// Branch head: split the current mask into `tmask`/`emask` on `cond`;
    /// enter the then-block, jump to `els`, or jump to `end` as lanes
    /// demand.
    IfHead {
        cond: ExprRef,
        tmask: u16,
        emask: u16,
        els: u32,
        end: u32,
    },
    /// End of a then-block: pop `tmask`; enter the else-block at `els`
    /// when it has lanes, otherwise jump to `end`.
    ElseJoin { emask: u16, els: u32, end: u32 },
    /// End of an else-block: pop `emask`.
    EndIf,
    /// Work-group barrier (divergence-checked against the current mask).
    Barrier,
}

/// A kernel compiled to its executable plan (see the module docs).
///
/// Compile once with [`Plan::compile`]; run many times through
/// [`crate::VirtualDevice`]. The plan is immutable and `Send + Sync`.
#[derive(Debug)]
pub struct Plan {
    pub(crate) code: Vec<Inst>,
    pub(crate) ecode: Vec<EOp>,
    pub(crate) funs: Vec<Arc<UserFun>>,
    /// Buffer display names for fault messages, indexed by the `name`
    /// field of [`BufSlot`].
    pub(crate) buf_names: Vec<String>,
    /// Segment-aligned virtual base address per global parameter slot.
    pub(crate) global_bases: Vec<u64>,
    /// Rows in the `i64` scalar register arena.
    pub(crate) n_int_rows: usize,
    /// Rows in the tagged-value scalar register arena.
    pub(crate) n_var_rows: usize,
    /// Elements in the float local arena / the tagged local arena.
    pub(crate) local_f_total: usize,
    pub(crate) local_v_total: usize,
    /// Elements per work-item in the float / tagged private arenas.
    pub(crate) priv_f_total: usize,
    pub(crate) priv_v_total: usize,
    /// Mask scratch slots, including the base all-true mask at slot 0.
    pub(crate) n_masks: usize,
    pub(crate) local_bytes: usize,
}

impl Plan {
    /// Compiles `kernel` into its execution plan.
    ///
    /// # Errors
    ///
    /// [`SimError::PlanCompile`] wrapping the underlying fault:
    /// [`SimError::UnboundVariable`] for a variable or buffer no
    /// declaration binds, and [`SimError::TypeMismatch`] for operations
    /// whose operand kinds are statically known to be incompatible. Both
    /// name the kernel and the offending statement — faults the tree
    /// interpreter only hits mid-simulation.
    pub fn compile(kernel: &Kernel) -> Result<Plan, SimError> {
        let slots = kernel.slot_map();
        let marks = infer_marks(kernel, &slots);

        let mut b = Builder {
            code: Vec::new(),
            ecode: Vec::new(),
            funs: Vec::new(),
            fun_ids: HashMap::new(),
            buf_names: Vec::new(),
            scalar_rows: HashMap::new(),
            global_slots: HashMap::new(),
            local_slots: HashMap::new(),
            priv_slots: HashMap::new(),
            mask_depth: 1,
            n_masks: 1,
            context: vec![format!("kernel `{}`", kernel.name)],
        };

        // Scalar slots → typed register rows, in stable slot order.
        let (mut int_rows, mut var_rows) = (0u32, 0u32);
        for (slot, (var, _)) in slots.scalars.iter().enumerate() {
            let row = if marks.slot_int[slot] {
                int_rows += 1;
                Row::I(int_rows - 1)
            } else {
                var_rows += 1;
                Row::V(var_rows - 1)
            };
            b.scalar_rows.insert(var.id(), row);
        }

        // Private arrays → typed arena ranges, in stable slot order.
        let (mut priv_f_total, mut priv_v_total) = (0usize, 0usize);
        for (slot, (var, _, len)) in slots.priv_arrays.iter().enumerate() {
            let name = b.intern_name(var);
            let bs = if marks.priv_f[slot] {
                let off = priv_f_total as u32;
                priv_f_total += len;
                BufSlot::PrivF {
                    off,
                    len: *len as u32,
                    name,
                }
            } else {
                let off = priv_v_total as u32;
                priv_v_total += len;
                BufSlot::PrivV {
                    off,
                    len: *len as u32,
                    name,
                }
            };
            b.priv_slots.insert(var.id(), bs);
        }

        let mut global_bases = Vec::new();
        let mut base = 0u64;
        for (slot, p) in kernel.params.iter().enumerate() {
            let name = b.intern_name(&p.var);
            b.global_slots
                .insert(p.var.id(), (slot as u16, name, p.elem));
            global_bases.push(base);
            // Segment-align each buffer, exactly as the interpreter does.
            base += ((p.len as u64 * 4).div_ceil(crate::perf::SEGMENT_BYTES))
                * crate::perf::SEGMENT_BYTES;
        }

        let (mut local_f_total, mut local_v_total) = (0usize, 0usize);
        for (slot, l) in kernel.locals.iter().enumerate() {
            let name = b.intern_name(&l.var);
            let bs = if marks.local_f[slot] {
                let off = local_f_total as u32;
                local_f_total += l.len;
                BufSlot::LocalF {
                    off,
                    len: l.len as u32,
                    name,
                }
            } else {
                let off = local_v_total as u32;
                local_v_total += l.len;
                BufSlot::LocalV {
                    off,
                    len: l.len as u32,
                    name,
                }
            };
            b.local_slots.insert(l.var.id(), bs);
        }

        b.stmts(&kernel.body)?;
        Ok(Plan {
            code: b.code,
            ecode: b.ecode,
            funs: b.funs,
            buf_names: b.buf_names,
            global_bases,
            n_int_rows: int_rows as usize,
            n_var_rows: var_rows as usize,
            local_f_total,
            local_v_total,
            priv_f_total,
            priv_v_total,
            n_masks: b.n_masks as usize,
            local_bytes: kernel.local_bytes(),
        })
    }

    /// Number of statement instructions (diagnostics and benches).
    pub fn instructions(&self) -> usize {
        self.code.len()
    }

    /// Number of expression operations (diagnostics and benches).
    pub fn expr_ops(&self) -> usize {
        self.ecode.len()
    }
}

/// A kernel paired with its lazily-compiled [`Plan`]: the unit the
/// `lift-driver` kernel cache stores, so tuning one variant across many
/// configurations plans exactly once.
#[derive(Debug)]
pub struct PlannedKernel {
    kernel: Arc<Kernel>,
    plan: OnceLock<Arc<Plan>>,
    /// Static-verification reports, memoised per (launch, local-memory
    /// budget) — the two inputs [`crate::verify`] depends on.
    verified: Mutex<VerifyCache>,
    /// Static cost estimates, memoised per (launch, warp width) — the two
    /// inputs [`crate::cost`] depends on besides the plan itself.
    estimated: Mutex<EstimateCache>,
}

/// Memoised verification results, keyed by the launch geometry and the
/// device's per-CU local-memory budget.
type VerifyCache = HashMap<(crate::runtime::LaunchConfig, usize), Arc<Vec<VerifyFinding>>>;

/// Memoised cost estimates, keyed by the launch geometry and warp width.
type EstimateCache = HashMap<(crate::runtime::LaunchConfig, usize), Arc<crate::cost::CostEstimate>>;

impl PlannedKernel {
    /// Wraps a compiled kernel; the plan is built on first use (or
    /// eagerly via [`PlannedKernel::plan`]).
    pub fn new(kernel: Kernel) -> Self {
        Self::from_arc(Arc::new(kernel))
    }

    /// Wraps an already-shared kernel.
    pub fn from_arc(kernel: Arc<Kernel>) -> Self {
        PlannedKernel {
            kernel,
            plan: OnceLock::new(),
            verified: Mutex::new(HashMap::new()),
            estimated: Mutex::new(HashMap::new()),
        }
    }

    /// The kernel AST.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The execution plan, compiling it on first call.
    ///
    /// # Errors
    ///
    /// As [`Plan::compile`]. Failures are not cached; callers see the same
    /// error on every attempt.
    pub fn plan(&self) -> Result<Arc<Plan>, SimError> {
        if let Some(p) = self.plan.get() {
            return Ok(p.clone());
        }
        let p = Arc::new(Plan::compile(&self.kernel)?);
        Ok(self.plan.get_or_init(|| p).clone())
    }

    /// Statically verifies the kernel for one launch configuration on one
    /// device (see [`crate::verify`]); results are memoised, so tuners
    /// probing thousands of launches over a handful of kernels pay for
    /// each analysis once.
    ///
    /// # Errors
    ///
    /// As [`PlannedKernel::plan`] — verification needs the compiled plan.
    pub fn verify(
        &self,
        cfg: crate::runtime::LaunchConfig,
        profile: &crate::device::DeviceProfile,
    ) -> Result<Arc<Vec<VerifyFinding>>, SimError> {
        let key = (cfg, profile.lmem_bytes_per_cu);
        if let Some(hit) = self.verified.lock().expect("verify cache").get(&key) {
            return Ok(hit.clone());
        }
        let plan = self.plan()?;
        let findings = Arc::new(crate::verify::verify_kernel(
            &self.kernel,
            &plan,
            cfg,
            profile,
        ));
        self.verified
            .lock()
            .expect("verify cache")
            .insert(key, findings.clone());
        Ok(findings)
    }

    /// Statically predicts the kernel's [`crate::KernelStats`] for one
    /// launch configuration on one device (see [`crate::cost`]) without
    /// executing; results are memoised per (launch, warp width), so tuners
    /// probing thousands of launches over a handful of kernels pay for each
    /// analysis once. The estimate is a pure function of
    /// (plan, launch, warp) — bit-identical across threads and shards.
    ///
    /// # Errors
    ///
    /// As [`PlannedKernel::plan`], plus [`SimError::Estimate`] when the
    /// kernel's control flow defeats static analysis, or any provable
    /// launch fault ([`SimError::BadLaunch`], [`SimError::OutOfBounds`],
    /// ...) the real run would also raise. Failures are not cached.
    pub fn estimate(
        &self,
        cfg: crate::runtime::LaunchConfig,
        profile: &crate::device::DeviceProfile,
    ) -> Result<Arc<crate::cost::CostEstimate>, SimError> {
        let warp = profile.warp_width as usize;
        let key = (cfg, warp);
        if let Some(hit) = self.estimated.lock().expect("estimate cache").get(&key) {
            return Ok(hit.clone());
        }
        let plan = self.plan()?;
        let params: Vec<(CType, usize)> =
            self.kernel.params.iter().map(|p| (p.elem, p.len)).collect();
        let est = Arc::new(crate::cost::estimate_plan(&plan, &params, cfg, warp)?);
        self.estimated
            .lock()
            .expect("estimate cache")
            .insert(key, est.clone());
        Ok(est)
    }
}

// ---------------------------------------------------------------------------
// Storage-kind inference
// ---------------------------------------------------------------------------

/// Runtime *slab* kind of an expression: the representation its per-lane
/// values provably take. `Un` means "not provable" (the executor falls
/// back to tagged values). Distinct from the error-checking kind `K`
/// below: `Sk` must be **sound** (a wrong claim would change results),
/// while `K` is merely used to surface provable faults early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sk {
    I,
    F,
    B,
    Un,
}

/// Which storage may be typed: computed as a downward fixpoint. A scalar
/// slot starts as "int" and stays so only while every write to it is
/// provably an integer (the implicit group-start value is integer zero); a
/// local/private buffer starts as "float" and stays so only while every
/// store to it is provably a float (the group-start fill is float zero).
struct Marks {
    slot_int: Vec<bool>,
    local_f: Vec<bool>,
    priv_f: Vec<bool>,
}

/// A write site the fixpoint re-evaluates each round.
enum Write<'k> {
    Slot {
        slot: usize,
        value: &'k CExpr,
        coerce: Option<CType>,
    },
    Local {
        slot: usize,
        value: &'k CExpr,
    },
    Priv {
        slot: usize,
        value: &'k CExpr,
    },
}

fn infer_marks(kernel: &Kernel, slots: &lift_codegen::clike::SlotMap) -> Marks {
    let slot_index: HashMap<u32, usize> = slots
        .scalars
        .iter()
        .enumerate()
        .map(|(i, (v, _))| (v.id(), i))
        .collect();
    let local_index: HashMap<u32, usize> = kernel
        .locals
        .iter()
        .enumerate()
        .map(|(i, l)| (l.var.id(), i))
        .collect();
    let priv_index: HashMap<u32, usize> = slots
        .priv_arrays
        .iter()
        .enumerate()
        .map(|(i, (v, _, _))| (v.id(), i))
        .collect();
    let global_kind: HashMap<u32, Sk> = kernel
        .params
        .iter()
        .map(|p| {
            (
                p.var.id(),
                match p.elem {
                    CType::Float => Sk::F,
                    CType::Int | CType::Bool => Sk::I,
                },
            )
        })
        .collect();

    let mut writes: Vec<Write<'_>> = Vec::new();
    collect_writes(
        &kernel.body,
        &slot_index,
        &local_index,
        &priv_index,
        &mut writes,
    );

    let mut marks = Marks {
        slot_int: vec![true; slots.scalars.len()],
        local_f: vec![true; kernel.locals.len()],
        priv_f: vec![true; slots.priv_arrays.len()],
    };
    // Downward fixpoint: a mark only ever flips optimistic → pessimistic,
    // so this terminates within (#marks + 1) rounds.
    loop {
        let mut changed = false;
        for w in &writes {
            match w {
                Write::Slot {
                    slot,
                    value,
                    coerce,
                } => {
                    let mut sk = slab_kind(
                        value,
                        &marks,
                        &slot_index,
                        &local_index,
                        &priv_index,
                        &global_kind,
                    );
                    if let Some(ty) = coerce {
                        sk = coerce_sk(*ty, sk);
                    }
                    if sk != Sk::I && marks.slot_int[*slot] {
                        marks.slot_int[*slot] = false;
                        changed = true;
                    }
                }
                Write::Local { slot, value } => {
                    let sk = slab_kind(
                        value,
                        &marks,
                        &slot_index,
                        &local_index,
                        &priv_index,
                        &global_kind,
                    );
                    if sk != Sk::F && marks.local_f[*slot] {
                        marks.local_f[*slot] = false;
                        changed = true;
                    }
                }
                Write::Priv { slot, value } => {
                    let sk = slab_kind(
                        value,
                        &marks,
                        &slot_index,
                        &local_index,
                        &priv_index,
                        &global_kind,
                    );
                    if sk != Sk::F && marks.priv_f[*slot] {
                        marks.priv_f[*slot] = false;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return marks;
        }
    }
}

fn collect_writes<'k>(
    stmts: &'k [CStmt],
    slot_index: &HashMap<u32, usize>,
    local_index: &HashMap<u32, usize>,
    priv_index: &HashMap<u32, usize>,
    out: &mut Vec<Write<'k>>,
) {
    for s in stmts {
        match s {
            CStmt::DeclScalar {
                var,
                init: Some(e),
                ty,
            } => {
                if let Some(&slot) = slot_index.get(&var.id()) {
                    out.push(Write::Slot {
                        slot,
                        value: e,
                        coerce: Some(*ty),
                    });
                }
            }
            CStmt::Assign { var, value } => {
                if let Some(&slot) = slot_index.get(&var.id()) {
                    out.push(Write::Slot {
                        slot,
                        value,
                        coerce: None,
                    });
                }
            }
            CStmt::Store { buf, value, .. } => {
                if let Some(&slot) = local_index.get(&buf.id()) {
                    out.push(Write::Local { slot, value });
                } else if let Some(&slot) = priv_index.get(&buf.id()) {
                    out.push(Write::Priv { slot, value });
                }
            }
            CStmt::For {
                var, init, body, ..
            } => {
                // The loop latch always writes an integer; only the raw
                // initialiser can demote the induction variable's row.
                if let Some(&slot) = slot_index.get(&var.id()) {
                    out.push(Write::Slot {
                        slot,
                        value: init,
                        coerce: None,
                    });
                }
                collect_writes(body, slot_index, local_index, priv_index, out);
            }
            CStmt::If { then_, else_, .. } => {
                collect_writes(then_, slot_index, local_index, priv_index, out);
                collect_writes(else_, slot_index, local_index, priv_index, out);
            }
            _ => {}
        }
    }
}

/// The declaration coercion's effect on a slab kind (mirrors `coerce` in
/// the executor: `(Float, int) → float`, `(Int, bool) → int`, everything
/// else unchanged).
fn coerce_sk(ty: CType, sk: Sk) -> Sk {
    match (ty, sk) {
        (CType::Float, Sk::I) => Sk::F,
        (CType::Int, Sk::B) => Sk::I,
        (_, sk) => sk,
    }
}

/// Sound slab-kind inference (see [`Sk`]). Anything not provable — calls,
/// reads of untyped rows, mixed arithmetic — is `Un`.
fn slab_kind(
    e: &CExpr,
    marks: &Marks,
    slot_index: &HashMap<u32, usize>,
    local_index: &HashMap<u32, usize>,
    priv_index: &HashMap<u32, usize>,
    global_kind: &HashMap<u32, Sk>,
) -> Sk {
    let rec = |e: &CExpr| slab_kind(e, marks, slot_index, local_index, priv_index, global_kind);
    match e {
        CExpr::Int(_) => Sk::I,
        CExpr::Float(_) => Sk::F,
        CExpr::Bool(_) => Sk::B,
        CExpr::WorkItem(..) => Sk::I,
        CExpr::Var(v) => match slot_index.get(&v.id()) {
            Some(&slot) if marks.slot_int[slot] => Sk::I,
            _ => Sk::Un,
        },
        CExpr::Bin(op, a, b) => {
            use BinOp::*;
            let (ka, kb) = (rec(a), rec(b));
            match op {
                Add | Sub | Mul | Div | Min | Max => match (ka, kb) {
                    (Sk::I, Sk::I) => Sk::I,
                    (Sk::F, Sk::F) => Sk::F,
                    _ => Sk::Un,
                },
                Mod => match (ka, kb) {
                    (Sk::I, Sk::I) => Sk::I,
                    _ => Sk::Un,
                },
                Lt | Le | Gt | Ge | Eq | Ne => match (ka, kb) {
                    (Sk::I, Sk::I) | (Sk::F, Sk::F) => Sk::B,
                    _ => Sk::Un,
                },
                And | Or => match (ka, kb) {
                    (Sk::B, Sk::B) => Sk::B,
                    _ => Sk::Un,
                },
            }
        }
        CExpr::Un(op, a) => match (op, rec(a)) {
            (UnOp::Neg, Sk::I) => Sk::I,
            (UnOp::Neg, Sk::F) => Sk::F,
            (UnOp::Not, Sk::B) => Sk::B,
            _ => Sk::Un,
        },
        // Calls run arbitrary Rust; their runtime kind is not proven here.
        CExpr::Call(..) => Sk::Un,
        CExpr::Load { buf, .. } => {
            if let Some(k) = global_kind.get(&buf.id()) {
                *k
            } else if let Some(&slot) = local_index.get(&buf.id()) {
                if marks.local_f[slot] {
                    Sk::F
                } else {
                    Sk::Un
                }
            } else if let Some(&slot) = priv_index.get(&buf.id()) {
                if marks.priv_f[slot] {
                    Sk::F
                } else {
                    Sk::Un
                }
            } else {
                Sk::Un
            }
        }
        CExpr::Select { then_, else_, .. } => {
            let (kt, ke) = (rec(then_), rec(else_));
            if kt == ke {
                kt
            } else {
                Sk::Un
            }
        }
        CExpr::Cast(t, a) => match (t, rec(a)) {
            (_, Sk::Un) => Sk::Un,
            (CType::Float, Sk::I) => Sk::F,
            (CType::Int, Sk::F) => Sk::I,
            (_, k) => k,
        },
    }
}

// ---------------------------------------------------------------------------
// Bytecode builder
// ---------------------------------------------------------------------------

/// Statically-known scalar kind of an expression, used only to surface
/// provable faults at plan time. `Unknown` for anything reaching through a
/// scalar variable, whose runtime kind would need a flow-sensitive
/// fixpoint to prove — the check stays deliberately conservative so no
/// kernel the tree interpreter executes successfully is ever rejected.
/// Literals, work-item queries, typed-buffer loads, casts and
/// user-function calls all have provable kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum K {
    F,
    I,
    B,
    Unknown,
}

fn kind_of_scalar(k: ScalarKind) -> K {
    match k {
        ScalarKind::F32 => K::F,
        ScalarKind::I32 => K::I,
        ScalarKind::Bool => K::B,
    }
}

struct Builder {
    code: Vec<Inst>,
    ecode: Vec<EOp>,
    funs: Vec<Arc<UserFun>>,
    fun_ids: HashMap<String, u16>,
    buf_names: Vec<String>,
    scalar_rows: HashMap<u32, Row>,
    global_slots: HashMap<u32, (u16, u16, CType)>,
    local_slots: HashMap<u32, BufSlot>,
    priv_slots: HashMap<u32, BufSlot>,
    /// Next free mask slot (slot 0 is the base mask).
    mask_depth: u16,
    n_masks: u16,
    /// Statement-context breadcrumbs for compile errors.
    context: Vec<String>,
}

impl Builder {
    fn intern_name(&mut self, var: &VarRef) -> u16 {
        let idx = self.buf_names.len() as u16;
        self.buf_names.push(var.name().to_string());
        idx
    }

    fn fail(&self, cause: SimError) -> SimError {
        SimError::PlanCompile {
            context: self.context.join(", in "),
            cause: Box::new(cause),
        }
    }

    fn scalar_row(&self, var: &VarRef) -> Result<Row, SimError> {
        self.scalar_rows.get(&var.id()).copied().ok_or_else(|| {
            self.fail(SimError::UnboundVariable(format!(
                "{} (id #{})",
                var.name(),
                var.id()
            )))
        })
    }

    fn stmts(&mut self, stmts: &[CStmt]) -> Result<(), SimError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &CStmt) -> Result<(), SimError> {
        match s {
            CStmt::DeclScalar { var, init, ty } => {
                if let Some(e) = init {
                    self.context
                        .push(format!("declaration of `{}`", var.name()));
                    let row = self.scalar_row(var)?;
                    let (value, _) = self.expr(e)?;
                    self.code.push(Inst::SetScalar {
                        row,
                        value,
                        coerce: Some(*ty),
                        charge: true,
                    });
                    self.context.pop();
                }
                Ok(())
            }
            // Pre-allocated in the scratch arena.
            CStmt::DeclPrivateArray { .. } | CStmt::Comment(_) => Ok(()),
            CStmt::Assign { var, value } => {
                self.context.push(format!("assignment to `{}`", var.name()));
                let row = self.scalar_row(var)?;
                let (value, _) = self.expr(value)?;
                self.code.push(Inst::SetScalar {
                    row,
                    value,
                    coerce: None,
                    charge: true,
                });
                self.context.pop();
                Ok(())
            }
            CStmt::Store {
                buf, idx, value, ..
            } => {
                self.context.push(format!("store to `{}`", buf.name()));
                let slot = self.buf_slot(buf)?;
                let (idx, ik) = self.expr(idx)?;
                self.require_int(ik, "buffer index")?;
                let (value, vk) = self.expr(value)?;
                if let BufSlot::Global { slot: g, .. } = slot {
                    // A float stored into an int buffer faults at runtime;
                    // report it at plan time when provable.
                    let elem = self
                        .global_slots
                        .values()
                        .find(|(s, _, _)| *s == g)
                        .map(|(_, _, e)| *e);
                    if elem == Some(CType::Int) && vk == K::F {
                        return Err(self.fail(SimError::TypeMismatch(
                            "float stored into int buffer".into(),
                        )));
                    }
                }
                self.code.push(Inst::Store {
                    buf: slot,
                    idx,
                    value,
                });
                self.context.pop();
                Ok(())
            }
            CStmt::For {
                var,
                init,
                bound,
                step,
                body,
            } => {
                self.context.push(format!("for-loop over `{}`", var.name()));
                let row = self.scalar_row(var)?;
                let (init, _) = self.expr(init)?;
                self.code.push(Inst::SetScalar {
                    row,
                    value: init,
                    coerce: None,
                    charge: false,
                });
                let (bound, bk) = self.expr(bound)?;
                self.require_int(bk, "loop bound")?;
                let (step, sk) = self.expr(step)?;
                self.require_int(sk, "loop step")?;
                let mask = self.mask_depth;
                self.mask_depth += 1;
                self.n_masks = self.n_masks.max(self.mask_depth);
                let head = self.code.len();
                self.code.push(Inst::ForHead {
                    row,
                    bound,
                    mask,
                    exit: u32::MAX, // patched below
                });
                self.stmts(body)?;
                self.code.push(Inst::ForStep {
                    row,
                    step,
                    head: head as u32,
                });
                let exit = self.code.len() as u32;
                let Inst::ForHead { exit: e, .. } = &mut self.code[head] else {
                    unreachable!("head written above");
                };
                *e = exit;
                self.mask_depth -= 1;
                self.context.pop();
                Ok(())
            }
            CStmt::If { cond, then_, else_ } => {
                self.context.push("if-branch".to_string());
                let (cond, ck) = self.expr(cond)?;
                if ck == K::F {
                    return Err(
                        self.fail(SimError::TypeMismatch("expected bool, found float".into()))
                    );
                }
                let tmask = self.mask_depth;
                let emask = self.mask_depth + 1;
                self.mask_depth += 2;
                self.n_masks = self.n_masks.max(self.mask_depth);
                let head = self.code.len();
                self.code.push(Inst::IfHead {
                    cond,
                    tmask,
                    emask,
                    els: u32::MAX,
                    end: u32::MAX,
                });
                self.stmts(then_)?;
                let join = self.code.len();
                self.code.push(Inst::ElseJoin {
                    emask,
                    els: u32::MAX,
                    end: u32::MAX,
                });
                let els = self.code.len() as u32;
                self.stmts(else_)?;
                self.code.push(Inst::EndIf);
                let end = self.code.len() as u32;
                let Inst::IfHead {
                    els: e1, end: e2, ..
                } = &mut self.code[head]
                else {
                    unreachable!("head written above");
                };
                (*e1, *e2) = (els, end);
                let Inst::ElseJoin {
                    els: e1, end: e2, ..
                } = &mut self.code[join]
                else {
                    unreachable!("join written above");
                };
                (*e1, *e2) = (els, end);
                self.mask_depth -= 2;
                self.context.pop();
                Ok(())
            }
            CStmt::Barrier { .. } => {
                self.code.push(Inst::Barrier);
                Ok(())
            }
        }
    }

    fn require_int(&self, k: K, what: &str) -> Result<(), SimError> {
        if k == K::F {
            return Err(self.fail(SimError::TypeMismatch(format!(
                "expected int, found float ({what})"
            ))));
        }
        Ok(())
    }

    fn buf_slot(&self, var: &VarRef) -> Result<BufSlot, SimError> {
        if let Some((slot, name, _)) = self.global_slots.get(&var.id()) {
            return Ok(BufSlot::Global {
                slot: *slot,
                name: *name,
            });
        }
        if let Some(bs) = self.local_slots.get(&var.id()) {
            return Ok(*bs);
        }
        if let Some(bs) = self.priv_slots.get(&var.id()) {
            return Ok(*bs);
        }
        Err(self.fail(SimError::UnboundVariable(format!(
            "buffer `{}`",
            var.name()
        ))))
    }

    /// Compiles one expression, appending to [`Builder::ecode`]; returns
    /// its range/uniformity and statically-inferred kind.
    fn expr(&mut self, e: &CExpr) -> Result<(ExprRef, K), SimError> {
        let start = self.ecode.len() as u32;
        let (uniform, k) = self.emit(e)?;
        Ok((
            ExprRef {
                start,
                end: self.ecode.len() as u32,
                uniform,
            },
            k,
        ))
    }

    /// Emits ops for `e`; returns `(uniform, kind)`.
    fn emit(&mut self, e: &CExpr) -> Result<(bool, K), SimError> {
        match e {
            CExpr::Int(v) => {
                self.ecode.push(EOp::I(*v));
                Ok((true, K::I))
            }
            CExpr::Float(v) => {
                self.ecode.push(EOp::F(*v));
                Ok((true, K::F))
            }
            CExpr::Bool(v) => {
                self.ecode.push(EOp::B(*v));
                Ok((true, K::B))
            }
            CExpr::Var(v) => {
                let row = self.scalar_row(v)?;
                self.ecode.push(EOp::Scalar(row));
                Ok((false, K::Unknown))
            }
            CExpr::WorkItem(f, d) => {
                self.ecode.push(EOp::WorkItem(*f, *d));
                let uniform = matches!(
                    f,
                    WorkItemFn::GroupId
                        | WorkItemFn::GlobalSize
                        | WorkItemFn::LocalSize
                        | WorkItemFn::NumGroups
                );
                Ok((uniform, K::I))
            }
            CExpr::Bin(op, a, b) => {
                let (ua, ka) = self.emit(a)?;
                let (ub, kb) = self.emit(b)?;
                self.ecode.push(EOp::Bin(*op));
                let k = self.bin_kind(*op, ka, kb)?;
                Ok((ua && ub, k))
            }
            CExpr::Un(op, a) => {
                let (u, k) = self.emit(a)?;
                self.ecode.push(EOp::Un(*op));
                let k = match (op, k) {
                    (_, K::Unknown) => K::Unknown,
                    (UnOp::Neg, K::F) => K::F,
                    (UnOp::Neg, K::I) => K::I,
                    (UnOp::Not, K::B) => K::B,
                    _ => return Err(self.fail(SimError::TypeMismatch("bad unary operand".into()))),
                };
                Ok((u, k))
            }
            CExpr::Call(f, args) => {
                for a in args {
                    self.emit(a)?;
                }
                let fun = match self.fun_ids.get(f.name()) {
                    Some(i) => *i,
                    None => {
                        let i = self.funs.len() as u16;
                        self.funs.push(f.clone());
                        self.fun_ids.insert(f.name().to_string(), i);
                        i
                    }
                };
                self.ecode.push(EOp::Call {
                    fun,
                    argc: args.len() as u8,
                    cost: call_cost(f.c_body()),
                });
                let k = f
                    .ret()
                    .as_scalar()
                    .map(kind_of_scalar)
                    .unwrap_or(K::Unknown);
                Ok((false, k))
            }
            CExpr::Load { buf, idx, .. } => {
                let (_, ik) = self.emit(idx)?;
                self.require_int(ik, "buffer index")?;
                let slot = self.buf_slot(buf)?;
                let k = match slot {
                    BufSlot::Global { slot, .. } => self
                        .global_slots
                        .values()
                        .find(|(s, _, _)| *s == slot)
                        .map(|(_, _, e)| match e {
                            CType::Float => K::F,
                            CType::Int => K::I,
                            CType::Bool => K::B,
                        })
                        .unwrap_or(K::Unknown),
                    _ => K::Unknown,
                };
                self.ecode.push(EOp::Load(slot));
                Ok((false, k))
            }
            CExpr::Select { cond, then_, else_ } => {
                let (uc, ck) = self.emit(cond)?;
                if ck == K::F {
                    return Err(
                        self.fail(SimError::TypeMismatch("expected bool, found float".into()))
                    );
                }
                self.ecode.push(EOp::SelSplit);
                let (ut, kt) = self.emit(then_)?;
                self.ecode.push(EOp::SelSwap);
                let (ue, ke) = self.emit(else_)?;
                self.ecode.push(EOp::SelJoin);
                let k = if kt == ke { kt } else { K::Unknown };
                Ok((uc && ut && ue, k))
            }
            CExpr::Cast(t, a) => {
                let (u, k) = self.emit(a)?;
                self.ecode.push(EOp::Cast(*t));
                let k = match (t, k) {
                    (_, K::Unknown) => K::Unknown,
                    (CType::Float, K::I) => K::F,
                    (CType::Int, K::F) => K::I,
                    (_, k) => k,
                };
                Ok((u, k))
            }
        }
    }

    /// Result kind of a binary operation, or a plan-compile error when the
    /// operand kinds are statically known to fault at runtime.
    fn bin_kind(&self, op: BinOp, a: K, b: K) -> Result<K, SimError> {
        use BinOp::*;
        if a == K::Unknown || b == K::Unknown {
            // The comparison/logic result kind is certain even when an
            // operand's kind is not.
            return Ok(match op {
                Lt | Le | Gt | Ge | Eq | Ne | And | Or => K::B,
                _ => K::Unknown,
            });
        }
        match op {
            Add | Sub | Mul | Div | Mod | Min | Max => {
                if a == b && a != K::B && !(matches!(op, Mod) && a == K::F) {
                    Ok(a)
                } else {
                    Err(self.fail(SimError::TypeMismatch(format!(
                        "operator {op:?} on {a:?} and {b:?} operands"
                    ))))
                }
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                if a == b && a != K::B {
                    Ok(K::B)
                } else {
                    Err(self.fail(SimError::TypeMismatch(format!(
                        "operator {op:?} on {a:?} and {b:?} operands"
                    ))))
                }
            }
            And | Or => {
                if a == K::B && b == K::B {
                    Ok(K::B)
                } else {
                    Err(self.fail(SimError::TypeMismatch(format!(
                        "operator {op:?} on {a:?} and {b:?} operands"
                    ))))
                }
            }
        }
    }
}
