//! The lock-step work-group interpreter.
//!
//! Work-items of one group execute each statement together (an active-mask
//! walks the statement tree, as in POCL's work-item loops): local-memory
//! writes made before a barrier are visible after it, and a barrier reached
//! under a divergent mask is reported as an error — the same constraint the
//! OpenCL specification places on real devices.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lift_codegen::clike::{BinOp, CExpr, CStmt, CType, Kernel, UnOp, WorkItemFn};
use lift_core::scalar::Scalar;

use crate::perf::{KernelStats, SEGMENT_BYTES};
use crate::runtime::{BufferData, LaunchConfig};

/// A simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Buffer access outside its allocation.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// Offending element index.
        index: i64,
        /// Buffer length.
        len: usize,
    },
    /// `barrier()` reached while work-items of the group have diverged.
    BarrierDivergence,
    /// Launch configuration invalid for this kernel/device.
    BadLaunch(String),
    /// Value of the wrong kind reached an operation (compiler bug).
    TypeMismatch(String),
    /// Integer division by zero in generated index math.
    DivisionByZero,
    /// Variable read before assignment (compiler bug).
    UnboundVariable(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { buffer, index, len } => write!(
                f,
                "out-of-bounds access to `{buffer}`: index {index}, length {len}"
            ),
            SimError::BarrierDivergence => {
                write!(f, "barrier() reached in divergent control flow")
            }
            SimError::BadLaunch(m) => write!(f, "invalid launch: {m}"),
            SimError::TypeMismatch(m) => write!(f, "value kind mismatch: {m}"),
            SimError::DivisionByZero => write!(f, "division by zero in kernel"),
            SimError::UnboundVariable(v) => write!(f, "variable `{v}` read before assignment"),
        }
    }
}

impl Error for SimError {}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum V {
    F(f32),
    I(i64),
    B(bool),
}

impl V {
    fn as_i(self) -> Result<i64, SimError> {
        match self {
            V::I(v) => Ok(v),
            V::B(b) => Ok(b as i64),
            V::F(_) => Err(SimError::TypeMismatch("expected int, found float".into())),
        }
    }

    fn as_b(self) -> Result<bool, SimError> {
        match self {
            V::B(v) => Ok(v),
            V::I(v) => Ok(v != 0),
            V::F(_) => Err(SimError::TypeMismatch("expected bool, found float".into())),
        }
    }

    fn to_scalar(self) -> Scalar {
        match self {
            V::F(v) => Scalar::F32(v),
            V::I(v) => Scalar::I32(v as i32),
            V::B(v) => Scalar::Bool(v),
        }
    }

    fn from_scalar(s: Scalar) -> V {
        match s {
            Scalar::F32(v) => V::F(v),
            Scalar::I32(v) => V::I(v as i64),
            Scalar::Bool(v) => V::B(v),
        }
    }
}

/// Where a buffer variable lives.
#[derive(Debug, Clone, Copy)]
enum BufKind {
    Global { slot: usize, base_addr: u64 },
    Local { slot: usize },
}

/// Per-work-item state.
struct ItemEnv {
    scalars: Vec<V>,
    priv_arrays: Vec<Vec<V>>,
    lid: [usize; 3],
    /// Global-memory addresses touched while executing the current
    /// lock-step statement (loads and stores separately, in program order).
    pend_loads: Vec<u64>,
    pend_stores: Vec<u64>,
}

pub(crate) struct Machine<'a> {
    kernel: &'a Kernel,
    global: &'a mut [BufferData],
    bufs: HashMap<u32, BufKind>,
    scalar_slots: HashMap<u32, usize>,
    priv_slots: HashMap<u32, (usize, usize)>,
    call_costs: HashMap<String, u64>,
    pub(crate) stats: KernelStats,
    warp: usize,
    cfg: LaunchConfig,
}

/// Per-group execution state.
struct Group {
    items: Vec<ItemEnv>,
    locals: Vec<Vec<V>>,
    group_id: [usize; 3],
}

/// Estimated scalar-op cost of calling a user function, from its C body:
/// one unit per cheap arithmetic/compare op, with division and
/// transcendental calls weighted like real GPU ALUs (divides and `sqrt`
/// retire roughly an order of magnitude slower than fused adds — this is
/// what makes SRAD compute-heavy relative to Jacobi).
fn call_cost(body: &str) -> u64 {
    let cheap = body
        .chars()
        .filter(|c| matches!(c, '+' | '-' | '*' | '<' | '>' | '?'))
        .count() as u64;
    let divides = body.matches('/').count() as u64;
    let transcendental = body.matches("sqrt").count() as u64
        + body.matches("exp").count() as u64
        + body.matches("log").count() as u64;
    (cheap + 8 * divides + 8 * transcendental).max(1)
}

impl<'a> Machine<'a> {
    pub(crate) fn new(
        kernel: &'a Kernel,
        global: &'a mut [BufferData],
        cfg: LaunchConfig,
        warp: usize,
    ) -> Result<Self, SimError> {
        let mut bufs = HashMap::new();
        let mut base = 0u64;
        for p in &kernel.params {
            bufs.insert(
                p.var.id(),
                BufKind::Global {
                    slot: bufs.len(),
                    base_addr: base,
                },
            );
            // Segment-align each buffer.
            base += ((p.len as u64 * 4).div_ceil(SEGMENT_BYTES)) * SEGMENT_BYTES;
        }
        for (slot, l) in kernel.locals.iter().enumerate() {
            bufs.insert(l.var.id(), BufKind::Local { slot });
        }

        // Pre-assign environment slots for every declared variable.
        let mut scalar_slots = HashMap::new();
        let mut priv_slots = HashMap::new();
        collect_slots(&kernel.body, &mut scalar_slots, &mut priv_slots);

        let mut call_costs = HashMap::new();
        for uf in &kernel.user_funs {
            call_costs.insert(uf.name().to_string(), call_cost(uf.c_body()));
        }

        let mut stats = KernelStats::default();
        let wg = cfg.local.iter().product::<usize>();
        stats.wg_size = wg as u64;
        stats.work_groups = (cfg.groups().iter().product::<usize>()) as u64;
        stats.work_items = (cfg.global.iter().product::<usize>()) as u64;
        stats.local_bytes_per_group = kernel.local_bytes() as u64;

        Ok(Machine {
            kernel,
            global,
            bufs,
            scalar_slots,
            priv_slots,
            call_costs,
            stats,
            warp,
            cfg,
        })
    }

    pub(crate) fn run(&mut self) -> Result<(), SimError> {
        let groups = self.cfg.groups();
        let wg = self.cfg.local;
        let wg_linear = wg.iter().product::<usize>();
        for gz in 0..groups[2] {
            for gy in 0..groups[1] {
                for gx in 0..groups[0] {
                    let mut grp = self.make_group([gx, gy, gz], wg, wg_linear);
                    let mask = vec![true; wg_linear];
                    let body = self.kernel.body.clone();
                    self.exec_stmts(&body, &mut grp, &mask)?;
                }
            }
        }
        self.stats.finalise();
        Ok(())
    }

    fn make_group(&self, group_id: [usize; 3], wg: [usize; 3], wg_linear: usize) -> Group {
        let n_scalars = self.scalar_slots.len();
        let items = (0..wg_linear)
            .map(|i| {
                let lx = i % wg[0];
                let ly = (i / wg[0]) % wg[1];
                let lz = i / (wg[0] * wg[1]);
                ItemEnv {
                    scalars: vec![V::I(0); n_scalars],
                    priv_arrays: self
                        .priv_slots
                        .values()
                        .map(|(_, len)| vec![V::F(0.0); *len])
                        .collect(),
                    lid: [lx, ly, lz],
                    pend_loads: Vec::new(),
                    pend_stores: Vec::new(),
                }
            })
            .collect();
        let locals = self
            .kernel
            .locals
            .iter()
            .map(|l| vec![V::F(0.0); l.len])
            .collect();
        Group {
            items,
            locals,
            group_id,
        }
    }

    fn exec_stmts(
        &mut self,
        stmts: &[CStmt],
        grp: &mut Group,
        mask: &[bool],
    ) -> Result<(), SimError> {
        for s in stmts {
            self.exec_stmt(s, grp, mask)?;
        }
        Ok(())
    }

    /// SIMD lock-step cost: a warp executes a statement for *all* its lanes
    /// even when only some are active. After running a statement batch that
    /// retired `after − before` ops over the active lanes of `mask`, charge
    /// the idle lanes of every touched warp proportionally.
    fn simd_charge(&mut self, mask: &[bool], before: u64) {
        let delta = self.stats.alu_ops - before;
        if delta == 0 {
            return;
        }
        let warp = self.warp.max(1);
        let mut active = 0u64;
        let mut touched_lanes = 0u64;
        for chunk in mask.chunks(warp) {
            let a = chunk.iter().filter(|&&b| b).count() as u64;
            if a > 0 {
                active += a;
                touched_lanes += warp as u64;
            }
        }
        if active == 0 || touched_lanes == active {
            return;
        }
        let full_cost = delta * touched_lanes / active;
        self.stats.alu_ops += full_cost - delta;
        self.stats.divergence_ops += full_cost - delta;
    }

    fn exec_stmt(&mut self, s: &CStmt, grp: &mut Group, mask: &[bool]) -> Result<(), SimError> {
        match s {
            CStmt::DeclScalar { var, init, ty } => {
                if let Some(e) = init {
                    let slot = self.scalar_slot(var.id())?;
                    let before = self.stats.alu_ops;
                    for i in active(mask) {
                        let v = self.eval(e, grp, i)?;
                        grp.items[i].scalars[slot] = coerce(v, *ty);
                    }
                    self.simd_charge(mask, before);
                    self.flush_accesses(grp, mask);
                }
                Ok(())
            }
            CStmt::DeclPrivateArray { .. } => Ok(()), // pre-allocated
            CStmt::Assign { var, value } => {
                let slot = self.scalar_slot(var.id())?;
                let before = self.stats.alu_ops;
                for i in active(mask) {
                    let v = self.eval(value, grp, i)?;
                    grp.items[i].scalars[slot] = v;
                }
                self.simd_charge(mask, before);
                self.flush_accesses(grp, mask);
                Ok(())
            }
            CStmt::Store {
                buf, idx, value, ..
            } => {
                let before = self.stats.alu_ops;
                for i in active(mask) {
                    let index = self.eval(idx, grp, i)?.as_i()?;
                    let v = self.eval(value, grp, i)?;
                    self.store(buf.id(), buf.name(), index, v, grp, i)?;
                }
                self.simd_charge(mask, before);
                self.flush_accesses(grp, mask);
                Ok(())
            }
            CStmt::For {
                var,
                init,
                bound,
                step,
                body,
            } => {
                let slot = self.scalar_slot(var.id())?;
                for i in active(mask) {
                    let v = self.eval(init, grp, i)?;
                    grp.items[i].scalars[slot] = v;
                }
                self.flush_accesses(grp, mask);
                loop {
                    let mut iter_mask = vec![false; mask.len()];
                    let mut any = false;
                    let before = self.stats.alu_ops;
                    for i in active(mask) {
                        let cur = grp.items[i].scalars[slot].as_i()?;
                        let b = self.eval(bound, grp, i)?.as_i()?;
                        self.stats.alu_ops += 1; // the comparison
                        if cur < b {
                            iter_mask[i] = true;
                            any = true;
                        }
                    }
                    self.simd_charge(mask, before);
                    self.flush_accesses(grp, mask);
                    if !any {
                        break;
                    }
                    self.exec_stmts(body, grp, &iter_mask)?;
                    let before = self.stats.alu_ops;
                    for i in active(&iter_mask) {
                        let st = self.eval(step, grp, i)?.as_i()?;
                        let cur = grp.items[i].scalars[slot].as_i()?;
                        grp.items[i].scalars[slot] = V::I(cur + st);
                        self.stats.alu_ops += 1;
                    }
                    self.simd_charge(&iter_mask, before);
                    self.flush_accesses(grp, &iter_mask);
                }
                Ok(())
            }
            CStmt::If { cond, then_, else_ } => {
                let mut t_mask = vec![false; mask.len()];
                let mut e_mask = vec![false; mask.len()];
                let before = self.stats.alu_ops;
                for i in active(mask) {
                    if self.eval(cond, grp, i)?.as_b()? {
                        t_mask[i] = true;
                    } else {
                        e_mask[i] = true;
                    }
                }
                self.simd_charge(mask, before);
                self.flush_accesses(grp, mask);
                if t_mask.iter().any(|&b| b) {
                    self.exec_stmts(then_, grp, &t_mask)?;
                }
                if e_mask.iter().any(|&b| b) {
                    self.exec_stmts(else_, grp, &e_mask)?;
                }
                Ok(())
            }
            CStmt::Barrier { .. } => {
                if mask.iter().any(|&b| !b) {
                    return Err(SimError::BarrierDivergence);
                }
                self.stats.barriers += 1;
                Ok(())
            }
            CStmt::Comment(_) => Ok(()),
        }
    }

    fn scalar_slot(&self, id: u32) -> Result<usize, SimError> {
        self.scalar_slots
            .get(&id)
            .copied()
            .ok_or_else(|| SimError::UnboundVariable(format!("slot #{id}")))
    }

    fn eval(&mut self, e: &CExpr, grp: &mut Group, item: usize) -> Result<V, SimError> {
        match e {
            CExpr::Int(v) => Ok(V::I(*v)),
            CExpr::Float(v) => Ok(V::F(*v)),
            CExpr::Bool(v) => Ok(V::B(*v)),
            CExpr::Var(v) => {
                let slot = self.scalar_slot(v.id())?;
                Ok(grp.items[item].scalars[slot])
            }
            CExpr::WorkItem(f, d) => {
                let d = *d as usize;
                let lid = grp.items[item].lid[d];
                let v = match f {
                    WorkItemFn::GlobalId => grp.group_id[d] * self.cfg.local[d] + lid,
                    WorkItemFn::LocalId => lid,
                    WorkItemFn::GroupId => grp.group_id[d],
                    WorkItemFn::GlobalSize => self.cfg.global[d],
                    WorkItemFn::LocalSize => self.cfg.local[d],
                    WorkItemFn::NumGroups => self.cfg.groups()[d],
                };
                Ok(V::I(v as i64))
            }
            CExpr::Bin(op, a, b) => {
                let va = self.eval(a, grp, item)?;
                let vb = self.eval(b, grp, item)?;
                self.stats.alu_ops += 1;
                bin_op(*op, va, vb)
            }
            CExpr::Un(op, a) => {
                let v = self.eval(a, grp, item)?;
                self.stats.alu_ops += 1;
                match (op, v) {
                    (UnOp::Neg, V::F(x)) => Ok(V::F(-x)),
                    (UnOp::Neg, V::I(x)) => Ok(V::I(-x)),
                    (UnOp::Not, V::B(x)) => Ok(V::B(!x)),
                    _ => Err(SimError::TypeMismatch("bad unary operand".into())),
                }
            }
            CExpr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, grp, item)?.to_scalar());
                }
                let cost = self
                    .call_costs
                    .get(f.name())
                    .copied()
                    .unwrap_or_else(|| call_cost(f.c_body()));
                self.stats.alu_ops += cost;
                Ok(V::from_scalar(f.call(&vals)))
            }
            CExpr::Load { buf, idx, .. } => {
                let index = self.eval(idx, grp, item)?.as_i()?;
                self.load(buf.id(), buf.name(), index, grp, item)
            }
            CExpr::Select { cond, then_, else_ } => {
                let c = self.eval(cond, grp, item)?.as_b()?;
                self.stats.alu_ops += 1;
                if c {
                    self.eval(then_, grp, item)
                } else {
                    self.eval(else_, grp, item)
                }
            }
            CExpr::Cast(t, a) => {
                let v = self.eval(a, grp, item)?;
                Ok(match (t, v) {
                    (CType::Float, V::I(x)) => V::F(x as f32),
                    (CType::Int, V::F(x)) => V::I(x as i64),
                    (_, v) => v,
                })
            }
        }
    }

    fn load(
        &mut self,
        buf_id: u32,
        buf_name: &str,
        index: i64,
        grp: &mut Group,
        item: usize,
    ) -> Result<V, SimError> {
        match self.bufs.get(&buf_id).copied() {
            Some(BufKind::Global { slot, base_addr }) => {
                let data = &self.global[slot];
                let len = data.len();
                if index < 0 || index as usize >= len {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len,
                    });
                }
                self.stats.global_loads += 1;
                grp.items[item]
                    .pend_loads
                    .push(base_addr + index as u64 * 4);
                Ok(match data {
                    BufferData::F32(v) => V::F(v[index as usize]),
                    BufferData::I32(v) => V::I(v[index as usize] as i64),
                })
            }
            Some(BufKind::Local { slot }) => {
                let data = &grp.locals[slot];
                if index < 0 || index as usize >= data.len() {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len: data.len(),
                    });
                }
                self.stats.local_accesses += 1;
                Ok(data[index as usize])
            }
            None => {
                // Private array.
                let (slot, len) = self
                    .priv_slots
                    .get(&buf_id)
                    .copied()
                    .ok_or_else(|| SimError::UnboundVariable(format!("buffer `{buf_name}`")))?;
                if index < 0 || index as usize >= len {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len,
                    });
                }
                Ok(grp.items[item].priv_arrays[slot][index as usize])
            }
        }
    }

    fn store(
        &mut self,
        buf_id: u32,
        buf_name: &str,
        index: i64,
        v: V,
        grp: &mut Group,
        item: usize,
    ) -> Result<(), SimError> {
        match self.bufs.get(&buf_id).copied() {
            Some(BufKind::Global { slot, base_addr }) => {
                let data = &mut self.global[slot];
                let len = data.len();
                if index < 0 || index as usize >= len {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len,
                    });
                }
                self.stats.global_stores += 1;
                grp.items[item]
                    .pend_stores
                    .push(base_addr + index as u64 * 4);
                match (data, v) {
                    (BufferData::F32(d), V::F(x)) => d[index as usize] = x,
                    (BufferData::I32(d), V::I(x)) => d[index as usize] = x as i32,
                    (BufferData::F32(d), V::I(x)) => d[index as usize] = x as f32,
                    (BufferData::I32(_), V::F(_)) => {
                        return Err(SimError::TypeMismatch(
                            "float stored into int buffer".into(),
                        ))
                    }
                    (BufferData::F32(d), V::B(x)) => d[index as usize] = x as i32 as f32,
                    (BufferData::I32(d), V::B(x)) => d[index as usize] = x as i32,
                }
                Ok(())
            }
            Some(BufKind::Local { slot }) => {
                let data = &mut grp.locals[slot];
                if index < 0 || index as usize >= data.len() {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len: data.len(),
                    });
                }
                self.stats.local_accesses += 1;
                data[index as usize] = v;
                Ok(())
            }
            None => {
                let (slot, len) = self
                    .priv_slots
                    .get(&buf_id)
                    .copied()
                    .ok_or_else(|| SimError::UnboundVariable(format!("buffer `{buf_name}`")))?;
                if index < 0 || index as usize >= len {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len,
                    });
                }
                grp.items[item].priv_arrays[slot][index as usize] = v;
                Ok(())
            }
        }
    }

    /// Coalescing analysis: after a lock-step statement, the k-th access of
    /// each work-item lines up across the warp; each warp pays one
    /// transaction per distinct 128-byte segment at each ordinal.
    fn flush_accesses(&mut self, grp: &mut Group, mask: &[bool]) {
        let warp = self.warp.max(1);
        let n = grp.items.len();
        let mut segs: Vec<u64> = Vec::with_capacity(warp);
        for kind in 0..2 {
            let max_ord = grp
                .items
                .iter()
                .map(|it| {
                    if kind == 0 {
                        it.pend_loads.len()
                    } else {
                        it.pend_stores.len()
                    }
                })
                .max()
                .unwrap_or(0);
            if max_ord == 0 {
                continue;
            }
            for warp_start in (0..n).step_by(warp) {
                for k in 0..max_ord {
                    segs.clear();
                    #[allow(clippy::needless_range_loop)] // parallel indexing into mask + items
                    for i in warp_start..(warp_start + warp).min(n) {
                        if !mask[i] {
                            continue;
                        }
                        let pend = if kind == 0 {
                            &grp.items[i].pend_loads
                        } else {
                            &grp.items[i].pend_stores
                        };
                        if let Some(addr) = pend.get(k) {
                            segs.push(addr / SEGMENT_BYTES);
                        }
                    }
                    if segs.is_empty() {
                        continue;
                    }
                    segs.sort_unstable();
                    segs.dedup();
                    if kind == 0 {
                        self.stats.load_transactions += segs.len() as u64;
                    } else {
                        self.stats.store_transactions += segs.len() as u64;
                    }
                    for s in &segs {
                        self.stats.seen_segments.insert(*s);
                    }
                }
            }
        }
        for it in &mut grp.items {
            it.pend_loads.clear();
            it.pend_stores.clear();
        }
    }
}

fn active(mask: &[bool]) -> impl Iterator<Item = usize> + '_ {
    mask.iter().enumerate().filter_map(|(i, &b)| b.then_some(i))
}

fn coerce(v: V, ty: CType) -> V {
    match (ty, v) {
        (CType::Float, V::I(x)) => V::F(x as f32),
        (CType::Int, V::B(x)) => V::I(x as i64),
        _ => v,
    }
}

fn bin_op(op: BinOp, a: V, b: V) -> Result<V, SimError> {
    use BinOp::*;
    Ok(match (op, a, b) {
        (Add, V::F(x), V::F(y)) => V::F(x + y),
        (Sub, V::F(x), V::F(y)) => V::F(x - y),
        (Mul, V::F(x), V::F(y)) => V::F(x * y),
        (Div, V::F(x), V::F(y)) => V::F(x / y),
        (Min, V::F(x), V::F(y)) => V::F(x.min(y)),
        (Max, V::F(x), V::F(y)) => V::F(x.max(y)),
        (Lt, V::F(x), V::F(y)) => V::B(x < y),
        (Le, V::F(x), V::F(y)) => V::B(x <= y),
        (Gt, V::F(x), V::F(y)) => V::B(x > y),
        (Ge, V::F(x), V::F(y)) => V::B(x >= y),
        (Eq, V::F(x), V::F(y)) => V::B(x == y),
        (Ne, V::F(x), V::F(y)) => V::B(x != y),

        (Add, V::I(x), V::I(y)) => V::I(x.wrapping_add(y)),
        (Sub, V::I(x), V::I(y)) => V::I(x.wrapping_sub(y)),
        (Mul, V::I(x), V::I(y)) => V::I(x.wrapping_mul(y)),
        (Div, V::I(x), V::I(y)) => {
            if y == 0 {
                return Err(SimError::DivisionByZero);
            }
            V::I(x.wrapping_div(y)) // C truncating division
        }
        (Mod, V::I(x), V::I(y)) => {
            if y == 0 {
                return Err(SimError::DivisionByZero);
            }
            V::I(x.wrapping_rem(y)) // C remainder
        }
        (Min, V::I(x), V::I(y)) => V::I(x.min(y)),
        (Max, V::I(x), V::I(y)) => V::I(x.max(y)),
        (Lt, V::I(x), V::I(y)) => V::B(x < y),
        (Le, V::I(x), V::I(y)) => V::B(x <= y),
        (Gt, V::I(x), V::I(y)) => V::B(x > y),
        (Ge, V::I(x), V::I(y)) => V::B(x >= y),
        (Eq, V::I(x), V::I(y)) => V::B(x == y),
        (Ne, V::I(x), V::I(y)) => V::B(x != y),

        (And, V::B(x), V::B(y)) => V::B(x && y),
        (Or, V::B(x), V::B(y)) => V::B(x || y),

        (op, a, b) => {
            return Err(SimError::TypeMismatch(format!(
                "operator {op:?} on {a:?} and {b:?}"
            )))
        }
    })
}

fn collect_slots(
    stmts: &[CStmt],
    scalars: &mut HashMap<u32, usize>,
    privs: &mut HashMap<u32, (usize, usize)>,
) {
    for s in stmts {
        match s {
            CStmt::DeclScalar { var, .. } => {
                let next = scalars.len();
                scalars.entry(var.id()).or_insert(next);
            }
            CStmt::DeclPrivateArray { var, len, .. } => {
                let next = privs.len();
                privs.entry(var.id()).or_insert((next, *len));
            }
            CStmt::For { var, body, .. } => {
                let next = scalars.len();
                scalars.entry(var.id()).or_insert(next);
                collect_slots(body, scalars, privs);
            }
            CStmt::If { then_, else_, .. } => {
                collect_slots(then_, scalars, privs);
                collect_slots(else_, scalars, privs);
            }
            _ => {}
        }
    }
}
