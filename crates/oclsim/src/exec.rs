//! The lock-step work-group executors.
//!
//! Work-items of one group execute each statement together (an active-mask
//! walks the statements, as in POCL's work-item loops): local-memory
//! writes made before a barrier are visible after it, and a barrier reached
//! under a divergent mask is reported as an error — the same constraint the
//! OpenCL specification places on real devices.
//!
//! Two engines implement these semantics:
//!
//! * `PlanMachine` — the production inner loop: a register machine
//!   driving a pre-compiled [`Plan`] (see [`crate::plan`]) with one scratch
//!   arena reused across every work-group of a launch. This is what makes
//!   the simulator fast enough to sit on the autotuner's hot path.
//! * `Machine` — the original tree-walking interpreter, kept as the
//!   executable reference semantics. The differential suite and CI
//!   byte-diff every benchmark through both engines; outputs,
//!   [`KernelStats`] and modeled times must match bit-for-bit.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lift_codegen::clike::{BinOp, CExpr, CStmt, CType, Kernel, UnOp, WorkItemFn};
use lift_core::scalar::Scalar;

use crate::perf::{KernelStats, SEGMENT_BYTES};
use crate::plan::{BufSlot, EOp, ExprRef, Inst, Plan, Row};
use crate::runtime::{BufferData, LaunchConfig};

/// A simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Buffer access outside its allocation.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// Offending element index.
        index: i64,
        /// Buffer length.
        len: usize,
    },
    /// `barrier()` reached while work-items of the group have diverged.
    BarrierDivergence,
    /// Launch configuration invalid for this kernel/device.
    BadLaunch(String),
    /// Value of the wrong kind reached an operation (compiler bug).
    TypeMismatch(String),
    /// Integer division by zero in generated index math.
    DivisionByZero,
    /// Variable read before assignment (compiler bug).
    UnboundVariable(String),
    /// Plan compilation rejected the kernel before simulation: the wrapped
    /// cause (an [`SimError::UnboundVariable`] or
    /// [`SimError::TypeMismatch`]) was detected statically, with the kernel
    /// and statement it sits in.
    PlanCompile {
        /// Where in the kernel the fault sits (kernel name plus the
        /// statement breadcrumb trail).
        context: String,
        /// The underlying fault.
        cause: Box<SimError>,
    },
    /// The static cost model could not produce an estimate for this
    /// (kernel, launch) pair — e.g. a loop bound depends on buffer data the
    /// analyzer does not track. Never raised by the executors themselves.
    Estimate(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { buffer, index, len } => write!(
                f,
                "out-of-bounds access to `{buffer}`: index {index}, length {len}"
            ),
            SimError::BarrierDivergence => {
                write!(f, "barrier() reached in divergent control flow")
            }
            SimError::BadLaunch(m) => write!(f, "invalid launch: {m}"),
            SimError::TypeMismatch(m) => write!(f, "value kind mismatch: {m}"),
            SimError::DivisionByZero => write!(f, "division by zero in kernel"),
            SimError::UnboundVariable(v) => write!(f, "variable `{v}` read before assignment"),
            SimError::PlanCompile { context, cause } => {
                write!(f, "plan compilation failed in {context}: {cause}")
            }
            SimError::Estimate(m) => write!(f, "cost estimate unavailable: {m}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::PlanCompile { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum V {
    F(f32),
    I(i64),
    B(bool),
}

impl V {
    pub(crate) fn as_i(self) -> Result<i64, SimError> {
        match self {
            V::I(v) => Ok(v),
            V::B(b) => Ok(b as i64),
            V::F(_) => Err(SimError::TypeMismatch("expected int, found float".into())),
        }
    }

    pub(crate) fn as_b(self) -> Result<bool, SimError> {
        match self {
            V::B(v) => Ok(v),
            V::I(v) => Ok(v != 0),
            V::F(_) => Err(SimError::TypeMismatch("expected bool, found float".into())),
        }
    }

    pub(crate) fn to_scalar(self) -> Scalar {
        match self {
            V::F(v) => Scalar::F32(v),
            V::I(v) => Scalar::I32(v as i32),
            V::B(v) => Scalar::Bool(v),
        }
    }

    pub(crate) fn from_scalar(s: Scalar) -> V {
        match s {
            Scalar::F32(v) => V::F(v),
            Scalar::I32(v) => V::I(v as i64),
            Scalar::Bool(v) => V::B(v),
        }
    }
}

/// Where a buffer variable lives (tree interpreter).
#[derive(Debug, Clone, Copy)]
enum BufKind {
    Global { slot: usize, base_addr: u64 },
    Local { slot: usize },
}

/// Per-work-item state (tree interpreter).
struct ItemEnv {
    scalars: Vec<V>,
    priv_arrays: Vec<Vec<V>>,
    lid: [usize; 3],
    /// Global-memory addresses touched while executing the current
    /// lock-step statement (loads and stores separately, in program order).
    pend_loads: Vec<u64>,
    pend_stores: Vec<u64>,
}

/// A recycling pool for the active-mask buffers `for`-iterations and
/// `if`-branches need: every mask used to be a fresh `vec![…; wg]`
/// allocation per statement, now the handful of live masks are reused for
/// the whole launch.
struct MaskPool {
    free: Vec<Vec<bool>>,
    n: usize,
}

impl MaskPool {
    fn new(n: usize) -> Self {
        MaskPool {
            free: Vec::new(),
            n,
        }
    }

    /// An all-false mask of the launch's group size.
    fn get(&mut self) -> Vec<bool> {
        match self.free.pop() {
            Some(mut m) => {
                m.clear();
                m.resize(self.n, false);
                m
            }
            None => vec![false; self.n],
        }
    }

    fn put(&mut self, m: Vec<bool>) {
        self.free.push(m);
    }
}

pub(crate) struct Machine<'a> {
    kernel: &'a Kernel,
    global: &'a mut [BufferData],
    bufs: HashMap<u32, BufKind>,
    scalar_slots: HashMap<u32, usize>,
    priv_slots: HashMap<u32, (usize, usize)>,
    /// Private-array lengths in stable slot order (see
    /// [`lift_codegen::clike::SlotMap`]).
    priv_lens: Vec<usize>,
    call_costs: HashMap<String, u64>,
    pub(crate) stats: KernelStats,
    warp: usize,
    cfg: LaunchConfig,
}

/// Per-group execution state (tree interpreter).
struct Group {
    items: Vec<ItemEnv>,
    locals: Vec<Vec<V>>,
    group_id: [usize; 3],
}

/// Estimated scalar-op cost of calling a user function, from its C body:
/// one unit per cheap arithmetic/compare op, with division and
/// transcendental calls weighted like real GPU ALUs (divides and `sqrt`
/// retire roughly an order of magnitude slower than fused adds — this is
/// what makes SRAD compute-heavy relative to Jacobi).
pub(crate) fn call_cost(body: &str) -> u64 {
    let cheap = body
        .chars()
        .filter(|c| matches!(c, '+' | '-' | '*' | '<' | '>' | '?'))
        .count() as u64;
    let divides = body.matches('/').count() as u64;
    let transcendental = body.matches("sqrt").count() as u64
        + body.matches("exp").count() as u64
        + body.matches("log").count() as u64;
    (cheap + 8 * divides + 8 * transcendental).max(1)
}

/// SIMD lock-step cost, shared verbatim by both engines: a warp executes a
/// statement for *all* its lanes even when only some are active. After
/// running a statement batch that retired `alu_ops − before` ops over the
/// active lanes of `mask`, charge the idle lanes of every touched warp
/// proportionally.
pub(crate) fn simd_charge(stats: &mut KernelStats, warp: usize, mask: &[bool], before: u64) {
    let delta = stats.alu_ops - before;
    if delta == 0 {
        return;
    }
    let warp = warp.max(1);
    let mut active_lanes = 0u64;
    let mut touched_lanes = 0u64;
    for chunk in mask.chunks(warp) {
        let a = chunk.iter().filter(|&&b| b).count() as u64;
        if a > 0 {
            active_lanes += a;
            touched_lanes += warp as u64;
        }
    }
    if active_lanes == 0 || touched_lanes == active_lanes {
        return;
    }
    let full_cost = delta * touched_lanes / active_lanes;
    stats.alu_ops += full_cost - delta;
    stats.divergence_ops += full_cost - delta;
}

impl<'a> Machine<'a> {
    pub(crate) fn new(
        kernel: &'a Kernel,
        global: &'a mut [BufferData],
        cfg: LaunchConfig,
        warp: usize,
    ) -> Result<Self, SimError> {
        let mut bufs = HashMap::new();
        let mut base = 0u64;
        for p in &kernel.params {
            bufs.insert(
                p.var.id(),
                BufKind::Global {
                    slot: bufs.len(),
                    base_addr: base,
                },
            );
            // Segment-align each buffer.
            base += ((p.len as u64 * 4).div_ceil(SEGMENT_BYTES)) * SEGMENT_BYTES;
        }
        for (slot, l) in kernel.locals.iter().enumerate() {
            bufs.insert(l.var.id(), BufKind::Local { slot });
        }

        // Environment slots come from the kernel's stable slot metadata —
        // the same assignment the plan compiler resolves against.
        let slots = kernel.slot_map();
        let scalar_slots: HashMap<u32, usize> = slots
            .scalars
            .iter()
            .enumerate()
            .map(|(i, (v, _))| (v.id(), i))
            .collect();
        let priv_slots: HashMap<u32, (usize, usize)> = slots
            .priv_arrays
            .iter()
            .enumerate()
            .map(|(i, (v, _, len))| (v.id(), (i, *len)))
            .collect();
        let priv_lens: Vec<usize> = slots.priv_arrays.iter().map(|(_, _, len)| *len).collect();

        let mut call_costs = HashMap::new();
        for uf in &kernel.user_funs {
            call_costs.insert(uf.name().to_string(), call_cost(uf.c_body()));
        }

        let mut stats = KernelStats::default();
        let wg = cfg.local.iter().product::<usize>();
        stats.wg_size = wg as u64;
        stats.work_groups = (cfg.groups().iter().product::<usize>()) as u64;
        stats.work_items = (cfg.global.iter().product::<usize>()) as u64;
        stats.local_bytes_per_group = kernel.local_bytes() as u64;

        Ok(Machine {
            kernel,
            global,
            bufs,
            scalar_slots,
            priv_slots,
            priv_lens,
            call_costs,
            stats,
            warp,
            cfg,
        })
    }

    pub(crate) fn run(&mut self) -> Result<(), SimError> {
        let groups = self.cfg.groups();
        let wg = self.cfg.local;
        let wg_linear = wg.iter().product::<usize>();
        // The statement tree is borrowed, not cloned per work-group, and
        // the all-true base mask plus branch/loop masks are reused for the
        // whole launch.
        let body: &'a [CStmt] = &self.kernel.body;
        let mask = vec![true; wg_linear];
        let mut pool = MaskPool::new(wg_linear);
        for gz in 0..groups[2] {
            for gy in 0..groups[1] {
                for gx in 0..groups[0] {
                    let mut grp = self.make_group([gx, gy, gz], wg, wg_linear);
                    self.exec_stmts(body, &mut grp, &mask, &mut pool)?;
                }
            }
        }
        self.stats.finalise();
        Ok(())
    }

    fn make_group(&self, group_id: [usize; 3], wg: [usize; 3], wg_linear: usize) -> Group {
        let n_scalars = self.scalar_slots.len();
        let items = (0..wg_linear)
            .map(|i| {
                let lx = i % wg[0];
                let ly = (i / wg[0]) % wg[1];
                let lz = i / (wg[0] * wg[1]);
                ItemEnv {
                    scalars: vec![V::I(0); n_scalars],
                    priv_arrays: self
                        .priv_lens
                        .iter()
                        .map(|len| vec![V::F(0.0); *len])
                        .collect(),
                    lid: [lx, ly, lz],
                    pend_loads: Vec::new(),
                    pend_stores: Vec::new(),
                }
            })
            .collect();
        let locals = self
            .kernel
            .locals
            .iter()
            .map(|l| vec![V::F(0.0); l.len])
            .collect();
        Group {
            items,
            locals,
            group_id,
        }
    }

    fn exec_stmts(
        &mut self,
        stmts: &[CStmt],
        grp: &mut Group,
        mask: &[bool],
        pool: &mut MaskPool,
    ) -> Result<(), SimError> {
        for s in stmts {
            self.exec_stmt(s, grp, mask, pool)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        s: &CStmt,
        grp: &mut Group,
        mask: &[bool],
        pool: &mut MaskPool,
    ) -> Result<(), SimError> {
        match s {
            CStmt::DeclScalar { var, init, ty } => {
                if let Some(e) = init {
                    let slot = self.scalar_slot(var.id())?;
                    let before = self.stats.alu_ops;
                    for i in active(mask) {
                        let v = self.eval(e, grp, i)?;
                        grp.items[i].scalars[slot] = coerce(v, *ty);
                    }
                    simd_charge(&mut self.stats, self.warp, mask, before);
                    self.flush_accesses(grp, mask);
                }
                Ok(())
            }
            CStmt::DeclPrivateArray { .. } => Ok(()), // pre-allocated
            CStmt::Assign { var, value } => {
                let slot = self.scalar_slot(var.id())?;
                let before = self.stats.alu_ops;
                for i in active(mask) {
                    let v = self.eval(value, grp, i)?;
                    grp.items[i].scalars[slot] = v;
                }
                simd_charge(&mut self.stats, self.warp, mask, before);
                self.flush_accesses(grp, mask);
                Ok(())
            }
            CStmt::Store {
                buf, idx, value, ..
            } => {
                let before = self.stats.alu_ops;
                for i in active(mask) {
                    let index = self.eval(idx, grp, i)?.as_i()?;
                    let v = self.eval(value, grp, i)?;
                    self.store(buf.id(), buf.name(), index, v, grp, i)?;
                }
                simd_charge(&mut self.stats, self.warp, mask, before);
                self.flush_accesses(grp, mask);
                Ok(())
            }
            CStmt::For {
                var,
                init,
                bound,
                step,
                body,
            } => {
                let slot = self.scalar_slot(var.id())?;
                for i in active(mask) {
                    let v = self.eval(init, grp, i)?;
                    grp.items[i].scalars[slot] = v;
                }
                self.flush_accesses(grp, mask);
                loop {
                    let mut iter_mask = pool.get();
                    let mut any = false;
                    let before = self.stats.alu_ops;
                    for i in active(mask) {
                        let cur = grp.items[i].scalars[slot].as_i()?;
                        let b = self.eval(bound, grp, i)?.as_i()?;
                        self.stats.alu_ops += 1; // the comparison
                        if cur < b {
                            iter_mask[i] = true;
                            any = true;
                        }
                    }
                    simd_charge(&mut self.stats, self.warp, mask, before);
                    self.flush_accesses(grp, mask);
                    if !any {
                        pool.put(iter_mask);
                        break;
                    }
                    self.exec_stmts(body, grp, &iter_mask, pool)?;
                    let before = self.stats.alu_ops;
                    for i in active(&iter_mask) {
                        let st = self.eval(step, grp, i)?.as_i()?;
                        let cur = grp.items[i].scalars[slot].as_i()?;
                        grp.items[i].scalars[slot] = V::I(cur + st);
                        self.stats.alu_ops += 1;
                    }
                    simd_charge(&mut self.stats, self.warp, &iter_mask, before);
                    self.flush_accesses(grp, &iter_mask);
                    pool.put(iter_mask);
                }
                Ok(())
            }
            CStmt::If { cond, then_, else_ } => {
                let mut t_mask = pool.get();
                let mut e_mask = pool.get();
                let before = self.stats.alu_ops;
                for i in active(mask) {
                    if self.eval(cond, grp, i)?.as_b()? {
                        t_mask[i] = true;
                    } else {
                        e_mask[i] = true;
                    }
                }
                simd_charge(&mut self.stats, self.warp, mask, before);
                self.flush_accesses(grp, mask);
                if t_mask.iter().any(|&b| b) {
                    self.exec_stmts(then_, grp, &t_mask, pool)?;
                }
                if e_mask.iter().any(|&b| b) {
                    self.exec_stmts(else_, grp, &e_mask, pool)?;
                }
                pool.put(t_mask);
                pool.put(e_mask);
                Ok(())
            }
            CStmt::Barrier { .. } => {
                if mask.iter().any(|&b| !b) {
                    return Err(SimError::BarrierDivergence);
                }
                self.stats.barriers += 1;
                Ok(())
            }
            CStmt::Comment(_) => Ok(()),
        }
    }

    fn scalar_slot(&self, id: u32) -> Result<usize, SimError> {
        self.scalar_slots
            .get(&id)
            .copied()
            .ok_or_else(|| SimError::UnboundVariable(format!("slot #{id}")))
    }

    fn eval(&mut self, e: &CExpr, grp: &mut Group, item: usize) -> Result<V, SimError> {
        match e {
            CExpr::Int(v) => Ok(V::I(*v)),
            CExpr::Float(v) => Ok(V::F(*v)),
            CExpr::Bool(v) => Ok(V::B(*v)),
            CExpr::Var(v) => {
                let slot = self.scalar_slot(v.id())?;
                Ok(grp.items[item].scalars[slot])
            }
            CExpr::WorkItem(f, d) => {
                let d = *d as usize;
                let lid = grp.items[item].lid[d];
                let v = match f {
                    WorkItemFn::GlobalId => grp.group_id[d] * self.cfg.local[d] + lid,
                    WorkItemFn::LocalId => lid,
                    WorkItemFn::GroupId => grp.group_id[d],
                    WorkItemFn::GlobalSize => self.cfg.global[d],
                    WorkItemFn::LocalSize => self.cfg.local[d],
                    WorkItemFn::NumGroups => self.cfg.groups()[d],
                };
                Ok(V::I(v as i64))
            }
            CExpr::Bin(op, a, b) => {
                let va = self.eval(a, grp, item)?;
                let vb = self.eval(b, grp, item)?;
                self.stats.alu_ops += 1;
                bin_op(*op, va, vb)
            }
            CExpr::Un(op, a) => {
                let v = self.eval(a, grp, item)?;
                self.stats.alu_ops += 1;
                un_op(*op, v)
            }
            CExpr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, grp, item)?.to_scalar());
                }
                let cost = self
                    .call_costs
                    .get(f.name())
                    .copied()
                    .unwrap_or_else(|| call_cost(f.c_body()));
                self.stats.alu_ops += cost;
                Ok(V::from_scalar(f.call(&vals)))
            }
            CExpr::Load { buf, idx, .. } => {
                let index = self.eval(idx, grp, item)?.as_i()?;
                self.load(buf.id(), buf.name(), index, grp, item)
            }
            CExpr::Select { cond, then_, else_ } => {
                let c = self.eval(cond, grp, item)?.as_b()?;
                self.stats.alu_ops += 1;
                if c {
                    self.eval(then_, grp, item)
                } else {
                    self.eval(else_, grp, item)
                }
            }
            CExpr::Cast(t, a) => {
                let v = self.eval(a, grp, item)?;
                Ok(cast(*t, v))
            }
        }
    }

    fn load(
        &mut self,
        buf_id: u32,
        buf_name: &str,
        index: i64,
        grp: &mut Group,
        item: usize,
    ) -> Result<V, SimError> {
        match self.bufs.get(&buf_id).copied() {
            Some(BufKind::Global { slot, base_addr }) => {
                let data = &self.global[slot];
                let len = data.len();
                if index < 0 || index as usize >= len {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len,
                    });
                }
                self.stats.global_loads += 1;
                grp.items[item]
                    .pend_loads
                    .push(base_addr + index as u64 * 4);
                Ok(match data {
                    BufferData::F32(v) => V::F(v[index as usize]),
                    BufferData::I32(v) => V::I(v[index as usize] as i64),
                })
            }
            Some(BufKind::Local { slot }) => {
                let data = &grp.locals[slot];
                if index < 0 || index as usize >= data.len() {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len: data.len(),
                    });
                }
                self.stats.local_accesses += 1;
                Ok(data[index as usize])
            }
            None => {
                // Private array.
                let (slot, len) = self
                    .priv_slots
                    .get(&buf_id)
                    .copied()
                    .ok_or_else(|| SimError::UnboundVariable(format!("buffer `{buf_name}`")))?;
                if index < 0 || index as usize >= len {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len,
                    });
                }
                Ok(grp.items[item].priv_arrays[slot][index as usize])
            }
        }
    }

    fn store(
        &mut self,
        buf_id: u32,
        buf_name: &str,
        index: i64,
        v: V,
        grp: &mut Group,
        item: usize,
    ) -> Result<(), SimError> {
        match self.bufs.get(&buf_id).copied() {
            Some(BufKind::Global { slot, base_addr }) => {
                let data = &mut self.global[slot];
                let len = data.len();
                if index < 0 || index as usize >= len {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len,
                    });
                }
                self.stats.global_stores += 1;
                grp.items[item]
                    .pend_stores
                    .push(base_addr + index as u64 * 4);
                store_value(data, index as usize, v)?;
                Ok(())
            }
            Some(BufKind::Local { slot }) => {
                let data = &mut grp.locals[slot];
                if index < 0 || index as usize >= data.len() {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len: data.len(),
                    });
                }
                self.stats.local_accesses += 1;
                data[index as usize] = v;
                Ok(())
            }
            None => {
                let (slot, len) = self
                    .priv_slots
                    .get(&buf_id)
                    .copied()
                    .ok_or_else(|| SimError::UnboundVariable(format!("buffer `{buf_name}`")))?;
                if index < 0 || index as usize >= len {
                    return Err(SimError::OutOfBounds {
                        buffer: buf_name.to_string(),
                        index,
                        len,
                    });
                }
                grp.items[item].priv_arrays[slot][index as usize] = v;
                Ok(())
            }
        }
    }

    /// Coalescing analysis: after a lock-step statement, the k-th access of
    /// each work-item lines up across the warp; each warp pays one
    /// transaction per distinct 128-byte segment at each ordinal.
    ///
    /// [`PlanMachine::flush`] implements the identical analysis over its
    /// flat scratch arena; keep the two in lock-step.
    fn flush_accesses(&mut self, grp: &mut Group, mask: &[bool]) {
        let warp = self.warp.max(1);
        let n = grp.items.len();
        let mut segs: Vec<u64> = Vec::with_capacity(warp);
        for kind in 0..2 {
            let max_ord = grp
                .items
                .iter()
                .map(|it| {
                    if kind == 0 {
                        it.pend_loads.len()
                    } else {
                        it.pend_stores.len()
                    }
                })
                .max()
                .unwrap_or(0);
            if max_ord == 0 {
                continue;
            }
            for warp_start in (0..n).step_by(warp) {
                for k in 0..max_ord {
                    segs.clear();
                    #[allow(clippy::needless_range_loop)] // parallel indexing into mask + items
                    for i in warp_start..(warp_start + warp).min(n) {
                        if !mask[i] {
                            continue;
                        }
                        let pend = if kind == 0 {
                            &grp.items[i].pend_loads
                        } else {
                            &grp.items[i].pend_stores
                        };
                        if let Some(addr) = pend.get(k) {
                            segs.push(addr / SEGMENT_BYTES);
                        }
                    }
                    if segs.is_empty() {
                        continue;
                    }
                    segs.sort_unstable();
                    segs.dedup();
                    if kind == 0 {
                        self.stats.load_transactions += segs.len() as u64;
                    } else {
                        self.stats.store_transactions += segs.len() as u64;
                    }
                    for s in &segs {
                        self.stats.seen_segments.insert(*s);
                    }
                }
            }
        }
        for it in &mut grp.items {
            it.pend_loads.clear();
            it.pend_stores.clear();
        }
    }
}

fn active(mask: &[bool]) -> impl Iterator<Item = usize> + '_ {
    mask.iter().enumerate().filter_map(|(i, &b)| b.then_some(i))
}

pub(crate) fn coerce(v: V, ty: CType) -> V {
    match (ty, v) {
        (CType::Float, V::I(x)) => V::F(x as f32),
        (CType::Int, V::B(x)) => V::I(x as i64),
        _ => v,
    }
}

fn cast(t: CType, v: V) -> V {
    match (t, v) {
        (CType::Float, V::I(x)) => V::F(x as f32),
        (CType::Int, V::F(x)) => V::I(x as i64),
        (_, v) => v,
    }
}

fn un_op(op: UnOp, v: V) -> Result<V, SimError> {
    match (op, v) {
        (UnOp::Neg, V::F(x)) => Ok(V::F(-x)),
        (UnOp::Neg, V::I(x)) => Ok(V::I(-x)),
        (UnOp::Not, V::B(x)) => Ok(V::B(!x)),
        _ => Err(SimError::TypeMismatch("bad unary operand".into())),
    }
}

fn store_value(data: &mut BufferData, index: usize, v: V) -> Result<(), SimError> {
    match (data, v) {
        (BufferData::F32(d), V::F(x)) => d[index] = x,
        (BufferData::I32(d), V::I(x)) => d[index] = x as i32,
        (BufferData::F32(d), V::I(x)) => d[index] = x as f32,
        (BufferData::I32(_), V::F(_)) => {
            return Err(SimError::TypeMismatch(
                "float stored into int buffer".into(),
            ))
        }
        (BufferData::F32(d), V::B(x)) => d[index] = x as i32 as f32,
        (BufferData::I32(d), V::B(x)) => d[index] = x as i32,
    }
    Ok(())
}

pub(crate) fn bin_op(op: BinOp, a: V, b: V) -> Result<V, SimError> {
    use BinOp::*;
    Ok(match (op, a, b) {
        (Add, V::F(x), V::F(y)) => V::F(x + y),
        (Sub, V::F(x), V::F(y)) => V::F(x - y),
        (Mul, V::F(x), V::F(y)) => V::F(x * y),
        (Div, V::F(x), V::F(y)) => V::F(x / y),
        (Min, V::F(x), V::F(y)) => V::F(x.min(y)),
        (Max, V::F(x), V::F(y)) => V::F(x.max(y)),
        (Lt, V::F(x), V::F(y)) => V::B(x < y),
        (Le, V::F(x), V::F(y)) => V::B(x <= y),
        (Gt, V::F(x), V::F(y)) => V::B(x > y),
        (Ge, V::F(x), V::F(y)) => V::B(x >= y),
        (Eq, V::F(x), V::F(y)) => V::B(x == y),
        (Ne, V::F(x), V::F(y)) => V::B(x != y),

        (Add, V::I(x), V::I(y)) => V::I(x.wrapping_add(y)),
        (Sub, V::I(x), V::I(y)) => V::I(x.wrapping_sub(y)),
        (Mul, V::I(x), V::I(y)) => V::I(x.wrapping_mul(y)),
        (Div, V::I(x), V::I(y)) => {
            if y == 0 {
                return Err(SimError::DivisionByZero);
            }
            V::I(x.wrapping_div(y)) // C truncating division
        }
        (Mod, V::I(x), V::I(y)) => {
            if y == 0 {
                return Err(SimError::DivisionByZero);
            }
            V::I(x.wrapping_rem(y)) // C remainder
        }
        (Min, V::I(x), V::I(y)) => V::I(x.min(y)),
        (Max, V::I(x), V::I(y)) => V::I(x.max(y)),
        (Lt, V::I(x), V::I(y)) => V::B(x < y),
        (Le, V::I(x), V::I(y)) => V::B(x <= y),
        (Gt, V::I(x), V::I(y)) => V::B(x > y),
        (Ge, V::I(x), V::I(y)) => V::B(x >= y),
        (Eq, V::I(x), V::I(y)) => V::B(x == y),
        (Ne, V::I(x), V::I(y)) => V::B(x != y),

        (And, V::B(x), V::B(y)) => V::B(x && y),
        (Or, V::B(x), V::B(y)) => V::B(x || y),

        (op, a, b) => {
            return Err(SimError::TypeMismatch(format!(
                "operator {op:?} on {a:?} and {b:?}"
            )))
        }
    })
}

// ---------------------------------------------------------------------------
// The plan executor
// ---------------------------------------------------------------------------

/// A vector of per-lane values in its provable representation: raw `i64`,
/// `f32` or `bool` lanes when plan compilation proved the kind, tagged
/// [`V`] lanes otherwise. Typed slabs let the hot loops (index math,
/// stencil data movement) run unboxed and unmasked — lanes outside the
/// active mask may hold garbage, which is harmless because no consumer
/// ever reads an inactive lane.
enum Slab {
    I(Vec<i64>),
    F(Vec<f32>),
    B(Vec<bool>),
    V(Vec<V>),
}

impl Slab {
    /// The lane as a tagged value (any slab kind).
    #[inline]
    fn lane(&self, i: usize) -> V {
        match self {
            Slab::I(d) => V::I(d[i]),
            Slab::F(d) => V::F(d[i]),
            Slab::B(d) => V::B(d[i]),
            Slab::V(d) => d[i],
        }
    }

    /// The lane as a buffer index (the semantics of [`V::as_i`]).
    #[inline]
    fn idx(&self, i: usize) -> Result<i64, SimError> {
        match self {
            Slab::I(d) => Ok(d[i]),
            Slab::B(d) => Ok(d[i] as i64),
            Slab::V(d) => d[i].as_i(),
            Slab::F(_) => Err(SimError::TypeMismatch("expected int, found float".into())),
        }
    }

    /// The lane as a condition (the semantics of [`V::as_b`]).
    #[inline]
    fn cond(&self, i: usize) -> Result<bool, SimError> {
        match self {
            Slab::B(d) => Ok(d[i]),
            Slab::I(d) => Ok(d[i] != 0),
            Slab::V(d) => d[i].as_b(),
            Slab::F(_) => Err(SimError::TypeMismatch("expected bool, found float".into())),
        }
    }
}

/// One `?:` select in flight during a vector evaluation: the lane split,
/// which arm is executing, and the parked then-value.
struct SelFrame {
    mask_then: Vec<bool>,
    count_then: u64,
    mask_else: Vec<bool>,
    count_else: u64,
    in_else: bool,
    saved: Option<Slab>,
}

/// The register-machine inner loop: drives a pre-compiled [`Plan`] with one
/// scratch arena (typed scalar register rows, typed private/local arenas,
/// pending-access queues, mask slots, slab pools) allocated once per launch
/// and reused across every work-group.
///
/// Expressions evaluate **op-major**: each bytecode op executes for every
/// active lane before the next op, over pooled [`Slab`]s — one dispatch per
/// op per group instead of per op per work-item, with unboxed loops
/// wherever plan compilation proved the value kinds. Semantics — statement
/// order, per-lane laziness of `?:` (via mask splits), event counting,
/// [`simd_charge`] and the coalescing flush — mirror [`Machine`] exactly;
/// lane-invariant (`uniform`) expressions are evaluated once per group with
/// their ALU cost multiplied by the active-lane count. Every counter stays
/// bit-identical to the tree interpreter.
pub(crate) struct PlanMachine<'a> {
    plan: &'a Plan,
    global: &'a mut [BufferData],
    pub(crate) stats: KernelStats,
    warp: usize,
    cfg: LaunchConfig,
    n_items: usize,
    group_id: [usize; 3],
    /// Local id per work-item (precomputed once).
    lids: Vec<[usize; 3]>,
    /// Integer scalar register rows, `n_int_rows × n_items`, slot-major.
    iscalars: Vec<i64>,
    /// Tagged scalar register rows, `n_var_rows × n_items`, slot-major.
    vscalars: Vec<V>,
    /// Float / tagged local-memory arenas (shared by the group).
    locals_f: Vec<f32>,
    locals_v: Vec<V>,
    /// Float / tagged private arenas, item-major blocks.
    privs_f: Vec<f32>,
    privs_v: Vec<V>,
    /// Pending global accesses per item for the coalescing flush.
    pend_loads: Vec<Vec<u64>>,
    pend_stores: Vec<Vec<u64>>,
    any_pend: bool,
    /// Mask slots; `masks[0]` is the all-true base mask.
    masks: Vec<Vec<bool>>,
    /// Whether mask slot `i` had any active lane when last written.
    mask_any: Vec<bool>,
    mask_stack: Vec<u16>,
    /// Slab pools for the op-major evaluator.
    ipool: Vec<Vec<i64>>,
    fpool: Vec<Vec<f32>>,
    bpool: Vec<Vec<bool>>,
    vpool: Vec<Vec<V>>,
    /// The evaluator's operand stack and select frames (reused across
    /// every expression of the launch).
    estack: Vec<Slab>,
    eframes: Vec<SelFrame>,
    /// The one-lane mask uniform expressions evaluate under.
    uni_mask: Vec<bool>,
    /// User-function argument scratch.
    args: Vec<Scalar>,
    /// Segment scratch for the coalescing flush.
    segs: Vec<u64>,
}

impl<'a> PlanMachine<'a> {
    pub(crate) fn new(
        plan: &'a Plan,
        global: &'a mut [BufferData],
        cfg: LaunchConfig,
        warp: usize,
    ) -> Self {
        let wg = cfg.local;
        let n_items = wg.iter().product::<usize>();
        let lids = (0..n_items)
            .map(|i| [i % wg[0], (i / wg[0]) % wg[1], i / (wg[0] * wg[1])])
            .collect();
        let stats = KernelStats {
            wg_size: n_items as u64,
            work_groups: (cfg.groups().iter().product::<usize>()) as u64,
            work_items: (cfg.global.iter().product::<usize>()) as u64,
            local_bytes_per_group: plan.local_bytes as u64,
            ..KernelStats::default()
        };
        let n_masks = plan.n_masks.max(1);
        PlanMachine {
            plan,
            global,
            stats,
            warp,
            cfg,
            n_items,
            group_id: [0, 0, 0],
            lids,
            iscalars: vec![0; plan.n_int_rows * n_items],
            vscalars: vec![V::I(0); plan.n_var_rows * n_items],
            locals_f: vec![0.0; plan.local_f_total],
            locals_v: vec![V::F(0.0); plan.local_v_total],
            privs_f: vec![0.0; plan.priv_f_total * n_items],
            privs_v: vec![V::F(0.0); plan.priv_v_total * n_items],
            pend_loads: vec![Vec::new(); n_items],
            pend_stores: vec![Vec::new(); n_items],
            any_pend: false,
            masks: (0..n_masks).map(|i| vec![i == 0; n_items]).collect(),
            mask_any: vec![false; n_masks],
            mask_stack: Vec::with_capacity(n_masks),
            ipool: Vec::new(),
            fpool: Vec::new(),
            bpool: Vec::new(),
            vpool: Vec::new(),
            estack: Vec::with_capacity(8),
            eframes: Vec::new(),
            uni_mask: {
                let mut m = vec![false; n_items.max(1)];
                m[0] = true;
                m
            },
            args: Vec::with_capacity(4),
            segs: Vec::with_capacity(warp.max(1)),
        }
    }

    fn iget(&mut self) -> Vec<i64> {
        self.ipool.pop().unwrap_or_else(|| vec![0; self.n_items])
    }

    fn fget(&mut self) -> Vec<f32> {
        self.fpool.pop().unwrap_or_else(|| vec![0.0; self.n_items])
    }

    fn bget(&mut self) -> Vec<bool> {
        self.bpool
            .pop()
            .unwrap_or_else(|| vec![false; self.n_items])
    }

    fn vget(&mut self) -> Vec<V> {
        self.vpool
            .pop()
            .unwrap_or_else(|| vec![V::I(0); self.n_items])
    }

    fn sput(&mut self, s: Slab) {
        match s {
            Slab::I(v) => self.ipool.push(v),
            Slab::F(v) => self.fpool.push(v),
            Slab::B(v) => self.bpool.push(v),
            Slab::V(v) => self.vpool.push(v),
        }
    }

    pub(crate) fn run(&mut self) -> Result<(), SimError> {
        let groups = self.cfg.groups();
        for gz in 0..groups[2] {
            for gy in 0..groups[1] {
                for gx in 0..groups[0] {
                    self.group_id = [gx, gy, gz];
                    self.reset_group();
                    self.exec()?;
                }
            }
        }
        self.stats.finalise();
        Ok(())
    }

    /// Re-arms the scratch arena for the next work-group: scalars read
    /// before assignment are integer zero, private and local storage is
    /// float zero — the exact initial state [`Machine::make_group`]
    /// allocates fresh.
    fn reset_group(&mut self) {
        self.iscalars.fill(0);
        self.vscalars.fill(V::I(0));
        self.locals_f.fill(0.0);
        self.locals_v.fill(V::F(0.0));
        self.privs_f.fill(0.0);
        self.privs_v.fill(V::F(0.0));
        self.mask_stack.clear();
        self.mask_stack.push(0);
    }

    fn exec(&mut self) -> Result<(), SimError> {
        let plan = self.plan;
        let mut pc = 0usize;
        while pc < plan.code.len() {
            match &plan.code[pc] {
                Inst::SetScalar {
                    row,
                    value,
                    coerce,
                    charge,
                } => {
                    let (row, value, co, charge) = (*row, *value, *coerce, *charge);
                    let ms = self.top_mask();
                    let mask = std::mem::take(&mut self.masks[ms]);
                    let before = self.stats.alu_ops;
                    let r = self.set_scalar(&mask, row, value, co);
                    if r.is_ok() {
                        if charge {
                            simd_charge(&mut self.stats, self.warp, &mask, before);
                        }
                        self.flush(&mask);
                    }
                    self.masks[ms] = mask;
                    r?;
                    pc += 1;
                }
                Inst::Store { buf, idx, value } => {
                    let (buf, idx, value) = (*buf, *idx, *value);
                    let ms = self.top_mask();
                    let mask = std::mem::take(&mut self.masks[ms]);
                    let before = self.stats.alu_ops;
                    let r = self.store_stmt(&mask, buf, idx, value);
                    if r.is_ok() {
                        simd_charge(&mut self.stats, self.warp, &mask, before);
                        self.flush(&mask);
                    }
                    self.masks[ms] = mask;
                    r?;
                    pc += 1;
                }
                Inst::ForHead {
                    row,
                    bound,
                    mask,
                    exit,
                } => {
                    let (row, bound, mslot, exit) = (*row, *bound, *mask as usize, *exit as usize);
                    let ps = self.top_mask();
                    let parent = std::mem::take(&mut self.masks[ps]);
                    let mut child = std::mem::take(&mut self.masks[mslot]);
                    let r = self.for_head(&parent, &mut child, row, bound);
                    self.masks[ps] = parent;
                    self.masks[mslot] = child;
                    if r? {
                        self.mask_stack.push(mslot as u16);
                        pc += 1;
                    } else {
                        pc = exit;
                    }
                }
                Inst::ForStep { row, step, head } => {
                    let (row, step, head) = (*row, *step, *head as usize);
                    let ms = self.top_mask();
                    let mask = std::mem::take(&mut self.masks[ms]);
                    let r = self.for_step(&mask, row, step);
                    self.masks[ms] = mask;
                    r?;
                    self.mask_stack.pop();
                    pc = head;
                }
                Inst::IfHead {
                    cond,
                    tmask,
                    emask,
                    els,
                    end,
                } => {
                    let (cond, tm, em) = (*cond, *tmask as usize, *emask as usize);
                    let (els, end) = (*els as usize, *end as usize);
                    let ps = self.top_mask();
                    let parent = std::mem::take(&mut self.masks[ps]);
                    let mut t = std::mem::take(&mut self.masks[tm]);
                    let mut e = std::mem::take(&mut self.masks[em]);
                    let r = self.if_head(&parent, &mut t, &mut e, cond);
                    self.masks[ps] = parent;
                    self.masks[tm] = t;
                    self.masks[em] = e;
                    let (any_t, any_e) = r?;
                    self.mask_any[tm] = any_t;
                    self.mask_any[em] = any_e;
                    if any_t {
                        self.mask_stack.push(tm as u16);
                        pc += 1;
                    } else if any_e {
                        self.mask_stack.push(em as u16);
                        pc = els;
                    } else {
                        pc = end;
                    }
                }
                Inst::ElseJoin { emask, els, end } => {
                    self.mask_stack.pop();
                    if self.mask_any[*emask as usize] {
                        self.mask_stack.push(*emask);
                        pc = *els as usize;
                    } else {
                        pc = *end as usize;
                    }
                }
                Inst::EndIf => {
                    self.mask_stack.pop();
                    pc += 1;
                }
                Inst::Barrier => {
                    let ms = self.top_mask();
                    if self.masks[ms].iter().any(|&b| !b) {
                        return Err(SimError::BarrierDivergence);
                    }
                    self.stats.barriers += 1;
                    pc += 1;
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn top_mask(&self) -> usize {
        *self.mask_stack.last().expect("mask stack never empties") as usize
    }

    fn set_scalar(
        &mut self,
        mask: &[bool],
        row: Row,
        value: ExprRef,
        co: Option<CType>,
    ) -> Result<(), SimError> {
        let n = self.n_items;
        if value.uniform {
            let mut ops = 0u64;
            let mut v = self.eval_uniform(value, &mut ops)?;
            if let Some(t) = co {
                v = coerce(v, t);
            }
            let mut count = 0u64;
            match row {
                Row::I(r) => {
                    let V::I(x) = v else {
                        unreachable!("typed row receives a proven-int write");
                    };
                    let regs = &mut self.iscalars[r as usize * n..(r as usize + 1) * n];
                    for (reg, &m) in regs.iter_mut().zip(mask) {
                        if m {
                            *reg = x;
                            count += 1;
                        }
                    }
                }
                Row::V(r) => {
                    let regs = &mut self.vscalars[r as usize * n..(r as usize + 1) * n];
                    for (reg, &m) in regs.iter_mut().zip(mask) {
                        if m {
                            *reg = v;
                            count += 1;
                        }
                    }
                }
            }
            self.stats.alu_ops += ops * count;
        } else {
            let mut ops = 0u64;
            let v = self.eval_vec(value, mask, &mut ops)?;
            match row {
                Row::I(r) => {
                    let regs = &mut self.iscalars[r as usize * n..(r as usize + 1) * n];
                    match (&v, co) {
                        (Slab::I(d), _) => {
                            for ((reg, &m), &val) in regs.iter_mut().zip(mask).zip(d) {
                                if m {
                                    *reg = val;
                                }
                            }
                        }
                        (Slab::B(d), Some(CType::Int)) => {
                            for ((reg, &m), &val) in regs.iter_mut().zip(mask).zip(d) {
                                if m {
                                    *reg = val as i64;
                                }
                            }
                        }
                        _ => unreachable!("typed row receives a proven-int write"),
                    }
                }
                Row::V(r) => {
                    let regs = &mut self.vscalars[r as usize * n..(r as usize + 1) * n];
                    for (i, (reg, &m)) in regs.iter_mut().zip(mask).enumerate() {
                        if m {
                            *reg = match co {
                                Some(t) => coerce(v.lane(i), t),
                                None => v.lane(i),
                            };
                        }
                    }
                }
            }
            self.sput(v);
            self.stats.alu_ops += ops;
        }
        Ok(())
    }

    fn store_stmt(
        &mut self,
        mask: &[bool],
        buf: BufSlot,
        idx: ExprRef,
        value: ExprRef,
    ) -> Result<(), SimError> {
        let mut hoist_ops = 0u64;
        let mut ops = 0u64;
        // `Err` carries the hoisted (uniform) value, `Ok` the per-lane slab.
        let idx_src = if idx.uniform {
            Err(self.eval_uniform(idx, &mut hoist_ops)?.as_i()?)
        } else {
            Ok(self.eval_vec(idx, mask, &mut ops)?)
        };
        let val_src = if value.uniform {
            Err(self.eval_uniform(value, &mut hoist_ops)?)
        } else {
            Ok(self.eval_vec(value, mask, &mut ops)?)
        };
        let mut count = 0u64;
        let r = self.store_lanes(mask, buf, &idx_src, &val_src, &mut count);
        if let Ok(s) = idx_src {
            self.sput(s);
        }
        if let Ok(s) = val_src {
            self.sput(s);
        }
        r?;
        self.stats.alu_ops += ops + hoist_ops * count;
        Ok(())
    }

    /// The per-lane store loop, with unboxed fast paths for the dominant
    /// shapes (float data through integer indices into float storage) and
    /// a tagged fallback that matches the tree interpreter case for case.
    fn store_lanes(
        &mut self,
        mask: &[bool],
        buf: BufSlot,
        idx_src: &Result<Slab, i64>,
        val_src: &Result<Slab, V>,
        count: &mut u64,
    ) -> Result<(), SimError> {
        match buf {
            BufSlot::Global { slot, name } => {
                let slot = slot as usize;
                let base = self.plan.global_bases[slot];
                let len = self.global[slot].len();
                // Fast path: float lanes through int indices into a float
                // buffer — the shape of every stencil output write.
                if let (BufferData::F32(_), Ok(Slab::I(iv)), Ok(Slab::F(fv))) =
                    (&self.global[slot], idx_src, val_src)
                {
                    let mut fault = None;
                    let pend = &mut self.pend_stores;
                    let BufferData::F32(d) = &mut self.global[slot] else {
                        unreachable!("matched above");
                    };
                    for (i, &m) in mask.iter().enumerate() {
                        if !m {
                            continue;
                        }
                        *count += 1;
                        let index = iv[i];
                        if index < 0 || index as usize >= len {
                            fault = Some(SimError::OutOfBounds {
                                buffer: self.plan.buf_names[name as usize].clone(),
                                index,
                                len,
                            });
                            break;
                        }
                        pend[i].push(base + index as u64 * 4);
                        d[index as usize] = fv[i];
                    }
                    self.stats.global_stores += *count;
                    if *count > 0 {
                        self.any_pend = true;
                    }
                    return fault.map_or(Ok(()), Err);
                }
                let mut fault = None;
                let mut stores = 0u64;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    let index = match idx_src {
                        Ok(s) => match s.idx(i) {
                            Ok(v) => v,
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        },
                        Err(pre) => *pre,
                    };
                    if index < 0 || index as usize >= len {
                        fault = Some(SimError::OutOfBounds {
                            buffer: self.plan.buf_names[name as usize].clone(),
                            index,
                            len,
                        });
                        break;
                    }
                    let v = match val_src {
                        Ok(s) => s.lane(i),
                        Err(pre) => *pre,
                    };
                    stores += 1;
                    self.pend_stores[i].push(base + index as u64 * 4);
                    if let Err(e) = store_value(&mut self.global[slot], index as usize, v) {
                        fault = Some(e);
                        break;
                    }
                }
                self.stats.global_stores += stores;
                if stores > 0 {
                    self.any_pend = true;
                }
                fault.map_or(Ok(()), Err)
            }
            BufSlot::LocalF { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let mut fault = None;
                let mut accesses = 0u64;
                let data = &mut self.locals_f[off..off + len];
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    let index = match idx_src {
                        Ok(s) => match s.idx(i) {
                            Ok(v) => v,
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        },
                        Err(pre) => *pre,
                    };
                    if index < 0 || index as usize >= len {
                        fault = Some(SimError::OutOfBounds {
                            buffer: self.plan.buf_names[name as usize].clone(),
                            index,
                            len,
                        });
                        break;
                    }
                    accesses += 1;
                    let x = match val_src {
                        Ok(Slab::F(fv)) => fv[i],
                        Err(V::F(x)) => *x,
                        _ => unreachable!("float local receives a proven-float store"),
                    };
                    data[index as usize] = x;
                }
                self.stats.local_accesses += accesses;
                fault.map_or(Ok(()), Err)
            }
            BufSlot::LocalV { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let mut fault = None;
                let mut accesses = 0u64;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    let index = match idx_src {
                        Ok(s) => match s.idx(i) {
                            Ok(v) => v,
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        },
                        Err(pre) => *pre,
                    };
                    if index < 0 || index as usize >= len {
                        fault = Some(SimError::OutOfBounds {
                            buffer: self.plan.buf_names[name as usize].clone(),
                            index,
                            len,
                        });
                        break;
                    }
                    accesses += 1;
                    let v = match val_src {
                        Ok(s) => s.lane(i),
                        Err(pre) => *pre,
                    };
                    self.locals_v[off + index as usize] = v;
                }
                self.stats.local_accesses += accesses;
                fault.map_or(Ok(()), Err)
            }
            BufSlot::PrivF { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let stride = self.plan.priv_f_total;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    let index = match idx_src {
                        Ok(s) => s.idx(i)?,
                        Err(pre) => *pre,
                    };
                    if index < 0 || index as usize >= len {
                        return Err(self.oob(name, index, len));
                    }
                    let x = match val_src {
                        Ok(Slab::F(fv)) => fv[i],
                        Err(V::F(x)) => *x,
                        _ => unreachable!("float private receives a proven-float store"),
                    };
                    self.privs_f[i * stride + off + index as usize] = x;
                }
                Ok(())
            }
            BufSlot::PrivV { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let stride = self.plan.priv_v_total;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    *count += 1;
                    let index = match idx_src {
                        Ok(s) => s.idx(i)?,
                        Err(pre) => *pre,
                    };
                    if index < 0 || index as usize >= len {
                        return Err(self.oob(name, index, len));
                    }
                    let v = match val_src {
                        Ok(s) => s.lane(i),
                        Err(pre) => *pre,
                    };
                    self.privs_v[i * stride + off + index as usize] = v;
                }
                Ok(())
            }
        }
    }

    fn for_head(
        &mut self,
        parent: &[bool],
        child: &mut Vec<bool>,
        row: Row,
        bound: ExprRef,
    ) -> Result<bool, SimError> {
        child.clear();
        child.resize(self.n_items, false);
        let n = self.n_items;
        let before = self.stats.alu_ops;
        let mut any = false;
        if bound.uniform {
            let mut ops = 0u64;
            let b = self.eval_uniform(bound, &mut ops)?.as_i()?;
            let mut count = 0u64;
            match row {
                Row::I(r) => {
                    let regs = &self.iscalars[r as usize * n..(r as usize + 1) * n];
                    for i in 0..n {
                        if !parent[i] {
                            continue;
                        }
                        self.stats.alu_ops += 1; // the comparison
                        if regs[i] < b {
                            child[i] = true;
                            any = true;
                        }
                        count += 1;
                    }
                }
                Row::V(r) => {
                    let regs = &self.vscalars[r as usize * n..(r as usize + 1) * n];
                    for i in 0..n {
                        if !parent[i] {
                            continue;
                        }
                        let cur = regs[i].as_i()?;
                        self.stats.alu_ops += 1;
                        if cur < b {
                            child[i] = true;
                            any = true;
                        }
                        count += 1;
                    }
                }
            }
            self.stats.alu_ops += ops * count;
        } else {
            let mut ops = 0u64;
            let bv = self.eval_vec(bound, parent, &mut ops)?;
            let mut fault = None;
            let mut compared = 0u64;
            match row {
                Row::I(r) => {
                    let regs = &self.iscalars[r as usize * n..(r as usize + 1) * n];
                    for i in 0..n {
                        if !parent[i] {
                            continue;
                        }
                        match bv.idx(i) {
                            Ok(b) => {
                                compared += 1;
                                if regs[i] < b {
                                    child[i] = true;
                                    any = true;
                                }
                            }
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        }
                    }
                }
                Row::V(r) => {
                    let regs = &self.vscalars[r as usize * n..(r as usize + 1) * n];
                    for i in 0..n {
                        if !parent[i] {
                            continue;
                        }
                        let r2 = regs[i].as_i().and_then(|cur| Ok((cur, bv.idx(i)?)));
                        match r2 {
                            Ok((cur, b)) => {
                                compared += 1;
                                if cur < b {
                                    child[i] = true;
                                    any = true;
                                }
                            }
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        }
                    }
                }
            }
            self.sput(bv);
            if let Some(e) = fault {
                return Err(e);
            }
            self.stats.alu_ops += compared + ops;
        }
        simd_charge(&mut self.stats, self.warp, parent, before);
        self.flush(parent);
        Ok(any)
    }

    fn for_step(&mut self, mask: &[bool], row: Row, step: ExprRef) -> Result<(), SimError> {
        let n = self.n_items;
        let before = self.stats.alu_ops;
        if step.uniform {
            let mut ops = 0u64;
            let st = self.eval_uniform(step, &mut ops)?.as_i()?;
            let mut count = 0u64;
            match row {
                Row::I(r) => {
                    let regs = &mut self.iscalars[r as usize * n..(r as usize + 1) * n];
                    for (reg, &m) in regs.iter_mut().zip(mask) {
                        if m {
                            *reg += st;
                            count += 1;
                        }
                    }
                }
                Row::V(r) => {
                    let regs = &mut self.vscalars[r as usize * n..(r as usize + 1) * n];
                    for (reg, &m) in regs.iter_mut().zip(mask) {
                        if !m {
                            continue;
                        }
                        let cur = reg.as_i()?;
                        *reg = V::I(cur + st);
                        count += 1;
                    }
                }
            }
            self.stats.alu_ops += count + ops * count;
        } else {
            let mut ops = 0u64;
            let sv = self.eval_vec(step, mask, &mut ops)?;
            let mut count = 0u64;
            let mut fault = None;
            match row {
                Row::I(r) => {
                    let regs = &mut self.iscalars[r as usize * n..(r as usize + 1) * n];
                    for (i, (reg, &m)) in regs.iter_mut().zip(mask).enumerate() {
                        if !m {
                            continue;
                        }
                        match sv.idx(i) {
                            Ok(st) => {
                                *reg += st;
                                count += 1;
                            }
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        }
                    }
                }
                Row::V(r) => {
                    let regs = &mut self.vscalars[r as usize * n..(r as usize + 1) * n];
                    for (i, (reg, &m)) in regs.iter_mut().zip(mask).enumerate() {
                        if !m {
                            continue;
                        }
                        let r2 = sv.idx(i).and_then(|st| Ok((st, reg.as_i()?)));
                        match r2 {
                            Ok((st, cur)) => {
                                *reg = V::I(cur + st);
                                count += 1;
                            }
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        }
                    }
                }
            }
            self.sput(sv);
            if let Some(e) = fault {
                return Err(e);
            }
            self.stats.alu_ops += count + ops;
        }
        simd_charge(&mut self.stats, self.warp, mask, before);
        self.flush(mask);
        Ok(())
    }

    fn if_head(
        &mut self,
        parent: &[bool],
        t: &mut Vec<bool>,
        e: &mut Vec<bool>,
        cond: ExprRef,
    ) -> Result<(bool, bool), SimError> {
        t.clear();
        t.resize(self.n_items, false);
        e.clear();
        e.resize(self.n_items, false);
        let before = self.stats.alu_ops;
        let (mut any_t, mut any_e) = (false, false);
        if cond.uniform {
            let mut ops = 0u64;
            let c = self.eval_uniform(cond, &mut ops)?.as_b()?;
            let mut count = 0u64;
            for i in 0..self.n_items {
                if !parent[i] {
                    continue;
                }
                if c {
                    t[i] = true;
                    any_t = true;
                } else {
                    e[i] = true;
                    any_e = true;
                }
                count += 1;
            }
            self.stats.alu_ops += ops * count;
        } else {
            let mut ops = 0u64;
            let cv = self.eval_vec(cond, parent, &mut ops)?;
            let mut fault = None;
            for i in 0..self.n_items {
                if !parent[i] {
                    continue;
                }
                match cv.cond(i) {
                    Ok(true) => {
                        t[i] = true;
                        any_t = true;
                    }
                    Ok(false) => {
                        e[i] = true;
                        any_e = true;
                    }
                    Err(err) => {
                        fault = Some(err);
                        break;
                    }
                }
            }
            self.sput(cv);
            if let Some(err) = fault {
                return Err(err);
            }
            self.stats.alu_ops += ops;
        }
        simd_charge(&mut self.stats, self.warp, parent, before);
        self.flush(parent);
        Ok((any_t, any_e))
    }

    /// Evaluates a lane-invariant expression once (under the one-lane
    /// mask); the caller multiplies `ops` by the active-lane count, leaving
    /// [`KernelStats::alu_ops`] identical to per-lane evaluation.
    fn eval_uniform(&mut self, er: ExprRef, ops: &mut u64) -> Result<V, SimError> {
        let um = std::mem::take(&mut self.uni_mask);
        let r = self.eval_vec(er, &um, ops);
        self.uni_mask = um;
        let v = r?;
        let out = v.lane(0);
        self.sput(v);
        Ok(out)
    }

    /// Evaluates one compiled expression for every active lane of `mask`,
    /// op-major: each bytecode op runs across the lanes before the next op
    /// starts, over typed [`Slab`]s. Pure ALU costs accumulate into `ops`
    /// (already summed over lanes); memory events hit [`KernelStats`]
    /// directly, with per-lane side effects (pending-access queues, fault
    /// checks) identical to the tree interpreter's lane-by-lane
    /// evaluation. `?:` selects split the lane mask so each lane still
    /// evaluates only its taken arm.
    ///
    /// The operand stack and select-frame storage live in the machine
    /// (like every other scratch buffer) so evaluation never allocates;
    /// this wrapper also drains anything a fault left behind back into the
    /// pools.
    fn eval_vec(
        &mut self,
        er: ExprRef,
        stmt_mask: &[bool],
        ops: &mut u64,
    ) -> Result<Slab, SimError> {
        let mut stack = std::mem::take(&mut self.estack);
        let mut frames = std::mem::take(&mut self.eframes);
        let r = self.eval_vec_inner(er, stmt_mask, ops, &mut stack, &mut frames);
        for s in stack.drain(..) {
            self.sput(s);
        }
        for f in frames.drain(..) {
            if let Some(s) = f.saved {
                self.sput(s);
            }
            self.bpool.push(f.mask_then);
            self.bpool.push(f.mask_else);
        }
        self.estack = stack;
        self.eframes = frames;
        r
    }

    fn eval_vec_inner(
        &mut self,
        er: ExprRef,
        stmt_mask: &[bool],
        ops: &mut u64,
        stack: &mut Vec<Slab>,
        frames: &mut Vec<SelFrame>,
    ) -> Result<Slab, SimError> {
        let plan = self.plan;
        let n = self.n_items;
        let stmt_count = stmt_mask.iter().filter(|&&b| b).count() as u64;
        // The mask/count the current op runs under: the innermost select
        // arm, or the statement mask outside any select.
        macro_rules! cur_mask {
            () => {
                match frames.last() {
                    Some(f) if f.in_else => (f.mask_else.as_slice(), f.count_else),
                    Some(f) => (f.mask_then.as_slice(), f.count_then),
                    None => (stmt_mask, stmt_count),
                }
            };
        }
        for pc in er.start as usize..er.end as usize {
            match plan.ecode[pc] {
                EOp::I(c) => {
                    let mut v = self.iget();
                    v.fill(c);
                    stack.push(Slab::I(v));
                }
                EOp::F(c) => {
                    let mut v = self.fget();
                    v.fill(c);
                    stack.push(Slab::F(v));
                }
                EOp::B(c) => {
                    let mut v = self.bget();
                    v.fill(c);
                    stack.push(Slab::B(v));
                }
                EOp::Scalar(row) => {
                    // Copying every lane's register (not just active ones)
                    // is safe: registers are always initialised and
                    // inactive lanes' values are never consumed. Slot-major
                    // layout makes this one contiguous copy.
                    stack.push(match row {
                        Row::I(r) => {
                            let mut v = self.iget();
                            v.copy_from_slice(&self.iscalars[r as usize * n..(r as usize + 1) * n]);
                            Slab::I(v)
                        }
                        Row::V(r) => {
                            let mut v = self.vget();
                            v.copy_from_slice(&self.vscalars[r as usize * n..(r as usize + 1) * n]);
                            Slab::V(v)
                        }
                    });
                }
                EOp::WorkItem(f, d) => {
                    let mut v = self.iget();
                    let d = d as usize;
                    match f {
                        WorkItemFn::GlobalId => {
                            let base = self.group_id[d] * self.cfg.local[d];
                            for (i, slot) in v.iter_mut().enumerate() {
                                *slot = (base + self.lids[i][d]) as i64;
                            }
                        }
                        WorkItemFn::LocalId => {
                            for (i, slot) in v.iter_mut().enumerate() {
                                *slot = self.lids[i][d] as i64;
                            }
                        }
                        WorkItemFn::GroupId => v.fill(self.group_id[d] as i64),
                        WorkItemFn::GlobalSize => v.fill(self.cfg.global[d] as i64),
                        WorkItemFn::LocalSize => v.fill(self.cfg.local[d] as i64),
                        WorkItemFn::NumGroups => v.fill(self.cfg.groups()[d] as i64),
                    }
                    stack.push(Slab::I(v));
                }
                EOp::Bin(op) => {
                    let b = stack.pop().expect("binary operand");
                    let a = stack.pop().expect("binary operand");
                    let (mask, count) = cur_mask!();
                    *ops += count;
                    let r = self.bin_vec(op, a, b, mask);
                    stack.push(r?);
                }
                EOp::Un(op) => {
                    let a = stack.pop().expect("unary operand");
                    let (mask, count) = cur_mask!();
                    *ops += count;
                    let r = self.un_vec(op, a, mask);
                    stack.push(r?);
                }
                EOp::Call { fun, argc, cost } => {
                    let argc = argc as usize;
                    let base = stack.len() - argc;
                    let mut out = self.vget();
                    let (mask, count) = cur_mask!();
                    *ops += cost * count;
                    let f = &plan.funs[fun as usize];
                    for (i, slot) in out.iter_mut().enumerate() {
                        if !mask[i] {
                            continue;
                        }
                        self.args.clear();
                        for av in &stack[base..] {
                            self.args.push(av.lane(i).to_scalar());
                        }
                        *slot = V::from_scalar(f.call(&self.args));
                    }
                    for _ in 0..argc {
                        let v = stack.pop().expect("call argument");
                        self.sput(v);
                    }
                    stack.push(Slab::V(out));
                }
                EOp::Load(buf) => {
                    let idx = stack.pop().expect("load index");
                    let (mask, _) = cur_mask!();
                    let r = self.load_vec(buf, &idx, mask);
                    self.sput(idx);
                    stack.push(r?);
                }
                EOp::Cast(t) => {
                    let a = stack.pop().expect("cast operand");
                    let r = self.cast_vec(t, a);
                    stack.push(r);
                }
                EOp::SelSplit => {
                    let cond = stack.pop().expect("select condition");
                    let (mask, count) = cur_mask!();
                    *ops += count;
                    let mut mt = self.mget_sel();
                    let mut me = self.mget_sel();
                    let (mut ct, mut ce) = (0u64, 0u64);
                    let mut fault = None;
                    for i in 0..n {
                        if !mask[i] {
                            mt[i] = false;
                            me[i] = false;
                            continue;
                        }
                        match cond.cond(i) {
                            Ok(true) => {
                                mt[i] = true;
                                me[i] = false;
                                ct += 1;
                            }
                            Ok(false) => {
                                mt[i] = false;
                                me[i] = true;
                                ce += 1;
                            }
                            Err(e) => {
                                fault = Some(e);
                                break;
                            }
                        }
                    }
                    self.sput(cond);
                    if let Some(e) = fault {
                        self.bpool.push(mt);
                        self.bpool.push(me);
                        return Err(e);
                    }
                    frames.push(SelFrame {
                        mask_then: mt,
                        count_then: ct,
                        mask_else: me,
                        count_else: ce,
                        in_else: false,
                        saved: None,
                    });
                }
                EOp::SelSwap => {
                    let f = frames.last_mut().expect("select frame");
                    f.saved = Some(stack.pop().expect("then value"));
                    f.in_else = true;
                }
                EOp::SelJoin => {
                    let f = frames.pop().expect("select frame");
                    let e = stack.pop().expect("else value");
                    let t = f.saved.expect("then value parked");
                    let merged = self.sel_merge(t, e, &f.mask_then);
                    stack.push(merged);
                    self.bpool.push(f.mask_then);
                    self.bpool.push(f.mask_else);
                }
            }
        }
        Ok(stack.pop().expect("expression produces a value"))
    }

    /// A pooled mask for a select split (distinct from the statement-level
    /// mask slots, which are statically assigned).
    fn mget_sel(&mut self) -> Vec<bool> {
        self.bpool
            .pop()
            .map(|mut m| {
                m.clear();
                m.resize(self.n_items, false);
                m
            })
            .unwrap_or_else(|| vec![false; self.n_items])
    }

    /// Merges the two arms of a `?:`: then-lanes win where `mask_then` is
    /// set. Same-typed arms merge in place; mixed arms promote to tagged
    /// lanes (their compile kinds differed, so the merged slab is only
    /// lane-wise meaningful anyway).
    fn sel_merge(&mut self, t: Slab, e: Slab, mask_then: &[bool]) -> Slab {
        match (t, e) {
            (Slab::I(tv), Slab::I(mut ev)) => {
                for (i, &m) in mask_then.iter().enumerate() {
                    if m {
                        ev[i] = tv[i];
                    }
                }
                self.ipool.push(tv);
                Slab::I(ev)
            }
            (Slab::F(tv), Slab::F(mut ev)) => {
                for (i, &m) in mask_then.iter().enumerate() {
                    if m {
                        ev[i] = tv[i];
                    }
                }
                self.fpool.push(tv);
                Slab::F(ev)
            }
            (Slab::B(tv), Slab::B(mut ev)) => {
                for (i, &m) in mask_then.iter().enumerate() {
                    if m {
                        ev[i] = tv[i];
                    }
                }
                self.bpool.push(tv);
                Slab::B(ev)
            }
            (Slab::V(tv), Slab::V(mut ev)) => {
                for (i, &m) in mask_then.iter().enumerate() {
                    if m {
                        ev[i] = tv[i];
                    }
                }
                self.vpool.push(tv);
                Slab::V(ev)
            }
            (t, e) => {
                let mut out = self.vget();
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = if mask_then[i] { t.lane(i) } else { e.lane(i) };
                }
                self.sput(t);
                self.sput(e);
                Slab::V(out)
            }
        }
    }

    /// One binary op across the active lanes. Infallible typed cases run
    /// unmasked (inactive lanes compute garbage nobody reads); fallible
    /// cases (integer division, kind mismatches) check per active lane and
    /// report the same fault, for the same first active lane, as the tree
    /// interpreter.
    fn bin_vec(&mut self, op: BinOp, a: Slab, b: Slab, mask: &[bool]) -> Result<Slab, SimError> {
        use BinOp::*;
        match (a, b) {
            (Slab::I(mut av), Slab::I(bv)) => {
                let r = match op {
                    Add => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x = x.wrapping_add(*y);
                        }
                        Ok(Slab::I(av))
                    }
                    Sub => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x = x.wrapping_sub(*y);
                        }
                        Ok(Slab::I(av))
                    }
                    Mul => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x = x.wrapping_mul(*y);
                        }
                        Ok(Slab::I(av))
                    }
                    Min => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x = (*x).min(*y);
                        }
                        Ok(Slab::I(av))
                    }
                    Max => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x = (*x).max(*y);
                        }
                        Ok(Slab::I(av))
                    }
                    Div | Mod => {
                        // Masked: division by zero is a per-lane fault.
                        let mut fault = false;
                        for ((x, &y), &m) in av.iter_mut().zip(&bv).zip(mask) {
                            if !m {
                                continue;
                            }
                            if y == 0 {
                                fault = true;
                                break;
                            }
                            *x = if matches!(op, Div) {
                                x.wrapping_div(y)
                            } else {
                                x.wrapping_rem(y)
                            };
                        }
                        if fault {
                            self.ipool.push(av);
                            Err(SimError::DivisionByZero)
                        } else {
                            Ok(Slab::I(av))
                        }
                    }
                    Lt | Le | Gt | Ge | Eq | Ne => {
                        let mut out = self.bget();
                        for (o, (x, y)) in out.iter_mut().zip(av.iter().zip(&bv)) {
                            *o = match op {
                                Lt => x < y,
                                Le => x <= y,
                                Gt => x > y,
                                Ge => x >= y,
                                Eq => x == y,
                                _ => x != y,
                            };
                        }
                        self.ipool.push(av);
                        Ok(Slab::B(out))
                    }
                    And | Or => {
                        // Faults per active lane, like the tree interpreter.
                        return self.bin_generic(op, Slab::I(av), Slab::I(bv), mask);
                    }
                };
                match r {
                    Ok(s) => {
                        self.ipool.push(bv);
                        Ok(s)
                    }
                    Err(e) => {
                        self.ipool.push(bv);
                        Err(e)
                    }
                }
            }
            (Slab::F(mut av), Slab::F(bv)) => {
                let r = match op {
                    Add => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x += y;
                        }
                        Ok(Slab::F(av))
                    }
                    Sub => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x -= y;
                        }
                        Ok(Slab::F(av))
                    }
                    Mul => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x *= y;
                        }
                        Ok(Slab::F(av))
                    }
                    Div => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x /= y;
                        }
                        Ok(Slab::F(av))
                    }
                    Min => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x = x.min(*y);
                        }
                        Ok(Slab::F(av))
                    }
                    Max => {
                        for (x, y) in av.iter_mut().zip(&bv) {
                            *x = x.max(*y);
                        }
                        Ok(Slab::F(av))
                    }
                    Lt | Le | Gt | Ge | Eq | Ne => {
                        let mut out = self.bget();
                        for (o, (x, y)) in out.iter_mut().zip(av.iter().zip(&bv)) {
                            *o = match op {
                                Lt => x < y,
                                Le => x <= y,
                                Gt => x > y,
                                Ge => x >= y,
                                Eq => x == y,
                                _ => x != y,
                            };
                        }
                        self.fpool.push(av);
                        Ok(Slab::B(out))
                    }
                    Mod | And | Or => {
                        return self.bin_generic(op, Slab::F(av), Slab::F(bv), mask);
                    }
                };
                match r {
                    Ok(s) => {
                        self.fpool.push(bv);
                        Ok(s)
                    }
                    Err(e) => {
                        self.fpool.push(bv);
                        Err(e)
                    }
                }
            }
            (Slab::B(mut av), Slab::B(bv)) => match op {
                And => {
                    for (x, y) in av.iter_mut().zip(&bv) {
                        *x = *x && *y;
                    }
                    self.bpool.push(bv);
                    Ok(Slab::B(av))
                }
                Or => {
                    for (x, y) in av.iter_mut().zip(&bv) {
                        *x = *x || *y;
                    }
                    self.bpool.push(bv);
                    Ok(Slab::B(av))
                }
                _ => self.bin_generic(op, Slab::B(av), Slab::B(bv), mask),
            },
            (a, b) => self.bin_generic(op, a, b, mask),
        }
    }

    /// Mixed or tagged operands: lane-by-lane through the shared scalar
    /// kernel, producing tagged lanes (per-lane kinds may differ).
    /// Mismatched typed pairs fault at the first active lane with the
    /// exact tree-interpreter message; an empty mask (a dead select arm)
    /// faults nowhere, exactly as no lane would have evaluated it.
    fn bin_generic(
        &mut self,
        op: BinOp,
        a: Slab,
        b: Slab,
        mask: &[bool],
    ) -> Result<Slab, SimError> {
        let mut out = self.vget();
        let mut fault = None;
        for (i, &m) in mask.iter().enumerate() {
            if !m {
                continue;
            }
            match bin_op(op, a.lane(i), b.lane(i)) {
                Ok(v) => out[i] = v,
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        self.sput(a);
        self.sput(b);
        if let Some(e) = fault {
            self.vpool.push(out);
            return Err(e);
        }
        Ok(Slab::V(out))
    }

    fn un_vec(&mut self, op: UnOp, a: Slab, mask: &[bool]) -> Result<Slab, SimError> {
        match (op, a) {
            // Wrapping negation keeps the unmasked loop panic-free on
            // garbage lanes; active-lane values behave as in the tree
            // interpreter (two's-complement wrap at i64::MIN aside).
            (UnOp::Neg, Slab::I(mut v)) => {
                for x in v.iter_mut() {
                    *x = x.wrapping_neg();
                }
                Ok(Slab::I(v))
            }
            (UnOp::Neg, Slab::F(mut v)) => {
                for x in v.iter_mut() {
                    *x = -*x;
                }
                Ok(Slab::F(v))
            }
            (UnOp::Not, Slab::B(mut v)) => {
                for x in v.iter_mut() {
                    *x = !*x;
                }
                Ok(Slab::B(v))
            }
            (op, a) => {
                let mut out = self.vget();
                let mut fault = None;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    match un_op(op, a.lane(i)) {
                        Ok(v) => out[i] = v,
                        Err(e) => {
                            fault = Some(e);
                            break;
                        }
                    }
                }
                self.sput(a);
                if let Some(e) = fault {
                    self.vpool.push(out);
                    return Err(e);
                }
                Ok(Slab::V(out))
            }
        }
    }

    /// Casts are total, so typed conversions run unmasked.
    fn cast_vec(&mut self, t: CType, a: Slab) -> Slab {
        match (t, a) {
            (CType::Float, Slab::I(v)) => {
                let mut out = self.fget();
                for (o, &x) in out.iter_mut().zip(&v) {
                    *o = x as f32;
                }
                self.ipool.push(v);
                Slab::F(out)
            }
            (CType::Int, Slab::F(v)) => {
                let mut out = self.iget();
                for (o, &x) in out.iter_mut().zip(&v) {
                    *o = x as i64;
                }
                self.fpool.push(v);
                Slab::I(out)
            }
            (t, Slab::V(mut v)) => {
                for x in v.iter_mut() {
                    *x = cast(t, *x);
                }
                Slab::V(v)
            }
            // Every other (type, slab) pair is the identity, exactly as
            // the scalar `cast`.
            (_, s) => s,
        }
    }

    fn oob(&self, name: u16, index: i64, len: usize) -> SimError {
        SimError::OutOfBounds {
            buffer: self.plan.buf_names[name as usize].clone(),
            index,
            len,
        }
    }

    /// One buffer load for every active lane: the buffer kind (and, for
    /// global buffers, the element type) is dispatched once per op; the
    /// per-lane loop does only the index conversion, bounds check,
    /// pending-access bookkeeping and element read — in the same per-lane
    /// order as the tree interpreter.
    fn load_vec(&mut self, buf: BufSlot, idx: &Slab, mask: &[bool]) -> Result<Slab, SimError> {
        match buf {
            BufSlot::Global { slot, name } => {
                let slot = slot as usize;
                let base = self.plan.global_bases[slot];
                let len = self.global[slot].len();
                let mut count = 0u64;
                let mut fault = None;
                let pend = &mut self.pend_loads;
                macro_rules! lanes {
                    ($d:ident, $out:ident, $conv:expr) => {
                        // Integer index lanes skip the per-lane kind check.
                        if let Slab::I(iv) = idx {
                            for (i, &m) in mask.iter().enumerate() {
                                if !m {
                                    continue;
                                }
                                let index = iv[i];
                                if index < 0 || index as usize >= len {
                                    fault = Some(SimError::OutOfBounds {
                                        buffer: self.plan.buf_names[name as usize].clone(),
                                        index,
                                        len,
                                    });
                                    break;
                                }
                                pend[i].push(base + index as u64 * 4);
                                $out[i] = $conv($d[index as usize]);
                                count += 1;
                            }
                        } else {
                            for (i, &m) in mask.iter().enumerate() {
                                if !m {
                                    continue;
                                }
                                let index = match idx.idx(i) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        fault = Some(e);
                                        break;
                                    }
                                };
                                if index < 0 || index as usize >= len {
                                    fault = Some(SimError::OutOfBounds {
                                        buffer: self.plan.buf_names[name as usize].clone(),
                                        index,
                                        len,
                                    });
                                    break;
                                }
                                pend[i].push(base + index as u64 * 4);
                                $out[i] = $conv($d[index as usize]);
                                count += 1;
                            }
                        }
                    };
                }
                let out = match &self.global[slot] {
                    BufferData::F32(d) => {
                        let mut out = self.fpool.pop().unwrap_or_else(|| vec![0.0; self.n_items]);
                        lanes!(d, out, |x: f32| x);
                        Slab::F(out)
                    }
                    BufferData::I32(d) => {
                        let mut out = self.ipool.pop().unwrap_or_else(|| vec![0; self.n_items]);
                        lanes!(d, out, |x: i32| x as i64);
                        Slab::I(out)
                    }
                };
                self.stats.global_loads += count;
                if count > 0 {
                    self.any_pend = true;
                }
                match fault {
                    Some(e) => {
                        self.sput(out);
                        Err(e)
                    }
                    None => Ok(out),
                }
            }
            BufSlot::LocalF { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let data = &self.locals_f[off..off + len];
                let mut out = self.fpool.pop().unwrap_or_else(|| vec![0.0; self.n_items]);
                let mut count = 0u64;
                let mut fault = None;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    let index = match idx.idx(i) {
                        Ok(v) => v,
                        Err(e) => {
                            fault = Some(e);
                            break;
                        }
                    };
                    if index < 0 || index as usize >= len {
                        fault = Some(SimError::OutOfBounds {
                            buffer: self.plan.buf_names[name as usize].clone(),
                            index,
                            len,
                        });
                        break;
                    }
                    out[i] = data[index as usize];
                    count += 1;
                }
                self.stats.local_accesses += count;
                match fault {
                    Some(e) => {
                        self.fpool.push(out);
                        Err(e)
                    }
                    None => Ok(Slab::F(out)),
                }
            }
            BufSlot::LocalV { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let mut out = self.vget();
                let mut count = 0u64;
                let mut fault = None;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    let index = match idx.idx(i) {
                        Ok(v) => v,
                        Err(e) => {
                            fault = Some(e);
                            break;
                        }
                    };
                    if index < 0 || index as usize >= len {
                        fault = Some(SimError::OutOfBounds {
                            buffer: self.plan.buf_names[name as usize].clone(),
                            index,
                            len,
                        });
                        break;
                    }
                    out[i] = self.locals_v[off + index as usize];
                    count += 1;
                }
                self.stats.local_accesses += count;
                match fault {
                    Some(e) => {
                        self.vpool.push(out);
                        Err(e)
                    }
                    None => Ok(Slab::V(out)),
                }
            }
            BufSlot::PrivF { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let stride = self.plan.priv_f_total;
                let mut out = self.fpool.pop().unwrap_or_else(|| vec![0.0; self.n_items]);
                let mut fault = None;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    let index = match idx.idx(i) {
                        Ok(v) => v,
                        Err(e) => {
                            fault = Some(e);
                            break;
                        }
                    };
                    if index < 0 || index as usize >= len {
                        fault = Some(self.oob(name, index, len));
                        break;
                    }
                    out[i] = self.privs_f[i * stride + off + index as usize];
                }
                match fault {
                    Some(e) => {
                        self.fpool.push(out);
                        Err(e)
                    }
                    None => Ok(Slab::F(out)),
                }
            }
            BufSlot::PrivV { off, len, name } => {
                let (off, len) = (off as usize, len as usize);
                let stride = self.plan.priv_v_total;
                let mut out = self.vget();
                let mut fault = None;
                for (i, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    let index = match idx.idx(i) {
                        Ok(v) => v,
                        Err(e) => {
                            fault = Some(e);
                            break;
                        }
                    };
                    if index < 0 || index as usize >= len {
                        fault = Some(self.oob(name, index, len));
                        break;
                    }
                    out[i] = self.privs_v[i * stride + off + index as usize];
                }
                match fault {
                    Some(e) => {
                        self.vpool.push(out);
                        Err(e)
                    }
                    None => Ok(Slab::V(out)),
                }
            }
        }
    }

    /// The coalescing flush, identical in behaviour to
    /// [`Machine::flush_accesses`] but over the flat scratch arena and
    /// skipped outright when the statement queued no global access.
    fn flush(&mut self, mask: &[bool]) {
        if !self.any_pend {
            return;
        }
        let warp = self.warp.max(1);
        let n = self.n_items;
        for kind in 0..2 {
            let pend = if kind == 0 {
                &self.pend_loads
            } else {
                &self.pend_stores
            };
            let max_ord = pend.iter().map(|p| p.len()).max().unwrap_or(0);
            if max_ord == 0 {
                continue;
            }
            for warp_start in (0..n).step_by(warp) {
                for k in 0..max_ord {
                    self.segs.clear();
                    #[allow(clippy::needless_range_loop)] // parallel indexing into mask + pends
                    for i in warp_start..(warp_start + warp).min(n) {
                        if !mask[i] {
                            continue;
                        }
                        if let Some(addr) = pend[i].get(k) {
                            self.segs.push(addr / SEGMENT_BYTES);
                        }
                    }
                    if self.segs.is_empty() {
                        continue;
                    }
                    self.segs.sort_unstable();
                    self.segs.dedup();
                    if kind == 0 {
                        self.stats.load_transactions += self.segs.len() as u64;
                    } else {
                        self.stats.store_transactions += self.segs.len() as u64;
                    }
                    for s in &self.segs {
                        self.stats.seen_segments.insert(*s);
                    }
                }
            }
        }
        for p in &mut self.pend_loads {
            p.clear();
        }
        for p in &mut self.pend_stores {
            p.clear();
        }
        self.any_pend = false;
    }
}
