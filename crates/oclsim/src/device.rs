//! GPU device profiles used by the performance model.
//!
//! Each profile captures the handful of architectural parameters that decide
//! whether the paper's stencil optimisations pay off: compute width, memory
//! bandwidth and latency, cache effectiveness on *redundant* global loads
//! (which is what overlapped tiling removes), the cost and very existence of
//! hardware local memory, and occupancy limits.

/// Architectural parameters of a (virtual) GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of compute units (SMs / CUs / shader cores).
    pub compute_units: u32,
    /// SIMD width a warp/wavefront executes in lock-step (used for
    /// coalescing analysis).
    pub warp_width: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Scalar float operations one CU retires per cycle.
    pub alu_ops_per_cu_cycle: f64,
    /// Global memory bandwidth in GB/s.
    pub gmem_bandwidth_gbps: f64,
    /// Global memory latency in cycles.
    pub gmem_latency_cycles: f64,
    /// Fraction of *redundant* global transactions served by the cache
    /// hierarchy (0 = every redundant load pays DRAM, 1 = only compulsory
    /// traffic pays).
    pub cache_hit_redundant: f64,
    /// Hardware local memory per CU in bytes (0 on devices without it).
    pub lmem_bytes_per_cu: usize,
    /// Local memory accesses one CU retires per cycle.
    pub lmem_ops_per_cu_cycle: f64,
    /// Whether local memory is real hardware; if `false` (ARM Mali) local
    /// buffers live in ordinary memory and `toLocal` staging is overhead.
    pub has_hw_local: bool,
    /// Maximum work-group size.
    pub max_wg_size: usize,
    /// Maximum resident work-groups per CU.
    pub max_groups_per_cu: u32,
    /// Warps per CU needed to fully hide memory latency.
    pub warps_to_hide_latency: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl DeviceProfile {
    /// Nvidia Tesla K20c (Kepler): wide, bandwidth-rich, but with small
    /// read-mostly caches — explicit local-memory tiling pays (the paper
    /// finds 33% of the best Lift kernels on Nvidia use tiling).
    pub fn k20c() -> Self {
        DeviceProfile {
            name: "Nvidia Tesla K20c",
            compute_units: 13,
            warp_width: 32,
            clock_ghz: 0.706,
            alu_ops_per_cu_cycle: 192.0,
            gmem_bandwidth_gbps: 208.0,
            gmem_latency_cycles: 450.0,
            cache_hit_redundant: 0.60,
            lmem_bytes_per_cu: 48 * 1024,
            lmem_ops_per_cu_cycle: 128.0,
            has_hw_local: true,
            max_wg_size: 1024,
            max_groups_per_cu: 16,
            warps_to_hide_latency: 24.0,
            launch_overhead_us: 0.5,
        }
    }

    /// AMD Radeon HD 7970 (GCN): highest raw bandwidth of the three and an
    /// effective cache hierarchy — re-used stencil loads mostly hit cache,
    /// so tiling rarely helps (none of the best Lift kernels on AMD tile).
    pub fn hd7970() -> Self {
        DeviceProfile {
            name: "AMD Radeon HD 7970",
            compute_units: 32,
            warp_width: 64,
            clock_ghz: 0.925,
            alu_ops_per_cu_cycle: 64.0,
            gmem_bandwidth_gbps: 264.0,
            gmem_latency_cycles: 350.0,
            cache_hit_redundant: 0.85,
            lmem_bytes_per_cu: 64 * 1024,
            lmem_ops_per_cu_cycle: 64.0,
            has_hw_local: true,
            max_wg_size: 256,
            max_groups_per_cu: 40,
            warps_to_hide_latency: 10.0,
            launch_overhead_us: 0.7,
        }
    }

    /// ARM Mali-T628 (Samsung Exynos 5422): a small mobile GPU with **no
    /// hardware local memory** — OpenCL local buffers are carved out of
    /// ordinary memory, so `toLocal` staging only adds traffic (the paper's
    /// best ARM kernels never tile).
    pub fn mali_t628() -> Self {
        DeviceProfile {
            name: "ARM Mali-T628",
            compute_units: 6,
            warp_width: 4,
            clock_ghz: 0.600,
            alu_ops_per_cu_cycle: 8.0,
            gmem_bandwidth_gbps: 14.9,
            gmem_latency_cycles: 200.0,
            cache_hit_redundant: 0.90,
            lmem_bytes_per_cu: 32 * 1024, // advertised, but not real hardware
            lmem_ops_per_cu_cycle: 4.0,
            has_hw_local: false,
            max_wg_size: 256,
            max_groups_per_cu: 4,
            warps_to_hide_latency: 6.0,
            launch_overhead_us: 5.0,
        }
    }

    /// The three profiles used throughout the evaluation, in the paper's
    /// plotting order (Nvidia, AMD, ARM).
    pub fn all() -> [DeviceProfile; 3] {
        [Self::k20c(), Self::hd7970(), Self::mali_t628()]
    }

    /// Peak scalar throughput in Gop/s.
    pub fn peak_gops(&self) -> f64 {
        self.compute_units as f64 * self.alu_ops_per_cu_cycle * self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_sane() {
        let [nv, amd, arm] = DeviceProfile::all();
        assert!(nv.peak_gops() > arm.peak_gops() * 10.0);
        assert!(amd.gmem_bandwidth_gbps > nv.gmem_bandwidth_gbps);
        assert!(arm.gmem_bandwidth_gbps < 20.0);
        assert!(nv.has_hw_local && amd.has_hw_local && !arm.has_hw_local);
        assert!(amd.cache_hit_redundant > nv.cache_hit_redundant);
    }

    #[test]
    fn wavefront_widths_match_architectures() {
        assert_eq!(DeviceProfile::k20c().warp_width, 32);
        assert_eq!(DeviceProfile::hd7970().warp_width, 64);
        assert_eq!(DeviceProfile::mali_t628().warp_width, 4);
    }
}
