//! A virtual OpenCL device: executes generated kernels with OpenCL
//! semantics and models their performance on calibrated GPU profiles.
//!
//! The paper evaluates on three real GPUs (Nvidia Tesla K20c, AMD Radeon
//! HD 7970, ARM Mali-T628). This environment has none, so this crate
//! substitutes a **two-part virtual device** (see DESIGN.md §1):
//!
//! 1. **Executor** ([`exec`]): a lock-step work-group executor for the
//!    [`lift_codegen::Kernel`] AST. Work-items of a group advance statement
//!    by statement (the classic POCL work-item-loop construction), which
//!    gives exact OpenCL barrier semantics for the uniform control flow Lift
//!    generates, and detects barriers in divergent flow as errors. Outputs
//!    are bit-exact, so kernels are validated against golden references.
//! 2. **Performance model** ([`perf`]): while executing, the executor
//!    collects *memory transactions* (128-byte segment coalescing per
//!    warp/wavefront), local-memory traffic, ALU work and barriers; the
//!    [`device::DeviceProfile`] prices these into a modeled runtime using
//!    throughput/latency/occupancy terms. The three shipped profiles are
//!    calibrated so the *qualitative* behaviour matches the paper: the K20c
//!    profile rewards explicit local-memory tiling (tiny data caches), the
//!    HD 7970 profile's caches make tiling mostly unnecessary, and the
//!    Mali profile has **no hardware local memory** (its "local" traffic is
//!    ordinary memory traffic, so `toLocal` copies are pure overhead).
//!
//! # Two-stage execution: plan compile → run
//!
//! Because the simulator *is* the autotuner's hot path (every tuner
//! evaluation is a simulated launch), execution is split into two stages:
//!
//! 1. **Plan compilation** ([`plan`]): the kernel AST is lowered once into
//!    a flat, slot-resolved bytecode [`Plan`] — variables and buffers
//!    become dense indices (an unbound variable is a *compile-time* error),
//!    structured control flow becomes jump offsets, and lane-invariant
//!    expressions are marked for once-per-group evaluation.
//! 2. **Launch** ([`exec`]): a register-machine inner loop drives the plan
//!    with one scratch arena reused across all work-groups.
//!
//! [`VirtualDevice::run`] plans on the fly; [`VirtualDevice::run_planned`]
//! takes a [`PlannedKernel`] whose plan is compiled at most once — the
//! `lift-driver` kernel cache stores these, so tuning a variant across
//! hundreds of configurations plans exactly once.
//!
//! **Determinism contract:** the plan engine and the original tree-walking
//! interpreter (still available, `LIFT_SIM_ENGINE=tree` or
//! [`runtime::SimEngine::Tree`]) produce byte-identical outputs,
//! [`KernelStats`] and modeled times; they differ only in host-side speed.
//! The differential suite (`tests/sim_differential.rs` at the workspace
//! root) and a CI byte-diff of whole experiment sweeps hold the two
//! engines in lock-step.

#![forbid(unsafe_code)]

pub mod cost;
pub mod device;
pub mod exec;
pub mod perf;
pub mod plan;
pub mod runtime;
pub mod verify;

pub use cost::CostEstimate;
pub use device::DeviceProfile;
pub use exec::SimError;
pub use perf::KernelStats;
pub use plan::{Plan, PlannedKernel};
pub use runtime::{
    BufferData, IteratedOutput, LaunchConfig, Rotation, RunOutput, SimEngine, VirtualDevice,
};
pub use verify::{FindingKind, VerifyFinding};
