//! A virtual OpenCL device: executes generated kernels with OpenCL
//! semantics and models their performance on calibrated GPU profiles.
//!
//! The paper evaluates on three real GPUs (Nvidia Tesla K20c, AMD Radeon
//! HD 7970, ARM Mali-T628). This environment has none, so this crate
//! substitutes a **two-part virtual device** (see DESIGN.md §1):
//!
//! 1. **Executor** ([`exec`]): a lock-step work-group interpreter for the
//!    [`lift_codegen::Kernel`] AST. Work-items of a group advance statement
//!    by statement (the classic POCL work-item-loop construction), which
//!    gives exact OpenCL barrier semantics for the uniform control flow Lift
//!    generates, and detects barriers in divergent flow as errors. Outputs
//!    are bit-exact, so kernels are validated against golden references.
//! 2. **Performance model** ([`perf`]): while executing, the interpreter
//!    collects *memory transactions* (128-byte segment coalescing per
//!    warp/wavefront), local-memory traffic, ALU work and barriers; the
//!    [`device::DeviceProfile`] prices these into a modeled runtime using
//!    throughput/latency/occupancy terms. The three shipped profiles are
//!    calibrated so the *qualitative* behaviour matches the paper: the K20c
//!    profile rewards explicit local-memory tiling (tiny data caches), the
//!    HD 7970 profile's caches make tiling mostly unnecessary, and the
//!    Mali profile has **no hardware local memory** (its "local" traffic is
//!    ordinary memory traffic, so `toLocal` copies are pure overhead).

pub mod device;
pub mod exec;
pub mod perf;
pub mod runtime;

pub use device::DeviceProfile;
pub use exec::SimError;
pub use perf::KernelStats;
pub use runtime::{BufferData, IteratedOutput, LaunchConfig, Rotation, RunOutput, VirtualDevice};
