//! Adversarial kernels for the static verifier: four hand-built plans,
//! each carrying exactly one of the defect classes the verifier claims to
//! catch. The benchmark suite proves the verifier quiet on correct code
//! (`tests/sim_differential.rs`, `lift-harness verify`); this file proves
//! it *loud* on broken code — a verifier that never fires is vacuous.

use lift_codegen::clike::{
    AddressSpace, BinOp, CExpr, CStmt, CType, Kernel, KernelParam, LocalBuffer, VarRef, WorkItemFn,
};
use lift_oclsim::{DeviceProfile, FindingKind, LaunchConfig, PlannedKernel, VerifyFinding};

const N: usize = 64;

fn gid() -> CExpr {
    CExpr::WorkItem(WorkItemFn::GlobalId, 0)
}

fn lid() -> CExpr {
    CExpr::WorkItem(WorkItemFn::LocalId, 0)
}

/// A one-input, one-output kernel around `body`.
fn kernel_1in(
    name: &str,
    input: &VarRef,
    output: &VarRef,
    locals: Vec<LocalBuffer>,
    body: Vec<CStmt>,
) -> Kernel {
    Kernel {
        name: name.to_string(),
        params: vec![
            KernelParam {
                var: input.clone(),
                elem: CType::Float,
                len: N,
                is_output: false,
            },
            KernelParam {
                var: output.clone(),
                elem: CType::Float,
                len: N,
                is_output: true,
            },
        ],
        locals,
        body,
        user_funs: Vec::new(),
    }
}

fn verify(k: Kernel, cfg: LaunchConfig) -> Vec<VerifyFinding> {
    PlannedKernel::new(k)
        .verify(cfg, &DeviceProfile::k20c())
        .expect("plan compiles")
        .as_ref()
        .clone()
}

fn load(buf: &VarRef, space: AddressSpace, idx: CExpr) -> CExpr {
    CExpr::Load {
        buf: buf.clone(),
        space,
        idx: Box::new(idx),
    }
}

/// `out[gid] = in[gid + 1]` over the full buffer: the top lane reads one
/// element past the end — the classic missing-halo-clamp bug.
#[test]
fn out_of_bounds_halo_read_is_caught() {
    let input = VarRef::fresh("in");
    let output = VarRef::fresh("out");
    let k = kernel_1in(
        "oob_halo",
        &input,
        &output,
        Vec::new(),
        vec![CStmt::Store {
            buf: output.clone(),
            space: AddressSpace::Global,
            idx: gid(),
            value: load(
                &input,
                AddressSpace::Global,
                CExpr::add(gid(), CExpr::Int(1)),
            ),
        }],
    );
    let findings = verify(k, LaunchConfig::d1(N, 16));
    assert!(
        findings
            .iter()
            .any(|f| f.kind == FindingKind::OutOfBounds && f.buffer.as_deref() == Some("in")),
        "expected an out-of-bounds finding on `in`, got {findings:?}"
    );
    let f = findings
        .iter()
        .find(|f| f.kind == FindingKind::OutOfBounds)
        .unwrap();
    assert!(
        !f.witness.is_empty(),
        "the finding must carry interval evidence"
    );
}

/// A barrier reached only by lanes with `lid < 2`: the rest of the
/// work-group never arrives, which deadlocks real OpenCL devices.
#[test]
fn divergent_barrier_is_caught() {
    let input = VarRef::fresh("in");
    let output = VarRef::fresh("out");
    let k = kernel_1in(
        "divergent_barrier",
        &input,
        &output,
        Vec::new(),
        vec![
            CStmt::If {
                cond: CExpr::Bin(BinOp::Lt, Box::new(lid()), Box::new(CExpr::Int(2))),
                then_: vec![CStmt::Barrier {
                    local: true,
                    global: false,
                }],
                else_: Vec::new(),
            },
            CStmt::Store {
                buf: output.clone(),
                space: AddressSpace::Global,
                idx: gid(),
                value: load(&input, AddressSpace::Global, gid()),
            },
        ],
    );
    let findings = verify(k, LaunchConfig::d1(N, 16));
    assert!(
        findings
            .iter()
            .any(|f| f.kind == FindingKind::BarrierDivergence),
        "expected a barrier-divergence finding, got {findings:?}"
    );
}

/// Every lane of the group writes `tile[0]`: a write-write race on local
/// memory with no barrier separating the contenders.
#[test]
fn racy_local_write_is_caught() {
    let tile = VarRef::fresh("tile");
    let input = VarRef::fresh("in");
    let output = VarRef::fresh("out");
    let k = kernel_1in(
        "racy_local",
        &input,
        &output,
        vec![LocalBuffer {
            var: tile.clone(),
            elem: CType::Float,
            len: 16,
        }],
        vec![
            CStmt::Store {
                buf: tile.clone(),
                space: AddressSpace::Local,
                idx: CExpr::Int(0),
                value: load(&input, AddressSpace::Global, gid()),
            },
            CStmt::Barrier {
                local: true,
                global: false,
            },
            CStmt::Store {
                buf: output.clone(),
                space: AddressSpace::Global,
                idx: gid(),
                value: load(&tile, AddressSpace::Local, CExpr::Int(0)),
            },
        ],
    );
    let findings = verify(k, LaunchConfig::d1(N, 16));
    assert!(
        findings
            .iter()
            .any(|f| f.kind == FindingKind::LocalRace && f.buffer.as_deref() == Some("tile")),
        "expected a local-memory race finding on `tile`, got {findings:?}"
    );
}

/// `float acc; out[gid] = acc;` — a read of a register no path ever
/// wrote. Real devices return garbage; the verifier must refuse.
#[test]
fn uninitialized_register_read_is_caught() {
    let acc = VarRef::fresh("acc");
    let input = VarRef::fresh("in");
    let output = VarRef::fresh("out");
    let _ = &input;
    let k = kernel_1in(
        "uninit_reg",
        &input,
        &output,
        Vec::new(),
        vec![
            CStmt::DeclScalar {
                var: acc.clone(),
                ty: CType::Float,
                init: None,
            },
            CStmt::Store {
                buf: output.clone(),
                space: AddressSpace::Global,
                idx: gid(),
                value: CExpr::Var(acc),
            },
        ],
    );
    let findings = verify(k, LaunchConfig::d1(N, 16));
    assert!(
        findings.iter().any(|f| f.kind == FindingKind::UninitRead),
        "expected an uninitialized-read finding, got {findings:?}"
    );
}

/// The same kernels with the defect repaired verify clean — the findings
/// above are the defects, not background noise.
#[test]
fn repaired_kernels_verify_clean() {
    // Clamped halo read: in[min(gid + 1, N - 1)].
    let input = VarRef::fresh("in");
    let output = VarRef::fresh("out");
    let k = kernel_1in(
        "clamped_halo",
        &input,
        &output,
        Vec::new(),
        vec![CStmt::Store {
            buf: output.clone(),
            space: AddressSpace::Global,
            idx: gid(),
            value: load(
                &input,
                AddressSpace::Global,
                CExpr::min(CExpr::add(gid(), CExpr::Int(1)), CExpr::Int(N as i64 - 1)),
            ),
        }],
    );
    let findings = verify(k, LaunchConfig::d1(N, 16));
    assert!(
        findings.is_empty(),
        "clamped kernel must verify clean, got {findings:?}"
    );

    // Per-lane local staging: tile[lid] instead of tile[0].
    let tile = VarRef::fresh("tile");
    let input = VarRef::fresh("in");
    let output = VarRef::fresh("out");
    let k = kernel_1in(
        "staged_local",
        &input,
        &output,
        vec![LocalBuffer {
            var: tile.clone(),
            elem: CType::Float,
            len: 16,
        }],
        vec![
            CStmt::Store {
                buf: tile.clone(),
                space: AddressSpace::Local,
                idx: lid(),
                value: load(&input, AddressSpace::Global, gid()),
            },
            CStmt::Barrier {
                local: true,
                global: false,
            },
            CStmt::Store {
                buf: output.clone(),
                space: AddressSpace::Global,
                idx: gid(),
                value: load(&tile, AddressSpace::Local, lid()),
            },
        ],
    );
    let findings = verify(k, LaunchConfig::d1(N, 16));
    assert!(
        findings.is_empty(),
        "staged kernel must verify clean, got {findings:?}"
    );
}
