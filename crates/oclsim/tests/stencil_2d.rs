//! End-to-end: the paper's multi-dimensional composition (§3.4) — `pad2`,
//! `slide2`, nested maps — compiled through the view system and executed on
//! the virtual device, checked bit-exact against a direct reference.

use lift_core::prelude::*;
use lift_oclsim::{DeviceProfile, LaunchConfig, VirtualDevice};

/// 5-point Jacobi via a 3×3 neighbourhood (cross weights implicit in `f`).
fn jacobi2d_lowered(rows: i64, cols: i64) -> FunDecl {
    lam_named("A", Type::array_2d(Type::f32(), rows, cols), |a| {
        let nbh_ty = Type::array_2d(Type::f32(), 3, 3);
        let f = lam(nbh_ty, |nbh| {
            let c = at2(1, 1, nbh.clone());
            let n = at2(0, 1, nbh.clone());
            let s = at2(2, 1, nbh.clone());
            let w = at2(1, 0, nbh.clone());
            let e = at2(1, 2, nbh);
            let sum = call(
                &add_f32(),
                [
                    call(
                        &add_f32(),
                        [call(&add_f32(), [call(&add_f32(), [c, n]), s]), w],
                    ),
                    e,
                ],
            );
            call(&mul_f32(), [sum, Expr::f32(0.2)])
        });
        // map2 with explicit Glb lowering: rows → dim 1, cols → dim 0.
        let padded = pad2(1, 1, Boundary::Clamp, a);
        let nbhs = slide2(3, 1, padded);
        let row_ty = Type::array(Type::array_2d(Type::f32(), 3, 3), cols);
        map_glb(1, lam(row_ty, move |row| map_glb(0, f, row)), nbhs)
    })
}

fn reference_jacobi2d(input: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let get = |i: i64, j: i64| {
        let i = i.clamp(0, rows as i64 - 1) as usize;
        let j = j.clamp(0, cols as i64 - 1) as usize;
        input[i * cols + j]
    };
    let mut out = vec![0.0f32; rows * cols];
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            let sum = ((get(i, j) + get(i - 1, j)) + get(i + 1, j)) + get(i, j - 1) + get(i, j + 1);
            out[i as usize * cols + j as usize] = sum * 0.2;
        }
    }
    out
}

#[test]
fn jacobi2d_composed_from_1d_primitives_is_bit_exact() {
    let (rows, cols) = (24usize, 32usize);
    let prog = jacobi2d_lowered(rows as i64, cols as i64);
    let kernel = lift_codegen::compile_kernel("jacobi2d5pt", &prog).expect("compiles");
    let input: Vec<f32> = (0..rows * cols)
        .map(|i| ((i * 37) % 101) as f32 * 0.25)
        .collect();
    for profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(profile);
        let out = dev
            .run(
                &kernel,
                &[input.clone().into()],
                LaunchConfig::d2(cols, rows, 8, 8),
            )
            .expect("runs");
        assert_eq!(
            out.output.as_f32(),
            reference_jacobi2d(&input, rows, cols).as_slice(),
            "mismatch on {}",
            dev.profile().name
        );
    }
}

#[test]
fn generated_source_contains_no_materialisation() {
    let prog = jacobi2d_lowered(16, 16);
    let kernel = lift_codegen::compile_kernel("jacobi2d5pt", &prog).expect("compiles");
    let src = kernel.to_source();
    // pad2/slide2 are views: the kernel must have exactly two loops (rows,
    // cols) and no local/private buffers.
    assert!(!src.contains("__local"));
    assert_eq!(src.matches("for (").count(), 2, "source:\n{src}");
}
