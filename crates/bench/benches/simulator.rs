//! Microbenchmark of the virtual OpenCL device: wall-clock cost of
//! interpreting one kernel launch (this bounds how many tuner evaluations
//! per second the harness can afford). Plain std timing — no external
//! benchmark framework is available in this environment.

use std::hint::black_box;
use std::time::Instant;

use lift_driver::Pipeline;
use lift_oclsim::{BufferData, DeviceProfile, VirtualDevice};
use lift_stencils::by_name;

fn main() {
    let bench = by_name("Jacobi2D5pt");
    let sizes = [64usize, 64];
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let compiled = Pipeline::from_benchmark(&bench, &sizes)
        .expect("pipeline")
        .explore()
        .expect("explores")
        .on(&dev)
        .with_config("global", &[("lx", 16), ("ly", 8)])
        .expect("compiles");
    let inputs: Vec<BufferData> = bench
        .gen_inputs(&sizes, 1)
        .into_iter()
        .map(BufferData::F32)
        .collect();

    // Warm up, then time a few batches and keep the best mean.
    black_box(compiled.run(&inputs).expect("runs"));
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..10 {
            black_box(compiled.run(black_box(&inputs)).expect("runs"));
        }
        best = best.min(t.elapsed().as_secs_f64() / 10.0);
    }
    let elems = (sizes[0] * sizes[1]) as f64;
    println!(
        "virtual_device/jacobi2d_64x64_k20c  {:>10.3} ms/launch  ({:.2} Melem/s interpreted)",
        best * 1e3,
        elems / best / 1e6
    );
}
