//! Microbenchmark suite for the virtual OpenCL device: wall-clock cost of
//! one kernel launch under both execution engines (this bounds how many
//! tuner evaluations per second the harness can afford), plus the one-time
//! cost of compiling a kernel's execution plan. Plain std timing — no
//! external benchmark framework is available in this environment.
//!
//! The cases and timing protocol live in `lift_harness::perf` and also
//! feed `lift-harness perf --json` (the `BENCH_sim.json` report CI
//! tracks); this target is the interactive `cargo bench` view of the very
//! same measurements.

use lift_harness::perf::microbenches;

fn main() {
    println!("virtual device, one launch (K20c profile):");
    for m in microbenches().expect("microbenches run") {
        println!(
            "  {:28} tree {:8.3} ms  plan {:8.3} ms  \
             ({:4.1}x, {:7.2} Melem/s, plan-compile {:6.1} us)",
            m.name,
            m.tree_ms,
            m.plan_ms,
            m.tree_ms / m.plan_ms,
            m.elems as f64 / (m.plan_ms * 1e-3) / 1e6,
            m.plan_compile_us,
        );
    }
}
