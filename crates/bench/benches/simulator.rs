//! Criterion microbenchmarks of the virtual OpenCL device: wall-clock cost
//! of interpreting one kernel launch (this bounds how many tuner
//! evaluations per second the harness can afford).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lift_codegen::compile_kernel;
use lift_oclsim::{BufferData, DeviceProfile, LaunchConfig, VirtualDevice};
use lift_rewrite::enumerate_variants;
use lift_stencils::by_name;

fn bench_simulator(c: &mut Criterion) {
    let bench = by_name("Jacobi2D5pt");
    let sizes = [64usize, 64];
    let prog = bench.program(&sizes);
    let variants = enumerate_variants(&prog);
    let global = variants.iter().find(|v| v.name == "global").expect("exists");
    let kernel = compile_kernel("jacobi2d", &global.program).expect("compiles");
    let inputs: Vec<BufferData> = bench
        .gen_inputs(&sizes, 1)
        .into_iter()
        .map(BufferData::F32)
        .collect();
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    let launch = LaunchConfig::d2(64, 64, 16, 8);

    let mut g = c.benchmark_group("virtual_device");
    g.throughput(Throughput::Elements((sizes[0] * sizes[1]) as u64));
    g.bench_function("jacobi2d_64x64_k20c", |b| {
        b.iter(|| {
            dev.run(black_box(&kernel), black_box(&inputs), launch)
                .expect("runs")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
