//! Regenerates Figure 7 (Lift vs hand-written kernels on three virtual
//! GPUs) — `cargo bench --bench fig7`.

fn main() {
    let rows = lift_harness::fig7();
    print!("{}", lift_harness::report::render_fig7(&rows));
}
