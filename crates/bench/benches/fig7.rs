//! Regenerates Figure 7 (Lift vs hand-written kernels on three virtual
//! GPUs) — `cargo bench --bench fig7`.

fn main() {
    match lift_harness::fig7() {
        Ok(rows) => print!("{}", lift_harness::report::render_fig7(&rows)),
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
