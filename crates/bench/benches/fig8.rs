//! Regenerates Figure 8 (Lift speedup over the PPCG baseline, small and
//! large sizes; large sizes skip the ARM device as in the paper) —
//! `cargo bench --bench fig8`.

fn main() {
    let rows = lift_harness::fig8();
    print!("{}", lift_harness::report::render_fig8(&rows));
}
