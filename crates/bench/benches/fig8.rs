//! Regenerates Figure 8 (Lift speedup over the PPCG baseline, small and
//! large sizes; large sizes skip the ARM device as in the paper) —
//! `cargo bench --bench fig8`.

fn main() {
    match lift_harness::fig8() {
        Ok(rows) => print!("{}", lift_harness::report::render_fig8(&rows)),
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
