//! Criterion microbenchmarks of the compilation pipeline itself: how fast
//! are type checking, the tiling rewrite, variant enumeration and OpenCL
//! code generation? (The paper's pipeline runs thousands of these during
//! exploration, so compiler throughput matters.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lift_codegen::compile_kernel;
use lift_core::typecheck::typecheck_fun;
use lift_rewrite::enumerate_variants;
use lift_stencils::by_name;

fn bench_typecheck(c: &mut Criterion) {
    let prog = by_name("Jacobi2D5pt").program(&[128, 128]);
    c.bench_function("typecheck_jacobi2d", |b| {
        b.iter(|| typecheck_fun(black_box(&prog)).expect("typechecks"))
    });
    let prog3 = by_name("Acoustic").program(&[16, 16, 16]);
    c.bench_function("typecheck_acoustic", |b| {
        b.iter(|| typecheck_fun(black_box(&prog3)).expect("typechecks"))
    });
}

fn bench_rewriting(c: &mut Criterion) {
    let prog = by_name("Jacobi2D5pt").program(&[128, 128]);
    c.bench_function("enumerate_variants_jacobi2d", |b| {
        b.iter(|| enumerate_variants(black_box(&prog)))
    });
}

fn bench_codegen(c: &mut Criterion) {
    let prog = by_name("Jacobi2D5pt").program(&[128, 128]);
    let variants = enumerate_variants(&prog);
    let global = variants.iter().find(|v| v.name == "global").expect("exists");
    c.bench_function("codegen_jacobi2d_global", |b| {
        b.iter(|| compile_kernel("k", black_box(&global.program)).expect("compiles"))
    });
    let tiled = variants.iter().find(|v| v.name == "tiled-local");
    if let Some(tiled) = tiled {
        let bound =
            lift_rewrite::strategy::bind_tunables(tiled, &[("TS".into(), 10)]).expect("valid");
        c.bench_function("codegen_jacobi2d_tiled_local", |b| {
            b.iter(|| compile_kernel("k", black_box(&bound)).expect("compiles"))
        });
    }
}

criterion_group!(benches, bench_typecheck, bench_rewriting, bench_codegen);
criterion_main!(benches);
