//! Microbenchmarks of the compilation pipeline itself: how fast are type
//! checking, variant enumeration and OpenCL code generation? (The pipeline
//! runs thousands of these during exploration, so compiler throughput
//! matters.) Plain std timing — no external benchmark framework is
//! available in this environment.

use std::hint::black_box;
use std::time::Instant;

use lift_codegen::compile_kernel;
use lift_core::typecheck::typecheck_fun;
use lift_rewrite::enumerate_variants;
use lift_stencils::by_name;

/// Runs `f` repeatedly for roughly a fixed wall budget and reports the
/// best-of-batch mean, criterion-style but tiny.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm up and estimate a batch size targeting ~20ms per batch.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let batch = ((0.02 / once) as usize).clamp(1, 10_000);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
    }
    println!("{name:<34} {:>12.3} us/iter", best * 1e6);
}

fn main() {
    let prog = by_name("Jacobi2D5pt").program(&[128, 128]);
    bench("typecheck_jacobi2d", || {
        typecheck_fun(black_box(&prog)).expect("typechecks")
    });
    let prog3 = by_name("Acoustic").program(&[16, 16, 16]);
    bench("typecheck_acoustic", || {
        typecheck_fun(black_box(&prog3)).expect("typechecks")
    });

    bench("enumerate_variants_jacobi2d", || {
        enumerate_variants(black_box(&prog))
    });

    let variants = enumerate_variants(&prog);
    let global = variants
        .iter()
        .find(|v| v.name == "global")
        .expect("exists");
    bench("codegen_jacobi2d_global", || {
        compile_kernel("k", black_box(&global.program)).expect("compiles")
    });
    if let Some(tiled) = variants.iter().find(|v| v.name == "tiled-local") {
        let bound =
            lift_rewrite::strategy::bind_tunables(tiled, &[("TS0".into(), 10), ("TS1".into(), 10)])
                .expect("valid");
        bench("codegen_jacobi2d_tiled_local", || {
            compile_kernel("k", black_box(&bound)).expect("compiles")
        });
    }
}
