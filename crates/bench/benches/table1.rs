//! Regenerates Table 1 (benchmark inventory) — `cargo bench --bench table1`.

fn main() {
    print!(
        "{}",
        lift_harness::report::render_table1(&lift_harness::table1())
    );
}
