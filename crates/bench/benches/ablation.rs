//! Regenerates the rewrite-rule ablation (which optimisation pays on which
//! device, §7.2) — `cargo bench --bench ablation`.

fn main() {
    match lift_harness::ablation(&["Jacobi2D5pt", "Gaussian", "Jacobi3D7pt", "Heat"]) {
        Ok(rows) => print!("{}", lift_harness::report::render_ablation(&rows)),
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
