//! Benchmark harness crate: the `benches/` targets regenerate every table
//! and figure of the paper's evaluation under `cargo bench`.
//!
//! * `table1` — the benchmark inventory (Table 1);
//! * `fig7` — Lift vs hand-written kernels on three devices (Figure 7);
//! * `fig8` — Lift vs the PPCG baseline, small & large sizes (Figure 8);
//! * `ablation` — per-rewrite-variant value (the §7.2 findings);
//! * `compiler` — Criterion microbenchmarks of the compilation pipeline
//!   itself (typecheck, rewrite, codegen);
//! * `simulator` — Criterion microbenchmarks of the virtual device.
//!
//! Knobs: `LIFT_TUNE_BUDGET` (evaluations per variant, default 10),
//! `LIFT_FULL_SIZES=1` (paper-sized grids), `LIFT_SEED`.

#![forbid(unsafe_code)]

/// Marker so the crate builds a (tiny) library alongside the bench targets.
pub const PAPER: &str = "High Performance Stencil Code Generation with Lift, CGO 2018";
