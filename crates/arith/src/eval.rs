//! Evaluation of symbolic expressions under variable bindings.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::expr::{ArithExpr, Name};

/// An environment supplying integer values for variables.
///
/// Implemented by [`Bindings`] and by closures via the blanket impl for
/// `Fn(&str) -> Option<i64>`.
pub trait ArithEnv {
    /// Looks up the value bound to `name`, if any.
    fn lookup(&self, name: &str) -> Option<i64>;
}

impl<F: Fn(&str) -> Option<i64>> ArithEnv for F {
    fn lookup(&self, name: &str) -> Option<i64> {
        self(name)
    }
}

/// A simple map-backed [`ArithEnv`].
///
/// ```
/// use lift_arith::{ArithExpr, Bindings};
/// let env = Bindings::from_iter([("N", 16), ("M", 4)]);
/// let e = ArithExpr::var("N") / ArithExpr::var("M");
/// assert_eq!(e.eval(&env).unwrap(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    map: HashMap<Name, i64>,
}

impl Bindings {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to `value`, returning the previous value if present.
    pub fn set(&mut self, name: impl AsRef<str>, value: i64) -> Option<i64> {
        self.map.insert(Name::from(name.as_ref()), value)
    }

    /// Returns the value bound to `name`.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.map.get(name).copied()
    }

    /// Iterates over all `(name, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.map.iter().map(|(k, v)| (&**k, *v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl ArithEnv for Bindings {
    fn lookup(&self, name: &str) -> Option<i64> {
        self.get(name)
    }
}

impl<S: AsRef<str>> FromIterator<(S, i64)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (S, i64)>>(iter: I) -> Self {
        let mut b = Bindings::new();
        for (k, v) in iter {
            b.set(k, v);
        }
        b
    }
}

impl<S: AsRef<str>> Extend<(S, i64)> for Bindings {
    fn extend<I: IntoIterator<Item = (S, i64)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.set(k, v);
        }
    }
}

/// Error produced when [`ArithExpr::eval`] cannot compute a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalArithError {
    /// A variable had no binding in the environment.
    UnboundVariable(Name),
    /// A division or remainder had divisor zero.
    DivisionByZero(String),
}

impl fmt::Display for EvalArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalArithError::UnboundVariable(v) => write!(f, "unbound arithmetic variable `{v}`"),
            EvalArithError::DivisionByZero(e) => write!(f, "division by zero in `{e}`"),
        }
    }
}

impl Error for EvalArithError {}

impl ArithExpr {
    /// Evaluates the expression under `env`.
    ///
    /// Division and remainder are Euclidean ([`i64::div_euclid`] /
    /// [`i64::rem_euclid`]), which coincides with C semantics for the
    /// non-negative operands produced by well-formed size and index
    /// expressions.
    ///
    /// # Errors
    ///
    /// Returns [`EvalArithError::UnboundVariable`] if a variable is missing
    /// from `env` and [`EvalArithError::DivisionByZero`] if a divisor
    /// evaluates to zero.
    pub fn eval(&self, env: &impl ArithEnv) -> Result<i64, EvalArithError> {
        self.eval_dyn(&|n| env.lookup(n))
    }

    fn eval_dyn(&self, env: &dyn Fn(&str) -> Option<i64>) -> Result<i64, EvalArithError> {
        match self {
            ArithExpr::Cst(c) => Ok(*c),
            ArithExpr::Var(v) => env(v).ok_or_else(|| EvalArithError::UnboundVariable(v.clone())),
            ArithExpr::Sum(ts) => {
                let mut acc = 0i64;
                for t in ts {
                    acc = acc.wrapping_add(t.eval_dyn(env)?);
                }
                Ok(acc)
            }
            ArithExpr::Prod(ts) => {
                let mut acc = 1i64;
                for t in ts {
                    acc = acc.wrapping_mul(t.eval_dyn(env)?);
                }
                Ok(acc)
            }
            ArithExpr::Div(a, b) => {
                let d = b.eval_dyn(env)?;
                if d == 0 {
                    return Err(EvalArithError::DivisionByZero(self.to_string()));
                }
                Ok(a.eval_dyn(env)?.div_euclid(d))
            }
            ArithExpr::Mod(a, b) => {
                let d = b.eval_dyn(env)?;
                if d == 0 {
                    return Err(EvalArithError::DivisionByZero(self.to_string()));
                }
                Ok(a.eval_dyn(env)?.rem_euclid(d))
            }
            ArithExpr::Min(a, b) => Ok(a.eval_dyn(env)?.min(b.eval_dyn(env)?)),
            ArithExpr::Max(a, b) => Ok(a.eval_dyn(env)?.max(b.eval_dyn(env)?)),
        }
    }

    /// Evaluates the expression expecting all variables bound, returning a
    /// `usize` and failing on negative results.
    ///
    /// Convenience for size expressions that are non-negative by
    /// construction.
    ///
    /// # Errors
    ///
    /// As [`ArithExpr::eval`]; additionally maps negative results onto
    /// [`EvalArithError::DivisionByZero`]-style errors is *not* done —
    /// negative results panic, since a negative array size is a compiler
    /// invariant violation, not an input error.
    ///
    /// # Panics
    ///
    /// Panics if the evaluated value is negative.
    pub fn eval_usize(&self, env: &impl ArithEnv) -> Result<usize, EvalArithError> {
        let v = self.eval(env)?;
        assert!(v >= 0, "size expression `{self}` evaluated to negative {v}");
        Ok(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        let env = Bindings::from_iter([("N", 10), ("M", 3)]);
        let n = ArithExpr::var("N");
        let m = ArithExpr::var("M");
        assert_eq!((n.clone() + m.clone()).eval(&env).unwrap(), 13);
        assert_eq!((n.clone() * m.clone()).eval(&env).unwrap(), 30);
        assert_eq!((n.clone() / m.clone()).eval(&env).unwrap(), 3);
        assert_eq!((n % m).eval(&env).unwrap(), 1);
    }

    #[test]
    fn eval_euclidean() {
        let env = Bindings::new();
        let e = ArithExpr::from(-7) / ArithExpr::from(2);
        assert_eq!(e.eval(&env).unwrap(), -4); // folded at construction
    }

    #[test]
    fn eval_unbound() {
        let env = Bindings::new();
        let e = ArithExpr::var("N");
        assert_eq!(
            e.eval(&env),
            Err(EvalArithError::UnboundVariable(Name::from("N")))
        );
    }

    #[test]
    fn eval_div_by_zero_reports_expr() {
        let env = Bindings::from_iter([("N", 4), ("Z", 0)]);
        let e = ArithExpr::Div(Box::new(ArithExpr::var("N")), Box::new(ArithExpr::var("Z")));
        match e.eval(&env) {
            Err(EvalArithError::DivisionByZero(s)) => assert!(s.contains('Z')),
            other => panic!("expected division-by-zero error, got {other:?}"),
        }
    }

    #[test]
    fn closures_are_envs() {
        let e = ArithExpr::var("X") + 1;
        let v = e.eval(&|n: &str| (n == "X").then_some(41)).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eval_usize_ok() {
        let env = Bindings::from_iter([("N", 5)]);
        assert_eq!(ArithExpr::var("N").eval_usize(&env).unwrap(), 5);
    }

    #[test]
    #[should_panic(expected = "evaluated to negative")]
    fn eval_usize_negative_panics() {
        let env = Bindings::from_iter([("N", -5)]);
        let _ = ArithExpr::var("N").eval_usize(&env);
    }
}
