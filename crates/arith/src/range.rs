//! Conservative interval analysis over symbolic expressions.
//!
//! The code generator uses ranges to prove that pad-reindexing functions stay
//! in bounds, to decide whether a loop can be unrolled (constant trip count)
//! and to elide boundary `select`s when an index provably never leaves the
//! valid region.

use crate::expr::ArithExpr;

/// A closed integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Returns `true` if every value of `self` lies within `[lo, hi]`.
    pub fn within(&self, lo: i64, hi: i64) -> bool {
        self.lo >= lo && self.hi <= hi
    }

    fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo.saturating_add(o.lo), self.hi.saturating_add(o.hi))
    }

    fn mul(self, o: Interval) -> Interval {
        let candidates = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval::new(
            *candidates.iter().min().expect("non-empty"),
            *candidates.iter().max().expect("non-empty"),
        )
    }
}

/// An environment supplying a value interval for each variable.
pub trait RangeEnv {
    /// The interval a variable is known to lie in, if known.
    fn range_of(&self, name: &str) -> Option<Interval>;
}

impl<F: Fn(&str) -> Option<Interval>> RangeEnv for F {
    fn range_of(&self, name: &str) -> Option<Interval> {
        self(name)
    }
}

impl ArithExpr {
    /// Computes a conservative interval for the expression under `env`,
    /// or `None` when a variable range is unknown or an operation cannot be
    /// bounded (e.g. division by an interval containing zero).
    ///
    /// The result is sound: the true value always lies within the returned
    /// interval (assuming the variable ranges are sound).
    ///
    /// ```
    /// use lift_arith::{ArithExpr, range::Interval};
    /// let i = ArithExpr::var("i"); // a loop index in [0, 9]
    /// let e = i * 2 + 1;
    /// let r = e
    ///     .interval(&|n: &str| (n == "i").then_some(Interval::new(0, 9)))
    ///     .unwrap();
    /// assert_eq!(r, Interval::new(1, 19));
    /// ```
    pub fn interval(&self, env: &impl RangeEnv) -> Option<Interval> {
        self.interval_dyn(&|n| env.range_of(n))
    }

    fn interval_dyn(&self, env: &dyn Fn(&str) -> Option<Interval>) -> Option<Interval> {
        match self {
            ArithExpr::Cst(c) => Some(Interval::point(*c)),
            ArithExpr::Var(v) => env(v),
            ArithExpr::Sum(ts) => {
                let mut acc = Interval::point(0);
                for t in ts {
                    acc = acc.add(t.interval_dyn(env)?);
                }
                Some(acc)
            }
            ArithExpr::Prod(ts) => {
                let mut acc = Interval::point(1);
                for t in ts {
                    acc = acc.mul(t.interval_dyn(env)?);
                }
                Some(acc)
            }
            ArithExpr::Div(a, b) => {
                let (ra, rb) = (a.interval_dyn(env)?, b.interval_dyn(env)?);
                // Only the common case of a strictly positive divisor is
                // needed by the compiler; anything else is "unknown".
                if rb.lo <= 0 {
                    return None;
                }
                let candidates = [
                    ra.lo.div_euclid(rb.lo),
                    ra.lo.div_euclid(rb.hi),
                    ra.hi.div_euclid(rb.lo),
                    ra.hi.div_euclid(rb.hi),
                ];
                Some(Interval::new(
                    *candidates.iter().min().expect("non-empty"),
                    *candidates.iter().max().expect("non-empty"),
                ))
            }
            ArithExpr::Mod(_, b) => {
                let rb = b.interval_dyn(env)?;
                if rb.lo <= 0 {
                    return None;
                }
                Some(Interval::new(0, rb.hi - 1))
            }
            ArithExpr::Min(a, b) => {
                let (ra, rb) = (a.interval_dyn(env)?, b.interval_dyn(env)?);
                Some(Interval::new(ra.lo.min(rb.lo), ra.hi.min(rb.hi)))
            }
            ArithExpr::Max(a, b) => {
                let (ra, rb) = (a.interval_dyn(env)?, b.interval_dyn(env)?);
                Some(Interval::new(ra.lo.max(rb.lo), ra.hi.max(rb.hi)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, Interval)]) -> impl Fn(&str) -> Option<Interval> + 'a {
        move |n: &str| pairs.iter().find(|(k, _)| *k == n).map(|(_, v)| *v)
    }

    #[test]
    fn constants_are_points() {
        let e = ArithExpr::from(5);
        assert_eq!(e.interval(&env(&[])), Some(Interval::point(5)));
    }

    #[test]
    fn sums_and_products() {
        let i = ArithExpr::var("i");
        let bound = [("i", Interval::new(0, 7))];
        assert_eq!(
            (i.clone() + 3).interval(&env(&bound)),
            Some(Interval::new(3, 10))
        );
        assert_eq!(
            (i.clone() * -2).interval(&env(&bound)),
            Some(Interval::new(-14, 0))
        );
        assert_eq!(
            (i.clone() * i).interval(&env(&bound)),
            Some(Interval::new(0, 49))
        );
    }

    #[test]
    fn division_positive_divisor() {
        let i = ArithExpr::var("i");
        let bound = [("i", Interval::new(0, 9))];
        let e = ArithExpr::Div(Box::new(i), Box::new(ArithExpr::from(2)));
        assert_eq!(e.interval(&env(&bound)), Some(Interval::new(0, 4)));
    }

    #[test]
    fn division_by_maybe_zero_unknown() {
        let d = ArithExpr::var("d");
        let bound = [("d", Interval::new(0, 4))];
        let e = ArithExpr::Div(Box::new(ArithExpr::from(8)), Box::new(d));
        assert_eq!(e.interval(&env(&bound)), None);
    }

    #[test]
    fn modulo_bounded_by_divisor() {
        let i = ArithExpr::var("i");
        let bound = [("i", Interval::new(-100, 100))];
        let e = ArithExpr::Mod(Box::new(i), Box::new(ArithExpr::from(8)));
        assert_eq!(e.interval(&env(&bound)), Some(Interval::new(0, 7)));
    }

    #[test]
    fn clamp_pattern_stays_in_bounds() {
        // clamp(i, 0, N-1) written as max(0, min(i, N-1)) with i in [-1, N].
        let i = ArithExpr::var("i");
        let n_minus_1 = ArithExpr::from(15);
        let clamped = ArithExpr::max(ArithExpr::from(0), ArithExpr::min(i, n_minus_1));
        let bound = [("i", Interval::new(-1, 16))];
        let r = clamped.interval(&env(&bound)).unwrap();
        assert!(r.within(0, 15));
    }

    #[test]
    fn unknown_var_gives_none() {
        let e = ArithExpr::var("mystery") + 1;
        assert_eq!(e.interval(&env(&[])), None);
    }

    #[test]
    #[should_panic(expected = "malformed interval")]
    fn malformed_interval_panics() {
        let _ = Interval::new(3, 1);
    }
}
