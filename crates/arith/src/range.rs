//! Conservative interval analysis over symbolic expressions.
//!
//! The code generator uses ranges to prove that pad-reindexing functions stay
//! in bounds, to decide whether a loop can be unrolled (constant trip count)
//! and to elide boundary `select`s when an index provably never leaves the
//! valid region. The static kernel verifier (`lift-oclsim`'s `verify`
//! module) reuses [`Interval`] as its abstract value domain, which is why
//! the transfer functions below are public and exist in two division
//! flavours: the Euclidean ones ([`Interval::div_euclid`],
//! [`Interval::rem_euclid`]) match [`ArithExpr::eval`], while the
//! truncating ones ([`Interval::div_trunc`], [`Interval::rem_trunc`])
//! match C's `/` and `%` as the kernel simulator executes them — using the
//! Euclidean rules on C expressions would be unsound for negative
//! dividends (`-1 % 8` is `7` Euclidean but `-1` in C).

use crate::expr::ArithExpr;

/// A closed integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

// The arithmetic methods deliberately stay inherent rather than `std::ops`
// implementations: every one saturates, and hiding that behind `+`/`-`/`*`
// operators would read as exact arithmetic.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Returns `true` if every value of `self` lies within `[lo, hi]`.
    pub fn within(&self, lo: i64, hi: i64) -> bool {
        self.lo >= lo && self.hi <= hi
    }

    /// Sum of two intervals (saturating at the `i64` range).
    pub fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo.saturating_add(o.lo), self.hi.saturating_add(o.hi))
    }

    /// Difference of two intervals.
    pub fn sub(self, o: Interval) -> Interval {
        self.add(o.neg())
    }

    /// Negation.
    pub fn neg(self) -> Interval {
        Interval::new(self.hi.saturating_neg(), self.lo.saturating_neg())
    }

    /// Product of two intervals.
    pub fn mul(self, o: Interval) -> Interval {
        let candidates = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval::new(
            *candidates.iter().min().expect("non-empty"),
            *candidates.iter().max().expect("non-empty"),
        )
    }

    /// Element-wise minimum (`min(a, b)` over all pairs).
    pub fn min(self, o: Interval) -> Interval {
        Interval::new(self.lo.min(o.lo), self.hi.min(o.hi))
    }

    /// Element-wise maximum.
    pub fn max(self, o: Interval) -> Interval {
        Interval::new(self.lo.max(o.lo), self.hi.max(o.hi))
    }

    /// Convex hull of two intervals (abstract join).
    pub fn join(self, o: Interval) -> Interval {
        Interval::new(self.lo.min(o.lo), self.hi.max(o.hi))
    }

    /// Intersection, or `None` when the intervals are disjoint.
    pub fn intersect(self, o: Interval) -> Option<Interval> {
        let (lo, hi) = (self.lo.max(o.lo), self.hi.min(o.hi));
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    /// The interval clamped into `[lo, hi]` — the range of
    /// `max(lo, min(x, hi))` for `x` in `self`.
    pub fn clamp_to(self, lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "malformed clamp range [{lo}, {hi}]");
        Interval::new(self.lo.clamp(lo, hi), self.hi.clamp(lo, hi))
    }

    /// Euclidean division (matches [`ArithExpr::eval`]), or `None` when
    /// the divisor interval admits zero or a sign change (the quotient is
    /// then unbounded in the worst case).
    pub fn div_euclid(self, d: Interval) -> Option<Interval> {
        if d.lo <= 0 {
            return if d.hi < 0 {
                // Negative divisor: a / d == -(a / -d) under both floor
                // and truncation, so reuse the positive-divisor rule.
                self.div_euclid(d.neg()).map(Interval::neg)
            } else {
                None
            };
        }
        let candidates = [
            self.lo.div_euclid(d.lo),
            self.lo.div_euclid(d.hi),
            self.hi.div_euclid(d.lo),
            self.hi.div_euclid(d.hi),
        ];
        Some(Interval::new(
            *candidates.iter().min().expect("non-empty"),
            *candidates.iter().max().expect("non-empty"),
        ))
    }

    /// Euclidean remainder: always in `[0, |d|-1]`, tightened to `self`
    /// when the dividend already lies inside that band.
    pub fn rem_euclid(self, d: Interval) -> Option<Interval> {
        if d.lo <= 0 && d.hi >= 0 {
            return None;
        }
        let m = d.lo.abs().max(d.hi.abs());
        let band = Interval::new(0, m - 1);
        // `x.rem_euclid(d) == x` whenever `0 <= x < min |d|`.
        let dmin = d.lo.abs().min(d.hi.abs());
        if self.lo >= 0 && self.hi < dmin {
            return Some(self);
        }
        Some(band)
    }

    /// C truncating division (the simulator's `/` on integers), or `None`
    /// when the divisor interval admits zero.
    ///
    /// Truncating division is monotone in the dividend and, for a
    /// sign-stable divisor, monotone in the divisor — so the four corner
    /// quotients bound the result.
    pub fn div_trunc(self, d: Interval) -> Option<Interval> {
        if d.lo <= 0 && d.hi >= 0 {
            return None;
        }
        let candidates = [
            self.lo.wrapping_div(d.lo),
            self.lo.wrapping_div(d.hi),
            self.hi.wrapping_div(d.lo),
            self.hi.wrapping_div(d.hi),
        ];
        Some(Interval::new(
            *candidates.iter().min().expect("non-empty"),
            *candidates.iter().max().expect("non-empty"),
        ))
    }

    /// C remainder (the simulator's `%`): the sign follows the dividend,
    /// so the result lies in `[-(|d|-1), |d|-1]` intersected with the
    /// dividend's sign, and never exceeds the dividend's own magnitude.
    /// `None` when the divisor interval admits zero.
    pub fn rem_trunc(self, d: Interval) -> Option<Interval> {
        if d.lo <= 0 && d.hi >= 0 {
            return None;
        }
        let m = d.lo.abs().max(d.hi.abs()) - 1;
        let lo = if self.lo >= 0 {
            0
        } else {
            m.saturating_neg().max(self.lo)
        };
        let hi = if self.hi <= 0 { 0 } else { m.min(self.hi) };
        Some(Interval::new(lo, hi))
    }

    /// An upper bound on the iterations of `for (i = self; i < bound;
    /// i += step)`: the counter starts no lower than `self.lo`, the bound
    /// is at most `bound.hi`, and each step advances by at least `step`.
    /// `None` when `step <= 0` (the loop may never terminate).
    pub fn trip_count(self, bound: Interval, step: i64) -> Option<u64> {
        let span = bound.hi.saturating_sub(self.lo);
        if span <= 0 {
            return Some(0);
        }
        if step <= 0 {
            return None;
        }
        Some((span as u64).div_ceil(step as u64))
    }
}

/// An environment supplying a value interval for each variable.
pub trait RangeEnv {
    /// The interval a variable is known to lie in, if known.
    fn range_of(&self, name: &str) -> Option<Interval>;
}

impl<F: Fn(&str) -> Option<Interval>> RangeEnv for F {
    fn range_of(&self, name: &str) -> Option<Interval> {
        self(name)
    }
}

impl ArithExpr {
    /// Computes a conservative interval for the expression under `env`,
    /// or `None` when a variable range is unknown or an operation cannot be
    /// bounded (e.g. division by an interval containing zero).
    ///
    /// The result is sound: the true value always lies within the returned
    /// interval (assuming the variable ranges are sound).
    ///
    /// ```
    /// use lift_arith::{ArithExpr, range::Interval};
    /// let i = ArithExpr::var("i"); // a loop index in [0, 9]
    /// let e = i * 2 + 1;
    /// let r = e
    ///     .interval(&|n: &str| (n == "i").then_some(Interval::new(0, 9)))
    ///     .unwrap();
    /// assert_eq!(r, Interval::new(1, 19));
    /// ```
    pub fn interval(&self, env: &impl RangeEnv) -> Option<Interval> {
        self.interval_dyn(&|n| env.range_of(n))
    }

    fn interval_dyn(&self, env: &dyn Fn(&str) -> Option<Interval>) -> Option<Interval> {
        match self {
            ArithExpr::Cst(c) => Some(Interval::point(*c)),
            ArithExpr::Var(v) => env(v),
            ArithExpr::Sum(ts) => {
                let mut acc = Interval::point(0);
                for t in ts {
                    acc = acc.add(t.interval_dyn(env)?);
                }
                Some(acc)
            }
            ArithExpr::Prod(ts) => {
                let mut acc = Interval::point(1);
                for t in ts {
                    acc = acc.mul(t.interval_dyn(env)?);
                }
                Some(acc)
            }
            ArithExpr::Div(a, b) => {
                let (ra, rb) = (a.interval_dyn(env)?, b.interval_dyn(env)?);
                ra.div_euclid(rb)
            }
            ArithExpr::Mod(a, b) => {
                let (ra, rb) = (a.interval_dyn(env)?, b.interval_dyn(env)?);
                ra.rem_euclid(rb)
            }
            ArithExpr::Min(a, b) => {
                let (ra, rb) = (a.interval_dyn(env)?, b.interval_dyn(env)?);
                Some(ra.min(rb))
            }
            ArithExpr::Max(a, b) => {
                let (ra, rb) = (a.interval_dyn(env)?, b.interval_dyn(env)?);
                Some(ra.max(rb))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, Interval)]) -> impl Fn(&str) -> Option<Interval> + 'a {
        move |n: &str| pairs.iter().find(|(k, _)| *k == n).map(|(_, v)| *v)
    }

    #[test]
    fn constants_are_points() {
        let e = ArithExpr::from(5);
        assert_eq!(e.interval(&env(&[])), Some(Interval::point(5)));
    }

    #[test]
    fn sums_and_products() {
        let i = ArithExpr::var("i");
        let bound = [("i", Interval::new(0, 7))];
        assert_eq!(
            (i.clone() + 3).interval(&env(&bound)),
            Some(Interval::new(3, 10))
        );
        assert_eq!(
            (i.clone() * -2).interval(&env(&bound)),
            Some(Interval::new(-14, 0))
        );
        assert_eq!(
            (i.clone() * i).interval(&env(&bound)),
            Some(Interval::new(0, 49))
        );
    }

    #[test]
    fn division_positive_divisor() {
        let i = ArithExpr::var("i");
        let bound = [("i", Interval::new(0, 9))];
        let e = ArithExpr::Div(Box::new(i), Box::new(ArithExpr::from(2)));
        assert_eq!(e.interval(&env(&bound)), Some(Interval::new(0, 4)));
    }

    #[test]
    fn division_by_maybe_zero_unknown() {
        let d = ArithExpr::var("d");
        let bound = [("d", Interval::new(0, 4))];
        let e = ArithExpr::Div(Box::new(ArithExpr::from(8)), Box::new(d));
        assert_eq!(e.interval(&env(&bound)), None);
    }

    #[test]
    fn modulo_bounded_by_divisor() {
        let i = ArithExpr::var("i");
        let bound = [("i", Interval::new(-100, 100))];
        let e = ArithExpr::Mod(Box::new(i), Box::new(ArithExpr::from(8)));
        assert_eq!(e.interval(&env(&bound)), Some(Interval::new(0, 7)));
    }

    #[test]
    fn clamp_pattern_stays_in_bounds() {
        // clamp(i, 0, N-1) written as max(0, min(i, N-1)) with i in [-1, N].
        let i = ArithExpr::var("i");
        let n_minus_1 = ArithExpr::from(15);
        let clamped = ArithExpr::max(ArithExpr::from(0), ArithExpr::min(i, n_minus_1));
        let bound = [("i", Interval::new(-1, 16))];
        let r = clamped.interval(&env(&bound)).unwrap();
        assert!(r.within(0, 15));
    }

    #[test]
    fn unknown_var_gives_none() {
        let e = ArithExpr::var("mystery") + 1;
        assert_eq!(e.interval(&env(&[])), None);
    }

    #[test]
    #[should_panic(expected = "malformed interval")]
    fn malformed_interval_panics() {
        let _ = Interval::new(3, 1);
    }

    #[test]
    fn trip_count_bounds_simple_loops() {
        // for (i = 0; i < 10; i += 1): exactly 10 trips.
        let c = Interval::point(0).trip_count(Interval::point(10), 1);
        assert_eq!(c, Some(10));
        // Step 3 over a span of 10: ceil(10/3) = 4 trips.
        let c = Interval::point(0).trip_count(Interval::point(10), 3);
        assert_eq!(c, Some(4));
        // Counter already past the bound: zero trips.
        let c = Interval::point(10).trip_count(Interval::new(-5, 10), 1);
        assert_eq!(c, Some(0));
        // Widest case uses the counter's low end and the bound's high end.
        let c = Interval::new(2, 7).trip_count(Interval::new(0, 9), 1);
        assert_eq!(c, Some(7));
        // A non-positive step may never terminate.
        assert_eq!(Interval::point(0).trip_count(Interval::point(10), 0), None);
        assert_eq!(Interval::point(0).trip_count(Interval::point(10), -1), None);
        // Extreme spans saturate instead of overflowing.
        let c = Interval::point(i64::MIN).trip_count(Interval::point(i64::MAX), 1);
        assert_eq!(c, Some(i64::MAX as u64));
    }

    /// `trip_count` is sound: any concrete `(start, bound)` drawn from the
    /// intervals runs `for (i = start; i < bound; i += step)` for at most
    /// the reported number of iterations.
    #[test]
    fn trip_count_is_sound_on_a_grid() {
        let vals: Vec<i64> = (-6..=6).collect();
        for &slo in &vals {
            for &shi in &vals {
                if shi < slo {
                    continue;
                }
                for &blo in &vals {
                    for &bhi in &vals {
                        if bhi < blo {
                            continue;
                        }
                        for step in 1..=3i64 {
                            let limit = Interval::new(slo, shi)
                                .trip_count(Interval::new(blo, bhi), step)
                                .expect("positive step");
                            for start in slo..=shi {
                                for bound in blo..=bhi {
                                    let mut trips = 0u64;
                                    let mut i = start;
                                    while i < bound {
                                        trips += 1;
                                        i += step;
                                    }
                                    assert!(
                                        trips <= limit,
                                        "for(i={start}; i<{bound}; i+={step}) ran \
                                         {trips} > bound {limit}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn modulo_tightens_to_an_in_band_dividend() {
        // `i % 8` with i already in [2, 5] is just i.
        let i = ArithExpr::var("i");
        let e = ArithExpr::Mod(Box::new(i), Box::new(ArithExpr::from(8)));
        let r = e.interval(&env(&[("i", Interval::new(2, 5))]));
        assert_eq!(r, Some(Interval::new(2, 5)));
    }

    #[test]
    fn division_negative_divisor_now_bounded() {
        let i = ArithExpr::var("i");
        let e = ArithExpr::Div(Box::new(i), Box::new(ArithExpr::from(-2)));
        let r = e.interval(&env(&[("i", Interval::new(0, 9))]));
        assert_eq!(r, Some(Interval::new(-4, 0)));
    }

    /// Exhaustive soundness check of every public transfer function
    /// against concrete evaluation over a small grid.
    #[test]
    fn transfer_functions_are_sound_on_a_grid() {
        let vals: Vec<i64> = (-9..=9).collect();
        let ivs: Vec<Interval> = vals
            .iter()
            .flat_map(|&lo| {
                vals.iter()
                    .filter(move |&&hi| hi >= lo)
                    .map(move |&hi| Interval::new(lo, hi))
            })
            .collect();
        for &a in &ivs {
            for &b in &ivs {
                let pairs = || (a.lo..=a.hi).flat_map(move |x| (b.lo..=b.hi).map(move |y| (x, y)));
                for (x, y) in pairs() {
                    assert!(
                        a.add(b).within(i64::MIN, i64::MAX)
                            && a.add(b).lo <= x + y
                            && x + y <= a.add(b).hi
                    );
                    assert!(a.sub(b).lo <= x - y && x - y <= a.sub(b).hi);
                    assert!(a.mul(b).lo <= x * y && x * y <= a.mul(b).hi);
                    assert!(a.min(b).lo <= x.min(y) && x.min(y) <= a.min(b).hi);
                    assert!(a.max(b).lo <= x.max(y) && x.max(y) <= a.max(b).hi);
                    assert!(a.join(b).lo <= x && x <= a.join(b).hi);
                    if y != 0 {
                        if let Some(q) = a.div_trunc(b) {
                            let v = x.wrapping_div(y);
                            assert!(
                                q.lo <= v && v <= q.hi,
                                "{x}/{y} = {v} outside {q:?} for {a:?}/{b:?}"
                            );
                        }
                        if let Some(r) = a.rem_trunc(b) {
                            let v = x.wrapping_rem(y);
                            assert!(
                                r.lo <= v && v <= r.hi,
                                "{x}%{y} = {v} outside {r:?} for {a:?}%{b:?}"
                            );
                        }
                        if let Some(q) = a.div_euclid(b) {
                            let v = x.div_euclid(y);
                            assert!(q.lo <= v && v <= q.hi, "{x} dive {y} = {v} outside {q:?}");
                        }
                        if let Some(r) = a.rem_euclid(b) {
                            let v = x.rem_euclid(y);
                            assert!(r.lo <= v && v <= r.hi, "{x} reme {y} = {v} outside {r:?}");
                        }
                    }
                }
                if let Some(i) = a.intersect(b) {
                    assert!(i.lo >= a.lo && i.hi <= a.hi && i.lo >= b.lo && i.hi <= b.hi);
                } else {
                    assert!(a.hi < b.lo || b.hi < a.lo);
                }
            }
        }
        // clamp_to: range of max(lo, min(x, hi)).
        let a = Interval::new(-3, 20);
        assert_eq!(a.clamp_to(0, 15), Interval::new(0, 15));
        assert_eq!(Interval::new(2, 5).clamp_to(0, 15), Interval::new(2, 5));
        assert_eq!(Interval::new(-7, -4).clamp_to(0, 15), Interval::point(0));
    }
}
