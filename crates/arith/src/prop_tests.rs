//! Property tests: the simplifying constructors must preserve the value of
//! every expression under every environment, and canonicalisation must be
//! idempotent and congruent.

use proptest::prelude::*;

use crate::{ArithExpr, Bindings};

/// A raw, never-simplified expression tree used as the semantic reference.
#[derive(Debug, Clone)]
enum Raw {
    Cst(i64),
    Var(u8),
    Add(Box<Raw>, Box<Raw>),
    Sub(Box<Raw>, Box<Raw>),
    Mul(Box<Raw>, Box<Raw>),
    Div(Box<Raw>, Box<Raw>),
    Mod(Box<Raw>, Box<Raw>),
    Min(Box<Raw>, Box<Raw>),
    Max(Box<Raw>, Box<Raw>),
}

const VAR_NAMES: [&str; 4] = ["N", "M", "K", "P"];

impl Raw {
    /// Direct semantics, independent of the simplifier. Divisors are made
    /// non-zero by the generator (they are `1 + |v|`-shaped).
    fn eval(&self, env: &[i64; 4]) -> i64 {
        match self {
            Raw::Cst(c) => *c,
            Raw::Var(i) => env[*i as usize],
            Raw::Add(a, b) => a.eval(env).wrapping_add(b.eval(env)),
            Raw::Sub(a, b) => a.eval(env).wrapping_sub(b.eval(env)),
            Raw::Mul(a, b) => a.eval(env).wrapping_mul(b.eval(env)),
            Raw::Div(a, b) => a.eval(env).div_euclid(b.eval(env)),
            Raw::Mod(a, b) => a.eval(env).rem_euclid(b.eval(env)),
            Raw::Min(a, b) => a.eval(env).min(b.eval(env)),
            Raw::Max(a, b) => a.eval(env).max(b.eval(env)),
        }
    }

    fn build(&self) -> ArithExpr {
        match self {
            Raw::Cst(c) => ArithExpr::from(*c),
            Raw::Var(i) => ArithExpr::var(VAR_NAMES[*i as usize]),
            Raw::Add(a, b) => a.build() + b.build(),
            Raw::Sub(a, b) => a.build() - b.build(),
            Raw::Mul(a, b) => a.build() * b.build(),
            Raw::Div(a, b) => a.build() / b.build(),
            Raw::Mod(a, b) => a.build() % b.build(),
            Raw::Min(a, b) => ArithExpr::min(a.build(), b.build()),
            Raw::Max(a, b) => ArithExpr::max(a.build(), b.build()),
        }
    }
}

/// Strictly positive sub-expressions, safe as divisors.
fn positive_raw() -> impl Strategy<Value = Raw> {
    prop_oneof![
        (1i64..7).prop_map(Raw::Cst),
        (0u8..4).prop_map(|v| Raw::Add(
            Box::new(Raw::Cst(1)),
            Box::new(Raw::Mul(Box::new(Raw::Var(v)), Box::new(Raw::Var(v)))),
        )),
    ]
}

fn raw_expr() -> impl Strategy<Value = Raw> {
    let leaf = prop_oneof![(-6i64..7).prop_map(Raw::Cst), (0u8..4).prop_map(Raw::Var)];
    leaf.prop_recursive(4, 40, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), positive_raw())
                .prop_map(|(a, b)| Raw::Div(Box::new(a), Box::new(b))),
            (inner.clone(), positive_raw())
                .prop_map(|(a, b)| Raw::Mod(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Raw::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Raw::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn env_strategy() -> impl Strategy<Value = [i64; 4]> {
    [(-20i64..40), (-20i64..40), (-20i64..40), (-20i64..40)]
}

fn bindings(env: &[i64; 4]) -> Bindings {
    Bindings::from_iter(VAR_NAMES.iter().zip(env.iter()).map(|(n, v)| (*n, *v)))
}

proptest! {
    /// Canonicalisation preserves semantics.
    #[test]
    fn simplify_preserves_value(raw in raw_expr(), env in env_strategy()) {
        let expected = raw.eval(&env);
        let built = raw.build();
        let got = built.eval(&bindings(&env)).expect("all vars bound");
        prop_assert_eq!(expected, got, "simplified form {} diverged", built);
    }

    /// Building an already-canonical expression again is the identity:
    /// x + 0, x * 1 round-trips.
    #[test]
    fn canonical_form_is_fixed_point(raw in raw_expr()) {
        let built = raw.build();
        let again = built.clone() + ArithExpr::from(0);
        prop_assert_eq!(built.clone(), again);
        let again = built.clone() * ArithExpr::from(1);
        prop_assert_eq!(built, again);
    }

    /// Substitution commutes with evaluation.
    #[test]
    fn substitution_commutes_with_eval(raw in raw_expr(), env in env_strategy()) {
        let built = raw.build();
        let substituted = VAR_NAMES
            .iter()
            .zip(env.iter())
            .fold(built.clone(), |e, (n, v)| e.substitute(n, &ArithExpr::from(*v)));
        let direct = built.eval(&bindings(&env)).expect("all vars bound");
        prop_assert_eq!(substituted.as_cst(), Some(direct));
    }

    /// Interval analysis is sound: the concrete value lies in the interval.
    #[test]
    fn interval_is_sound(raw in raw_expr(), env in env_strategy()) {
        use crate::range::Interval;
        let built = raw.build();
        let value = built.eval(&bindings(&env)).expect("all vars bound");
        let point_env = |n: &str| {
            VAR_NAMES
                .iter()
                .position(|v| *v == n)
                .map(|i| Interval::point(env[i]))
        };
        if let Some(iv) = built.interval(&point_env) {
            prop_assert!(
                iv.lo <= value && value <= iv.hi,
                "{} = {} outside [{}, {}]", built, value, iv.lo, iv.hi
            );
        }
    }

    /// Addition is commutative & associative at the structural level.
    #[test]
    fn sum_structural_laws(a in raw_expr(), b in raw_expr(), c in raw_expr()) {
        let (a, b, c) = (a.build(), b.build(), c.build());
        prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        prop_assert_eq!((a.clone() + b.clone()) + c.clone(), a + (b + c));
    }

    /// Multiplication is commutative at the structural level.
    #[test]
    fn prod_structural_laws(a in raw_expr(), b in raw_expr()) {
        let (a, b) = (a.build(), b.build());
        prop_assert_eq!(a.clone() * b.clone(), b * a);
    }
}
