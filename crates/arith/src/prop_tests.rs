//! Property tests: the simplifying constructors must preserve the value of
//! every expression under every environment, and canonicalisation must be
//! idempotent and congruent.
//!
//! The properties are checked over a deterministic stream of pseudo-random
//! expression trees and environments (SplitMix64) — no external property
//! testing framework is available in this environment, so each test fixes
//! its seed and case count and is exactly reproducible.

use crate::{ArithExpr, Bindings};

/// A raw, never-simplified expression tree used as the semantic reference.
#[derive(Debug, Clone)]
enum Raw {
    Cst(i64),
    Var(u8),
    Add(Box<Raw>, Box<Raw>),
    Sub(Box<Raw>, Box<Raw>),
    Mul(Box<Raw>, Box<Raw>),
    Div(Box<Raw>, Box<Raw>),
    Mod(Box<Raw>, Box<Raw>),
    Min(Box<Raw>, Box<Raw>),
    Max(Box<Raw>, Box<Raw>),
}

const VAR_NAMES: [&str; 4] = ["N", "M", "K", "P"];

impl Raw {
    /// Direct semantics, independent of the simplifier. Divisors are made
    /// non-zero by the generator (they are `1 + |v|`-shaped).
    fn eval(&self, env: &[i64; 4]) -> i64 {
        match self {
            Raw::Cst(c) => *c,
            Raw::Var(i) => env[*i as usize],
            Raw::Add(a, b) => a.eval(env).wrapping_add(b.eval(env)),
            Raw::Sub(a, b) => a.eval(env).wrapping_sub(b.eval(env)),
            Raw::Mul(a, b) => a.eval(env).wrapping_mul(b.eval(env)),
            Raw::Div(a, b) => a.eval(env).div_euclid(b.eval(env)),
            Raw::Mod(a, b) => a.eval(env).rem_euclid(b.eval(env)),
            Raw::Min(a, b) => a.eval(env).min(b.eval(env)),
            Raw::Max(a, b) => a.eval(env).max(b.eval(env)),
        }
    }

    fn build(&self) -> ArithExpr {
        match self {
            Raw::Cst(c) => ArithExpr::from(*c),
            Raw::Var(i) => ArithExpr::var(VAR_NAMES[*i as usize]),
            Raw::Add(a, b) => a.build() + b.build(),
            Raw::Sub(a, b) => a.build() - b.build(),
            Raw::Mul(a, b) => a.build() * b.build(),
            Raw::Div(a, b) => a.build() / b.build(),
            Raw::Mod(a, b) => a.build() % b.build(),
            Raw::Min(a, b) => ArithExpr::min(a.build(), b.build()),
            Raw::Max(a, b) => ArithExpr::max(a.build(), b.build()),
        }
    }
}

/// Deterministic pseudo-random stream (SplitMix64).
struct Rng(lift_tuner::SplitMix64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(lift_tuner::SplitMix64::new(seed))
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(n as usize) as u64
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

/// Strictly positive sub-expressions, safe as divisors.
fn positive_raw(rng: &mut Rng) -> Raw {
    if rng.below(2) == 0 {
        Raw::Cst(rng.range(1, 7))
    } else {
        let v = rng.below(4) as u8;
        Raw::Add(
            Box::new(Raw::Cst(1)),
            Box::new(Raw::Mul(Box::new(Raw::Var(v)), Box::new(Raw::Var(v)))),
        )
    }
}

/// A random expression tree of bounded depth, matching the shapes the old
/// proptest strategy produced.
fn raw_expr(rng: &mut Rng, depth: usize) -> Raw {
    if depth == 0 || rng.below(4) == 0 {
        return if rng.below(2) == 0 {
            Raw::Cst(rng.range(-6, 7))
        } else {
            Raw::Var(rng.below(4) as u8)
        };
    }
    let a = Box::new(raw_expr(rng, depth - 1));
    match rng.below(7) {
        0 => Raw::Add(a, Box::new(raw_expr(rng, depth - 1))),
        1 => Raw::Sub(a, Box::new(raw_expr(rng, depth - 1))),
        2 => Raw::Mul(a, Box::new(raw_expr(rng, depth - 1))),
        3 => Raw::Div(a, Box::new(positive_raw(rng))),
        4 => Raw::Mod(a, Box::new(positive_raw(rng))),
        5 => Raw::Min(a, Box::new(raw_expr(rng, depth - 1))),
        _ => Raw::Max(a, Box::new(raw_expr(rng, depth - 1))),
    }
}

fn env(rng: &mut Rng) -> [i64; 4] {
    [
        rng.range(-20, 40),
        rng.range(-20, 40),
        rng.range(-20, 40),
        rng.range(-20, 40),
    ]
}

fn bindings(env: &[i64; 4]) -> Bindings {
    Bindings::from_iter(VAR_NAMES.iter().zip(env.iter()).map(|(n, v)| (*n, *v)))
}

const CASES: usize = 256;

/// Canonicalisation preserves semantics.
#[test]
fn simplify_preserves_value() {
    let mut rng = Rng::new(0xa1);
    for _ in 0..CASES {
        let raw = raw_expr(&mut rng, 4);
        let e = env(&mut rng);
        let expected = raw.eval(&e);
        let built = raw.build();
        let got = built.eval(&bindings(&e)).expect("all vars bound");
        assert_eq!(
            expected, got,
            "simplified form {built} diverged from {raw:?}"
        );
    }
}

/// Building an already-canonical expression again is the identity:
/// x + 0, x * 1 round-trips.
#[test]
fn canonical_form_is_fixed_point() {
    let mut rng = Rng::new(0xb2);
    for _ in 0..CASES {
        let built = raw_expr(&mut rng, 4).build();
        assert_eq!(built, built.clone() + ArithExpr::from(0));
        assert_eq!(built, built.clone() * ArithExpr::from(1));
    }
}

/// Substitution commutes with evaluation.
#[test]
fn substitution_commutes_with_eval() {
    let mut rng = Rng::new(0xc3);
    for _ in 0..CASES {
        let raw = raw_expr(&mut rng, 4);
        let e = env(&mut rng);
        let built = raw.build();
        let substituted = VAR_NAMES
            .iter()
            .zip(e.iter())
            .fold(built.clone(), |x, (n, v)| {
                x.substitute(n, &ArithExpr::from(*v))
            });
        let direct = built.eval(&bindings(&e)).expect("all vars bound");
        assert_eq!(substituted.as_cst(), Some(direct), "{built}");
    }
}

/// Interval analysis is sound: the concrete value lies in the interval.
#[test]
fn interval_is_sound() {
    use crate::range::Interval;
    let mut rng = Rng::new(0xd4);
    for _ in 0..CASES {
        let raw = raw_expr(&mut rng, 4);
        let e = env(&mut rng);
        let built = raw.build();
        let value = built.eval(&bindings(&e)).expect("all vars bound");
        let point_env = |n: &str| {
            VAR_NAMES
                .iter()
                .position(|v| *v == n)
                .map(|i| Interval::point(e[i]))
        };
        if let Some(iv) = built.interval(&point_env) {
            assert!(
                iv.lo <= value && value <= iv.hi,
                "{built} = {value} outside [{}, {}]",
                iv.lo,
                iv.hi
            );
        }
    }
}

/// Addition is commutative & associative at the structural level.
#[test]
fn sum_structural_laws() {
    let mut rng = Rng::new(0xe5);
    for _ in 0..CASES {
        let a = raw_expr(&mut rng, 3).build();
        let b = raw_expr(&mut rng, 3).build();
        let c = raw_expr(&mut rng, 3).build();
        assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        assert_eq!((a.clone() + b.clone()) + c.clone(), a + (b + c));
    }
}

/// Multiplication is commutative at the structural level.
#[test]
fn prod_structural_laws() {
    let mut rng = Rng::new(0xf6);
    for _ in 0..CASES {
        let a = raw_expr(&mut rng, 3).build();
        let b = raw_expr(&mut rng, 3).build();
        assert_eq!(a.clone() * b.clone(), b * a);
    }
}
