//! The canonical symbolic expression type and its simplifying constructors.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};
use std::sync::Arc;

/// An interned variable name.
///
/// Cheap to clone; ordering and equality follow the underlying string.
pub type Name = Arc<str>;

/// A symbolic integer expression over named variables.
///
/// `ArithExpr` values are always in canonical form:
///
/// * [`Sum`](ArithExpr::Sum) nodes are flat (no nested sums), contain at most
///   one constant (placed first) and collect like terms (`x + x` becomes
///   `2*x`); they never have fewer than two operands.
/// * [`Prod`](ArithExpr::Prod) nodes are flat, contain at most one constant
///   factor (placed first) and never contain `0` or a lone `1`.
/// * Constant sub-expressions are folded.
/// * Exact divisions are performed syntactically (`(4*N)/4` is `N`) and
///   `x % x`, multiples, and constants are reduced for [`Mod`](ArithExpr::Mod).
///
/// Canonical form makes structural equality (`==`) usable as the semantic
/// equality test the Lift type checker needs: all size expressions produced
/// by composing `split`/`join`/`slide`/`pad` compare equal whenever the
/// compiler's algebra proves them equal.
///
/// Construct values with [`ArithExpr::var`], [`ArithExpr::from`] (for
/// constants) and the overloaded `+`, `-`, `*`, `/`, `%` operators.
///
/// Division is *Euclidean* (denominator must be positive in well-formed size
/// expressions; the result is the mathematical floor for positive
/// denominators), matching OpenCL index arithmetic on non-negative indices.
///
/// # Example
///
/// ```
/// use lift_arith::ArithExpr;
/// let n = ArithExpr::var("N");
/// let four = ArithExpr::from(4);
/// assert_eq!((n.clone() * four.clone()) / four, n);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArithExpr {
    /// An integer constant.
    Cst(i64),
    /// A named variable (e.g. an input size `N` or a tunable tile size).
    Var(Name),
    /// A flattened sum of at least two canonical terms.
    Sum(Vec<ArithExpr>),
    /// A flattened product of at least two canonical factors.
    Prod(Vec<ArithExpr>),
    /// Euclidean division.
    Div(Box<ArithExpr>, Box<ArithExpr>),
    /// Euclidean remainder.
    Mod(Box<ArithExpr>, Box<ArithExpr>),
    /// Binary minimum.
    Min(Box<ArithExpr>, Box<ArithExpr>),
    /// Binary maximum.
    Max(Box<ArithExpr>, Box<ArithExpr>),
}

impl ArithExpr {
    /// Creates a variable reference.
    ///
    /// ```
    /// use lift_arith::ArithExpr;
    /// let n = ArithExpr::var("N");
    /// assert_eq!(n.to_string(), "N");
    /// ```
    pub fn var(name: impl AsRef<str>) -> Self {
        ArithExpr::Var(Arc::from(name.as_ref()))
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_cst(&self) -> Option<i64> {
        match self {
            ArithExpr::Cst(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns `true` if the expression is the constant `c`.
    pub fn is_cst(&self, c: i64) -> bool {
        self.as_cst() == Some(c)
    }

    /// Collects every variable mentioned by the expression.
    pub fn vars(&self) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Name>) {
        match self {
            ArithExpr::Cst(_) => {}
            ArithExpr::Var(v) => {
                out.insert(v.clone());
            }
            ArithExpr::Sum(ts) | ArithExpr::Prod(ts) => {
                for t in ts {
                    t.collect_vars(out);
                }
            }
            ArithExpr::Div(a, b)
            | ArithExpr::Mod(a, b)
            | ArithExpr::Min(a, b)
            | ArithExpr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Builds the canonical sum of `terms`.
    pub fn sum(terms: impl IntoIterator<Item = ArithExpr>) -> Self {
        // Decompose every term into `coefficient * key` and merge by key.
        let mut cst: i64 = 0;
        let mut coeffs: BTreeMap<Vec<ArithExpr>, i64> = BTreeMap::new();
        let mut opaque: Vec<ArithExpr> = Vec::new();
        let mut stack: Vec<ArithExpr> = terms.into_iter().collect();
        stack.reverse();
        while let Some(t) = stack.pop() {
            match t {
                ArithExpr::Cst(c) => cst += c,
                ArithExpr::Sum(inner) => {
                    for x in inner.into_iter().rev() {
                        stack.push(x);
                    }
                }
                other => {
                    let (c, key) = split_coeff(other);
                    if key.is_empty() {
                        cst += c;
                    } else {
                        *coeffs.entry(key).or_insert(0) += c;
                    }
                }
            }
        }
        let mut out: Vec<ArithExpr> = Vec::new();
        if cst != 0 {
            out.push(ArithExpr::Cst(cst));
        }
        for (key, c) in coeffs {
            if c == 0 {
                continue;
            }
            out.push(rebuild_prod(c, key));
        }
        out.append(&mut opaque);
        match out.len() {
            0 => ArithExpr::Cst(0),
            1 => out.pop().expect("len checked"),
            _ => ArithExpr::Sum(out),
        }
    }

    /// Builds the canonical product of `factors`.
    pub fn prod(factors: impl IntoIterator<Item = ArithExpr>) -> Self {
        let mut cst: i64 = 1;
        let mut rest: Vec<ArithExpr> = Vec::new();
        let mut stack: Vec<ArithExpr> = factors.into_iter().collect();
        stack.reverse();
        while let Some(f) = stack.pop() {
            match f {
                ArithExpr::Cst(c) => cst *= c,
                ArithExpr::Prod(inner) => {
                    for x in inner.into_iter().rev() {
                        stack.push(x);
                    }
                }
                other => rest.push(other),
            }
        }
        if cst == 0 {
            return ArithExpr::Cst(0);
        }
        // Distribute a constant over a single sum factor so that sizes such
        // as `2*(N+1)` and `2*N + 2` compare equal.
        if rest.len() == 1 && cst != 1 {
            if let ArithExpr::Sum(terms) = &rest[0] {
                let scaled = terms
                    .iter()
                    .map(|t| ArithExpr::prod([ArithExpr::Cst(cst), t.clone()]));
                return ArithExpr::sum(scaled);
            }
        }
        rest.sort();
        match (cst, rest.len()) {
            (_, 0) => ArithExpr::Cst(cst),
            (1, 1) => rest.pop().expect("len checked"),
            (1, _) => ArithExpr::Prod(rest),
            _ => {
                let mut all = Vec::with_capacity(rest.len() + 1);
                all.push(ArithExpr::Cst(cst));
                all.append(&mut rest);
                ArithExpr::Prod(all)
            }
        }
    }

    /// Builds the canonical Euclidean quotient `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is the constant `0`.
    #[allow(clippy::should_implement_trait)] // `Div for ArithExpr` delegates here
    pub fn div(num: ArithExpr, den: ArithExpr) -> Self {
        assert!(!den.is_cst(0), "division by constant zero");
        if den.is_cst(1) {
            return num;
        }
        if num.is_cst(0) {
            return ArithExpr::Cst(0);
        }
        if let Some(exact) = try_div_exact(&num, &den) {
            return exact;
        }
        if let (Some(a), Some(b)) = (num.as_cst(), den.as_cst()) {
            return ArithExpr::Cst(a.div_euclid(b));
        }
        ArithExpr::Div(Box::new(num), Box::new(den))
    }

    /// Builds the canonical Euclidean remainder `num % den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is the constant `0`.
    pub fn modulo(num: ArithExpr, den: ArithExpr) -> Self {
        assert!(!den.is_cst(0), "modulo by constant zero");
        if den.is_cst(1) || num.is_cst(0) || num == den {
            return ArithExpr::Cst(0);
        }
        if try_div_exact(&num, &den).is_some() {
            return ArithExpr::Cst(0);
        }
        if let (Some(a), Some(b)) = (num.as_cst(), den.as_cst()) {
            return ArithExpr::Cst(a.rem_euclid(b));
        }
        // Drop summands that are exact multiples of the divisor:
        // (k*den + r) % den  ==  r % den.
        if let ArithExpr::Sum(terms) = &num {
            let (multiples, rest): (Vec<_>, Vec<_>) = terms
                .iter()
                .cloned()
                .partition(|t| try_div_exact(t, &den).is_some());
            if !multiples.is_empty() {
                return ArithExpr::modulo(ArithExpr::sum(rest), den);
            }
        }
        ArithExpr::Mod(Box::new(num), Box::new(den))
    }

    /// Builds the canonical minimum of two expressions.
    pub fn min(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) => ArithExpr::Cst(*x.min(y)),
            _ if a == b => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                ArithExpr::Min(Box::new(a), Box::new(b))
            }
        }
    }

    /// Builds the canonical maximum of two expressions.
    pub fn max(a: ArithExpr, b: ArithExpr) -> Self {
        match (&a, &b) {
            (ArithExpr::Cst(x), ArithExpr::Cst(y)) => ArithExpr::Cst(*x.max(y)),
            _ if a == b => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                ArithExpr::Max(Box::new(a), Box::new(b))
            }
        }
    }

    /// Substitutes `replacement` for every occurrence of variable `name`,
    /// re-simplifying along the way.
    ///
    /// ```
    /// use lift_arith::ArithExpr;
    /// let e = ArithExpr::var("N") * ArithExpr::from(2);
    /// assert_eq!(e.substitute("N", &ArithExpr::from(8)), ArithExpr::from(16));
    /// ```
    pub fn substitute(&self, name: &str, replacement: &ArithExpr) -> ArithExpr {
        match self {
            ArithExpr::Cst(_) => self.clone(),
            ArithExpr::Var(v) => {
                if &**v == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            ArithExpr::Sum(ts) => {
                ArithExpr::sum(ts.iter().map(|t| t.substitute(name, replacement)))
            }
            ArithExpr::Prod(ts) => {
                ArithExpr::prod(ts.iter().map(|t| t.substitute(name, replacement)))
            }
            ArithExpr::Div(a, b) => ArithExpr::div(
                a.substitute(name, replacement),
                b.substitute(name, replacement),
            ),
            ArithExpr::Mod(a, b) => ArithExpr::modulo(
                a.substitute(name, replacement),
                b.substitute(name, replacement),
            ),
            ArithExpr::Min(a, b) => ArithExpr::min(
                a.substitute(name, replacement),
                b.substitute(name, replacement),
            ),
            ArithExpr::Max(a, b) => ArithExpr::max(
                a.substitute(name, replacement),
                b.substitute(name, replacement),
            ),
        }
    }

    /// Applies all substitutions in `map` simultaneously.
    pub fn substitute_all(&self, map: &BTreeMap<Name, ArithExpr>) -> ArithExpr {
        match self {
            ArithExpr::Cst(_) => self.clone(),
            ArithExpr::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            ArithExpr::Sum(ts) => ArithExpr::sum(ts.iter().map(|t| t.substitute_all(map))),
            ArithExpr::Prod(ts) => ArithExpr::prod(ts.iter().map(|t| t.substitute_all(map))),
            ArithExpr::Div(a, b) => ArithExpr::div(a.substitute_all(map), b.substitute_all(map)),
            ArithExpr::Mod(a, b) => ArithExpr::modulo(a.substitute_all(map), b.substitute_all(map)),
            ArithExpr::Min(a, b) => ArithExpr::min(a.substitute_all(map), b.substitute_all(map)),
            ArithExpr::Max(a, b) => ArithExpr::max(a.substitute_all(map), b.substitute_all(map)),
        }
    }
}

/// Splits a canonical non-sum term into `(coefficient, sorted factors)`.
fn split_coeff(term: ArithExpr) -> (i64, Vec<ArithExpr>) {
    match term {
        ArithExpr::Cst(c) => (c, Vec::new()),
        ArithExpr::Prod(fs) => {
            let mut coeff = 1;
            let mut rest = Vec::with_capacity(fs.len());
            for f in fs {
                match f {
                    ArithExpr::Cst(c) => coeff *= c,
                    other => rest.push(other),
                }
            }
            rest.sort();
            (coeff, rest)
        }
        other => (1, vec![other]),
    }
}

/// Rebuilds `coeff * key` in canonical form. `key` is sorted and non-empty.
fn rebuild_prod(coeff: i64, mut key: Vec<ArithExpr>) -> ArithExpr {
    if coeff == 1 && key.len() == 1 {
        return key.pop().expect("len checked");
    }
    if coeff == 1 {
        return ArithExpr::Prod(key);
    }
    let mut fs = Vec::with_capacity(key.len() + 1);
    fs.push(ArithExpr::Cst(coeff));
    fs.append(&mut key);
    ArithExpr::Prod(fs)
}

/// Attempts a syntactically exact division of `num` by `den`.
fn try_div_exact(num: &ArithExpr, den: &ArithExpr) -> Option<ArithExpr> {
    if num == den {
        return Some(ArithExpr::Cst(1));
    }
    match (num, den) {
        (ArithExpr::Cst(a), ArithExpr::Cst(b)) if *b != 0 && a % b == 0 => {
            Some(ArithExpr::Cst(a / b))
        }
        (ArithExpr::Sum(terms), _) => {
            let quotients: Option<Vec<_>> = terms.iter().map(|t| try_div_exact(t, den)).collect();
            quotients.map(ArithExpr::sum)
        }
        (ArithExpr::Prod(fs), _) => {
            // Remove one factor equal to `den`, or divide the constant
            // coefficient when `den` is a constant divisor of it.
            if let Some(pos) = fs.iter().position(|f| f == den) {
                let mut rest = fs.clone();
                rest.remove(pos);
                return Some(ArithExpr::prod(rest));
            }
            if let Some(d) = den.as_cst() {
                if let Some(pos) = fs
                    .iter()
                    .position(|f| matches!(f.as_cst(), Some(c) if d != 0 && c % d == 0))
                {
                    let mut rest = fs.clone();
                    let c = rest[pos].as_cst().expect("position matched a constant");
                    rest[pos] = ArithExpr::Cst(c / d);
                    return Some(ArithExpr::prod(rest));
                }
            }
            // (a*b) / b-shaped with den itself a product: divide factor-wise.
            if let ArithExpr::Prod(dfs) = den {
                let mut rest = fs.clone();
                for df in dfs {
                    let pos = rest.iter().position(|f| f == df)?;
                    rest.remove(pos);
                }
                return Some(ArithExpr::prod(rest));
            }
            None
        }
        _ => None,
    }
}

impl From<i64> for ArithExpr {
    fn from(c: i64) -> Self {
        ArithExpr::Cst(c)
    }
}

impl From<i32> for ArithExpr {
    fn from(c: i32) -> Self {
        ArithExpr::Cst(c as i64)
    }
}

impl From<usize> for ArithExpr {
    fn from(c: usize) -> Self {
        ArithExpr::Cst(c as i64)
    }
}

impl From<&ArithExpr> for ArithExpr {
    fn from(e: &ArithExpr) -> Self {
        e.clone()
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $ctor:expr) => {
        impl $trait for ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: ArithExpr) -> ArithExpr {
                let ctor: fn(ArithExpr, ArithExpr) -> ArithExpr = $ctor;
                ctor(self, rhs)
            }
        }
        impl $trait<&ArithExpr> for ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: &ArithExpr) -> ArithExpr {
                let ctor: fn(ArithExpr, ArithExpr) -> ArithExpr = $ctor;
                ctor(self, rhs.clone())
            }
        }
        impl $trait<i64> for ArithExpr {
            type Output = ArithExpr;
            fn $method(self, rhs: i64) -> ArithExpr {
                let ctor: fn(ArithExpr, ArithExpr) -> ArithExpr = $ctor;
                ctor(self, ArithExpr::Cst(rhs))
            }
        }
    };
}

impl_binop!(Add, add, |a, b| ArithExpr::sum([a, b]));
impl_binop!(Sub, sub, |a, b| ArithExpr::sum([
    a,
    ArithExpr::prod([ArithExpr::Cst(-1), b])
]));
impl_binop!(Mul, mul, |a, b| ArithExpr::prod([a, b]));
impl_binop!(Div, div, ArithExpr::div);
impl_binop!(Rem, rem, ArithExpr::modulo);

impl Neg for ArithExpr {
    type Output = ArithExpr;
    fn neg(self) -> ArithExpr {
        ArithExpr::prod([ArithExpr::Cst(-1), self])
    }
}

impl fmt::Display for ArithExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl fmt::Debug for ArithExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl ArithExpr {
    /// Precedence levels: 0 = sum, 1 = product, 2 = atom.
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
        match self {
            ArithExpr::Cst(c) => write!(f, "{c}"),
            ArithExpr::Var(v) => write!(f, "{v}"),
            ArithExpr::Sum(ts) => {
                if prec > 0 {
                    write!(f, "(")?;
                }
                // Canonical form stores the constant first; print it last for
                // readability ("N - 2" rather than "-2 + N").
                let mut ts: Vec<&ArithExpr> = ts.iter().collect();
                if ts.first().is_some_and(|t| t.as_cst().is_some()) {
                    ts.rotate_left(1);
                }
                for (i, t) in ts.iter().enumerate() {
                    let (neg, abs) = t.split_negation();
                    if i == 0 {
                        if neg {
                            write!(f, "-")?;
                        }
                    } else if neg {
                        write!(f, " - ")?;
                    } else {
                        write!(f, " + ")?;
                    }
                    abs.fmt_prec(f, 1)?;
                }
                if prec > 0 {
                    write!(f, ")")?;
                }
                Ok(())
            }
            ArithExpr::Prod(_) => {
                let (neg, abs) = self.split_negation();
                if neg {
                    write!(f, "-")?;
                }
                let ArithExpr::Prod(ts) = &abs else {
                    return abs.fmt_prec(f, prec);
                };
                if prec > 1 {
                    write!(f, "(")?;
                }
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    t.fmt_prec(f, 2)?;
                }
                if prec > 1 {
                    write!(f, ")")?;
                }
                Ok(())
            }
            ArithExpr::Div(a, b) => {
                a.fmt_prec(f, 2)?;
                write!(f, "/")?;
                b.fmt_prec(f, 2)
            }
            ArithExpr::Mod(a, b) => {
                a.fmt_prec(f, 2)?;
                write!(f, "%")?;
                b.fmt_prec(f, 2)
            }
            ArithExpr::Min(a, b) => write!(f, "min({a}, {b})"),
            ArithExpr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }

    /// Splits a term into its sign and absolute form for pretty printing.
    fn split_negation(&self) -> (bool, ArithExpr) {
        match self {
            ArithExpr::Cst(c) if *c < 0 => (true, ArithExpr::Cst(-c)),
            ArithExpr::Prod(fs) => match fs.first().and_then(ArithExpr::as_cst) {
                Some(c) if c < 0 => {
                    let mut rest = fs.clone();
                    rest[0] = ArithExpr::Cst(-c);
                    (true, ArithExpr::prod(rest))
                }
                _ => (false, self.clone()),
            },
            _ => (false, self.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> ArithExpr {
        ArithExpr::var("N")
    }
    fn m() -> ArithExpr {
        ArithExpr::var("M")
    }

    #[test]
    fn constant_folding() {
        assert_eq!(ArithExpr::from(2) + 3, ArithExpr::from(5));
        assert_eq!(ArithExpr::from(2) * 3, ArithExpr::from(6));
        assert_eq!(ArithExpr::from(7) / 2, ArithExpr::from(3));
        assert_eq!(ArithExpr::from(7) % 2, ArithExpr::from(1));
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::modulo_one)] // the identities are the point
    fn identity_elements() {
        assert_eq!(n() + 0, n());
        assert_eq!(n() * 1, n());
        assert_eq!(n() * 0, ArithExpr::from(0));
        assert_eq!(n() / 1, n());
        assert_eq!(n() % 1, ArithExpr::from(0));
    }

    #[test]
    fn like_terms_collect() {
        assert_eq!(n() + n(), ArithExpr::from(2) * n());
        assert_eq!(n() - n(), ArithExpr::from(0));
        assert_eq!(n() * ArithExpr::from(3) + n(), ArithExpr::from(4) * n());
        assert_eq!(n() + m() - n(), m());
    }

    #[test]
    fn sums_flatten_and_sort() {
        let a = (n() + 1) + (m() + 2);
        let b = m() + n() + 3;
        assert_eq!(a, b);
    }

    #[test]
    fn products_commute() {
        assert_eq!(n() * m(), m() * n());
    }

    #[test]
    fn constant_distributes_over_sum() {
        assert_eq!((n() + 1) * 2, n() * 2 + 2);
    }

    #[test]
    fn exact_division() {
        assert_eq!((n() * 4) / 4, n());
        assert_eq!((n() * m()) / m(), n());
        assert_eq!((n() * 4 + m() * 8) / 4, n() + m() * 2);
        assert_eq!((n() * m()) / (n() * m()), ArithExpr::from(1));
    }

    #[test]
    fn split_join_roundtrip() {
        // [T]_N --split(m)--> [[T]_m]_{N/m} --join--> [T]_{(N/m)*m}
        let chunks = n() / m();
        let joined = chunks * m();
        // Not simplifiable in general (floor division), stays symbolic:
        assert!(matches!(joined, ArithExpr::Prod(_)));
        // But with a known divisible pair it folds:
        let joined16 = (ArithExpr::from(16) / ArithExpr::from(4)) * 4;
        assert_eq!(joined16, ArithExpr::from(16));
    }

    #[test]
    fn slide_count_algebra() {
        // slide(3,1) over a padded array of size N+2 gives N neighbourhoods.
        let padded = n() + 2;
        let count = (padded - 3 + 1) / ArithExpr::from(1);
        assert_eq!(count, n());
    }

    #[test]
    fn modulo_simplifies_multiples() {
        assert_eq!((n() * 4) % ArithExpr::from(4), ArithExpr::from(0));
        assert_eq!(
            (n() * 4 + 1) % ArithExpr::from(4),
            ArithExpr::from(1) % ArithExpr::from(4)
        );
        assert_eq!(n() % n(), ArithExpr::from(0));
    }

    #[test]
    fn min_max_fold() {
        assert_eq!(
            ArithExpr::min(ArithExpr::from(3), ArithExpr::from(5)),
            ArithExpr::from(3)
        );
        assert_eq!(
            ArithExpr::max(ArithExpr::from(3), ArithExpr::from(5)),
            ArithExpr::from(5)
        );
        assert_eq!(ArithExpr::min(n(), n()), n());
        // Canonical argument order makes min commutative structurally.
        assert_eq!(ArithExpr::min(n(), m()), ArithExpr::min(m(), n()));
    }

    #[test]
    fn substitution_resimplifies() {
        let e = (n() + 2) * 3;
        assert_eq!(e.substitute("N", &ArithExpr::from(2)), ArithExpr::from(12));
        let f = n() / m();
        assert_eq!(
            f.substitute("M", &ArithExpr::from(4))
                .substitute("N", &ArithExpr::from(12)),
            ArithExpr::from(3)
        );
    }

    #[test]
    fn display_is_readable() {
        assert_eq!((n() - 2).to_string(), "N - 2");
        assert_eq!((n() * m() + 1).to_string(), "M*N + 1");
        assert_eq!((n() / 2).to_string(), "N/2");
        assert_eq!(((n() + 1) / 2).to_string(), "(N + 1)/2");
        assert_eq!((-n()).to_string(), "-N");
    }

    #[test]
    fn vars_collected() {
        let e = (n() + m() * 2) / ArithExpr::var("K");
        let vs = e.vars();
        let names: Vec<&str> = vs.iter().map(|v| &**v).collect();
        assert_eq!(names, vec!["K", "M", "N"]);
    }

    #[test]
    #[should_panic(expected = "division by constant zero")]
    fn div_by_zero_panics() {
        let _ = n() / 0;
    }
}
