//! Symbolic integer arithmetic for the Lift stencil compiler.
//!
//! Lift array types carry their sizes as *arithmetic expressions* over named
//! variables (`N`, `N/4`, `N - size + step`, …). The type checker, the view
//! system and the code generator all manipulate such expressions: they must be
//! simplified into a canonical form so that structural equality coincides with
//! semantic equality for the size algebra the compiler produces
//! (e.g. `split(m) ∘ join` round-trips, `slide` output sizes, tile counts).
//!
//! The central type is [`ArithExpr`]; it is immutable and eagerly
//! canonicalised by its smart constructors. Supporting modules provide
//! [evaluation](ArithExpr::eval), [substitution](ArithExpr::substitute) and
//! conservative [interval analysis](range).
//!
//! # Example
//!
//! ```
//! use lift_arith::{ArithExpr, Bindings};
//!
//! let n = ArithExpr::var("N");
//! // The number of neighbourhoods produced by `slide(3, 1)`:
//! let count = n - ArithExpr::from(3) + ArithExpr::from(1);
//! assert_eq!(count.to_string(), "N - 2");
//! let env = Bindings::from_iter([("N", 10)]);
//! assert_eq!(count.eval(&env).unwrap(), 8);
//! ```

#![forbid(unsafe_code)]

mod eval;
mod expr;
pub mod range;

pub use eval::{ArithEnv, Bindings, EvalArithError};
pub use expr::{ArithExpr, Name};

#[cfg(test)]
mod prop_tests;
