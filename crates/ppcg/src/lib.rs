//! A PPCG-like polyhedral baseline code generator.
//!
//! PPCG (Verdoolaege et al., TACO 2013) compiles affine loop nests to GPU
//! code with one *fixed* strategy: rectangular time/space tiling, shared-
//! memory staging of the tile plus halo, a block/thread mapping, and
//! sequential per-thread strips; only tile and block sizes are tunable. The
//! paper (§7.2) tunes exactly those parameters with the same budget as Lift
//! and finds that Lift's *choice* between tiled and untiled formulations is
//! what wins — on Nvidia "the best Lift kernel performs no tiling [for Heat
//! large] … the PPCG version uses tiling, with each thread processing 512×
//! more elements sequentially".
//!
//! This crate reproduces that baseline faithfully *as a strategy*: it takes
//! the same high-level stencil program and always applies
//!
//! * **2D stencils** — overlapped tiling + local-memory staging
//!   (`mapWrg²/mapLcl²`), tile size tunable;
//! * **3D stencils** — the classic PPCG 3D mapping: a 2D thread block over
//!   the inner dimensions with the outermost dimension executed as a
//!   sequential strip per thread (z-loop), block sizes tunable.
//!
//! There is no exploration: where Lift *derives* untiled alternatives by
//! rewriting, PPCG cannot.

#![forbid(unsafe_code)]

use lift_core::expr::FunDecl;
use lift_core::pattern::MapKind;
use lift_core::typecheck::typecheck_fun;
use lift_rewrite::lowering::{lower_grid, sequentialise};
use lift_rewrite::rules::tile_anywhere;
use lift_rewrite::strategy::{find_tile_info, Tunable};

/// The outcome of "compiling with PPCG": a single lowered program with its
/// tunable parameters.
#[derive(Debug, Clone)]
pub struct PpcgKernel {
    /// Strategy description (printed by the harness).
    pub strategy: &'static str,
    /// The lowered program (tunables symbolic, as for Lift variants).
    pub program: FunDecl,
    /// Tile-size tunables (empty for the 3D strip mapping).
    pub tunables: Vec<Tunable>,
    /// Output dimensionality.
    pub dims: usize,
    /// Whether the outermost grid dimension became a sequential per-thread
    /// strip (the 3D mapping). Consumers deriving launch geometry must not
    /// scale the z global size by the output extent when this is set —
    /// matching on the variant *name* instead silently mis-launches any
    /// future strip-mining strategy under a different name.
    pub strip_mined_z: bool,
}

/// Errors from the baseline compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct PpcgError(String);

impl std::fmt::Display for PpcgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ppcg baseline error: {}", self.0)
    }
}

impl std::error::Error for PpcgError {}

/// Compiles a stencil program with the fixed PPCG strategy.
///
/// # Errors
///
/// Fails when the program is ill-typed or (for 2D) when the canonical
/// stencil shape cannot be tiled.
pub fn compile(prog: &FunDecl) -> Result<PpcgKernel, PpcgError> {
    let out_ty = typecheck_fun(prog).map_err(|e| PpcgError(format!("ill-typed program: {e}")))?;
    let dims = out_ty.dims();
    let body = match prog {
        FunDecl::Lambda(l) => &l.body,
        _ => return Err(PpcgError("program must be a top-level lambda".into())),
    };
    let rebuild = |b| match prog {
        FunDecl::Lambda(l) => FunDecl::lambda(l.params.clone(), b),
        _ => unreachable!(),
    };

    match dims {
        2 => {
            // Always tile + stage through shared memory. Tile-size legality
            // needs the per-dimension stencil geometry, resolved by the
            // same unified rank-generic recogniser the Lift exploration
            // uses.
            let info = find_tile_info(body)
                .filter(|i| i.rank == 2)
                .ok_or_else(|| PpcgError("2D stencil shape not recognised for tiling".into()))?;
            let tiled = tile_anywhere(body, &info.tile_vars(), true)
                .ok_or_else(|| PpcgError("2D stencil shape not recognised for tiling".into()))?;
            let kinds = [
                MapKind::Wrg(1),
                MapKind::Wrg(0),
                MapKind::Lcl(1),
                MapKind::Lcl(0),
            ];
            let lowered = sequentialise(&lower_grid(&tiled, &kinds));
            Ok(PpcgKernel {
                strategy: "shared-memory tiling (2D)",
                program: rebuild(lowered),
                tunables: info.tile_tunables(),
                dims,
                strip_mined_z: false,
            })
        }
        3 => {
            // 2D thread block over (y, x); z is a per-thread strip.
            let kinds = [MapKind::Seq, MapKind::Glb(1), MapKind::Glb(0)];
            let lowered = sequentialise(&lower_grid(body, &kinds));
            Ok(PpcgKernel {
                strategy: "2D block + sequential z-strip (3D)",
                program: rebuild(lowered),
                tunables: vec![],
                dims,
                strip_mined_z: true,
            })
        }
        d => Err(PpcgError(format!("unsupported dimensionality {d}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::eval::{eval_fun, DataValue};
    use lift_core::prelude::*;
    use lift_rewrite::strategy::bind_tunables;

    fn jacobi2d(n: i64) -> FunDecl {
        lam_named("A", Type::array_2d(Type::f32(), n, n), |a| {
            let f = lam(Type::array_2d(Type::f32(), 3, 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), join(nbh))
            });
            lift_core::ndim::map2(
                f,
                lift_core::ndim::slide2(3, 1, lift_core::ndim::pad2(1, 1, Boundary::Clamp, a)),
            )
        })
    }

    fn heat3d(n: i64) -> FunDecl {
        lam_named("A", Type::array_3d(Type::f32(), n, n, n), |a| {
            let f = lam(Type::array_3d(Type::f32(), 3, 3, 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), join(join(nbh)))
            });
            lift_core::ndim::map3(
                f,
                lift_core::ndim::slide3(3, 1, lift_core::ndim::pad3(1, 1, Boundary::Clamp, a)),
            )
        })
    }

    #[test]
    fn ppcg_2d_always_tiles() {
        let k = compile(&jacobi2d(14)).expect("compiles");
        assert!(k.strategy.contains("tiling"));
        assert_eq!(k.tunables.len(), 2, "one tile size per dimension");
        // Local memory staging is part of the strategy.
        let locals = lift_core::visit::find_positions(
            match &k.program {
                FunDecl::Lambda(l) => &l.body,
                _ => unreachable!(),
            },
            &|n| {
                matches!(
                    n.as_apply().and_then(|a| a.fun.as_pattern()),
                    Some(lift_core::pattern::Pattern::ToLocal { .. })
                )
            },
        );
        assert_eq!(locals.len(), 1);
    }

    #[test]
    fn ppcg_2d_preserves_semantics() {
        let prog = jacobi2d(14);
        let k = compile(&prog).expect("compiles");
        let variant = lift_rewrite::strategy::Variant {
            name: "ppcg".into(),
            program: k.program.clone(),
            tunables: k.tunables.clone(),
            dims: 2,
            tiled: true,
            local_mem: true,
            unrolled: false,
            strip_mined_z: false,
        };
        let bound =
            bind_tunables(&variant, &[("TS0".into(), 4), ("TS1".into(), 4)]).expect("valid tile");
        let data: Vec<f32> = (0..14 * 14).map(|i| (i % 7) as f32).collect();
        let input = DataValue::from_f32s_2d(&data, 14, 14);
        let lhs = eval_fun(&prog, std::slice::from_ref(&input))
            .unwrap()
            .flatten_f32();
        let rhs = eval_fun(&bound, &[input]).unwrap().flatten_f32();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ppcg_3d_serialises_outer_dimension() {
        let k = compile(&heat3d(8)).expect("compiles");
        assert!(k.strategy.contains("z-strip"));
        assert!(k.strip_mined_z, "3D mapping must declare the z strip");
        // The outermost grid map became sequential.
        let body = match &k.program {
            FunDecl::Lambda(l) => &l.body,
            _ => unreachable!(),
        };
        let seqs = lift_core::visit::find_positions(body, &|n| {
            matches!(
                n.applied_pattern(),
                Some(lift_core::pattern::Pattern::Map {
                    kind: MapKind::Seq,
                    ..
                })
            )
        });
        assert!(!seqs.is_empty());
        // And semantics are intact.
        let data: Vec<f32> = (0..512).map(|i| (i % 5) as f32).collect();
        let input = DataValue::from_f32s_3d(&data, 8, 8, 8);
        let lhs = eval_fun(&heat3d(8), std::slice::from_ref(&input))
            .unwrap()
            .flatten_f32();
        let rhs = eval_fun(&k.program, &[input]).unwrap().flatten_f32();
        assert_eq!(lhs, rhs);
    }
}
