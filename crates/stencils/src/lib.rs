//! The CGO'18 benchmark suite (Table 1 of the paper).
//!
//! Every benchmark provides
//!
//! * its Lift **program** — a high-level expression built from `pad`,
//!   `slide` and `map` compositions exactly as §3 describes,
//! * a **golden reference** — an independent, loop-based Rust
//!   implementation used to validate generated kernels bit-exactly,
//! * deterministic **input generators**, and
//! * its Table-1 metadata (dimensionality, points, grid count, sizes).
//!
//! Grid sizes are scaled down from the paper's (the virtual device executes
//! every work-item; the analytic model supplies absolute throughput), with
//! the *relative* proportions preserved — in particular SRAD's grids stay
//! much smaller than the rest, which is what makes SRAD under-perform on the
//! big-GPU profiles in Figure 7 (§7.1). Set `LIFT_FULL_SIZES=1` to use the
//! paper's original grids (slow).

#![forbid(unsafe_code)]

pub mod bench2d;
pub mod bench3d;
pub mod inputs;
pub mod refkernels;

use lift_core::expr::FunDecl;

/// Which figure(s) of the paper a benchmark appears in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Figure 7: comparison against hand-written kernels.
    Fig7,
    /// Figure 8: comparison against PPCG (small & large sizes).
    Fig8,
}

/// One Table-1 benchmark.
#[derive(Clone)]
pub struct Benchmark {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Grid dimensionality.
    pub dims: usize,
    /// Stencil points.
    pub points: usize,
    /// Number of input grids.
    pub grids: usize,
    /// Which figure the benchmark belongs to.
    pub figure: Figure,
    /// Scaled default size, outermost dimension first.
    pub small: &'static [usize],
    /// Scaled large size (Fig. 8 benchmarks only).
    pub large: Option<&'static [usize]>,
    /// The paper's original sizes (used with `LIFT_FULL_SIZES=1`).
    pub paper_small: &'static [usize],
    /// The paper's original large sizes.
    pub paper_large: Option<&'static [usize]>,
    /// Builds the high-level Lift program for the given grid size.
    pub builder: fn(&[usize]) -> FunDecl,
    /// The golden sequential implementation.
    pub reference: fn(&[Vec<f32>], &[usize]) -> Vec<f32>,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("dims", &self.dims)
            .field("points", &self.points)
            .field("grids", &self.grids)
            .finish_non_exhaustive()
    }
}

impl Benchmark {
    /// The Lift program at size `sizes`.
    pub fn program(&self, sizes: &[usize]) -> FunDecl {
        (self.builder)(sizes)
    }

    /// The golden output for `inputs` at size `sizes`.
    pub fn golden(&self, inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
        (self.reference)(inputs, sizes)
    }

    /// Deterministic inputs (`self.grids` buffers) for size `sizes`.
    pub fn gen_inputs(&self, sizes: &[usize], seed: u64) -> Vec<Vec<f32>> {
        inputs::generate(self.name, self.grids, sizes, seed)
    }

    /// Output element count at `sizes`.
    pub fn out_elements(&self, sizes: &[usize]) -> usize {
        sizes.iter().product()
    }

    /// The size to run, honouring `LIFT_FULL_SIZES`.
    pub fn size(&self, large: bool) -> Vec<usize> {
        let full = std::env::var("LIFT_FULL_SIZES")
            .map(|v| v == "1")
            .unwrap_or(false);
        let pick = |s: &'static [usize], p: &'static [usize]| {
            if full {
                p.to_vec()
            } else {
                s.to_vec()
            }
        };
        if large {
            match (self.large, self.paper_large) {
                (Some(s), Some(p)) => pick(s, p),
                _ => pick(self.small, self.paper_small),
            }
        } else {
            pick(self.small, self.paper_small)
        }
    }
}

/// All benchmarks of Table 1, in the paper's order.
pub fn suite() -> Vec<Benchmark> {
    let mut all = bench2d::benchmarks();
    all.extend(bench3d::benchmarks());
    all
}

/// The Figure-7 set (hand-written comparisons), in plotting order.
pub fn fig7_names() -> [&'static str; 6] {
    [
        "Acoustic",
        "Hotspot2D",
        "Hotspot3D",
        "SRAD1",
        "SRAD2",
        "Stencil2D",
    ]
}

/// The Figure-8 set (PPCG comparisons), in plotting order.
pub fn fig8_names() -> [&'static str; 8] {
    [
        "Gaussian",
        "Gradient",
        "Heat",
        "Jacobi2D5pt",
        "Jacobi2D9pt",
        "Jacobi3D13pt",
        "Jacobi3D7pt",
        "Poisson",
    ]
}

/// Looks up a benchmark by name.
///
/// # Panics
///
/// Panics when the name is unknown — benchmark names are compile-time
/// constants in this crate, so a miss is a programming error.
pub fn by_name(name: &str) -> Benchmark {
    suite()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::eval::{eval_fun, DataValue};
    use lift_core::typecheck::typecheck_fun;

    fn tiny(sizes: &[usize]) -> Vec<usize> {
        // Shrink any benchmark to an evaluator-friendly size (keep ≥ 6 so
        // every neighbourhood fits, keep proportions crudely).
        sizes.iter().map(|s| (*s).clamp(6, 10)).collect()
    }

    fn as_data(input: &[f32], sizes: &[usize]) -> DataValue {
        match sizes.len() {
            1 => DataValue::from_f32s(input.iter().copied()),
            2 => DataValue::from_f32s_2d(input, sizes[0], sizes[1]),
            3 => DataValue::from_f32s_3d(input, sizes[0], sizes[1], sizes[2]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn table1_metadata_matches_paper() {
        let s = suite();
        assert_eq!(s.len(), 14); // 12 rows, Jacobi rows split into 5/9 & 7/13
        let b = by_name("Stencil2D");
        assert_eq!((b.dims, b.points, b.grids), (2, 9, 1));
        let b = by_name("SRAD2");
        assert_eq!((b.dims, b.points, b.grids), (2, 3, 2));
        let b = by_name("Hotspot3D");
        assert_eq!((b.dims, b.points, b.grids), (3, 7, 2));
        let b = by_name("Acoustic");
        assert_eq!((b.dims, b.points, b.grids), (3, 7, 2));
        let b = by_name("Gaussian");
        assert_eq!((b.dims, b.points, b.grids), (2, 25, 1));
        let b = by_name("Poisson");
        assert_eq!((b.dims, b.points, b.grids), (3, 19, 1));
    }

    #[test]
    fn every_program_typechecks() {
        for b in suite() {
            let sizes = tiny(b.small);
            let prog = b.program(&sizes);
            let ty = typecheck_fun(&prog)
                .unwrap_or_else(|e| panic!("{} does not typecheck: {e}", b.name));
            assert_eq!(ty.dims(), b.dims, "{}", b.name);
        }
    }

    #[test]
    fn every_program_matches_its_golden_reference() {
        // The reference evaluator provides independent semantics for the
        // IR; the golden reference is an independent Rust loop nest. Both
        // must agree bit-exactly.
        for b in suite() {
            let sizes = tiny(b.small);
            let inputs = b.gen_inputs(&sizes, 42);
            let golden = b.golden(&inputs, &sizes);
            let prog = b.program(&sizes);
            let args: Vec<DataValue> = inputs.iter().map(|i| as_data(i, &sizes)).collect();
            let out = eval_fun(&prog, &args)
                .unwrap_or_else(|e| panic!("{} does not evaluate: {e}", b.name));
            let got = out.flatten_f32();
            assert_eq!(got.len(), golden.len(), "{}: wrong output size", b.name);
            for (i, (a, c)) in got.iter().zip(&golden).enumerate() {
                assert!(
                    (a - c).abs() <= 1e-4 * c.abs().max(1.0),
                    "{}: element {i} differs: lift={a}, golden={c}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn inputs_are_deterministic() {
        let b = by_name("Jacobi2D5pt");
        let a = b.gen_inputs(&[8, 8], 7);
        let c = b.gen_inputs(&[8, 8], 7);
        assert_eq!(a, c);
        let d = b.gen_inputs(&[8, 8], 8);
        assert_ne!(a, d);
    }

    #[test]
    fn figure_sets_are_in_the_suite() {
        for n in fig7_names().iter().chain(fig8_names().iter()) {
            let _ = by_name(n);
        }
    }
}
