//! Hand-written reference kernels for the Figure-7 comparison.
//!
//! These play the role of the paper's SHOC/Rodinia/HPC-expert OpenCL
//! kernels: **fixed** implementations with hard-coded work-group shapes and
//! optimisation choices, written once (for an Nvidia card, historically) and
//! *not* re-tuned per device. Five of the six are transcribed as fixed
//! configurations of the straightforward one-thread-per-element style the
//! original sources use; Hotspot2D is transcribed instruction-by-instruction
//! as a manual OpenCL AST with Rodinia's 16×16 local-memory tile scheme,
//! including its halo loads and boundary guards — the structure that makes
//! it fast on the GPU it was written for and slow elsewhere (§7.1).

use lift_codegen::clike::{
    AddressSpace, BinOp, CExpr, CStmt, CType, Kernel, KernelParam, LocalBuffer, VarRef, WorkItemFn,
};
use lift_codegen::compile_kernel;

use crate::Benchmark;

/// A fixed, hand-written implementation: kernel + launch configuration.
pub struct RefKernel {
    /// The compiled kernel.
    pub kernel: Kernel,
    /// Global NDRange sizes.
    pub global: [usize; 3],
    /// Work-group sizes.
    pub local: [usize; 3],
}

fn round_up(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

/// Builds the hand-written reference for `bench` at `sizes`.
///
/// # Panics
///
/// Panics for benchmarks outside the Figure-7 set, or if the fixed
/// configuration fails to compile (both indicate programming errors).
pub fn reference_kernel(bench: &Benchmark, sizes: &[usize]) -> RefKernel {
    match bench.name {
        "Hotspot2D" => hotspot2d_manual(sizes),
        "Stencil2D" | "SRAD1" | "SRAD2" => fixed_global_2d(bench, sizes, [16, 16]),
        "Hotspot3D" => fixed_global_3d(bench, sizes, [64, 4, 1]),
        "Acoustic" => fixed_global_3d(bench, sizes, [32, 4, 1]),
        other => panic!("no hand-written reference for `{other}`"),
    }
}

/// The straightforward style of the original sources: one global thread per
/// element, neighbourhood gathered directly from global memory, fixed
/// work-group shape.
fn fixed_global_2d(bench: &Benchmark, sizes: &[usize], local: [usize; 2]) -> RefKernel {
    let prog = bench.program(sizes);
    let variants = lift_rewrite::enumerate_variants(&prog);
    let global_variant = variants
        .iter()
        .find(|v| v.name == "global")
        .expect("global variant always exists");
    let kernel = compile_kernel(
        &format!("{}_ref", bench.name.to_lowercase()),
        &global_variant.program,
    )
    .expect("reference compiles");
    let (rows, cols) = (sizes[0], sizes[1]);
    RefKernel {
        kernel,
        global: [round_up(cols, local[0]), round_up(rows, local[1]), 1],
        local: [local[0], local[1], 1],
    }
}

fn fixed_global_3d(bench: &Benchmark, sizes: &[usize], local: [usize; 3]) -> RefKernel {
    let prog = bench.program(sizes);
    let variants = lift_rewrite::enumerate_variants(&prog);
    let global_variant = variants
        .iter()
        .find(|v| v.name == "global")
        .expect("global variant always exists");
    let kernel = compile_kernel(
        &format!("{}_ref", bench.name.to_lowercase()),
        &global_variant.program,
    )
    .expect("reference compiles");
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);
    RefKernel {
        kernel,
        global: [
            round_up(nx, local[0]),
            round_up(ny, local[1]),
            round_up(nz, local[2]),
        ],
        local,
    }
}

/// Rodinia Hotspot's tile size (hard-coded `BLOCK_SIZE` in the original).
const BLOCK: usize = 16;
/// The halo consumed by the pyramid scheme (one step here).
const HALO: usize = 1;
/// The output cells a block produces per dimension.
const OUT: usize = BLOCK - 2 * HALO;

/// A manual transcription of the Rodinia Hotspot OpenCL kernel (its
/// pyramid scheme with a single time step): every 16×16 work-group stages a
/// 16×16 temperature tile *and* its power tile into local memory — the tile
/// includes the halo, so each block only produces a 14×14 interior and
/// adjacent blocks reload overlapping columns — synchronises, and updates
/// the interior under `IN_RANGE` guards.
///
/// The fixed 16-wide rows, the redundant (16/14)² loads and the guard
/// divergence are Nvidia-era decisions that the paper's Figure 7 shows
/// backfiring on the AMD wavefront (64-wide) architecture.
fn hotspot2d_manual(sizes: &[usize]) -> RefKernel {
    let (rows, cols) = (sizes[0], sizes[1]);
    let uf = crate::bench2d::hotspot2d_uf();

    let temp = VarRef::fresh("temp");
    let power = VarRef::fresh("power");
    let out = VarRef::fresh("outbuf");
    let t_tile = VarRef::fresh("temp_on_cuda");
    let p_tile = VarRef::fresh("power_on_cuda");

    let lidx = || CExpr::WorkItem(WorkItemFn::LocalId, 0);
    let lidy = || CExpr::WorkItem(WorkItemFn::LocalId, 1);
    let bidx = || CExpr::WorkItem(WorkItemFn::GroupId, 0);
    let bidy = || CExpr::WorkItem(WorkItemFn::GroupId, 1);
    let int = |v: i64| CExpr::Int(v);
    let var = |v: &VarRef| CExpr::Var(v.clone());
    let clamp =
        |e: CExpr, hi: usize| CExpr::min(CExpr::max(e, CExpr::Int(0)), CExpr::Int(hi as i64 - 1));
    let lt = |a: CExpr, b: CExpr| CExpr::Bin(BinOp::Lt, Box::new(a), Box::new(b));
    let ge = |a: CExpr, b: CExpr| CExpr::Bin(BinOp::Ge, Box::new(a), Box::new(b));
    let and = |a: CExpr, b: CExpr| CExpr::Bin(BinOp::And, Box::new(a), Box::new(b));

    // Each thread loads its (clamped) tile cell of temp and power; the
    // *unclamped* indices drive the IN_RANGE write guards, as in the
    // original.
    let raw_i = VarRef::fresh("validYidx");
    let raw_j = VarRef::fresh("validXidx");
    let gi = VarRef::fresh("loadYidx");
    let gj = VarRef::fresh("loadXidx");
    let tile_idx = CExpr::add(CExpr::mul(lidy(), int(BLOCK as i64)), lidx());
    let load_phase = vec![
        CStmt::DeclScalar {
            var: raw_i.clone(),
            ty: CType::Int,
            init: Some(CExpr::sub(
                CExpr::add(CExpr::mul(bidy(), int(OUT as i64)), lidy()),
                int(HALO as i64),
            )),
        },
        CStmt::DeclScalar {
            var: raw_j.clone(),
            ty: CType::Int,
            init: Some(CExpr::sub(
                CExpr::add(CExpr::mul(bidx(), int(OUT as i64)), lidx()),
                int(HALO as i64),
            )),
        },
        CStmt::DeclScalar {
            var: gi.clone(),
            ty: CType::Int,
            init: Some(clamp(var(&raw_i), rows)),
        },
        CStmt::DeclScalar {
            var: gj.clone(),
            ty: CType::Int,
            init: Some(clamp(var(&raw_j), cols)),
        },
        CStmt::Store {
            buf: t_tile.clone(),
            space: AddressSpace::Local,
            idx: tile_idx.clone(),
            value: CExpr::Load {
                buf: temp.clone(),
                space: AddressSpace::Global,
                idx: Box::new(CExpr::add(CExpr::mul(var(&gi), int(cols as i64)), var(&gj))),
            },
        },
        CStmt::Store {
            buf: p_tile.clone(),
            space: AddressSpace::Local,
            idx: tile_idx.clone(),
            value: CExpr::Load {
                buf: power.clone(),
                space: AddressSpace::Global,
                idx: Box::new(CExpr::add(CExpr::mul(var(&gi), int(cols as i64)), var(&gj))),
            },
        },
    ];

    // Compute phase: only the 14×14 interior of the tile is valid
    // (`IN_RANGE(tx/ty)` guards in the original), and only cells whose
    // global coordinates are in range may write.
    let t_at = |di: i64, dj: i64| CExpr::Load {
        buf: t_tile.clone(),
        space: AddressSpace::Local,
        idx: Box::new(CExpr::add(
            CExpr::mul(CExpr::add(lidy(), CExpr::Int(di)), int(BLOCK as i64)),
            CExpr::add(lidx(), CExpr::Int(dj)),
        )),
    };
    let interior = and(
        and(
            ge(lidy(), int(HALO as i64)),
            lt(lidy(), int((BLOCK - HALO) as i64)),
        ),
        and(
            ge(lidx(), int(HALO as i64)),
            lt(lidx(), int((BLOCK - HALO) as i64)),
        ),
    );
    let in_range = and(
        and(ge(var(&raw_i), int(0)), lt(var(&raw_i), int(rows as i64))),
        and(ge(var(&raw_j), int(0)), lt(var(&raw_j), int(cols as i64))),
    );
    let compute = CStmt::If {
        cond: and(interior, in_range),
        then_: vec![CStmt::Store {
            buf: out.clone(),
            space: AddressSpace::Global,
            idx: CExpr::add(CExpr::mul(var(&gi), int(cols as i64)), var(&gj)),
            value: CExpr::Call(
                uf.clone(),
                vec![
                    CExpr::Load {
                        buf: p_tile.clone(),
                        space: AddressSpace::Local,
                        idx: Box::new(tile_idx),
                    },
                    t_at(0, 0),
                    t_at(-1, 0),
                    t_at(1, 0),
                    t_at(0, -1),
                    t_at(0, 1),
                ],
            ),
        }],
        else_: vec![],
    };

    let mut body = vec![CStmt::Comment(
        "stage temperature + power tiles (with halo)".into(),
    )];
    body.extend(load_phase);
    body.push(CStmt::Barrier {
        local: true,
        global: false,
    });
    body.push(CStmt::Comment(
        "update the 14x14 interior under IN_RANGE guards".into(),
    ));
    body.push(compute);

    let kernel = Kernel {
        name: "hotspot2d_ref".into(),
        params: vec![
            KernelParam {
                var: temp,
                elem: CType::Float,
                len: rows * cols,
                is_output: false,
            },
            KernelParam {
                var: power,
                elem: CType::Float,
                len: rows * cols,
                is_output: false,
            },
            KernelParam {
                var: out,
                elem: CType::Float,
                len: rows * cols,
                is_output: true,
            },
        ],
        locals: vec![
            LocalBuffer {
                var: t_tile,
                elem: CType::Float,
                len: BLOCK * BLOCK,
            },
            LocalBuffer {
                var: p_tile,
                elem: CType::Float,
                len: BLOCK * BLOCK,
            },
        ],
        body,
        user_funs: vec![uf],
    };

    // One block per 14×14 output region, 16×16 threads each.
    let blocks_x = cols.div_ceil(OUT);
    let blocks_y = rows.div_ceil(OUT);
    RefKernel {
        kernel,
        global: [blocks_x * BLOCK, blocks_y * BLOCK, 1],
        local: [BLOCK, BLOCK, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    #[test]
    fn hotspot2d_manual_kernel_structure() {
        let b = by_name("Hotspot2D");
        let r = reference_kernel(&b, &[32, 32]);
        assert_eq!(r.local, [16, 16, 1]);
        // Temperature and power tiles are both staged, 16×16 each.
        assert_eq!(r.kernel.locals.len(), 2);
        assert!(r.kernel.locals.iter().all(|l| l.len == 16 * 16));
        // One block per 14×14 output region.
        assert_eq!(r.global, [3 * 16, 3 * 16, 1]);
        let src = r.kernel.to_source();
        assert!(src.contains("barrier(CLK_LOCAL_MEM_FENCE)"));
        assert!(src.contains("__local float"));
    }

    #[test]
    fn fixed_global_references_compile() {
        for name in ["Stencil2D", "SRAD1", "SRAD2", "Hotspot3D", "Acoustic"] {
            let b = by_name(name);
            let sizes: Vec<usize> = b.small.iter().map(|s| (*s).min(16)).collect();
            let r = reference_kernel(&b, &sizes);
            assert!(!r.kernel.body.is_empty(), "{name}");
            for d in 0..3 {
                assert_eq!(r.global[d] % r.local[d], 0, "{name} launch misaligned");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no hand-written reference")]
    fn non_fig7_benchmarks_have_no_reference() {
        let b = by_name("Gaussian");
        let _ = reference_kernel(&b, &[16, 16]);
    }
}
