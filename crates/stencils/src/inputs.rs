//! Deterministic input generation for the benchmark suite.
//!
//! A simple SplitMix64-based generator keeps inputs reproducible across
//! platforms without pulling RNG dependencies into the library path; value
//! ranges are chosen per benchmark so the physics stay numerically sane
//! (SRAD needs strictly positive image intensities, Hotspot wants
//! temperatures around ambient, …).

/// SplitMix64 — tiny, deterministic, well-distributed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.next_f32() * (hi - lo)
    }
}

fn grid(rng: &mut SplitMix64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.range(lo, hi)).collect()
}

/// Generates the `grids` input buffers for `bench` at `sizes`.
pub fn generate(bench: &str, grids: usize, sizes: &[usize], seed: u64) -> Vec<Vec<f32>> {
    let n: usize = sizes.iter().product();
    let mut rng = SplitMix64::new(seed ^ hash_name(bench));
    match bench {
        // SRAD works on strictly positive image intensities.
        "SRAD1" | "SRAD2" => {
            let mut out = vec![grid(&mut rng, n, 1.0, 2.0)];
            if grids > 1 {
                // The diffusion-coefficient grid lies in [0, 1].
                out.push(grid(&mut rng, n, 0.0, 1.0));
            }
            out
        }
        // Hotspot: temperature around ambient, power densities small.
        "Hotspot2D" | "Hotspot3D" => vec![
            grid(&mut rng, n, 322.0, 342.0),
            grid(&mut rng, n, 0.0, 0.01),
        ],
        // Acoustic pressure fields: a small signal around zero.
        "Acoustic" => vec![
            grid(&mut rng, n, -0.05, 0.05),
            grid(&mut rng, n, -0.05, 0.05),
        ],
        _ => (0..grids).map(|_| grid(&mut rng, n, -1.0, 1.0)).collect(),
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate benchmark streams.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = generate("Jacobi2D5pt", 1, &[8, 8], 1);
        let b = generate("Jacobi2D5pt", 1, &[8, 8], 1);
        let c = generate("Jacobi2D5pt", 1, &[8, 8], 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respected() {
        let srad = generate("SRAD1", 1, &[16, 16], 3);
        assert!(srad[0].iter().all(|v| *v >= 1.0 && *v < 2.0));
        let hs = generate("Hotspot2D", 2, &[16, 16], 3);
        assert!(hs[0].iter().all(|v| *v >= 322.0 && *v < 342.0));
        assert!(hs[1].iter().all(|v| *v >= 0.0 && *v < 0.01));
    }

    #[test]
    fn correct_grid_count_and_len() {
        let gs = generate("Hotspot3D", 2, &[4, 4, 4], 0);
        assert_eq!(gs.len(), 2);
        assert!(gs.iter().all(|g| g.len() == 64));
    }
}
