//! The 2D benchmarks: Stencil2D (SHOC), SRAD1/SRAD2 (Rodinia), Hotspot2D
//! (Rodinia), Gaussian, Gradient and Jacobi2D 5pt/9pt (Rawat et al.).
//!
//! Every builder produces the canonical composition of §3.4:
//! `map2(f, slide2(n, 1, pad2(h, h, clamp, A)))` — optionally zipped with a
//! second grid — and every golden reference re-uses the *same*
//! [`lift_core::userfun::UserFun`] closure for the pointwise math,
//! so the reference differs only in how neighbourhoods are gathered.

use std::sync::Arc;

use lift_core::build::*;
use lift_core::expr::{Expr, FunDecl};
use lift_core::ndim::{map2, pad2, slide2, zip2_2d};
use lift_core::pattern::Boundary;
use lift_core::scalar::Scalar;
use lift_core::types::Type;
use lift_core::userfun::{add_f32, mul_f32, UserFun};

use crate::{Benchmark, Figure};

/// Clamped 2D gather used by all golden references.
fn g2(input: &[f32], i: i64, j: i64, rows: usize, cols: usize) -> f32 {
    let i = i.clamp(0, rows as i64 - 1) as usize;
    let j = j.clamp(0, cols as i64 - 1) as usize;
    input[i * cols + j]
}

fn f32s(vals: &[f32]) -> Vec<Scalar> {
    vals.iter().map(|v| Scalar::F32(*v)).collect()
}

fn nbh33() -> Type {
    Type::array_2d(Type::f32(), 3, 3)
}

/// `map2(f)` over 3×3 neighbourhoods of a clamp-padded single grid.
fn single_grid_3x3(rows: usize, cols: usize, f: FunDecl) -> FunDecl {
    lam_named("A", Type::array_2d(Type::f32(), rows, cols), move |a| {
        map2(f, slide2(3, 1, pad2(1, 1, Boundary::Clamp, a)))
    })
}

// --------------------------------------------------------------------------
// Jacobi2D 5pt
// --------------------------------------------------------------------------

/// The 5-point Jacobi user function (c, n, s, w, e).
pub fn jacobi5_uf() -> Arc<UserFun> {
    UserFun::new(
        "jacobi5",
        [
            ("c", Type::f32()),
            ("n", Type::f32()),
            ("s", Type::f32()),
            ("w", Type::f32()),
            ("e", Type::f32()),
        ],
        Type::f32(),
        "return 0.2f * (c + n + s + w + e);",
        |a| {
            Scalar::F32(
                0.2f32
                    * (a[0].as_f32()
                        + a[1].as_f32()
                        + a[2].as_f32()
                        + a[3].as_f32()
                        + a[4].as_f32()),
            )
        },
    )
}

fn jacobi2d5_builder(sizes: &[usize]) -> FunDecl {
    let uf = jacobi5_uf();
    let f = lam(nbh33(), move |nbh| {
        call(
            &uf,
            [
                at2(1, 1, nbh.clone()),
                at2(0, 1, nbh.clone()),
                at2(2, 1, nbh.clone()),
                at2(1, 0, nbh.clone()),
                at2(1, 2, nbh),
            ],
        )
    });
    single_grid_3x3(sizes[0], sizes[1], f)
}

fn jacobi2d5_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (rows, cols) = (sizes[0], sizes[1]);
    let a = &inputs[0];
    let uf = jacobi5_uf();
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            out.push(
                uf.call(&f32s(&[
                    g2(a, i, j, rows, cols),
                    g2(a, i - 1, j, rows, cols),
                    g2(a, i + 1, j, rows, cols),
                    g2(a, i, j - 1, rows, cols),
                    g2(a, i, j + 1, rows, cols),
                ]))
                .as_f32(),
            );
        }
    }
    out
}

// --------------------------------------------------------------------------
// Jacobi2D 9pt — reduction over the whole 3×3 window.
// --------------------------------------------------------------------------

fn jacobi2d9_builder(sizes: &[usize]) -> FunDecl {
    let f = lam(nbh33(), |nbh| {
        let sum = reduce(add_f32(), Expr::f32(0.0), join(nbh));
        call(&mul_f32(), [sum, Expr::f32(1.0 / 9.0)])
    });
    single_grid_3x3(sizes[0], sizes[1], f)
}

fn jacobi2d9_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (rows, cols) = (sizes[0], sizes[1]);
    let a = &inputs[0];
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            // Same accumulation order as the generated reduction loop:
            // window rows outermost.
            let mut acc = 0.0f32;
            for di in -1..=1 {
                for dj in -1..=1 {
                    acc += g2(a, i + di, j + dj, rows, cols);
                }
            }
            out.push(acc * (1.0 / 9.0));
        }
    }
    out
}

// --------------------------------------------------------------------------
// Gaussian 5×5 — weights from an `array` generator, fused weighted reduce.
// --------------------------------------------------------------------------

/// Binomial 5×5 Gaussian weight generator `w(i) = b[i/5]·b[i%5]/256`.
pub fn gauss_weight_uf() -> Arc<UserFun> {
    UserFun::new(
        "gaussWeight",
        [("i", Type::i32()), ("n", Type::i32())],
        Type::f32(),
        "const float b[5] = {1.0f, 4.0f, 6.0f, 4.0f, 1.0f}; \
         return b[i / 5] * b[i % 5] / 256.0f;",
        |a| {
            const B: [f32; 5] = [1.0, 4.0, 6.0, 4.0, 1.0];
            let i = a[0].as_i32() as usize;
            Scalar::F32(B[i / 5] * B[i % 5] / 256.0)
        },
    )
}

/// `acc + w·x` — the fused convolution step.
pub fn wadd_uf() -> Arc<UserFun> {
    UserFun::new(
        "wadd",
        [("acc", Type::f32()), ("w", Type::f32()), ("x", Type::f32())],
        Type::f32(),
        "return acc + w * x;",
        |a| Scalar::F32(a[0].as_f32() + a[1].as_f32() * a[2].as_f32()),
    )
}

fn gaussian_builder(sizes: &[usize]) -> FunDecl {
    let (rows, cols) = (sizes[0], sizes[1]);
    let wuf = wadd_uf();
    let f = lam(Type::array_2d(Type::f32(), 5, 5), move |nbh| {
        let weights = array_gen(gauss_weight_uf(), 25);
        let pairs = zip2(join(nbh), weights);
        let step = lam2(
            Type::f32(),
            Type::Tuple(vec![Type::f32(), Type::f32()]),
            move |acc, t| call(&wuf, [acc, get(1, t.clone()), get(0, t)]),
        );
        reduce(step, Expr::f32(0.0), pairs)
    });
    lam_named("A", Type::array_2d(Type::f32(), rows, cols), move |a| {
        map2(f, slide2(5, 1, pad2(2, 2, Boundary::Clamp, a)))
    })
}

fn gaussian_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (rows, cols) = (sizes[0], sizes[1]);
    let a = &inputs[0];
    let wuf = wadd_uf();
    let guf = gauss_weight_uf();
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            let mut acc = 0.0f32;
            for k in 0..25i32 {
                let (di, dj) = ((k / 5) as i64 - 2, (k % 5) as i64 - 2);
                let w = guf.call(&[Scalar::I32(k), Scalar::I32(25)]).as_f32();
                let x = g2(a, i + di, j + dj, rows, cols);
                acc = wuf.call(&f32s(&[acc, w, x])).as_f32();
            }
            out.push(acc);
        }
    }
    out
}

// --------------------------------------------------------------------------
// Gradient
// --------------------------------------------------------------------------

/// Gradient magnitude `√((e−w)² + (s−n)²)`.
pub fn gradient_uf() -> Arc<UserFun> {
    UserFun::new(
        "gradient",
        [
            ("n", Type::f32()),
            ("s", Type::f32()),
            ("w", Type::f32()),
            ("e", Type::f32()),
        ],
        Type::f32(),
        "return sqrt((e - w) * (e - w) + (s - n) * (s - n));",
        |a| {
            let (n, s, w, e) = (a[0].as_f32(), a[1].as_f32(), a[2].as_f32(), a[3].as_f32());
            Scalar::F32(((e - w) * (e - w) + (s - n) * (s - n)).sqrt())
        },
    )
}

fn gradient_builder(sizes: &[usize]) -> FunDecl {
    let uf = gradient_uf();
    let f = lam(nbh33(), move |nbh| {
        call(
            &uf,
            [
                at2(0, 1, nbh.clone()),
                at2(2, 1, nbh.clone()),
                at2(1, 0, nbh.clone()),
                at2(1, 2, nbh),
            ],
        )
    });
    single_grid_3x3(sizes[0], sizes[1], f)
}

fn gradient_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (rows, cols) = (sizes[0], sizes[1]);
    let a = &inputs[0];
    let uf = gradient_uf();
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            out.push(
                uf.call(&f32s(&[
                    g2(a, i - 1, j, rows, cols),
                    g2(a, i + 1, j, rows, cols),
                    g2(a, i, j - 1, rows, cols),
                    g2(a, i, j + 1, rows, cols),
                ]))
                .as_f32(),
            );
        }
    }
    out
}

// --------------------------------------------------------------------------
// Stencil2D (SHOC) — weighted 9-point.
// --------------------------------------------------------------------------

/// SHOC's weighted 9-point stencil.
pub fn stencil9_uf() -> Arc<UserFun> {
    UserFun::new(
        "stencil9",
        [
            ("c", Type::f32()),
            ("n", Type::f32()),
            ("s", Type::f32()),
            ("w", Type::f32()),
            ("e", Type::f32()),
            ("nw", Type::f32()),
            ("ne", Type::f32()),
            ("sw", Type::f32()),
            ("se", Type::f32()),
        ],
        Type::f32(),
        "return 0.25f * c + 0.15f * (n + s + w + e) + 0.05f * (nw + ne + sw + se);",
        |a| {
            let v: Vec<f32> = a.iter().map(|s| s.as_f32()).collect();
            Scalar::F32(
                0.25f32 * v[0]
                    + 0.15f32 * (v[1] + v[2] + v[3] + v[4])
                    + 0.05f32 * (v[5] + v[6] + v[7] + v[8]),
            )
        },
    )
}

fn stencil2d_builder(sizes: &[usize]) -> FunDecl {
    let uf = stencil9_uf();
    let f = lam(nbh33(), move |nbh| {
        call(
            &uf,
            [
                at2(1, 1, nbh.clone()),
                at2(0, 1, nbh.clone()),
                at2(2, 1, nbh.clone()),
                at2(1, 0, nbh.clone()),
                at2(1, 2, nbh.clone()),
                at2(0, 0, nbh.clone()),
                at2(0, 2, nbh.clone()),
                at2(2, 0, nbh.clone()),
                at2(2, 2, nbh),
            ],
        )
    });
    single_grid_3x3(sizes[0], sizes[1], f)
}

fn stencil2d_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (rows, cols) = (sizes[0], sizes[1]);
    let a = &inputs[0];
    let uf = stencil9_uf();
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            out.push(
                uf.call(&f32s(&[
                    g2(a, i, j, rows, cols),
                    g2(a, i - 1, j, rows, cols),
                    g2(a, i + 1, j, rows, cols),
                    g2(a, i, j - 1, rows, cols),
                    g2(a, i, j + 1, rows, cols),
                    g2(a, i - 1, j - 1, rows, cols),
                    g2(a, i - 1, j + 1, rows, cols),
                    g2(a, i + 1, j - 1, rows, cols),
                    g2(a, i + 1, j + 1, rows, cols),
                ]))
                .as_f32(),
            );
        }
    }
    out
}

// --------------------------------------------------------------------------
// SRAD1 (Rodinia) — diffusion coefficient.
// --------------------------------------------------------------------------

/// SRAD kernel 1: the diffusion coefficient from local gradients.
pub fn srad1_uf() -> Arc<UserFun> {
    UserFun::new(
        "srad1",
        [
            ("c", Type::f32()),
            ("n", Type::f32()),
            ("s", Type::f32()),
            ("w", Type::f32()),
            ("e", Type::f32()),
        ],
        Type::f32(),
        "float dn = n - c; float ds = s - c; float dw = w - c; float de = e - c; \
         float g2 = (dn*dn + ds*ds + dw*dw + de*de) / (c*c); \
         float l = (dn + ds + dw + de) / c; \
         float num = 0.5f*g2 - 0.0625f*(l*l); \
         float den = 1.0f + 0.25f*l; \
         float qsqr = num / (den*den); \
         float q0 = 0.0025f; \
         float d = (qsqr - q0) / (q0 * (1.0f + q0)); \
         float cf = 1.0f / (1.0f + d); \
         return cf < 0.0f ? 0.0f : (cf > 1.0f ? 1.0f : cf);",
        |a| {
            let (c, n, s, w, e) = (
                a[0].as_f32(),
                a[1].as_f32(),
                a[2].as_f32(),
                a[3].as_f32(),
                a[4].as_f32(),
            );
            let (dn, ds, dw, de) = (n - c, s - c, w - c, e - c);
            let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (c * c);
            let l = (dn + ds + dw + de) / c;
            let num = 0.5 * g2 - 0.0625 * (l * l);
            let den = 1.0 + 0.25 * l;
            let qsqr = num / (den * den);
            let q0 = 0.0025f32;
            let d = (qsqr - q0) / (q0 * (1.0 + q0));
            let cf = 1.0 / (1.0 + d);
            Scalar::F32(cf.clamp(0.0, 1.0))
        },
    )
}

fn srad1_builder(sizes: &[usize]) -> FunDecl {
    let uf = srad1_uf();
    let f = lam(nbh33(), move |nbh| {
        call(
            &uf,
            [
                at2(1, 1, nbh.clone()),
                at2(0, 1, nbh.clone()),
                at2(2, 1, nbh.clone()),
                at2(1, 0, nbh.clone()),
                at2(1, 2, nbh),
            ],
        )
    });
    single_grid_3x3(sizes[0], sizes[1], f)
}

fn srad1_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (rows, cols) = (sizes[0], sizes[1]);
    let a = &inputs[0];
    let uf = srad1_uf();
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            out.push(
                uf.call(&f32s(&[
                    g2(a, i, j, rows, cols),
                    g2(a, i - 1, j, rows, cols),
                    g2(a, i + 1, j, rows, cols),
                    g2(a, i, j - 1, rows, cols),
                    g2(a, i, j + 1, rows, cols),
                ]))
                .as_f32(),
            );
        }
    }
    out
}

// --------------------------------------------------------------------------
// SRAD2 (Rodinia) — divergence update using the coefficient grid.
// --------------------------------------------------------------------------

/// SRAD kernel 2: image update from the diffusion coefficients.
pub fn srad2_uf() -> Arc<UserFun> {
    UserFun::new(
        "srad2",
        [
            ("jc", Type::f32()),
            ("jn", Type::f32()),
            ("js", Type::f32()),
            ("jw", Type::f32()),
            ("je", Type::f32()),
            ("cc", Type::f32()),
            ("cs", Type::f32()),
            ("ce", Type::f32()),
        ],
        Type::f32(),
        "float dn = jn - jc; float ds = js - jc; float dw = jw - jc; float de = je - jc; \
         float div = cs*ds + cc*dn + ce*de + cc*dw; \
         return jc + 0.125f * div;",
        |a| {
            let v: Vec<f32> = a.iter().map(|s| s.as_f32()).collect();
            let (jc, jn, js, jw, je, cc, cs, ce) = (v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]);
            let (dn, ds, dw, de) = (jn - jc, js - jc, jw - jc, je - jc);
            let div = cs * ds + cc * dn + ce * de + cc * dw;
            Scalar::F32(jc + 0.125 * div)
        },
    )
}

fn srad2_builder(sizes: &[usize]) -> FunDecl {
    let (rows, cols) = (sizes[0], sizes[1]);
    let uf = srad2_uf();
    let grid_ty = Type::array_2d(Type::f32(), rows, cols);
    lam2_named("J", grid_ty.clone(), "C", grid_ty, move |j_grid, c_grid| {
        let j_nbhs = slide2(3, 1, pad2(1, 1, Boundary::Clamp, j_grid));
        let c_nbhs = slide2(3, 1, pad2(1, 1, Boundary::Clamp, c_grid));
        let tup = Type::Tuple(vec![nbh33(), nbh33()]);
        let f = lam(tup, move |t| {
            let jn = get(0, t.clone());
            let cn = get(1, t);
            call(
                &uf,
                [
                    at2(1, 1, jn.clone()),
                    at2(0, 1, jn.clone()),
                    at2(2, 1, jn.clone()),
                    at2(1, 0, jn.clone()),
                    at2(1, 2, jn),
                    at2(1, 1, cn.clone()),
                    at2(2, 1, cn.clone()),
                    at2(1, 2, cn),
                ],
            )
        });
        map2(f, zip2_2d(j_nbhs, c_nbhs))
    })
}

fn srad2_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (rows, cols) = (sizes[0], sizes[1]);
    let (jg, cg) = (&inputs[0], &inputs[1]);
    let uf = srad2_uf();
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            out.push(
                uf.call(&f32s(&[
                    g2(jg, i, j, rows, cols),
                    g2(jg, i - 1, j, rows, cols),
                    g2(jg, i + 1, j, rows, cols),
                    g2(jg, i, j - 1, rows, cols),
                    g2(jg, i, j + 1, rows, cols),
                    g2(cg, i, j, rows, cols),
                    g2(cg, i + 1, j, rows, cols),
                    g2(cg, i, j + 1, rows, cols),
                ]))
                .as_f32(),
            );
        }
    }
    out
}

// --------------------------------------------------------------------------
// Hotspot2D (Rodinia) — temperature + power.
// --------------------------------------------------------------------------

/// Rodinia Hotspot's per-cell temperature update.
pub fn hotspot2d_uf() -> Arc<UserFun> {
    UserFun::new(
        "hotspot",
        [
            ("p", Type::f32()),
            ("c", Type::f32()),
            ("n", Type::f32()),
            ("s", Type::f32()),
            ("w", Type::f32()),
            ("e", Type::f32()),
        ],
        Type::f32(),
        "float delta = 0.001f * (p + 0.1f*(n + s - 2.0f*c) + 0.1f*(w + e - 2.0f*c) \
         + 0.05f*(80.0f - c)); \
         return c + delta;",
        |a| {
            let v: Vec<f32> = a.iter().map(|s| s.as_f32()).collect();
            let (p, c, n, s, w, e) = (v[0], v[1], v[2], v[3], v[4], v[5]);
            let delta = 0.001f32
                * (p + 0.1 * (n + s - 2.0 * c) + 0.1 * (w + e - 2.0 * c) + 0.05 * (80.0 - c));
            Scalar::F32(c + delta)
        },
    )
}

fn hotspot2d_builder(sizes: &[usize]) -> FunDecl {
    let (rows, cols) = (sizes[0], sizes[1]);
    let uf = hotspot2d_uf();
    let grid_ty = Type::array_2d(Type::f32(), rows, cols);
    lam2_named(
        "temp",
        grid_ty.clone(),
        "power",
        grid_ty,
        move |t_grid, p_grid| {
            let t_nbhs = slide2(3, 1, pad2(1, 1, Boundary::Clamp, t_grid));
            let tup = Type::Tuple(vec![Type::f32(), nbh33()]);
            let f = lam(tup, move |t| {
                let p = get(0, t.clone());
                let nb = get(1, t);
                call(
                    &uf,
                    [
                        p,
                        at2(1, 1, nb.clone()),
                        at2(0, 1, nb.clone()),
                        at2(2, 1, nb.clone()),
                        at2(1, 0, nb.clone()),
                        at2(1, 2, nb),
                    ],
                )
            });
            map2(f, zip2_2d(p_grid, t_nbhs))
        },
    )
}

fn hotspot2d_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (rows, cols) = (sizes[0], sizes[1]);
    let (tg, pg) = (&inputs[0], &inputs[1]);
    let uf = hotspot2d_uf();
    let mut out = Vec::with_capacity(rows * cols);
    for i in 0..rows as i64 {
        for j in 0..cols as i64 {
            out.push(
                uf.call(&f32s(&[
                    pg[i as usize * cols + j as usize],
                    g2(tg, i, j, rows, cols),
                    g2(tg, i - 1, j, rows, cols),
                    g2(tg, i + 1, j, rows, cols),
                    g2(tg, i, j - 1, rows, cols),
                    g2(tg, i, j + 1, rows, cols),
                ]))
                .as_f32(),
            );
        }
    }
    out
}

/// The eight 2D benchmarks of Table 1.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Stencil2D",
            dims: 2,
            points: 9,
            grids: 1,
            figure: Figure::Fig7,
            small: &[256, 256],
            large: None,
            paper_small: &[4098, 4098],
            paper_large: None,
            builder: stencil2d_builder,
            reference: stencil2d_reference,
        },
        Benchmark {
            name: "SRAD1",
            dims: 2,
            points: 5,
            grids: 1,
            figure: Figure::Fig7,
            small: &[504, 458],
            large: None,
            paper_small: &[504, 458],
            paper_large: None,
            builder: srad1_builder,
            reference: srad1_reference,
        },
        Benchmark {
            name: "SRAD2",
            dims: 2,
            points: 3,
            grids: 2,
            figure: Figure::Fig7,
            small: &[504, 458],
            large: None,
            paper_small: &[504, 458],
            paper_large: None,
            builder: srad2_builder,
            reference: srad2_reference,
        },
        Benchmark {
            name: "Hotspot2D",
            dims: 2,
            points: 5,
            grids: 2,
            figure: Figure::Fig7,
            small: &[256, 256],
            large: None,
            paper_small: &[8192, 8192],
            paper_large: None,
            builder: hotspot2d_builder,
            reference: hotspot2d_reference,
        },
        Benchmark {
            name: "Gaussian",
            dims: 2,
            points: 25,
            grids: 1,
            figure: Figure::Fig8,
            small: &[128, 128],
            large: Some(&[256, 256]),
            paper_small: &[4096, 4096],
            paper_large: Some(&[8192, 8192]),
            builder: gaussian_builder,
            reference: gaussian_reference,
        },
        Benchmark {
            name: "Gradient",
            dims: 2,
            points: 5,
            grids: 1,
            figure: Figure::Fig8,
            small: &[128, 128],
            large: Some(&[256, 256]),
            paper_small: &[4096, 4096],
            paper_large: Some(&[8192, 8192]),
            builder: gradient_builder,
            reference: gradient_reference,
        },
        Benchmark {
            name: "Jacobi2D5pt",
            dims: 2,
            points: 5,
            grids: 1,
            figure: Figure::Fig8,
            small: &[128, 128],
            large: Some(&[256, 256]),
            paper_small: &[4096, 4096],
            paper_large: Some(&[8192, 8192]),
            builder: jacobi2d5_builder,
            reference: jacobi2d5_reference,
        },
        Benchmark {
            name: "Jacobi2D9pt",
            dims: 2,
            points: 9,
            grids: 1,
            figure: Figure::Fig8,
            small: &[128, 128],
            large: Some(&[256, 256]),
            paper_small: &[4096, 4096],
            paper_large: Some(&[8192, 8192]),
            builder: jacobi2d9_builder,
            reference: jacobi2d9_reference,
        },
    ]
}
