//! The 3D benchmarks: Hotspot3D (Rodinia), the room-acoustics simulation
//! (§3.5 of the paper), Jacobi3D 7pt/13pt, Poisson 19pt and Heat 7pt
//! (Rawat et al.).

use std::sync::Arc;

use lift_core::build::*;
use lift_core::expr::{Expr, FunDecl};
use lift_core::ndim::{map3, pad3, pad3_value, slide3, zip2_3d, zip3_3d};
use lift_core::pattern::Boundary;
use lift_core::scalar::Scalar;
use lift_core::types::Type;
use lift_core::userfun::{add_f32, UserFun};

use crate::{Benchmark, Figure};

/// Clamped 3D gather (z outermost).
fn g3(input: &[f32], z: i64, y: i64, x: i64, nz: usize, ny: usize, nx: usize) -> f32 {
    let z = z.clamp(0, nz as i64 - 1) as usize;
    let y = y.clamp(0, ny as i64 - 1) as usize;
    let x = x.clamp(0, nx as i64 - 1) as usize;
    input[(z * ny + y) * nx + x]
}

/// Zero-padded 3D gather (acoustic boundaries).
fn g3z(input: &[f32], z: i64, y: i64, x: i64, nz: usize, ny: usize, nx: usize) -> f32 {
    if z < 0 || y < 0 || x < 0 || z >= nz as i64 || y >= ny as i64 || x >= nx as i64 {
        0.0
    } else {
        input[(z as usize * ny + y as usize) * nx + x as usize]
    }
}

fn f32s(vals: &[f32]) -> Vec<Scalar> {
    vals.iter().map(|v| Scalar::F32(*v)).collect()
}

fn nbh333() -> Type {
    Type::array_3d(Type::f32(), 3, 3, 3)
}

/// `map3(f)` over 3×3×3 clamp-padded neighbourhoods of one grid.
fn single_grid_3x3x3(sizes: &[usize], f: FunDecl) -> FunDecl {
    let ty = Type::array_3d(Type::f32(), sizes[0], sizes[1], sizes[2]);
    lam_named("A", ty, move |a| {
        map3(f, slide3(3, 1, pad3(1, 1, Boundary::Clamp, a)))
    })
}

/// The six face neighbours + centre of a 3×3×3 window, in the paper's
/// §3.5 order.
fn faces(nbh: &Expr) -> [Expr; 7] {
    [
        at3(1, 1, 1, nbh.clone()), // centre
        at3(0, 1, 1, nbh.clone()),
        at3(1, 0, 1, nbh.clone()),
        at3(1, 1, 0, nbh.clone()),
        at3(1, 1, 2, nbh.clone()),
        at3(1, 2, 1, nbh.clone()),
        at3(2, 1, 1, nbh.clone()),
    ]
}

// --------------------------------------------------------------------------
// Jacobi3D 7pt
// --------------------------------------------------------------------------

/// 7-point Jacobi average.
pub fn jacobi7_uf() -> Arc<UserFun> {
    UserFun::new(
        "jacobi7",
        ["c", "a0", "a1", "a2", "a3", "a4", "a5"].map(|n| (n, Type::f32())),
        Type::f32(),
        "return (c + a0 + a1 + a2 + a3 + a4 + a5) / 7.0f;",
        |a| {
            let mut sum = a[0].as_f32();
            for v in &a[1..] {
                sum += v.as_f32();
            }
            Scalar::F32(sum / 7.0)
        },
    )
}

fn jacobi3d7_builder(sizes: &[usize]) -> FunDecl {
    let uf = jacobi7_uf();
    let f = lam(nbh333(), move |nbh| {
        let [c, a0, a1, a2, a3, a4, a5] = faces(&nbh);
        call(&uf, [c, a0, a1, a2, a3, a4, a5])
    });
    single_grid_3x3x3(sizes, f)
}

fn jacobi3d7_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);
    let a = &inputs[0];
    let uf = jacobi7_uf();
    let mut out = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                out.push(
                    uf.call(&f32s(&[
                        g3(a, z, y, x, nz, ny, nx),
                        g3(a, z - 1, y, x, nz, ny, nx),
                        g3(a, z, y - 1, x, nz, ny, nx),
                        g3(a, z, y, x - 1, nz, ny, nx),
                        g3(a, z, y, x + 1, nz, ny, nx),
                        g3(a, z, y + 1, x, nz, ny, nx),
                        g3(a, z + 1, y, x, nz, ny, nx),
                    ]))
                    .as_f32(),
                );
            }
        }
    }
    out
}

// --------------------------------------------------------------------------
// Jacobi3D 13pt — radius-2 star over a 5×5×5 window.
// --------------------------------------------------------------------------

/// 13-point (radius-2 star) Jacobi average.
pub fn jacobi13_uf() -> Arc<UserFun> {
    UserFun::new(
        "jacobi13",
        [
            "c", "z0", "z1", "z3", "z4", "y0", "y1", "y3", "y4", "x0", "x1", "x3", "x4",
        ]
        .map(|n| (n, Type::f32())),
        Type::f32(),
        "return (c + z0 + z1 + z3 + z4 + y0 + y1 + y3 + y4 + x0 + x1 + x3 + x4) / 13.0f;",
        |a| {
            let mut sum = a[0].as_f32();
            for v in &a[1..] {
                sum += v.as_f32();
            }
            Scalar::F32(sum / 13.0)
        },
    )
}

fn jacobi3d13_builder(sizes: &[usize]) -> FunDecl {
    let uf = jacobi13_uf();
    let f = lam(Type::array_3d(Type::f32(), 5, 5, 5), move |nbh| {
        let args = [
            at3(2, 2, 2, nbh.clone()),
            at3(0, 2, 2, nbh.clone()),
            at3(1, 2, 2, nbh.clone()),
            at3(3, 2, 2, nbh.clone()),
            at3(4, 2, 2, nbh.clone()),
            at3(2, 0, 2, nbh.clone()),
            at3(2, 1, 2, nbh.clone()),
            at3(2, 3, 2, nbh.clone()),
            at3(2, 4, 2, nbh.clone()),
            at3(2, 2, 0, nbh.clone()),
            at3(2, 2, 1, nbh.clone()),
            at3(2, 2, 3, nbh.clone()),
            at3(2, 2, 4, nbh),
        ];
        call(&uf, args)
    });
    let ty = Type::array_3d(Type::f32(), sizes[0], sizes[1], sizes[2]);
    lam_named("A", ty, move |a| {
        map3(f, slide3(5, 1, pad3(2, 2, Boundary::Clamp, a)))
    })
}

fn jacobi3d13_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);
    let a = &inputs[0];
    let uf = jacobi13_uf();
    let mut out = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                out.push(
                    uf.call(&f32s(&[
                        g3(a, z, y, x, nz, ny, nx),
                        g3(a, z - 2, y, x, nz, ny, nx),
                        g3(a, z - 1, y, x, nz, ny, nx),
                        g3(a, z + 1, y, x, nz, ny, nx),
                        g3(a, z + 2, y, x, nz, ny, nx),
                        g3(a, z, y - 2, x, nz, ny, nx),
                        g3(a, z, y - 1, x, nz, ny, nx),
                        g3(a, z, y + 1, x, nz, ny, nx),
                        g3(a, z, y + 2, x, nz, ny, nx),
                        g3(a, z, y, x - 2, nz, ny, nx),
                        g3(a, z, y, x - 1, nz, ny, nx),
                        g3(a, z, y, x + 1, nz, ny, nx),
                        g3(a, z, y, x + 2, nz, ny, nx),
                    ]))
                    .as_f32(),
                );
            }
        }
    }
    out
}

// --------------------------------------------------------------------------
// Poisson 19pt — weighted reduce with an `array` weight generator.
// --------------------------------------------------------------------------

/// Poisson 19-point weights by Manhattan distance within the 3×3×3 window
/// (corners get weight 0, leaving 19 live points).
pub fn poisson_weight_uf() -> Arc<UserFun> {
    UserFun::new(
        "poissonWeight",
        [("i", Type::i32()), ("n", Type::i32())],
        Type::f32(),
        "int z = i / 9; int y = (i % 9) / 3; int x = i % 3; \
         int m = abs(z - 1) + abs(y - 1) + abs(x - 1); \
         return (m == 0) ? 2.6666f : ((m == 1) ? -0.1666f : ((m == 2) ? -0.0833f : 0.0f));",
        |a| {
            let i = a[0].as_i32();
            let (z, y, x) = (i / 9, (i % 9) / 3, i % 3);
            let m = (z - 1).abs() + (y - 1).abs() + (x - 1).abs();
            Scalar::F32(match m {
                0 => 2.6666,
                1 => -0.1666,
                2 => -0.0833,
                _ => 0.0,
            })
        },
    )
}

fn poisson_builder(sizes: &[usize]) -> FunDecl {
    let wuf = crate::bench2d::wadd_uf();
    let f = lam(nbh333(), move |nbh| {
        let flat = join(join(nbh));
        let pairs = zip2(flat, array_gen(poisson_weight_uf(), 27));
        let step = lam2(
            Type::f32(),
            Type::Tuple(vec![Type::f32(), Type::f32()]),
            move |acc, t| call(&wuf, [acc, get(1, t.clone()), get(0, t)]),
        );
        reduce(step, Expr::f32(0.0), pairs)
    });
    single_grid_3x3x3(sizes, f)
}

fn poisson_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);
    let a = &inputs[0];
    let wuf = crate::bench2d::wadd_uf();
    let puf = poisson_weight_uf();
    let mut out = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let mut acc = 0.0f32;
                for k in 0..27i32 {
                    let (dz, dy, dx) = (
                        (k / 9) as i64 - 1,
                        ((k % 9) / 3) as i64 - 1,
                        (k % 3) as i64 - 1,
                    );
                    let w = puf.call(&[Scalar::I32(k), Scalar::I32(27)]).as_f32();
                    let v = g3(a, z + dz, y + dy, x + dx, nz, ny, nx);
                    acc = wuf.call(&f32s(&[acc, w, v])).as_f32();
                }
                out.push(acc);
            }
        }
    }
    out
}

// --------------------------------------------------------------------------
// Heat 7pt
// --------------------------------------------------------------------------

/// Explicit heat-equation step.
pub fn heat_uf() -> Arc<UserFun> {
    UserFun::new(
        "heat7",
        ["c", "a0", "a1", "a2", "a3", "a4", "a5"].map(|n| (n, Type::f32())),
        Type::f32(),
        "return c + 0.125f * (a0 + a1 + a2 + a3 + a4 + a5 - 6.0f * c);",
        |a| {
            let c = a[0].as_f32();
            let mut sum = 0.0f32;
            for v in &a[1..] {
                sum += v.as_f32();
            }
            Scalar::F32(c + 0.125 * (sum - 6.0 * c))
        },
    )
}

fn heat_builder(sizes: &[usize]) -> FunDecl {
    let uf = heat_uf();
    let f = lam(nbh333(), move |nbh| {
        let [c, a0, a1, a2, a3, a4, a5] = faces(&nbh);
        call(&uf, [c, a0, a1, a2, a3, a4, a5])
    });
    single_grid_3x3x3(sizes, f)
}

fn heat_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);
    let a = &inputs[0];
    let uf = heat_uf();
    let mut out = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                out.push(
                    uf.call(&f32s(&[
                        g3(a, z, y, x, nz, ny, nx),
                        g3(a, z - 1, y, x, nz, ny, nx),
                        g3(a, z, y - 1, x, nz, ny, nx),
                        g3(a, z, y, x - 1, nz, ny, nx),
                        g3(a, z, y, x + 1, nz, ny, nx),
                        g3(a, z, y + 1, x, nz, ny, nx),
                        g3(a, z + 1, y, x, nz, ny, nx),
                    ]))
                    .as_f32(),
                );
            }
        }
    }
    out
}

// --------------------------------------------------------------------------
// Hotspot3D (Rodinia)
// --------------------------------------------------------------------------

/// Rodinia Hotspot3D per-cell update.
pub fn hotspot3d_uf() -> Arc<UserFun> {
    UserFun::new(
        "hotspot3d",
        ["p", "c", "a0", "a1", "a2", "a3", "a4", "a5"].map(|n| (n, Type::f32())),
        Type::f32(),
        "float delta = 0.001f * (p + 0.1f*(a0 + a1 + a2 + a3 + a4 + a5 - 6.0f*c) \
         + 0.05f*(80.0f - c)); \
         return c + delta;",
        |a| {
            let v: Vec<f32> = a.iter().map(|s| s.as_f32()).collect();
            let p = v[0];
            let c = v[1];
            let sum: f32 = v[2..].iter().sum();
            let delta = 0.001f32 * (p + 0.1 * (sum - 6.0 * c) + 0.05 * (80.0 - c));
            Scalar::F32(c + delta)
        },
    )
}

fn hotspot3d_builder(sizes: &[usize]) -> FunDecl {
    let uf = hotspot3d_uf();
    let ty = Type::array_3d(Type::f32(), sizes[0], sizes[1], sizes[2]);
    lam2_named("temp", ty.clone(), "power", ty, move |t_grid, p_grid| {
        let t_nbhs = slide3(3, 1, pad3(1, 1, Boundary::Clamp, t_grid));
        let tup = Type::Tuple(vec![Type::f32(), nbh333()]);
        let f = lam(tup, move |t| {
            let p = get(0, t.clone());
            let nb = get(1, t);
            let [c, a0, a1, a2, a3, a4, a5] = faces(&nb);
            call(&uf, [p, c, a0, a1, a2, a3, a4, a5])
        });
        map3(f, zip2_3d(p_grid, t_nbhs))
    })
}

fn hotspot3d_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);
    let (tg, pg) = (&inputs[0], &inputs[1]);
    let uf = hotspot3d_uf();
    let mut out = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                out.push(
                    uf.call(&f32s(&[
                        pg[(z as usize * ny + y as usize) * nx + x as usize],
                        g3(tg, z, y, x, nz, ny, nx),
                        g3(tg, z - 1, y, x, nz, ny, nx),
                        g3(tg, z, y - 1, x, nz, ny, nx),
                        g3(tg, z, y, x - 1, nz, ny, nx),
                        g3(tg, z, y, x + 1, nz, ny, nx),
                        g3(tg, z, y + 1, x, nz, ny, nx),
                        g3(tg, z + 1, y, x, nz, ny, nx),
                    ]))
                    .as_f32(),
                );
            }
        }
    }
    out
}

// --------------------------------------------------------------------------
// Acoustic room simulation (§3.5, Listing 3)
// --------------------------------------------------------------------------

/// Counts the in-grid face neighbours of cell `(i, j, k)` — the mask the
/// paper computes *on the fly* with the `array3` generator.
pub fn num_neighbours_uf() -> Arc<UserFun> {
    UserFun::new(
        "numNeighbours",
        [
            ("i", Type::i32()),
            ("j", Type::i32()),
            ("k", Type::i32()),
            ("ni", Type::i32()),
            ("nj", Type::i32()),
            ("nk", Type::i32()),
        ],
        Type::i32(),
        "return (i > 0) + (i < ni - 1) + (j > 0) + (j < nj - 1) + (k > 0) + (k < nk - 1);",
        |a| {
            let (i, j, k) = (a[0].as_i32(), a[1].as_i32(), a[2].as_i32());
            let (ni, nj, nk) = (a[3].as_i32(), a[4].as_i32(), a[5].as_i32());
            let n = (i > 0) as i32
                + (i < ni - 1) as i32
                + (j > 0) as i32
                + (j < nj - 1) as i32
                + (k > 0) as i32
                + (k < nk - 1) as i32;
            Scalar::I32(n)
        },
    )
}

/// The §3.5 acoustic update: `cf·((2 − l2·nn)·cur + l2·Σnbh − cf2·prev)`
/// with boundary-loss coefficients selected by the neighbour count.
pub fn acoustic_uf() -> Arc<UserFun> {
    UserFun::new(
        "acousticStep",
        [
            ("prev", Type::f32()),
            ("cur", Type::f32()),
            ("sum", Type::f32()),
            ("nn", Type::i32()),
        ],
        Type::f32(),
        "float l2 = 0.25f; \
         float cf1 = (nn < 6) ? 0.999f : 1.0f; \
         float cf2 = (nn < 6) ? 0.998f : 1.0f; \
         return cf1 * ((2.0f - l2 * (float)nn) * cur + l2 * sum - cf2 * prev);",
        |a| {
            let (prev, cur, sum) = (a[0].as_f32(), a[1].as_f32(), a[2].as_f32());
            let nn = a[3].as_i32();
            let l2 = 0.25f32;
            let cf1 = if nn < 6 { 0.999 } else { 1.0 };
            let cf2 = if nn < 6 { 0.998 } else { 1.0 };
            Scalar::F32(cf1 * ((2.0 - l2 * nn as f32) * cur + l2 * sum - cf2 * prev))
        },
    )
}

fn acoustic_builder(sizes: &[usize]) -> FunDecl {
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);
    let uf = acoustic_uf();
    let ty = Type::array_3d(Type::f32(), nz, ny, nx);
    lam2_named("prev", ty.clone(), "cur", ty, move |prev, cur| {
        // zip3(grid_{t-1}, slide3(3, 1, pad3(1, 1, zero, grid_t)), mask)
        let nbhs = slide3(3, 1, pad3_value(1, 1, 0.0f32, cur));
        let mask = array_gen3(num_neighbours_uf(), nz, ny, nx);
        let tup = Type::Tuple(vec![Type::f32(), nbh333(), Type::i32()]);
        let f = lam(tup, move |m| {
            let p = get(0, m.clone());
            let nb = get(1, m.clone());
            let nn = get(2, m);
            let [c, a0, a1, a2, a3, a4, a5] = faces(&nb);
            // Σ of the six face neighbours, in the paper's order.
            let sum = call(
                &add_f32(),
                [
                    call(
                        &add_f32(),
                        [
                            call(
                                &add_f32(),
                                [call(&add_f32(), [call(&add_f32(), [a0, a1]), a2]), a3],
                            ),
                            a4,
                        ],
                    ),
                    a5,
                ],
            );
            call(&uf, [p, c, sum, nn])
        });
        map3(f, zip3_3d(prev, nbhs, mask))
    })
}

fn acoustic_reference(inputs: &[Vec<f32>], sizes: &[usize]) -> Vec<f32> {
    let (nz, ny, nx) = (sizes[0], sizes[1], sizes[2]);
    let (prev, cur) = (&inputs[0], &inputs[1]);
    let auf = acoustic_uf();
    let nuf = num_neighbours_uf();
    let mut out = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let sum = ((((g3z(cur, z - 1, y, x, nz, ny, nx)
                    + g3z(cur, z, y - 1, x, nz, ny, nx))
                    + g3z(cur, z, y, x - 1, nz, ny, nx))
                    + g3z(cur, z, y, x + 1, nz, ny, nx))
                    + g3z(cur, z, y + 1, x, nz, ny, nx))
                    + g3z(cur, z + 1, y, x, nz, ny, nx);
                let nn = nuf
                    .call(&[
                        Scalar::I32(z as i32),
                        Scalar::I32(y as i32),
                        Scalar::I32(x as i32),
                        Scalar::I32(nz as i32),
                        Scalar::I32(ny as i32),
                        Scalar::I32(nx as i32),
                    ])
                    .as_i32();
                out.push(
                    auf.call(&[
                        Scalar::F32(prev[(z as usize * ny + y as usize) * nx + x as usize]),
                        Scalar::F32(cur[(z as usize * ny + y as usize) * nx + x as usize]),
                        Scalar::F32(sum),
                        Scalar::I32(nn),
                    ])
                    .as_f32(),
                );
            }
        }
    }
    out
}

/// The six 3D benchmarks of Table 1.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Hotspot3D",
            dims: 3,
            points: 7,
            grids: 2,
            figure: Figure::Fig7,
            small: &[8, 64, 64],
            large: None,
            paper_small: &[8, 512, 512],
            paper_large: None,
            builder: hotspot3d_builder,
            reference: hotspot3d_reference,
        },
        Benchmark {
            name: "Acoustic",
            dims: 3,
            points: 7,
            grids: 2,
            figure: Figure::Fig7,
            small: &[24, 32, 32],
            large: None,
            paper_small: &[404, 512, 512],
            paper_large: None,
            builder: acoustic_builder,
            reference: acoustic_reference,
        },
        Benchmark {
            name: "Jacobi3D7pt",
            dims: 3,
            points: 7,
            grids: 1,
            figure: Figure::Fig8,
            small: &[24, 24, 24],
            large: Some(&[40, 40, 40]),
            paper_small: &[256, 256, 256],
            paper_large: Some(&[512, 512, 512]),
            builder: jacobi3d7_builder,
            reference: jacobi3d7_reference,
        },
        Benchmark {
            name: "Jacobi3D13pt",
            dims: 3,
            points: 13,
            grids: 1,
            figure: Figure::Fig8,
            small: &[24, 24, 24],
            large: Some(&[40, 40, 40]),
            paper_small: &[256, 256, 256],
            paper_large: Some(&[512, 512, 512]),
            builder: jacobi3d13_builder,
            reference: jacobi3d13_reference,
        },
        Benchmark {
            name: "Poisson",
            dims: 3,
            points: 19,
            grids: 1,
            figure: Figure::Fig8,
            small: &[24, 24, 24],
            large: Some(&[40, 40, 40]),
            paper_small: &[256, 256, 256],
            paper_large: Some(&[512, 512, 512]),
            builder: poisson_builder,
            reference: poisson_reference,
        },
        Benchmark {
            name: "Heat",
            dims: 3,
            points: 7,
            grids: 1,
            figure: Figure::Fig8,
            small: &[24, 24, 24],
            large: Some(&[40, 40, 40]),
            paper_small: &[256, 256, 256],
            paper_large: Some(&[512, 512, 512]),
            builder: heat_builder,
            reference: heat_reference,
        },
    ]
}
