//! Experiment drivers reproducing the paper's evaluation (§6–§7).
//!
//! All orchestration lives in `lift-driver`'s staged [`Pipeline`] API —
//! this crate only iterates the benchmark × device grid, collects rows and
//! renders them ([`report`]) as text or JSON (`--json` on the binary).
//!
//! Environment knobs (all optional):
//!
//! * `LIFT_TUNE_BUDGET` — evaluations per (variant, device); default 10.
//! * `LIFT_FULL_SIZES=1` — use the paper's original grid sizes (slow).
//! * `LIFT_SEED` — experiment seed; default 2018 (the CGO year).

pub mod experiments;
pub mod report;

pub use experiments::{
    ablation, bench_one, fig7, fig8, table1, AblationRow, BenchRow, Fig7Row, Fig8Row, Table1Row,
};
pub use lift_driver::{BenchResult, LiftError, Pipeline, TunedVariant};

/// The tuning budget per variant/device pair.
pub fn tune_budget() -> usize {
    std::env::var("LIFT_TUNE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// The experiment seed.
pub fn seed() -> u64 {
    std::env::var("LIFT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2018)
}
