//! Experiment drivers reproducing the paper's evaluation (§6–§7).
//!
//! All orchestration lives in `lift-driver`'s staged [`Pipeline`] API —
//! this crate only iterates the benchmark × device grid, collects rows and
//! renders them ([`report`]) as text or JSON (`--json` on the binary).
//!
//! Environment knobs (all optional):
//!
//! * `LIFT_TUNE_BUDGET` — evaluations per (variant, device); default 10.
//! * `LIFT_TUNE_THREADS` — worker threads for the sweep and the tuner
//!   (also settable with the binary's `--threads N` flag); default 1.
//!   Threading changes wall-clock only: any thread count reproduces the
//!   sequential results bit-for-bit for the same seed.
//! * `LIFT_CHECKPOINT` — tuning checkpoint file (also settable with the
//!   binary's `--checkpoint PATH` flag); resuming an interrupted run from
//!   it reproduces the uninterrupted output bit-for-bit. Each process
//!   needs its own file.
//! * `LIFT_CHECKPOINT_EVERY` — applied tells between checkpoint writes;
//!   default 16.
//! * `LIFT_FULL_SIZES=1` — use the paper's original grid sizes (slow).
//! * `LIFT_SEED` — experiment seed; default 2018 (the CGO year).
//!
//! Sweeps also shard across *processes*: `--shard i/n` runs the cells
//! with `index % n == i` and prints a partial report, `lift-harness merge
//! <parts…>` recombines a complete set byte-identically to the
//! single-process `--json` document, and `--spawn-workers n` does both in
//! one command. See [`experiments::Shard`] and [`report::merge_parts`].

#![forbid(unsafe_code)]

pub mod campaign;
pub mod compare;
pub mod experiments;
pub mod model;
pub mod perf;
pub mod report;

pub use campaign::{run_campaign, CampaignOptions, CampaignReport};
pub use compare::compare_docs;
pub use experiments::{
    ablation, ablation_shard, ablation_with, bench_one, bench_shard, experiment_cells, fig7,
    fig7_shard, fig7_with, fig8, fig8_shard, fig8_with, table1, validate_shard, verify_sweep,
    verify_sweep_with, AblationRow, BenchRow, Fig7Row, Fig8Row, Shard, ShardRows, Table1Row,
    VerifyRow, ABLATION_BENCHES,
};
pub use lift_driver::{BenchResult, LiftError, Pipeline, TunedVariant};
pub use lift_tuner::parallel_map;
pub use model::{model_report, model_report_with, ModelReport};
pub use report::{merge_available, merge_parts};

/// The tuning budget per variant/device pair.
pub fn tune_budget() -> usize {
    std::env::var("LIFT_TUNE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// The experiment seed.
pub fn seed() -> u64 {
    std::env::var("LIFT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2018)
}

/// Worker threads for the benchmark sweep and the tuner
/// (`LIFT_TUNE_THREADS`, default 1 = fully sequential). Delegates to the
/// driver's resolver so the sweep fan-out and the tuner always agree on
/// the effective count.
pub fn threads() -> usize {
    lift_driver::TuneOptions::default().resolved_threads()
}
