//! Experiment drivers reproducing the paper's evaluation (§6–§7).
//!
//! The [`pipeline`] module runs the full Lift flow for one benchmark on one
//! virtual device: enumerate rewrite variants → bind tunables → generate
//! OpenCL → execute on the simulator → validate against the golden
//! reference → keep the fastest modeled configuration. [`experiments`]
//! builds Figures 7 and 8 and the Table-1/ablation reports from it.
//!
//! Environment knobs (all optional):
//!
//! * `LIFT_TUNE_BUDGET` — evaluations per (variant, device); default 10.
//! * `LIFT_FULL_SIZES=1` — use the paper's original grid sizes (slow).
//! * `LIFT_SEED` — experiment seed; default 2018 (the CGO year).

pub mod experiments;
pub mod pipeline;
pub mod report;

pub use experiments::{ablation, fig7, fig8, table1, AblationRow, Fig7Row, Fig8Row};
pub use pipeline::{run_reference, tune_lift, tune_ppcg, BenchResult, TunedVariant};

/// The tuning budget per variant/device pair.
pub fn tune_budget() -> usize {
    std::env::var("LIFT_TUNE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// The experiment seed.
pub fn seed() -> u64 {
    std::env::var("LIFT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2018)
}
