//! Simulator performance tracking: the `lift-harness perf` command.
//!
//! Times the Figure-7 sweep end-to-end under both simulator engines (the
//! bytecode plan and the tree-walking reference interpreter), byte-diffs
//! their JSON reports, and collects per-kernel launch microbenchmarks plus
//! plan-compilation cost. The result is written to `BENCH_sim.json` so CI
//! can track the simulator's throughput — the tuner's hot path — across
//! commits, and can gate on the plan engine's speedup over the pre-plan
//! interpreter.

use std::time::Instant;

use lift_driver::{CompiledStencil, Pipeline};
use lift_oclsim::{BufferData, DeviceProfile, Plan, SimEngine, VirtualDevice};
use lift_stencils::by_name;

use crate::report::{json_fig7, json_str};
use crate::{fig7_with, tune_budget, LiftError};

/// One microbenchmark measurement.
pub struct MicroBench {
    /// `<benchmark>/<variant>` label.
    pub name: String,
    /// Output elements per launch (for throughput derivation).
    pub elems: usize,
    /// Mean launch wall-time per engine, in milliseconds.
    pub tree_ms: f64,
    pub plan_ms: f64,
    /// One-time plan compilation cost in microseconds.
    pub plan_compile_us: f64,
}

/// The `perf` command's full result.
pub struct PerfReport {
    /// Figure-7 sweep wall time (seconds) under each engine, same budget,
    /// same thread count.
    pub fig7_tree_s: f64,
    pub fig7_plan_s: f64,
    /// Whether the two engines' fig7 JSON documents were byte-identical.
    pub fig7_identical: bool,
    /// Tuner evaluations per variant used for the sweep.
    pub budget: usize,
    /// Per-kernel launch microbenchmarks.
    pub micro: Vec<MicroBench>,
}

impl PerfReport {
    /// End-to-end sweep speedup of the plan engine over the tree
    /// interpreter (the pre-plan execution path).
    pub fn sweep_speedup(&self) -> f64 {
        self.fig7_tree_s / self.fig7_plan_s
    }

    /// The `BENCH_sim.json` document.
    pub fn to_json(&self) -> String {
        let micro: Vec<String> = self
            .micro
            .iter()
            .map(|m| {
                format!(
                    "    {{\"name\": {}, \"tree_ms\": {:.4}, \"plan_ms\": {:.4}, \
                     \"speedup\": {:.2}, \"plan_compile_us\": {:.2}}}",
                    json_str(&m.name),
                    m.tree_ms,
                    m.plan_ms,
                    m.tree_ms / m.plan_ms,
                    m.plan_compile_us
                )
            })
            .collect();
        format!(
            "{{\n\
             \"schema\": \"lift-sim-perf/1\",\n\
             \"fig7_sweep\": {{\"budget\": {}, \"threads\": 1, \
             \"tree_s\": {:.3}, \"plan_s\": {:.3}, \"speedup\": {:.2}, \
             \"byte_identical\": {}}},\n\
             \"microbench\": [\n{}\n  ]\n\
             }}\n",
            self.budget,
            self.fig7_tree_s,
            self.fig7_plan_s,
            self.sweep_speedup(),
            self.fig7_identical,
            micro.join(",\n")
        )
    }

    /// A human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fig7 sweep (budget {}, 1 thread): plan {:.2}s, tree (pre-plan \
             interpreter) {:.2}s — {:.1}x, reports {}\n\n",
            self.budget,
            self.fig7_plan_s,
            self.fig7_tree_s,
            self.sweep_speedup(),
            if self.fig7_identical {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        ));
        out.push_str("per-launch microbenchmarks (K20c profile):\n");
        for m in &self.micro {
            out.push_str(&format!(
                "  {:28} tree {:8.3} ms   plan {:8.3} ms   ({:4.1}x, \
                 plan-compile {:6.1} us)\n",
                m.name,
                m.tree_ms,
                m.plan_ms,
                m.tree_ms / m.plan_ms,
                m.plan_compile_us
            ));
        }
        out
    }
}

fn compile_case(
    dev: &VirtualDevice,
    name: &str,
    sizes: &[usize],
    variant: &str,
    cfg: &[(&str, i64)],
) -> Result<(CompiledStencil, Vec<BufferData>), LiftError> {
    let bench = by_name(name);
    let compiled = Pipeline::from_benchmark(&bench, sizes)?
        .explore()?
        .on(dev)
        .with_config(variant, cfg)?;
    let inputs: Vec<BufferData> = bench
        .gen_inputs(sizes, 1)
        .into_iter()
        .map(BufferData::F32)
        .collect();
    Ok((compiled, inputs))
}

/// Best-of-batches mean launch time in milliseconds under `engine`
/// (shared by the `perf` command and the `cargo bench` simulator target).
pub fn time_launch(
    dev: &VirtualDevice,
    compiled: &CompiledStencil,
    inputs: &[BufferData],
    engine: SimEngine,
    reps: usize,
) -> Result<f64, LiftError> {
    dev.run_with_engine(compiled.kernel(), inputs, compiled.launch(), engine)?;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(dev.run_with_engine(
                compiled.kernel(),
                std::hint::black_box(inputs),
                compiled.launch(),
                engine,
            )?);
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    Ok(best * 1e3)
}

/// Restores (or clears) `LIFT_SIM_ENGINE` when dropped, so an error
/// mid-sweep can never leave the process pinned to the wrong engine.
struct EngineEnvGuard {
    prior: Option<String>,
}

impl EngineEnvGuard {
    fn set(value: &str) -> Self {
        let prior = std::env::var("LIFT_SIM_ENGINE").ok();
        std::env::set_var("LIFT_SIM_ENGINE", value);
        EngineEnvGuard { prior }
    }
}

impl Drop for EngineEnvGuard {
    fn drop(&mut self) {
        match self.prior.take() {
            Some(v) => std::env::set_var("LIFT_SIM_ENGINE", v),
            None => std::env::remove_var("LIFT_SIM_ENGINE"),
        }
    }
}

/// The per-kernel launch microbenchmarks, shared with the `cargo bench`
/// simulator target so the CI-tracked `BENCH_sim.json` numbers and the
/// interactive view always measure the same cases the same way.
///
/// # Errors
///
/// Any [`LiftError`] from compiling or running a case.
pub fn microbenches() -> Result<Vec<MicroBench>, LiftError> {
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    // (benchmark, sizes, variant, configuration)
    type Case = (
        &'static str,
        Vec<usize>,
        &'static str,
        Vec<(&'static str, i64)>,
    );
    let cases: [Case; 4] = [
        (
            "Jacobi2D5pt",
            vec![64, 64],
            "global",
            vec![("lx", 16), ("ly", 8)],
        ),
        (
            "Jacobi2D5pt",
            vec![64, 64],
            "tiled-local",
            vec![("TS0", 18), ("TS1", 18), ("lx", 16), ("ly", 8)],
        ),
        (
            "Heat",
            vec![8, 16, 16],
            "global",
            vec![("lx", 8), ("ly", 4), ("lz", 2)],
        ),
        ("SRAD1", vec![64, 64], "global", vec![("lx", 16), ("ly", 8)]),
    ];
    let mut micro = Vec::new();
    for (name, sizes, variant, cfg) in cases {
        let (compiled, inputs) = compile_case(&dev, name, &sizes, variant, &cfg)?;
        let tree_ms = time_launch(&dev, &compiled, &inputs, SimEngine::Tree, 5)?;
        let plan_ms = time_launch(&dev, &compiled, &inputs, SimEngine::Plan, 20)?;
        let t = Instant::now();
        let reps = 200;
        for _ in 0..reps {
            std::hint::black_box(
                Plan::compile(std::hint::black_box(compiled.kernel())).map_err(LiftError::Sim)?,
            );
        }
        let plan_compile_us = t.elapsed().as_secs_f64() / reps as f64 * 1e6;
        micro.push(MicroBench {
            name: format!("{name}/{variant}"),
            elems: sizes.iter().product(),
            tree_ms,
            plan_ms,
            plan_compile_us,
        });
    }
    Ok(micro)
}

/// Runs the sweep timings and microbenchmarks (see the module docs).
///
/// The engine is selected through the same `LIFT_SIM_ENGINE` switch the
/// rest of the stack honours, so the sweep numbers measure exactly what a
/// tuning campaign would pay. The variable is restored on every exit path
/// (including errors).
///
/// # Errors
///
/// Any [`LiftError`] from the sweeps or microbenchmark compilations.
pub fn perf_report() -> Result<PerfReport, LiftError> {
    let budget = tune_budget();

    // Plan first: the tree run then inherits a warm kernel cache, which
    // only makes the reported speedup conservative.
    let (plan_rows, fig7_plan_s) = {
        let _guard = EngineEnvGuard::set("plan");
        let t = Instant::now();
        let rows = fig7_with(1)?;
        (rows, t.elapsed().as_secs_f64())
    };
    let (tree_rows, fig7_tree_s) = {
        let _guard = EngineEnvGuard::set("tree");
        let t = Instant::now();
        let rows = fig7_with(1)?;
        (rows, t.elapsed().as_secs_f64())
    };
    let fig7_identical = json_fig7(&plan_rows) == json_fig7(&tree_rows);

    Ok(PerfReport {
        fig7_tree_s,
        fig7_plan_s,
        fig7_identical,
        budget,
        micro: microbenches()?,
    })
}
