//! Rendering of experiment results: plain text in the paper's shape, plus
//! machine-readable JSON (`lift-harness --json`) for CI and perf tracking.

use crate::experiments::{AblationRow, BenchRow, Fig7Row, Fig8Row, Table1Row};

/// Escapes a string for a JSON literal (the names here are ASCII, but the
/// device names contain spaces and the code must not silently corrupt
/// anything else).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON numbers must be finite; a failed run's NaN/inf becomes `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_array(rows: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = rows.into_iter().collect();
    format!("[\n  {}\n]\n", body.join(",\n  "))
}

/// Renders Table 1 as a JSON array.
pub fn json_table1(rows: &[Table1Row]) -> String {
    json_array(rows.iter().map(|r| {
        format!(
            "{{\"bench\": {}, \"dims\": {}, \"points\": {}, \"input_size\": {}, \"paper_size\": {}, \"grids\": {}}}",
            json_str(&r.bench),
            r.dims,
            r.points,
            json_str(&r.input_size),
            json_str(&r.paper_size),
            r.grids
        )
    }))
}

/// Renders Figure 7 as a JSON array.
pub fn json_fig7(rows: &[Fig7Row]) -> String {
    json_array(rows.iter().map(|r| {
        format!(
            "{{\"bench\": {}, \"device\": {}, \"lift_gelems\": {}, \"reference_gelems\": {}, \"lift_variant\": {}, \"lift_tiled\": {}}}",
            json_str(&r.bench),
            json_str(&r.device),
            json_f64(r.lift_gelems),
            json_f64(r.reference_gelems),
            json_str(&r.lift_variant),
            r.lift_tiled
        )
    }))
}

/// Renders Figure 8 as a JSON array.
pub fn json_fig8(rows: &[Fig8Row]) -> String {
    json_array(rows.iter().map(|r| {
        format!(
            "{{\"bench\": {}, \"device\": {}, \"size\": {}, \"speedup\": {}, \"lift_variant\": {}, \"lift_tiled\": {}}}",
            json_str(&r.bench),
            json_str(&r.device),
            json_str(r.size),
            json_f64(r.speedup),
            json_str(&r.lift_variant),
            r.lift_tiled
        )
    }))
}

/// Renders the ablation study as a JSON array.
pub fn json_ablation(rows: &[AblationRow]) -> String {
    json_array(rows.iter().map(|r| {
        format!(
            "{{\"bench\": {}, \"device\": {}, \"variant\": {}, \"gelems\": {}, \"rel_to_best\": {}}}",
            json_str(&r.bench),
            json_str(&r.device),
            json_str(&r.variant),
            json_f64(r.gelems),
            json_f64(r.rel_to_best)
        )
    }))
}

/// Renders a single-benchmark report as a JSON array.
pub fn json_bench(rows: &[BenchRow]) -> String {
    json_array(rows.iter().map(|r| {
        let config = r
            .config
            .iter()
            .map(|(n, v)| format!("{}: {v}", json_str(n)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"bench\": {}, \"device\": {}, \"variant\": {}, \"time_s\": {}, \"gelems\": {}, \"config\": {{{config}}}, \"winner\": {}, \"tiled\": {}, \"local_mem\": {}}}",
            json_str(&r.bench),
            json_str(&r.device),
            json_str(&r.variant),
            json_f64(r.time_s),
            json_f64(r.gelems),
            r.winner,
            r.tiled,
            r.local_mem
        )
    }))
}

/// Renders a single-benchmark report: per device, every tuned variant with
/// its best configuration, the winner marked.
pub fn render_bench(rows: &[BenchRow]) -> String {
    let mut s = String::new();
    let name = rows.first().map(|r| r.bench.as_str()).unwrap_or("?");
    s.push_str(&format!(
        "Benchmark {name}: tuned variants per device (* = winner)\n"
    ));
    let mut devices: Vec<&str> = rows.iter().map(|r| r.device.as_str()).collect();
    devices.dedup();
    for dev in devices {
        s.push_str(&format!("\n  [{dev}]\n"));
        for r in rows.iter().filter(|r| r.device == dev) {
            let config = r
                .config
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            s.push_str(&format!(
                "  {}{:<21}{:>10.4} GEl/s  {:>9.2} us   {}\n",
                if r.winner { '*' } else { ' ' },
                r.variant,
                r.gelems,
                r.time_s * 1e6,
                config,
            ));
        }
    }
    s
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("Table 1: Benchmarks used in the evaluation\n");
    s.push_str(&format!(
        "{:<14}{:>4}{:>5}  {:<16}{:<18}{:>7}\n",
        "Benchmark", "Dim", "Pts", "Input (scaled)", "Input (paper)", "#grids"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<14}{:>3}D{:>5}  {:<16}{:<18}{:>7}\n",
            r.bench, r.dims, r.points, r.input_size, r.paper_size, r.grids
        ));
    }
    s
}

/// Renders Figure 7 as grouped rows per device.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut s = String::new();
    s.push_str("Figure 7: Lift vs hand-written kernels (giga-elements updated per second)\n");
    let mut devices: Vec<&str> = rows.iter().map(|r| r.device.as_str()).collect();
    devices.dedup();
    for dev in devices {
        s.push_str(&format!("\n  [{dev}]\n"));
        s.push_str(&format!(
            "  {:<11}{:>10}{:>12}{:>8}   {}\n",
            "Benchmark", "Lift", "Reference", "ratio", "winning variant"
        ));
        for r in rows.iter().filter(|r| r.device == dev) {
            s.push_str(&format!(
                "  {:<11}{:>10.4}{:>12.4}{:>7.2}x   {}{}\n",
                r.bench,
                r.lift_gelems,
                r.reference_gelems,
                r.lift_gelems / r.reference_gelems,
                r.lift_variant,
                if r.lift_tiled { " [tiled]" } else { "" },
            ));
        }
    }
    s
}

/// Renders Figure 8 as grouped rows per device.
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let mut s = String::new();
    s.push_str("Figure 8: Lift speedup over PPCG (auto-tuned, > 1 means Lift is faster)\n");
    let mut devices: Vec<&str> = rows.iter().map(|r| r.device.as_str()).collect();
    devices.dedup();
    for dev in devices {
        s.push_str(&format!("\n  [{dev}]\n"));
        s.push_str(&format!(
            "  {:<13}{:>8}{:>10}   {}\n",
            "Benchmark", "size", "speedup", "winning Lift variant"
        ));
        for r in rows.iter().filter(|r| r.device == dev) {
            s.push_str(&format!(
                "  {:<13}{:>8}{:>9.2}x   {}{}\n",
                r.bench,
                r.size,
                r.speedup,
                r.lift_variant,
                if r.lift_tiled { " [tiled]" } else { "" },
            ));
        }
    }
    s
}

/// Renders the ablation study.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut s = String::new();
    s.push_str("Ablation: best throughput per rewrite variant (relative to winner)\n");
    let mut keys: Vec<(String, String)> = rows
        .iter()
        .map(|r| (r.device.clone(), r.bench.clone()))
        .collect();
    keys.dedup();
    for (dev, bench) in keys {
        s.push_str(&format!("\n  [{dev}] {bench}\n"));
        for r in rows.iter().filter(|r| r.device == dev && r.bench == bench) {
            let bar_len = (r.rel_to_best * 32.0).round() as usize;
            s.push_str(&format!(
                "  {:<22}{:>9.4} GEl/s  {:<32} {:>5.1}%\n",
                r.variant,
                r.gelems,
                "#".repeat(bar_len.min(32)),
                r.rel_to_best * 100.0
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_rendering_contains_devices_and_ratios() {
        let rows = vec![Fig7Row {
            bench: "Hotspot2D".into(),
            device: "AMD Radeon HD 7970".into(),
            lift_gelems: 12.0,
            reference_gelems: 0.8,
            lift_variant: "global".into(),
            lift_tiled: false,
        }];
        let out = render_fig7(&rows);
        assert!(out.contains("AMD Radeon HD 7970"));
        assert!(out.contains("15.00x"));
    }

    #[test]
    fn table1_rendering() {
        let rows = crate::experiments::table1();
        let out = render_table1(&rows);
        assert!(out.contains("Stencil2D"));
        assert!(out.contains("Acoustic"));
        assert!(out.contains("4098×4098"));
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let rows = vec![Fig8Row {
            bench: "Heat".into(),
            device: "Nvidia Tesla K20c".into(),
            size: "small",
            speedup: 1.25,
            lift_variant: "global".into(),
            lift_tiled: false,
        }];
        let out = json_fig8(&rows);
        assert!(out.trim_start().starts_with('['));
        assert!(out.trim_end().ends_with(']'));
        assert!(out.contains("\"speedup\": 1.25"));
        assert!(out.contains("\"lift_tiled\": false"));
        // Escaping.
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        // Non-finite numbers must not produce invalid JSON.
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn json_table1_covers_every_benchmark() {
        let rows = crate::experiments::table1();
        let out = json_table1(&rows);
        for b in lift_stencils::suite() {
            assert!(
                out.contains(&format!("\"bench\": \"{}\"", b.name)),
                "{}",
                b.name
            );
        }
    }
}
