//! Rendering of experiment results: plain text in the paper's shape, plus
//! machine-readable JSON (`lift-harness --json`) for CI and perf tracking.
//!
//! Sharded sweeps add two more document kinds. A **partial report**
//! ([`partial_report`]) is what `--shard i/n` writes: the shard's rows,
//! pre-rendered with the exact same per-row formatters as the full JSON
//! document and keyed by global cell index. [`merge_parts`] reassembles a
//! complete set of partials — verifying the schema version, that every
//! part belongs to the same sweep, and that every cell is present exactly
//! once — into output **byte-identical** to the single-process `--json`
//! run, because merging only reorders the already-rendered row strings.

use lift_tuner::json::Value;

use crate::experiments::{
    AblationRow, BenchRow, Fig7Row, Fig8Row, Shard, ShardRows, Table1Row, VerifyRow,
};

/// The version written into (and required from) every partial shard
/// report.
pub const PARTIAL_SCHEMA_VERSION: u64 = 1;

/// Escapes a string for a JSON literal (the names here are ASCII, but the
/// device names contain spaces and the code must not silently corrupt
/// anything else). Public so every hand-assembled JSON document in the
/// harness (rows here, the binary's `--list-benchmarks`) shares one
/// escaper.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON numbers must be finite; a failed run's NaN/inf becomes `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_array(rows: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = rows.into_iter().collect();
    format!("[\n  {}\n]\n", body.join(",\n  "))
}

/// Renders Table 1 as a JSON array.
pub fn json_table1(rows: &[Table1Row]) -> String {
    json_array(rows.iter().map(|r| {
        format!(
            "{{\"bench\": {}, \"dims\": {}, \"points\": {}, \"input_size\": {}, \"paper_size\": {}, \"grids\": {}}}",
            json_str(&r.bench),
            r.dims,
            r.points,
            json_str(&r.input_size),
            json_str(&r.paper_size),
            r.grids
        )
    }))
}

/// One Figure-7 row as a JSON object — the unit both the full document
/// and the partial shard reports are assembled from.
fn fig7_row_json(r: &Fig7Row) -> String {
    format!(
        "{{\"bench\": {}, \"device\": {}, \"lift_gelems\": {}, \"reference_gelems\": {}, \"lift_variant\": {}, \"lift_tiled\": {}}}",
        json_str(&r.bench),
        json_str(&r.device),
        json_f64(r.lift_gelems),
        json_f64(r.reference_gelems),
        json_str(&r.lift_variant),
        r.lift_tiled
    )
}

/// Renders Figure 7 as a JSON array.
pub fn json_fig7(rows: &[Fig7Row]) -> String {
    json_array(rows.iter().map(fig7_row_json))
}

fn fig8_row_json(r: &Fig8Row) -> String {
    format!(
        "{{\"bench\": {}, \"device\": {}, \"size\": {}, \"speedup\": {}, \"lift_variant\": {}, \"lift_tiled\": {}}}",
        json_str(&r.bench),
        json_str(&r.device),
        json_str(r.size),
        json_f64(r.speedup),
        json_str(&r.lift_variant),
        r.lift_tiled
    )
}

/// Renders Figure 8 as a JSON array.
pub fn json_fig8(rows: &[Fig8Row]) -> String {
    json_array(rows.iter().map(fig8_row_json))
}

fn ablation_row_json(r: &AblationRow) -> String {
    format!(
        "{{\"bench\": {}, \"device\": {}, \"variant\": {}, \"gelems\": {}, \"rel_to_best\": {}}}",
        json_str(&r.bench),
        json_str(&r.device),
        json_str(&r.variant),
        json_f64(r.gelems),
        json_f64(r.rel_to_best)
    )
}

/// Renders the ablation study as a JSON array.
pub fn json_ablation(rows: &[AblationRow]) -> String {
    json_array(rows.iter().map(ablation_row_json))
}

fn bench_row_json(r: &BenchRow) -> String {
    let config = r
        .config
        .iter()
        .map(|(n, v)| format!("{}: {v}", json_str(n)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"bench\": {}, \"device\": {}, \"variant\": {}, \"time_s\": {}, \"gelems\": {}, \"config\": {{{config}}}, \"winner\": {}, \"tiled\": {}, \"local_mem\": {}, \"evals_to_best\": {}, \"pruned_verify\": {}, \"pruned_model\": {}, \"sims\": {}}}",
        json_str(&r.bench),
        json_str(&r.device),
        json_str(&r.variant),
        json_f64(r.time_s),
        json_f64(r.gelems),
        r.winner,
        r.tiled,
        r.local_mem,
        r.evals_to_best,
        r.pruned_verify,
        r.pruned_model,
        r.sims
    )
}

/// Renders a single-benchmark report as a JSON array.
pub fn json_bench(rows: &[BenchRow]) -> String {
    json_array(rows.iter().map(bench_row_json))
}

fn verify_row_json(r: &VerifyRow) -> String {
    let config = r
        .config
        .iter()
        .map(|(n, v)| format!("{}: {v}", json_str(n)))
        .collect::<Vec<_>>()
        .join(", ");
    let findings = r
        .findings
        .iter()
        .map(|f| json_str(f))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"bench\": {}, \"device\": {}, \"variant\": {}, \"config\": {{{config}}}, \"pruned\": {}, \"findings\": [{findings}]}}",
        json_str(&r.bench),
        json_str(&r.device),
        json_str(&r.variant),
        r.pruned
    )
}

/// Renders the static-verification sweep as a JSON array.
pub fn json_verify(rows: &[VerifyRow]) -> String {
    json_array(rows.iter().map(verify_row_json))
}

/// Renders the static-verification sweep: one line per kernel × launch,
/// findings spelled out, and a final tally suitable for a CI gate.
pub fn render_verify(rows: &[VerifyRow]) -> String {
    let mut s = String::new();
    s.push_str("Static verification: benchmarks x devices x variants x configs\n");
    let mut key: Vec<(&str, &str)> = rows
        .iter()
        .map(|r| (r.bench.as_str(), r.device.as_str()))
        .collect();
    key.dedup();
    for (bench, dev) in key {
        s.push_str(&format!("\n  [{bench} on {dev}]\n"));
        for r in rows.iter().filter(|r| r.bench == bench && r.device == dev) {
            let config = r
                .config
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let status = if r.findings.is_empty() {
                "ok".to_string()
            } else if r.pruned {
                "pruned (exceeds local memory)".to_string()
            } else {
                format!("{} finding(s)", r.findings.len())
            };
            s.push_str(&format!("  {:<21}{:<32} {status}\n", r.variant, config));
            if !r.pruned {
                for f in &r.findings {
                    s.push_str(&format!("      !! {f}\n"));
                }
            }
        }
    }
    let pruned = rows.iter().filter(|r| r.pruned).count();
    let total: usize = rows
        .iter()
        .filter(|r| !r.pruned)
        .map(|r| r.findings.len())
        .sum();
    s.push_str(&format!(
        "\n{} kernel/launch pairs verified, {pruned} pruned (over-capacity), {total} finding(s)\n",
        rows.len()
    ));
    s
}

/// Renders one shard's slice of a sweep as a partial report document (see
/// the [module docs](self)). `experiment` identifies the sweep (e.g.
/// `"fig7"` or `"bench:Heat:small"`) so [`merge_parts`] can refuse to mix
/// unrelated parts.
pub fn partial_report<T>(
    experiment: &str,
    shard: Shard,
    sharded: &ShardRows<T>,
    row_json: impl Fn(&T) -> String,
) -> String {
    let groups = sharded
        .groups
        .iter()
        .map(|(cell, rows)| {
            Value::Obj(vec![
                ("cell".into(), Value::UInt(*cell as u64)),
                (
                    "rows".into(),
                    Value::Arr(rows.iter().map(|r| Value::Str(row_json(r))).collect()),
                ),
            ])
        })
        .collect();
    let doc = Value::Obj(vec![
        ("schema_version".into(), Value::UInt(PARTIAL_SCHEMA_VERSION)),
        ("experiment".into(), Value::Str(experiment.to_string())),
        ("shard".into(), Value::UInt(shard.0 as u64)),
        ("shard_count".into(), Value::UInt(shard.1 as u64)),
        ("cells".into(), Value::UInt(sharded.cells as u64)),
        ("groups".into(), Value::Arr(groups)),
    ]);
    let mut text = doc.to_json();
    text.push('\n');
    text
}

/// The convenience partial renderers, one per shardable experiment.
pub fn partial_fig7(shard: Shard, sharded: &ShardRows<Fig7Row>) -> String {
    partial_report("fig7", shard, sharded, fig7_row_json)
}

/// Partial Figure-8 shard report.
pub fn partial_fig8(shard: Shard, sharded: &ShardRows<Fig8Row>) -> String {
    partial_report("fig8", shard, sharded, fig8_row_json)
}

/// Partial ablation shard report.
pub fn partial_ablation(shard: Shard, sharded: &ShardRows<AblationRow>) -> String {
    partial_report("ablation", shard, sharded, ablation_row_json)
}

/// Partial single-benchmark shard report. The experiment id embeds the
/// benchmark name and size so shards of different benchmarks never merge.
pub fn partial_bench(
    name: &str,
    large: bool,
    shard: Shard,
    sharded: &ShardRows<BenchRow>,
) -> String {
    let size = if large { "large" } else { "small" };
    partial_report(
        &format!("bench:{name}:{size}"),
        shard,
        sharded,
        bench_row_json,
    )
}

/// A parsed, validated, cell-sorted set of partial shard reports —
/// possibly incomplete. [`merge_parts`] demands completeness on top;
/// [`merge_available`] assembles whatever cells are present.
struct PartSet {
    /// The sweep's total cell count (consistent across all parts).
    cells: u64,
    /// `(cell, pre-rendered rows)`, sorted by cell, each cell once.
    groups: Vec<(u64, Vec<String>)>,
}

impl PartSet {
    /// The global cell indices no part covered.
    fn missing(&self) -> Vec<u64> {
        let present: std::collections::BTreeSet<u64> =
            self.groups.iter().map(|(c, _)| *c).collect();
        (0..self.cells).filter(|c| !present.contains(c)).collect()
    }

    /// The merged JSON array of every present cell's rows, in cell order
    /// — byte-identical to the single-process document when complete.
    fn document(self) -> String {
        json_array(self.groups.into_iter().flat_map(|(_, rows)| rows))
    }
}

/// Parses and cross-validates partial shard reports: schema version,
/// matching experiment/shard_count/cells, no cell covered twice. Does
/// **not** require completeness — that is [`merge_parts`]'s extra demand.
fn parse_parts(parts: &[(String, String)]) -> Result<PartSet, String> {
    if parts.is_empty() {
        return Err("no partial reports to merge".into());
    }
    let mut experiment: Option<String> = None;
    let mut shard_count: Option<u64> = None;
    let mut cells: Option<u64> = None;
    let mut groups: Vec<(u64, Vec<String>, String)> = Vec::new();
    for (origin, text) in parts {
        let doc = Value::parse(text).map_err(|e| format!("{origin}: not valid JSON: {e}"))?;
        let version = doc.get("schema_version").and_then(Value::as_u64);
        if version != Some(PARTIAL_SCHEMA_VERSION) {
            return Err(format!(
                "{origin}: unsupported partial-report schema_version {} (this build reads \
                 version {PARTIAL_SCHEMA_VERSION}); is this a partial report written by \
                 `lift-harness --shard`?",
                version.map_or("<missing>".to_string(), |v| v.to_string()),
            ));
        }
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| format!("{origin}: field `{name}` is missing"))
        };
        let exp = field("experiment")?
            .as_str()
            .ok_or_else(|| format!("{origin}: `experiment` is not a string"))?
            .to_string();
        match &experiment {
            None => experiment = Some(exp),
            Some(e) if *e == exp => {}
            Some(e) => {
                return Err(format!(
                    "{origin}: is a shard of `{exp}`, but earlier parts are shards of `{e}`"
                ))
            }
        }
        for (name, slot) in [("shard_count", &mut shard_count), ("cells", &mut cells)] {
            let got = field(name)?
                .as_u64()
                .ok_or_else(|| format!("{origin}: `{name}` is not an integer"))?;
            match *slot {
                None => *slot = Some(got),
                Some(expected) if expected == got => {}
                Some(expected) => {
                    return Err(format!(
                        "{origin}: `{name}` is {got}, but earlier parts say {expected}"
                    ))
                }
            }
        }
        for group in field("groups")?
            .as_arr()
            .ok_or_else(|| format!("{origin}: `groups` is not an array"))?
        {
            let cell = group
                .get("cell")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{origin}: a group has no integer `cell`"))?;
            let rows = group
                .get("rows")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{origin}: group {cell} has no `rows` array"))?
                .iter()
                .map(|r| {
                    r.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{origin}: group {cell} has a non-string row"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            groups.push((cell, rows, origin.clone()));
        }
    }
    groups.sort_by_key(|(cell, _, _)| *cell);
    let total = cells.expect("set by the first part");
    for pair in groups.windows(2) {
        let (cell, _, _) = &pair[0];
        let (next, _, origin) = &pair[1];
        if cell == next {
            return Err(format!(
                "cell {cell} appears twice (second time in {origin})"
            ));
        }
    }
    if let Some((cell, _, origin)) = groups.iter().find(|(c, _, _)| *c >= total) {
        return Err(format!(
            "{origin}: cell {cell} is out of range for a {total}-cell sweep"
        ));
    }
    Ok(PartSet {
        cells: total,
        groups: groups
            .into_iter()
            .map(|(cell, rows, _)| (cell, rows))
            .collect(),
    })
}

/// Recombines a complete set of partial shard reports into the JSON
/// document the single-process `--json` run would have printed,
/// byte-identically.
///
/// # Errors
///
/// A human-readable message when the parts are not a complete, consistent
/// set: a part fails to parse or carries a different schema version, the
/// parts name different experiments, shard counts or cell totals, two
/// parts cover the same cell, or a cell is missing (a shard was not run
/// or its file was not passed).
pub fn merge_parts(parts: &[(String, String)]) -> Result<String, String> {
    let set = parse_parts(parts)?;
    let missing = set.missing();
    if let Some(cell) = missing.first() {
        return Err(format!(
            "cell {cell} is missing; pass every shard's file ({} of {} cells present)",
            set.groups.len(),
            set.cells
        ));
    }
    Ok(set.document())
}

/// Recombines whatever partial shard reports are available into the
/// best-possible document — the graceful-degradation path for a campaign
/// whose shard exhausted its retries. Returns the merged JSON array of
/// every *present* cell's rows (in cell order; byte-identical to the
/// single-process document when nothing is missing) plus the manifest of
/// missing global cell indices.
///
/// # Errors
///
/// The same consistency errors as [`merge_parts`] (unparseable parts,
/// mixed experiments, duplicate cells) — only *missing* cells are
/// tolerated.
pub fn merge_available(parts: &[(String, String)]) -> Result<(String, Vec<u64>), String> {
    let set = parse_parts(parts)?;
    let missing = set.missing();
    Ok((set.document(), missing))
}

/// Renders a single-benchmark report: per device, every tuned variant with
/// its best configuration, the winner marked.
pub fn render_bench(rows: &[BenchRow]) -> String {
    let mut s = String::new();
    let name = rows.first().map(|r| r.bench.as_str()).unwrap_or("?");
    s.push_str(&format!(
        "Benchmark {name}: tuned variants per device (* = winner)\n"
    ));
    let mut devices: Vec<&str> = rows.iter().map(|r| r.device.as_str()).collect();
    devices.dedup();
    for dev in devices {
        s.push_str(&format!("\n  [{dev}]\n"));
        for r in rows.iter().filter(|r| r.device == dev) {
            let config = r
                .config
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            s.push_str(&format!(
                "  {}{:<21}{:>10.4} GEl/s  {:>9.2} us   {}\n",
                if r.winner { '*' } else { ' ' },
                r.variant,
                r.gelems,
                r.time_s * 1e6,
                config,
            ));
        }
    }
    s
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("Table 1: Benchmarks used in the evaluation\n");
    s.push_str(&format!(
        "{:<14}{:>4}{:>5}  {:<16}{:<18}{:>7}\n",
        "Benchmark", "Dim", "Pts", "Input (scaled)", "Input (paper)", "#grids"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<14}{:>3}D{:>5}  {:<16}{:<18}{:>7}\n",
            r.bench, r.dims, r.points, r.input_size, r.paper_size, r.grids
        ));
    }
    s
}

/// Renders Figure 7 as grouped rows per device.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut s = String::new();
    s.push_str("Figure 7: Lift vs hand-written kernels (giga-elements updated per second)\n");
    let mut devices: Vec<&str> = rows.iter().map(|r| r.device.as_str()).collect();
    devices.dedup();
    for dev in devices {
        s.push_str(&format!("\n  [{dev}]\n"));
        s.push_str(&format!(
            "  {:<11}{:>10}{:>12}{:>8}   {}\n",
            "Benchmark", "Lift", "Reference", "ratio", "winning variant"
        ));
        for r in rows.iter().filter(|r| r.device == dev) {
            s.push_str(&format!(
                "  {:<11}{:>10.4}{:>12.4}{:>7.2}x   {}{}\n",
                r.bench,
                r.lift_gelems,
                r.reference_gelems,
                r.lift_gelems / r.reference_gelems,
                r.lift_variant,
                if r.lift_tiled { " [tiled]" } else { "" },
            ));
        }
    }
    s
}

/// Renders Figure 8 as grouped rows per device.
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let mut s = String::new();
    s.push_str("Figure 8: Lift speedup over PPCG (auto-tuned, > 1 means Lift is faster)\n");
    let mut devices: Vec<&str> = rows.iter().map(|r| r.device.as_str()).collect();
    devices.dedup();
    for dev in devices {
        s.push_str(&format!("\n  [{dev}]\n"));
        s.push_str(&format!(
            "  {:<13}{:>8}{:>10}   {}\n",
            "Benchmark", "size", "speedup", "winning Lift variant"
        ));
        for r in rows.iter().filter(|r| r.device == dev) {
            s.push_str(&format!(
                "  {:<13}{:>8}{:>9.2}x   {}{}\n",
                r.bench,
                r.size,
                r.speedup,
                r.lift_variant,
                if r.lift_tiled { " [tiled]" } else { "" },
            ));
        }
    }
    s
}

/// Renders the ablation study.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut s = String::new();
    s.push_str("Ablation: best throughput per rewrite variant (relative to winner)\n");
    let mut keys: Vec<(String, String)> = rows
        .iter()
        .map(|r| (r.device.clone(), r.bench.clone()))
        .collect();
    keys.dedup();
    for (dev, bench) in keys {
        s.push_str(&format!("\n  [{dev}] {bench}\n"));
        for r in rows.iter().filter(|r| r.device == dev && r.bench == bench) {
            let bar_len = (r.rel_to_best * 32.0).round() as usize;
            s.push_str(&format!(
                "  {:<22}{:>9.4} GEl/s  {:<32} {:>5.1}%\n",
                r.variant,
                r.gelems,
                "#".repeat(bar_len.min(32)),
                r.rel_to_best * 100.0
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_rendering_contains_devices_and_ratios() {
        let rows = vec![Fig7Row {
            bench: "Hotspot2D".into(),
            device: "AMD Radeon HD 7970".into(),
            lift_gelems: 12.0,
            reference_gelems: 0.8,
            lift_variant: "global".into(),
            lift_tiled: false,
        }];
        let out = render_fig7(&rows);
        assert!(out.contains("AMD Radeon HD 7970"));
        assert!(out.contains("15.00x"));
    }

    #[test]
    fn table1_rendering() {
        let rows = crate::experiments::table1();
        let out = render_table1(&rows);
        assert!(out.contains("Stencil2D"));
        assert!(out.contains("Acoustic"));
        assert!(out.contains("4098×4098"));
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let rows = vec![Fig8Row {
            bench: "Heat".into(),
            device: "Nvidia Tesla K20c".into(),
            size: "small",
            speedup: 1.25,
            lift_variant: "global".into(),
            lift_tiled: false,
        }];
        let out = json_fig8(&rows);
        assert!(out.trim_start().starts_with('['));
        assert!(out.trim_end().ends_with(']'));
        assert!(out.contains("\"speedup\": 1.25"));
        assert!(out.contains("\"lift_tiled\": false"));
        // Escaping.
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        // Non-finite numbers must not produce invalid JSON.
        assert_eq!(json_f64(f64::NAN), "null");
    }

    fn fake_fig7(n: usize) -> Vec<Fig7Row> {
        (0..n)
            .map(|i| Fig7Row {
                bench: format!("Bench{i}"),
                device: "Dev".into(),
                lift_gelems: 1.0 + i as f64 * 0.125,
                reference_gelems: 0.5,
                lift_variant: "global".into(),
                lift_tiled: i % 2 == 0,
            })
            .collect()
    }

    /// Splits `rows` into `count` shard documents exactly as `--shard`
    /// would produce them (cell `c` on shard `c % count`).
    fn shards_of(rows: &[Fig7Row], count: usize) -> Vec<(String, String)> {
        (0..count)
            .map(|index| {
                let sharded = ShardRows {
                    cells: rows.len(),
                    groups: rows
                        .iter()
                        .enumerate()
                        .filter(|(c, _)| c % count == index)
                        .map(|(c, r)| (c, vec![r.clone()]))
                        .collect(),
                };
                (
                    format!("part{index}.json"),
                    partial_fig7((index, count), &sharded),
                )
            })
            .collect()
    }

    #[test]
    fn merge_reassembles_byte_identically_in_any_order() {
        let rows = fake_fig7(7);
        let single = json_fig7(&rows);
        for count in [1usize, 2, 3, 7] {
            let mut parts = shards_of(&rows, count);
            parts.reverse(); // file order must not matter
            assert_eq!(
                merge_parts(&parts).expect("complete set merges"),
                single,
                "count={count}"
            );
        }
    }

    #[test]
    fn merge_rejects_incomplete_or_inconsistent_sets() {
        let rows = fake_fig7(6);
        let parts = shards_of(&rows, 3);
        // A missing shard is a missing cell, named.
        let err = merge_parts(&parts[..2]).expect_err("incomplete");
        assert!(err.contains("missing"), "{err}");
        // A duplicated shard is a duplicate cell, named.
        let mut dup = parts.clone();
        dup.push(parts[0].clone());
        let err = merge_parts(&dup).expect_err("duplicate");
        assert!(err.contains("twice"), "{err}");
        // Parts of different experiments never mix.
        let mut mixed = parts.clone();
        mixed[1].1 = mixed[1].1.replace("\"fig7\"", "\"fig8\"");
        let err = merge_parts(&mixed).expect_err("mixed experiments");
        assert!(err.contains("fig8"), "{err}");
        // A wrong schema version names both versions.
        let mut versioned = parts.clone();
        versioned[0].1 = versioned[0]
            .1
            .replace("\"schema_version\":1", "\"schema_version\":9");
        let err = merge_parts(&versioned).expect_err("bad version");
        assert!(err.contains("schema_version 9"), "{err}");
        // Garbage is a parse error naming the file.
        let err = merge_parts(&[("broken.json".into(), "not json".into())]).expect_err("garbage");
        assert!(err.contains("broken.json"), "{err}");
        // Cells that produce no rows (fig8 skips) still count as covered.
        let empty_ok = ShardRows::<Fig8Row> {
            cells: 1,
            groups: vec![(0, Vec::new())],
        };
        let merged = merge_parts(&[("p.json".into(), partial_fig8((0, 1), &empty_ok))])
            .expect("empty cells merge");
        assert_eq!(merged, json_fig8(&[]));
    }

    #[test]
    fn merge_available_tolerates_only_missing_cells() {
        let rows = fake_fig7(6);
        let parts = shards_of(&rows, 3);
        // Complete set: same bytes as the strict merge, nothing missing.
        let (doc, missing) = merge_available(&parts).expect("complete set merges");
        assert_eq!(doc, json_fig7(&rows));
        assert!(missing.is_empty());
        // Drop shard 1 (cells 1 and 4): the document keeps the rest in
        // cell order and the manifest names exactly the lost cells.
        let partial: Vec<_> = parts
            .iter()
            .filter(|(name, _)| name != "part1.json")
            .cloned()
            .collect();
        let (doc, missing) = merge_available(&partial).expect("incomplete set still merges");
        assert_eq!(missing, vec![1, 4]);
        let survivors: Vec<Fig7Row> = rows
            .iter()
            .enumerate()
            .filter(|(c, _)| c % 3 != 1)
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(doc, json_fig7(&survivors));
        // Corruption and duplicates are still hard errors — only
        // missing cells are tolerated.
        let mut dup = partial.clone();
        dup.push(partial[0].clone());
        assert!(merge_available(&dup).unwrap_err().contains("twice"));
        assert!(merge_available(&[("x".into(), "junk".into())]).is_err());
    }

    #[test]
    fn verify_report_separates_pruned_from_findings() {
        let rows = vec![
            VerifyRow {
                bench: "Heat".into(),
                device: "ARM Mali-T628".into(),
                variant: "tiled-local".into(),
                config: vec![("TS0".into(), 26), ("lx".into(), 4)],
                pruned: true,
                findings: vec!["needs 70304 bytes of local memory".into()],
            },
            VerifyRow {
                bench: "Heat".into(),
                device: "ARM Mali-T628".into(),
                variant: "global".into(),
                config: vec![("lx".into(), 4)],
                pruned: false,
                findings: vec!["out-of-bounds access".into()],
            },
            VerifyRow {
                bench: "Heat".into(),
                device: "ARM Mali-T628".into(),
                variant: "coarsened".into(),
                config: vec![("CF".into(), 2)],
                pruned: false,
                findings: Vec::new(),
            },
        ];
        let text = render_verify(&rows);
        // One pruned config, one genuine finding: the tally counts them
        // apart, because only the finding may fail the CI gate.
        assert!(
            text.contains("1 pruned (over-capacity), 1 finding(s)"),
            "{text}"
        );
        assert!(text.contains("pruned (exceeds local memory)"), "{text}");
        assert!(text.contains("!! out-of-bounds access"), "{text}");
        // Pruned rows never print their findings as gate problems.
        assert!(!text.contains("!! needs 70304"), "{text}");
        let json = json_verify(&rows);
        assert!(json.contains("\"pruned\": true"), "{json}");
        assert!(json.contains("\"pruned\": false"), "{json}");
    }

    #[test]
    fn json_table1_covers_every_benchmark() {
        let rows = crate::experiments::table1();
        let out = json_table1(&rows);
        for b in lift_stencils::suite() {
            assert!(
                out.contains(&format!("\"bench\": \"{}\"", b.name)),
                "{}",
                b.name
            );
        }
    }
}
