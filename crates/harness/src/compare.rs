//! Report diffing: the `lift-harness compare <a.json> <b.json>` command.
//!
//! Compares two JSON documents produced by this harness — row arrays from
//! `--json` (fig7, fig8, ablation, `bench <name>`) or the perf command's
//! `BENCH_sim.json` — and classifies every difference as a **regression**
//! (throughput or speedup dropped, a row disappeared, perf engines
//! diverged) or a **note** (configs shifted, prune counts drifted, rows
//! appeared). The command exits non-zero on any regression, so pinning a
//! known-good report in CI turns the diff into a gate:
//!
//! ```text
//! lift-harness --json fig7 > new.json
//! lift-harness compare baseline/fig7.json new.json
//! ```

use lift_tuner::json::Value;

/// Relative slack for throughput comparisons. The simulator is
/// deterministic, so any honest decrease is a real regression; the slack
/// only absorbs decimal re-rendering of identical numbers.
const REL_TOL: f64 = 1e-9;

/// Wall-clock perf numbers (BENCH_sim.json) are noisy; only slowdowns
/// beyond this factor count as regressions.
const PERF_SLACK: f64 = 1.25;

/// The outcome of a comparison: what changed, and which of those changes
/// must fail the gate.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Informational differences (configs, prune drift, new rows).
    pub notes: Vec<String>,
    /// Gate-failing differences (lost throughput, vanished rows).
    pub regressions: Vec<String>,
}

impl Comparison {
    /// Whether the comparison found any gate-failing difference.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// The human-readable diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.notes.is_empty() && self.regressions.is_empty() {
            out.push_str("no differences\n");
            return out;
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        for r in &self.regressions {
            out.push_str(&format!("  REGRESSION: {r}\n"));
        }
        out.push_str(&format!(
            "{} note(s), {} regression(s)\n",
            self.notes.len(),
            self.regressions.len()
        ));
        out
    }
}

/// A row's identity across the two documents: every identifying field the
/// row kinds use, in a fixed order.
fn key_of(row: &Value) -> String {
    ["bench", "device", "size", "variant"]
        .iter()
        .filter_map(|k| row.get(k).and_then(Value::as_str))
        .collect::<Vec<_>>()
        .join(" / ")
}

/// The row's primary goodness metric (higher is better), by kind:
/// `lift_gelems` for fig7, `speedup` for fig8, `gelems` for ablation and
/// single-benchmark rows.
fn metric_of(row: &Value) -> Option<(&'static str, f64)> {
    for name in ["lift_gelems", "speedup", "gelems"] {
        if let Some(x) = row.get(name).and_then(Value::as_f64) {
            return Some((name, x));
        }
    }
    None
}

/// Renders a row's `config` object as `lx=4 ly=8`.
fn config_of(row: &Value) -> Option<String> {
    let Some(Value::Obj(fields)) = row.get("config") else {
        return None;
    };
    Some(
        fields
            .iter()
            .map(|(k, v)| format!("{k}={}", v.as_i64().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(" "),
    )
}

/// Diffs two row arrays (any of the harness's `--json` kinds; the two
/// documents should be the same kind, which row keys enforce naturally).
fn compare_rows(a: &[Value], b: &[Value], out: &mut Comparison) {
    let keyed = |rows: &[Value]| -> Vec<(String, Value)> {
        rows.iter().map(|r| (key_of(r), r.clone())).collect()
    };
    let (ka, kb) = (keyed(a), keyed(b));
    for (key, old) in &ka {
        let Some((_, new)) = kb.iter().find(|(k, _)| k == key) else {
            out.regressions.push(format!("{key}: row disappeared"));
            continue;
        };
        if let (Some((name, x)), Some((_, y))) = (metric_of(old), metric_of(new)) {
            if y < x * (1.0 - REL_TOL) {
                out.regressions.push(format!(
                    "{key}: {name} {x:.4} -> {y:.4} ({:+.1}%)",
                    (y / x - 1.0) * 100.0
                ));
            } else if y > x * (1.0 + REL_TOL) {
                out.notes.push(format!(
                    "{key}: {name} {x:.4} -> {y:.4} ({:+.1}%)",
                    (y / x - 1.0) * 100.0
                ));
            }
        }
        if let (Some(ca), Some(cb)) = (config_of(old), config_of(new)) {
            if ca != cb {
                out.notes.push(format!("{key}: config {ca} -> {cb}"));
            }
        }
        if let (Some(va), Some(vb)) = (
            old.get("lift_variant").and_then(Value::as_str),
            new.get("lift_variant").and_then(Value::as_str),
        ) {
            if va != vb {
                out.notes
                    .push(format!("{key}: winning variant {va} -> {vb}"));
            }
        }
        for counter in [
            "pruned_verify",
            "pruned_model",
            "evals_to_best",
            "sims",
            "pruned",
        ] {
            if let (Some(pa), Some(pb)) = (
                old.get(counter).and_then(Value::as_u64),
                new.get(counter).and_then(Value::as_u64),
            ) {
                if pa != pb {
                    out.notes.push(format!("{key}: {counter} {pa} -> {pb}"));
                }
            }
        }
    }
    for (key, _) in &kb {
        if !ka.iter().any(|(k, _)| k == key) {
            out.notes.push(format!("{key}: new row"));
        }
    }
}

/// Diffs two `BENCH_sim.json` perf reports: the plan engine must still
/// byte-match the tree engine, and may not get [`PERF_SLACK`]× slower —
/// end-to-end or in any microbenchmark.
fn compare_perf(a: &Value, b: &Value, out: &mut Comparison) {
    let sweep = |v: &Value, f: &str| {
        v.get("fig7_sweep")
            .and_then(|s| s.get(f))
            .and_then(Value::as_f64)
    };
    if let (Some(x), Some(y)) = (sweep(a, "speedup"), sweep(b, "speedup")) {
        let msg = format!("fig7 sweep speedup {x:.2}x -> {y:.2}x");
        if y < x / PERF_SLACK {
            out.regressions.push(msg);
        } else if (y - x).abs() > 0.005 {
            out.notes.push(msg);
        }
    }
    let identical = |v: &Value| {
        matches!(
            v.get("fig7_sweep").and_then(|s| s.get("byte_identical")),
            Some(Value::Bool(true))
        )
    };
    if identical(a) && !identical(b) {
        out.regressions
            .push("fig7 reports no longer byte-identical across engines".into());
    }
    let micro = |v: &Value| -> Vec<(String, f64)> {
        v.get("microbench")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|m| {
                Some((
                    m.get("name")?.as_str()?.to_string(),
                    m.get("plan_ms").and_then(Value::as_f64)?,
                ))
            })
            .collect()
    };
    let mb = micro(b);
    for (name, x) in micro(a) {
        let Some((_, y)) = mb.iter().find(|(n, _)| *n == name) else {
            out.regressions
                .push(format!("{name}: microbenchmark disappeared"));
            continue;
        };
        if *y > x * PERF_SLACK {
            out.regressions
                .push(format!("{name}: plan launch {x:.3} ms -> {y:.3} ms"));
        }
    }
}

/// Compares two harness report documents (see the module docs). `a` is
/// the baseline, `b` the candidate.
///
/// # Errors
///
/// A human-readable message when either document fails to parse or the
/// two are of incomparable shapes (e.g. a row array against a perf
/// report).
pub fn compare_docs(
    a_origin: &str,
    a_text: &str,
    b_origin: &str,
    b_text: &str,
) -> Result<Comparison, String> {
    let a = Value::parse(a_text).map_err(|e| format!("{a_origin}: not valid JSON: {e}"))?;
    let b = Value::parse(b_text).map_err(|e| format!("{b_origin}: not valid JSON: {e}"))?;
    let mut out = Comparison::default();
    match (&a, &b) {
        (Value::Arr(ra), Value::Arr(rb)) => compare_rows(ra, rb, &mut out),
        (Value::Obj(_), Value::Obj(_)) => {
            let is_perf =
                |v: &Value| v.get("schema").and_then(Value::as_str) == Some("lift-sim-perf/1");
            if !is_perf(&a) || !is_perf(&b) {
                return Err(format!(
                    "{a_origin} / {b_origin}: only row arrays (--json experiments) and \
                     BENCH_sim.json perf reports can be compared"
                ));
            }
            compare_perf(&a, &b, &mut out);
        }
        _ => {
            return Err(format!(
                "{a_origin} and {b_origin} are different document shapes; compare like with like"
            ))
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG7_A: &str = r#"[
  {"bench": "Heat", "device": "K20c", "lift_gelems": 10.0, "reference_gelems": 2.0, "lift_variant": "global", "lift_tiled": false},
  {"bench": "Gaussian", "device": "K20c", "lift_gelems": 4.0, "reference_gelems": 2.0, "lift_variant": "global", "lift_tiled": false}
]"#;

    #[test]
    fn identical_documents_do_not_regress() {
        let c = compare_docs("a", FIG7_A, "b", FIG7_A).expect("parses");
        assert!(!c.regressed());
        assert_eq!(c.render(), "no differences\n");
    }

    #[test]
    fn throughput_drop_and_lost_row_regress() {
        let b = FIG7_A
            .replace("\"lift_gelems\": 10.0", "\"lift_gelems\": 9.0")
            .replace(
                "\"lift_variant\": \"global\"",
                "\"lift_variant\": \"tiled\"",
            );
        let c = compare_docs("a", FIG7_A, "b", &b).expect("parses");
        assert!(c.regressed());
        assert!(
            c.regressions[0].contains("lift_gelems 10.0000 -> 9.0000"),
            "{c:?}"
        );
        // Variant changes are notes, not regressions.
        assert!(
            c.notes.iter().any(|n| n.contains("global -> tiled")),
            "{c:?}"
        );

        let lost = "[\n]";
        let c = compare_docs("a", FIG7_A, "b", lost).expect("parses");
        assert_eq!(c.regressions.len(), 2, "{c:?}");
        assert!(c.regressions[0].contains("disappeared"));
    }

    #[test]
    fn bench_rows_diff_configs_and_prune_counters() {
        let a = r#"[{"bench": "Heat", "device": "K20c", "variant": "global", "time_s": 1e-5, "gelems": 5.0, "config": {"lx": 4, "ly": 8}, "winner": true, "tiled": false, "local_mem": false, "evals_to_best": 7, "pruned_verify": 1, "pruned_model": 0}]"#;
        let b = a
            .replace("\"lx\": 4", "\"lx\": 8")
            .replace("\"evals_to_best\": 7", "\"evals_to_best\": 1")
            .replace("\"pruned_model\": 0", "\"pruned_model\": 5")
            .replace("\"gelems\": 5.0", "\"gelems\": 6.0");
        let c = compare_docs("a", a, "b", &b).expect("parses");
        assert!(
            !c.regressed(),
            "faster + drifted counters is not a regression: {c:?}"
        );
        let text = c.render();
        assert!(text.contains("config lx=4 ly=8 -> lx=8 ly=8"), "{text}");
        assert!(text.contains("evals_to_best 7 -> 1"), "{text}");
        assert!(text.contains("pruned_model 0 -> 5"), "{text}");
        assert!(text.contains("gelems 5.0000 -> 6.0000"), "{text}");
    }

    #[test]
    fn perf_reports_compare_and_shapes_must_match() {
        let perf = |speedup: f64, identical: bool, plan_ms: f64| {
            format!(
                r#"{{"schema": "lift-sim-perf/1", "fig7_sweep": {{"budget": 10, "threads": 1, "tree_s": 10.0, "plan_s": 2.0, "speedup": {speedup}, "byte_identical": {identical}}}, "microbench": [{{"name": "Heat/global", "tree_ms": 8.0, "plan_ms": {plan_ms}, "speedup": 4.0, "plan_compile_us": 100.0}}]}}"#
            )
        };
        let a = perf(5.0, true, 2.0);
        let ok = compare_docs("a", &a, "b", &perf(5.1, true, 2.1)).expect("parses");
        assert!(!ok.regressed(), "{ok:?}");
        let bad = compare_docs("a", &a, "b", &perf(2.0, false, 9.0)).expect("parses");
        assert_eq!(bad.regressions.len(), 3, "{bad:?}");

        let err = compare_docs("a", &a, "b", FIG7_A).expect_err("shape mismatch");
        assert!(err.contains("different document shapes"), "{err}");
    }
}
