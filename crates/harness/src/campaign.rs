//! The fault-tolerant campaign supervisor: `lift-harness campaign`.
//!
//! `--spawn-workers` forks one worker per shard and hopes; a *campaign*
//! owns its workers. [`run_campaign`] drives a work queue of shards
//! through `N` worker slots under a supervision loop:
//!
//! - **Retry with backoff** — a worker that dies (crash, OOM-kill,
//!   injected fault) has its shard requeued with exponential backoff,
//!   up to a bounded number of retries.
//! - **Liveness timeouts** — progress is tracked through the shard's
//!   checkpoint file (`<base>.shard<i>of<n>`); a worker that makes no
//!   checkpoint progress for the timeout window is killed and its shard
//!   requeued. A hung worker cannot hang the campaign.
//! - **Checkpoint adoption** — the replacement worker is pointed at the
//!   dead worker's checkpoint, so the re-run *replays* the completed
//!   tells instead of re-evaluating them. Because tuning is
//!   deterministic, the adopted run finishes exactly where the dead one
//!   would have, and the merged report stays **byte-identical** to a
//!   fault-free single-process run.
//! - **Graceful degradation** — a shard that exhausts its retries does
//!   not void the campaign: the merged document of every completed cell
//!   is still produced, alongside an explicit manifest of missing cells,
//!   and the campaign reports the infrastructure-failure exit code.
//!
//! Every campaign also produces a machine-readable summary (attempts,
//! retries, adoptions, timeouts, quarantines and wall time per shard)
//! so CI can assert on the supervision behaviour itself, and faults can
//! be injected deterministically per shard (`--fault i:<plan>`, handed
//! to the worker's first attempt as `LIFT_FAULT` — see the driver's
//! fault seam) to rehearse all of the above without flaky sleeps.

use std::collections::VecDeque;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

use lift_tuner::json::Value;

use crate::report::{merge_available, merge_parts};

/// Everything `lift-harness campaign` configures.
pub struct CampaignOptions {
    /// `fig7`, `fig8`, `ablation` or `bench`.
    pub experiment: String,
    /// The benchmark name (`bench` only).
    pub bench: Option<String>,
    /// Large grid size (`bench` only).
    pub large: bool,
    /// Concurrent worker slots.
    pub workers: usize,
    /// Work-queue shards (>= workers is typical; each is one `--shard i/n`
    /// worker invocation).
    pub shards: usize,
    /// Kill a worker after this long without checkpoint progress.
    pub timeout: Duration,
    /// Re-runs allowed per shard beyond the first attempt.
    pub retries: usize,
    /// Base checkpoint path; `None` uses a campaign-private temp dir
    /// (cleaned up on full success, kept for adoption-on-rerun after a
    /// failure).
    pub checkpoint: Option<PathBuf>,
    /// Deterministic fault plans, `(shard index, LIFT_FAULT plan)`,
    /// injected into that shard's *first* attempt only.
    pub faults: Vec<(usize, String)>,
    /// Base backoff before a retry; doubles per extra attempt (capped).
    pub backoff: Duration,
}

impl CampaignOptions {
    /// Defaults for `experiment`: 2 workers, one shard per worker, 2
    /// retries, 10-minute liveness timeout, 250 ms base backoff.
    pub fn new(experiment: &str) -> Self {
        CampaignOptions {
            experiment: experiment.to_string(),
            bench: None,
            large: false,
            workers: 2,
            shards: 0, // resolved to `workers` in run_campaign
            timeout: Duration::from_secs(600),
            retries: 2,
            checkpoint: None,
            faults: Vec::new(),
            backoff: Duration::from_millis(250),
        }
    }
}

/// Per-shard supervision tally for the campaign summary.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Worker processes started for this shard.
    pub attempts: usize,
    /// Attempts beyond the first (crashes + timeouts).
    pub retries: usize,
    /// Attempts that resumed a previous attempt's checkpoint.
    pub adoptions: usize,
    /// Attempts killed for missing the liveness timeout.
    pub timeouts: usize,
    /// Corrupt checkpoint files quarantined under this shard's path.
    pub quarantines: usize,
    /// Total wall time across this shard's attempts, in milliseconds.
    pub wall_ms: u128,
    /// Whether the shard eventually produced its partial report.
    pub ok: bool,
}

/// What a finished campaign hands back to the caller.
pub struct CampaignReport {
    /// The merged JSON document — byte-identical to the single-process
    /// `--json` run when `complete`, the best partial document otherwise.
    pub document: String,
    /// Global cell indices lost to shards that exhausted their retries.
    pub missing_cells: Vec<u64>,
    /// True iff every shard completed and the document is the full sweep.
    pub complete: bool,
    /// Per-shard supervision tallies, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Campaign wall time in milliseconds.
    pub wall_ms: u128,
    /// The machine-readable summary document (see [`summary_json`]).
    pub summary: String,
}

/// One queued unit of work: a shard and its attempt history.
struct Task {
    shard: usize,
    /// Attempts already made (0 before the first spawn).
    attempts: usize,
    /// Earliest instant the next attempt may start (backoff).
    ready_at: Instant,
}

/// A live worker slot.
struct Running {
    shard: usize,
    child: std::process::Child,
    started: Instant,
    /// Reader threads draining the worker's stdout/stderr pipes — without
    /// them a chatty worker deadlocks against a full pipe buffer.
    stdout: std::thread::JoinHandle<Vec<u8>>,
    stderr: std::thread::JoinHandle<Vec<u8>>,
    /// Last observed `(len, mtime)` of the shard's checkpoint file.
    progress: Option<(u64, SystemTime)>,
    /// When that observation last *changed* — the liveness clock.
    last_progress: Instant,
}

/// The shard worker's derived checkpoint path: exactly what the worker
/// itself derives from the inherited `LIFT_CHECKPOINT` (see `main.rs`),
/// recomputed here so the supervisor can watch and adopt it.
fn shard_checkpoint(base: &Path, shard: usize, count: usize) -> PathBuf {
    let mut name = base.as_os_str().to_owned();
    name.push(format!(".shard{shard}of{count}"));
    PathBuf::from(name)
}

/// The checkpoint file's `(len, mtime)` — the cheapest observable proxy
/// for "the worker applied another tell". `None` while no file exists.
fn checkpoint_progress(path: &Path) -> Option<(u64, SystemTime)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.len(), meta.modified().ok()?))
}

/// Counts `<ck>.corrupt-<k>` quarantine files next to a shard checkpoint.
fn count_quarantines(ck: &Path) -> usize {
    let Some(parent) = ck.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return 0;
    };
    let Some(name) = ck.file_name().and_then(|n| n.to_str()) else {
        return 0;
    };
    let prefix = format!("{name}.corrupt-");
    std::fs::read_dir(parent)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with(&prefix))
                })
                .count()
        })
        .unwrap_or(0)
}

/// Spawns one shard worker: this binary, `--json --shard i/n`, with the
/// campaign checkpoint base in its environment (the worker derives its
/// own `.shard<i>of<n>` path) and the shard's fault plan on the first
/// attempt only — replacement workers must run clean or the fault would
/// re-fire forever.
fn spawn_worker(
    opts: &CampaignOptions,
    shard: usize,
    attempt: usize,
    ck_base: &Path,
) -> Result<Running, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut c = std::process::Command::new(&exe);
    c.arg("--json")
        .arg("--shard")
        .arg(format!("{shard}/{}", opts.shards));
    c.arg(&opts.experiment);
    if let Some(name) = &opts.bench {
        c.arg(name);
    }
    if opts.large {
        c.arg("--large");
    }
    c.env("LIFT_CHECKPOINT", ck_base);
    // Checkpoint per tell unless the caller tuned the cadence: adoption
    // and liveness are only as fine-grained as the checkpoint writes.
    if std::env::var_os("LIFT_CHECKPOINT_EVERY").is_none() {
        c.env("LIFT_CHECKPOINT_EVERY", "1");
    }
    // The supervisor may itself run under LIFT_FAULT in a test; workers
    // get a fault only when their shard's plan says so, on attempt 1.
    c.env_remove("LIFT_FAULT");
    if attempt == 1 {
        if let Some((_, plan)) = opts.faults.iter().find(|(s, _)| *s == shard) {
            c.env("LIFT_FAULT", plan);
        }
    }
    c.stdout(std::process::Stdio::piped());
    c.stderr(std::process::Stdio::piped());
    let mut child = c
        .spawn()
        .map_err(|e| format!("cannot spawn shard {shard}/{}: {e}", opts.shards))?;
    let drain = |stream: Option<Box<dyn Read + Send>>| {
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            if let Some(mut s) = stream {
                let _ = s.read_to_end(&mut buf);
            }
            buf
        })
    };
    let stdout = drain(child.stdout.take().map(|s| Box::new(s) as _));
    let stderr = drain(child.stderr.take().map(|s| Box::new(s) as _));
    let now = Instant::now();
    Ok(Running {
        shard,
        child,
        started: now,
        stdout,
        stderr,
        progress: checkpoint_progress(&shard_checkpoint(ck_base, shard, opts.shards)),
        last_progress: now,
    })
}

/// Relays a finished worker's stderr, each line under a `shard i/n:`
/// prefix so interleaved diagnoses stay attributable.
fn relay_stderr(shard: usize, count: usize, bytes: &[u8]) {
    let text = String::from_utf8_lossy(bytes);
    for line in text.lines() {
        eprintln!("lift-harness: shard {shard}/{count}: {line}");
    }
}

/// Exponential backoff for attempt `n` (2nd attempt = 1× base), capped
/// at 10 s so a long campaign never parks a shard for minutes.
fn backoff_for(base: Duration, attempts_done: usize) -> Duration {
    let factor = 1u32 << attempts_done.saturating_sub(1).min(6);
    (base * factor).min(Duration::from_secs(10))
}

/// Runs the campaign to completion (or exhaustion). See the module docs
/// for the supervision contract.
///
/// # Errors
///
/// Only *campaign-level* failures error out (cannot create the checkpoint
/// dir, inconsistent partial reports); worker failures are supervised and
/// surface as `complete == false` with a missing-cell manifest.
pub fn run_campaign(opts: &CampaignOptions) -> Result<CampaignReport, String> {
    let mut opts = CampaignOptions {
        shards: if opts.shards == 0 {
            opts.workers
        } else {
            opts.shards
        },
        experiment: opts.experiment.clone(),
        bench: opts.bench.clone(),
        checkpoint: opts.checkpoint.clone(),
        faults: opts.faults.clone(),
        ..*opts
    };
    opts.workers = opts.workers.max(1);
    let campaign_started = Instant::now();

    // The checkpoint base: adoption needs durable state, so a campaign
    // without a configured path gets a private temp dir — removed again
    // only when every shard completes (a failed campaign's checkpoints
    // are exactly what a rerun wants to adopt).
    let (ck_base, owned_dir) = match &opts.checkpoint {
        Some(path) => (path.clone(), None),
        None => {
            let dir = std::env::temp_dir().join(format!("lift-campaign-{}", std::process::id()));
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("cannot create campaign dir {}: {e}", dir.display()))?;
            (dir.join("ck.json"), Some(dir))
        }
    };

    let mut stats: Vec<ShardStats> = (0..opts.shards).map(|_| ShardStats::default()).collect();
    let mut parts: Vec<Option<String>> = vec![None; opts.shards];
    let mut pending: VecDeque<Task> = (0..opts.shards)
        .map(|shard| Task {
            shard,
            attempts: 0,
            ready_at: campaign_started,
        })
        .collect();
    let mut running: Vec<Running> = Vec::new();
    let mut failed: Vec<usize> = Vec::new();

    while !pending.is_empty() || !running.is_empty() {
        // Fill free slots with ready work. Tasks still in backoff rotate
        // to the back so a ready shard behind them is not starved.
        let now = Instant::now();
        let mut deferred = 0;
        while running.len() < opts.workers && deferred < pending.len() {
            let task = pending.pop_front().expect("len checked");
            if task.ready_at > now {
                deferred += 1;
                pending.push_back(task);
                continue;
            }
            let attempt = task.attempts + 1;
            let shard_ck = shard_checkpoint(&ck_base, task.shard, opts.shards);
            let s = &mut stats[task.shard];
            s.attempts = attempt;
            if attempt > 1 {
                s.retries += 1;
                if checkpoint_progress(&shard_ck).is_some_and(|(len, _)| len > 0) {
                    // The replacement resumes its predecessor's file:
                    // completed tells replay instead of re-running.
                    s.adoptions += 1;
                    eprintln!(
                        "lift-harness: shard {}/{}: attempt {attempt} adopts checkpoint {}",
                        task.shard,
                        opts.shards,
                        shard_ck.display()
                    );
                }
            }
            match spawn_worker(&opts, task.shard, attempt, &ck_base) {
                Ok(r) => running.push(r),
                Err(e) => {
                    // A spawn failure is an attempt that died at birth:
                    // same retry budget, same backoff.
                    eprintln!("lift-harness: shard {}/{}: {e}", task.shard, opts.shards);
                    if attempt > opts.retries {
                        failed.push(task.shard);
                    } else {
                        pending.push_back(Task {
                            shard: task.shard,
                            attempts: attempt,
                            ready_at: Instant::now() + backoff_for(opts.backoff, attempt),
                        });
                    }
                }
            }
        }

        // Poll the live slots: reap exits, advance liveness clocks, kill
        // the stalled.
        let mut still_running = Vec::new();
        for mut r in running.drain(..) {
            let status = r.child.try_wait().map_err(|e| {
                format!("cannot poll shard {}/{} worker: {e}", r.shard, opts.shards)
            })?;
            let timed_out = status.is_none() && {
                let ck = shard_checkpoint(&ck_base, r.shard, opts.shards);
                let seen = checkpoint_progress(&ck);
                if seen != r.progress {
                    r.progress = seen;
                    r.last_progress = Instant::now();
                }
                r.last_progress.elapsed() > opts.timeout
            };
            let status = if timed_out {
                eprintln!(
                    "lift-harness: shard {}/{}: no checkpoint progress for {:.0?}; killing worker",
                    r.shard, opts.shards, opts.timeout
                );
                stats[r.shard].timeouts += 1;
                let _ = r.child.kill();
                Some(r.child.wait().map_err(|e| {
                    format!("cannot reap shard {}/{} worker: {e}", r.shard, opts.shards)
                })?)
            } else {
                status
            };
            let Some(status) = status else {
                still_running.push(r);
                continue;
            };
            let stdout = r.stdout.join().unwrap_or_default();
            let stderr = r.stderr.join().unwrap_or_default();
            relay_stderr(r.shard, opts.shards, &stderr);
            let s = &mut stats[r.shard];
            s.wall_ms += r.started.elapsed().as_millis();
            let output = if status.success() {
                String::from_utf8(stdout)
                    .map_err(|e| {
                        format!(
                            "shard {}/{} wrote non-UTF-8 output: {e}",
                            r.shard, opts.shards
                        )
                    })
                    .map(Some)
            } else {
                Ok(None)
            };
            match output? {
                Some(text) => {
                    s.ok = true;
                    parts[r.shard] = Some(text);
                }
                None => {
                    if !timed_out {
                        eprintln!(
                            "lift-harness: shard {}/{}: worker failed ({status})",
                            r.shard, opts.shards
                        );
                    }
                    if s.attempts > opts.retries {
                        eprintln!(
                            "lift-harness: shard {}/{}: out of retries ({} attempts); giving up",
                            r.shard, opts.shards, s.attempts
                        );
                        failed.push(r.shard);
                    } else {
                        pending.push_back(Task {
                            shard: r.shard,
                            attempts: s.attempts,
                            ready_at: Instant::now() + backoff_for(opts.backoff, s.attempts),
                        });
                    }
                }
            }
        }
        running = still_running;
        if !running.is_empty() || pending.iter().any(|t| t.ready_at > Instant::now()) {
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // Quarantines happen inside workers; tally them from the filesystem.
    for (shard, s) in stats.iter_mut().enumerate() {
        s.quarantines = count_quarantines(&shard_checkpoint(&ck_base, shard, opts.shards));
    }

    failed.sort_unstable();
    let collected: Vec<(String, String)> = parts
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            p.as_ref()
                .map(|text| (format!("shard {i}/{}", opts.shards), text.clone()))
        })
        .collect();
    let complete = failed.is_empty();
    let (document, missing_cells) = if complete {
        (merge_parts(&collected)?, Vec::new())
    } else if collected.is_empty() {
        // No shard reported at all: derive the manifest from the
        // experiment definition so even a total loss names its cells.
        let total = crate::experiments::experiment_cells(
            &opts.experiment,
            &crate::experiments::ABLATION_BENCHES,
        )
        .unwrap_or(0);
        (String::new(), (0..total as u64).collect())
    } else {
        let (doc, missing) = merge_available(&collected)?;
        (doc, missing)
    };

    if complete {
        if let Some(dir) = owned_dir {
            std::fs::remove_dir_all(&dir).ok();
        }
    } else if let Some(dir) = &owned_dir {
        eprintln!(
            "lift-harness: keeping campaign checkpoints in {} for a rerun to adopt",
            dir.display()
        );
    }

    let wall_ms = campaign_started.elapsed().as_millis();
    let summary = summary_json(&opts, &stats, &missing_cells, complete, wall_ms);
    Ok(CampaignReport {
        document,
        missing_cells,
        complete,
        shards: stats,
        wall_ms,
        summary,
    })
}

/// Schema version of the campaign summary document.
pub const CAMPAIGN_SUMMARY_SCHEMA_VERSION: u64 = 1;

/// Renders the machine-readable campaign summary: campaign parameters,
/// per-shard supervision tallies, aggregate counters (so CI can grep
/// `"total_retries"` without summing), completeness and the missing-cell
/// manifest.
fn summary_json(
    opts: &CampaignOptions,
    stats: &[ShardStats],
    missing: &[u64],
    complete: bool,
    wall_ms: u128,
) -> String {
    let experiment = match &opts.bench {
        Some(name) => format!(
            "{}:{name}:{}",
            opts.experiment,
            if opts.large { "large" } else { "small" }
        ),
        None => opts.experiment.clone(),
    };
    let shard_objs = stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Value::Obj(vec![
                ("shard".into(), Value::UInt(i as u64)),
                ("attempts".into(), Value::UInt(s.attempts as u64)),
                ("retries".into(), Value::UInt(s.retries as u64)),
                ("adoptions".into(), Value::UInt(s.adoptions as u64)),
                ("timeouts".into(), Value::UInt(s.timeouts as u64)),
                ("quarantines".into(), Value::UInt(s.quarantines as u64)),
                ("wall_ms".into(), Value::UInt(s.wall_ms as u64)),
                ("ok".into(), Value::Bool(s.ok)),
            ])
        })
        .collect();
    let total = |f: fn(&ShardStats) -> usize| -> Value {
        Value::UInt(stats.iter().map(|s| f(s) as u64).sum())
    };
    let doc = Value::Obj(vec![
        (
            "schema_version".into(),
            Value::UInt(CAMPAIGN_SUMMARY_SCHEMA_VERSION),
        ),
        ("experiment".into(), Value::Str(experiment)),
        ("workers".into(), Value::UInt(opts.workers as u64)),
        ("shard_count".into(), Value::UInt(opts.shards as u64)),
        ("retries_allowed".into(), Value::UInt(opts.retries as u64)),
        ("timeout_s".into(), Value::UInt(opts.timeout.as_secs())),
        ("complete".into(), Value::Bool(complete)),
        (
            "missing_cells".into(),
            Value::Arr(missing.iter().map(|c| Value::UInt(*c)).collect()),
        ),
        ("total_retries".into(), total(|s| s.retries)),
        ("total_adoptions".into(), total(|s| s.adoptions)),
        ("total_timeouts".into(), total(|s| s.timeouts)),
        ("total_quarantines".into(), total(|s| s.quarantines)),
        ("total_wall_ms".into(), Value::UInt(wall_ms as u64)),
        ("shards".into(), Value::Arr(shard_objs)),
    ]);
    let mut text = doc.to_json();
    text.push('\n');
    text
}

impl CampaignReport {
    /// The human-readable supervision summary, for stderr.
    pub fn render_summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "campaign: {} shard(s), {} ms wall\n",
            self.shards.len(),
            self.wall_ms
        ));
        for (i, st) in self.shards.iter().enumerate() {
            s.push_str(&format!(
                "  shard {i}: {} attempt(s), {} retr{}, {} adoption(s), {} timeout(s), \
                 {} quarantine(s), {} ms — {}\n",
                st.attempts,
                st.retries,
                if st.retries == 1 { "y" } else { "ies" },
                st.adoptions,
                st.timeouts,
                st.quarantines,
                st.wall_ms,
                if st.ok { "ok" } else { "FAILED" }
            ));
        }
        if !self.complete {
            s.push_str(&format!(
                "campaign INCOMPLETE: missing cell(s) {:?}\n",
                self.missing_cells
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(250);
        assert_eq!(backoff_for(base, 1), Duration::from_millis(250));
        assert_eq!(backoff_for(base, 2), Duration::from_millis(500));
        assert_eq!(backoff_for(base, 3), Duration::from_millis(1000));
        // Deep retry counts saturate at the cap instead of overflowing.
        assert_eq!(backoff_for(base, 60), Duration::from_secs(10));
    }

    #[test]
    fn shard_checkpoint_matches_the_worker_derivation() {
        // main.rs derives `<base>.shard<i>of<n>` from LIFT_CHECKPOINT;
        // adoption and liveness both depend on this exact agreement.
        assert_eq!(
            shard_checkpoint(Path::new("/tmp/ck.json"), 2, 5),
            PathBuf::from("/tmp/ck.json.shard2of5")
        );
    }

    #[test]
    fn quarantine_counting_matches_the_driver_naming() {
        let dir = std::env::temp_dir().join(format!("lift-quarcount-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("ck.json.shard0of2");
        std::fs::write(&ck, "x").unwrap();
        assert_eq!(count_quarantines(&ck), 0);
        std::fs::write(dir.join("ck.json.shard0of2.corrupt-1"), "x").unwrap();
        std::fs::write(dir.join("ck.json.shard0of2.corrupt-2"), "x").unwrap();
        // A neighbour shard's quarantine is not ours.
        std::fs::write(dir.join("ck.json.shard1of2.corrupt-1"), "x").unwrap();
        assert_eq!(count_quarantines(&ck), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_is_parseable_and_carries_totals() {
        let mut opts = CampaignOptions::new("fig7");
        opts.shards = 2;
        let stats = vec![
            ShardStats {
                attempts: 2,
                retries: 1,
                adoptions: 1,
                timeouts: 0,
                quarantines: 0,
                wall_ms: 10,
                ok: true,
            },
            ShardStats {
                attempts: 3,
                retries: 2,
                adoptions: 1,
                timeouts: 1,
                quarantines: 1,
                wall_ms: 20,
                ok: false,
            },
        ];
        let text = summary_json(&opts, &stats, &[1, 4], false, 42);
        let doc = Value::parse(&text).expect("summary is valid JSON");
        assert_eq!(doc.get("total_retries").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("total_adoptions").and_then(Value::as_u64), Some(2));
        assert_eq!(doc.get("total_timeouts").and_then(Value::as_u64), Some(1));
        assert_eq!(
            doc.get("total_quarantines").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(doc.get("complete").and_then(Value::as_bool), Some(false));
        let missing = doc.get("missing_cells").and_then(Value::as_arr).unwrap();
        assert_eq!(missing.len(), 2);
        let shards = doc.get("shards").and_then(Value::as_arr).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[1].get("ok").and_then(Value::as_bool), Some(false));
    }
}
