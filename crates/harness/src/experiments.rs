//! The paper's experiments: Table 1, Figure 7, Figure 8 and the ablation
//! study over the rewrite rules.

use lift_oclsim::{DeviceProfile, VirtualDevice};
use lift_stencils::{by_name, fig7_names, fig8_names, suite};

use crate::pipeline::{run_reference, tune_lift, tune_ppcg};
use crate::{seed, tune_budget};

/// One cell of Figure 7: Lift vs the hand-written kernel.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Lift throughput in giga-elements/s.
    pub lift_gelems: f64,
    /// Reference throughput in giga-elements/s.
    pub reference_gelems: f64,
    /// The winning Lift variant name.
    pub lift_variant: String,
    /// Whether the winning Lift kernel tiles.
    pub lift_tiled: bool,
}

/// Runs the Figure-7 experiment (6 benchmarks × 3 devices).
pub fn fig7() -> Vec<Fig7Row> {
    let budget = tune_budget();
    let seed = seed();
    let mut rows = Vec::new();
    for dev_profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(dev_profile);
        for name in fig7_names() {
            let bench = by_name(name);
            let sizes = bench.size(false);
            let lift = tune_lift(&bench, &sizes, &dev, budget, seed);
            let reference = run_reference(&bench, &sizes, &dev, seed);
            rows.push(Fig7Row {
                bench: name.to_string(),
                device: dev.profile().name.to_string(),
                lift_gelems: lift.winner.gelems_per_s,
                reference_gelems: reference.gelems_per_s,
                lift_variant: lift.winner.name.clone(),
                lift_tiled: lift.winner.tiled,
            });
        }
    }
    rows
}

/// One cell of Figure 8: the Lift speedup over PPCG.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// `"small"` or `"large"`.
    pub size: &'static str,
    /// Lift time / PPCG time speedup (> 1 means Lift wins).
    pub speedup: f64,
    /// The winning Lift variant name.
    pub lift_variant: String,
    /// Whether the winning Lift kernel tiles.
    pub lift_tiled: bool,
}

/// Runs the Figure-8 experiment (8 benchmarks × {small, large} × 3
/// devices). As in the paper, the large sizes are skipped on the ARM GPU
/// (*"Large input sizes did not fit onto the ARM GPU"*).
pub fn fig8() -> Vec<Fig8Row> {
    let budget = tune_budget();
    let seed = seed();
    let mut rows = Vec::new();
    for dev_profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(dev_profile);
        let is_arm = dev.profile().name.contains("Mali");
        for name in fig8_names() {
            let bench = by_name(name);
            for (size_name, large) in [("small", false), ("large", true)] {
                if large && is_arm {
                    continue;
                }
                let sizes = bench.size(large);
                let lift = tune_lift(&bench, &sizes, &dev, budget, seed);
                let Some(ppcg) = tune_ppcg(&bench, &sizes, &dev, budget, seed) else {
                    continue;
                };
                rows.push(Fig8Row {
                    bench: name.to_string(),
                    device: dev.profile().name.to_string(),
                    size: size_name,
                    speedup: ppcg.time_s / lift.winner.time_s,
                    lift_variant: lift.winner.name.clone(),
                    lift_tiled: lift.winner.tiled,
                });
            }
        }
    }
    rows
}

/// One row of the ablation study: per-variant best throughput.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Variant name.
    pub variant: String,
    /// Best throughput achieved by this variant.
    pub gelems: f64,
    /// Slowdown relative to the benchmark's overall winner (1.0 = winner).
    pub rel_to_best: f64,
}

/// Per-variant ablation over the rewrite-rule space (§4): quantifies what
/// each optimisation (tiling, local memory, unrolling, coarsening) is worth
/// on each device.
pub fn ablation(bench_names: &[&str]) -> Vec<AblationRow> {
    let budget = tune_budget();
    let seed = seed();
    let mut rows = Vec::new();
    for dev_profile in DeviceProfile::all() {
        let dev = VirtualDevice::new(dev_profile);
        for name in bench_names {
            let bench = by_name(name);
            let sizes = bench.size(false);
            let result = tune_lift(&bench, &sizes, &dev, budget, seed);
            let best = result.winner.gelems_per_s;
            for v in &result.all {
                rows.push(AblationRow {
                    bench: name.to_string(),
                    device: dev.profile().name.to_string(),
                    variant: v.name.clone(),
                    gelems: v.gelems_per_s,
                    rel_to_best: v.gelems_per_s / best,
                });
            }
        }
    }
    rows
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub bench: String,
    /// Dimensionality.
    pub dims: usize,
    /// Stencil points.
    pub points: usize,
    /// Input size used (scaled).
    pub input_size: String,
    /// The paper's input size.
    pub paper_size: String,
    /// Number of grids.
    pub grids: usize,
}

/// Regenerates Table 1 (benchmark inventory).
pub fn table1() -> Vec<Table1Row> {
    suite()
        .iter()
        .map(|b| Table1Row {
            bench: b.name.to_string(),
            dims: b.dims,
            points: b.points,
            input_size: fmt_size(b.small),
            paper_size: fmt_size(b.paper_small),
            grids: b.grids,
        })
        .collect()
}

fn fmt_size(s: &[usize]) -> String {
    s.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("×")
}
