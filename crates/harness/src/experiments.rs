//! The paper's experiments: Table 1, Figure 7, Figure 8 and the ablation
//! study over the rewrite rules — all driven through the staged
//! [`Pipeline`] API.
//!
//! Every sweep distributes its (benchmark, device) grid over
//! [`parallel_map`] workers: the work list is built up front in the
//! sequential iteration order, rows come back in that same order, and each
//! cell tunes with its own deterministic seed — so `LIFT_TUNE_THREADS=8`
//! regenerates byte-identical reports, just sooner.
//!
//! The same work lists are also the unit of **cross-process sharding**
//! (`lift-harness --shard i/n`): a [`Shard`] deterministically selects the
//! grid cells with `index % n == i`, the `*_shard` functions run exactly
//! those cells, and because every cell tunes with its own seed the union
//! of all shards' rows — reassembled in cell order by `lift-harness
//! merge` — is byte-identical to the single-process sweep.

use lift_driver::{
    ppcg_baseline, reference_baseline, Budget, KernelCache, LiftError, Pipeline, Variant,
};
use lift_oclsim::{DeviceProfile, FindingKind, VirtualDevice};
use lift_stencils::{by_name, fig7_names, fig8_names, suite, Benchmark};
use lift_tuner::parallel_map;

use crate::{seed, threads, tune_budget};

fn budget() -> Budget {
    Budget::evaluations(tune_budget()).with_seed(seed())
}

/// One shard of a sweep: `(index, count)`. Grid cell `c` (in the sweep's
/// deterministic work-list order) belongs to the shard with
/// `c % count == index`; `(0, 1)` is the whole sweep.
pub type Shard = (usize, usize);

/// A shard's slice of a sweep: the full sweep's cell count plus the rows
/// each selected cell produced, keyed by global cell index.
#[derive(Debug, Clone)]
pub struct ShardRows<T> {
    /// Cells in the *full* sweep (all shards together).
    pub cells: usize,
    /// `(global cell index, rows of that cell)`, in cell order. A cell
    /// that produces no rows (e.g. a PPCG-inexpressible Figure-8 cell)
    /// appears with an empty row list — the merge step needs to see every
    /// cell to prove completeness.
    pub groups: Vec<(usize, Vec<T>)>,
}

impl<T> ShardRows<T> {
    fn flatten(self) -> Vec<T> {
        self.groups.into_iter().flat_map(|(_, rows)| rows).collect()
    }
}

/// Validates a shard selector.
///
/// # Errors
///
/// [`LiftError::InvalidConfig`] unless `index < count` and `count ≥ 1`.
pub fn validate_shard(shard: Shard) -> Result<Shard, LiftError> {
    let (index, count) = shard;
    if count == 0 || index >= count {
        return Err(LiftError::InvalidConfig(format!(
            "shard {index}/{count} is invalid; use --shard i/n with 0 <= i < n"
        )));
    }
    Ok(shard)
}

/// Selects this shard's cells from the full work list, preserving global
/// cell indices.
fn shard_cells<W>(work: Vec<W>, (index, count): Shard) -> Vec<(usize, W)> {
    work.into_iter()
        .enumerate()
        .filter(|(i, _)| i % count == index)
        .collect()
}

/// Splits a thread budget between the sweep (`outer` workers over grid
/// cells) and each cell's tuner (the remaining share), so a sweep of many
/// cells parallelises across them while a single-cell run parallelises
/// inside the search.
fn split_budget(budget: usize, cells: usize) -> (usize, usize) {
    let outer = budget.min(cells).max(1);
    (outer, (budget / outer).max(1))
}

/// Explore + tune one benchmark on one device through the pipeline, with
/// `tuner_threads` workers evaluating configuration batches.
fn tune(
    bench: &Benchmark,
    sizes: &[usize],
    dev: &VirtualDevice,
    tuner_threads: usize,
) -> Result<lift_driver::BenchResult, LiftError> {
    Ok(Pipeline::from_benchmark(bench, sizes)?
        .explore()?
        .on(dev)
        .tune_full(budget().with_threads(tuner_threads))?
        .report)
}

/// One cell of Figure 7: Lift vs the hand-written kernel.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Lift throughput in giga-elements/s.
    pub lift_gelems: f64,
    /// Reference throughput in giga-elements/s.
    pub reference_gelems: f64,
    /// The winning Lift variant name.
    pub lift_variant: String,
    /// Whether the winning Lift kernel tiles.
    pub lift_tiled: bool,
}

/// Runs the Figure-7 experiment (6 benchmarks × 3 devices).
///
/// # Errors
///
/// Any [`LiftError`] from the pipeline — tuning that finds no valid
/// configuration, or a reference kernel that fails to run or validate.
pub fn fig7() -> Result<Vec<Fig7Row>, LiftError> {
    fig7_with(threads())
}

/// [`fig7`] under an explicit thread budget (used by the `all` command to
/// share the budget across concurrently-generated sections).
pub fn fig7_with(thread_budget: usize) -> Result<Vec<Fig7Row>, LiftError> {
    Ok(fig7_shard((0, 1), thread_budget)?.flatten())
}

/// One shard of the Figure-7 sweep (see [`Shard`]); `(0, 1)` is the whole
/// figure.
///
/// # Errors
///
/// As [`fig7`], plus [`LiftError::InvalidConfig`] for an invalid shard.
pub fn fig7_shard(shard: Shard, thread_budget: usize) -> Result<ShardRows<Fig7Row>, LiftError> {
    let shard = validate_shard(shard)?;
    let work: Vec<(DeviceProfile, &'static str)> = DeviceProfile::all()
        .into_iter()
        .flat_map(|d| fig7_names().into_iter().map(move |n| (d.clone(), n)))
        .collect();
    let cells = work.len();
    let mine = shard_cells(work, shard);
    let (outer, inner) = split_budget(thread_budget, mine.len());
    let groups = parallel_map(outer, mine, |(cell, (profile, name))| {
        let dev = VirtualDevice::new(profile);
        let bench = by_name(name);
        let sizes = bench.size(false);
        let lift = tune(&bench, &sizes, &dev, inner)?;
        let reference = reference_baseline(&bench, &sizes, &dev, seed())?;
        Ok((
            cell,
            vec![Fig7Row {
                bench: name.to_string(),
                device: dev.profile().name.to_string(),
                lift_gelems: lift.winner.gelems_per_s,
                reference_gelems: reference.gelems_per_s,
                lift_variant: lift.winner.name.clone(),
                lift_tiled: lift.winner.tiled,
            }],
        ))
    })
    .into_iter()
    .collect::<Result<Vec<_>, LiftError>>()?;
    Ok(ShardRows { cells, groups })
}

/// One cell of Figure 8: the Lift speedup over PPCG.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// `"small"` or `"large"`.
    pub size: &'static str,
    /// Lift time / PPCG time speedup (> 1 means Lift wins).
    pub speedup: f64,
    /// The winning Lift variant name.
    pub lift_variant: String,
    /// Whether the winning Lift kernel tiles.
    pub lift_tiled: bool,
}

/// Runs the Figure-8 experiment (8 benchmarks × {small, large} × 3
/// devices). As in the paper, the large sizes are skipped on the ARM GPU
/// (*"Large input sizes did not fit onto the ARM GPU"*).
///
/// # Errors
///
/// Any [`LiftError`] from the pipeline. A benchmark the PPCG strategy
/// cannot compile is skipped (not an error), matching the paper's
/// "PPCG-expressible subset" framing.
pub fn fig8() -> Result<Vec<Fig8Row>, LiftError> {
    fig8_with(threads())
}

/// [`fig8`] under an explicit thread budget.
pub fn fig8_with(thread_budget: usize) -> Result<Vec<Fig8Row>, LiftError> {
    Ok(fig8_shard((0, 1), thread_budget)?.flatten())
}

/// One shard of the Figure-8 sweep (see [`Shard`]). PPCG-inexpressible
/// cells appear with an empty row list, exactly as the full sweep skips
/// them.
///
/// # Errors
///
/// As [`fig8`], plus [`LiftError::InvalidConfig`] for an invalid shard.
pub fn fig8_shard(shard: Shard, thread_budget: usize) -> Result<ShardRows<Fig8Row>, LiftError> {
    let shard = validate_shard(shard)?;
    // The work list mirrors the sequential iteration order, with the
    // paper's ARM large-size skip applied up front.
    let mut work: Vec<(DeviceProfile, &'static str, &'static str, bool)> = Vec::new();
    for dev_profile in DeviceProfile::all() {
        let is_arm = dev_profile.name.contains("Mali");
        for name in fig8_names() {
            for (size_name, large) in [("small", false), ("large", true)] {
                if large && is_arm {
                    continue;
                }
                work.push((dev_profile.clone(), name, size_name, large));
            }
        }
    }
    let cells = work.len();
    let mine = shard_cells(work, shard);
    let (outer, inner) = split_budget(thread_budget, mine.len());
    let groups = parallel_map(outer, mine, |(cell, (profile, name, size_name, large))| {
        let dev = VirtualDevice::new(profile);
        let bench = by_name(name);
        let sizes = bench.size(large);
        let lift = tune(&bench, &sizes, &dev, inner)?;
        let ppcg = match ppcg_baseline(&bench, &sizes, &dev, budget().with_threads(inner)) {
            Ok(p) => p,
            // A benchmark the PPCG strategy cannot compile is skipped, not
            // an error — the paper's "PPCG-expressible subset" framing.
            Err(LiftError::Ppcg(_)) => return Ok((cell, Vec::new())),
            Err(e) => return Err(e),
        };
        Ok((
            cell,
            vec![Fig8Row {
                bench: name.to_string(),
                device: dev.profile().name.to_string(),
                size: size_name,
                speedup: ppcg.time_s / lift.winner.time_s,
                lift_variant: lift.winner.name.clone(),
                lift_tiled: lift.winner.tiled,
            }],
        ))
    })
    .into_iter()
    .collect::<Result<Vec<_>, LiftError>>()?;
    Ok(ShardRows { cells, groups })
}

/// One row of the ablation study: per-variant best throughput.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Variant name.
    pub variant: String,
    /// Best throughput achieved by this variant.
    pub gelems: f64,
    /// Slowdown relative to the benchmark's overall winner (1.0 = winner).
    pub rel_to_best: f64,
}

/// Per-variant ablation over the rewrite-rule space (§4): quantifies what
/// each optimisation (tiling, local memory, unrolling, coarsening) is worth
/// on each device.
///
/// # Errors
///
/// Any [`LiftError`] from the pipeline.
pub fn ablation(bench_names: &[&str]) -> Result<Vec<AblationRow>, LiftError> {
    ablation_with(bench_names, threads())
}

/// [`ablation`] under an explicit thread budget.
pub fn ablation_with(
    bench_names: &[&str],
    thread_budget: usize,
) -> Result<Vec<AblationRow>, LiftError> {
    Ok(ablation_shard(bench_names, (0, 1), thread_budget)?.flatten())
}

/// One shard of the ablation sweep (see [`Shard`]). Each cell contributes
/// one row per explored variant.
///
/// # Errors
///
/// As [`ablation`], plus [`LiftError::InvalidConfig`] for an invalid
/// shard.
pub fn ablation_shard(
    bench_names: &[&str],
    shard: Shard,
    thread_budget: usize,
) -> Result<ShardRows<AblationRow>, LiftError> {
    let shard = validate_shard(shard)?;
    let work: Vec<(DeviceProfile, String)> = DeviceProfile::all()
        .into_iter()
        .flat_map(|d| {
            bench_names
                .iter()
                .map(move |n| (d.clone(), n.to_string()))
                .collect::<Vec<_>>()
        })
        .collect();
    let cells = work.len();
    let mine = shard_cells(work, shard);
    let (outer, inner) = split_budget(thread_budget, mine.len());
    let groups = parallel_map(outer, mine, |(cell, (profile, name))| {
        let dev = VirtualDevice::new(profile);
        let bench = by_name(&name);
        let sizes = bench.size(false);
        let result = tune(&bench, &sizes, &dev, inner)?;
        let best = result.winner.gelems_per_s;
        Ok::<(usize, Vec<AblationRow>), LiftError>((
            cell,
            result
                .all
                .iter()
                .map(|v| AblationRow {
                    bench: name.to_string(),
                    device: dev.profile().name.to_string(),
                    variant: v.name.clone(),
                    gelems: v.gelems_per_s,
                    rel_to_best: v.gelems_per_s / best,
                })
                .collect(),
        ))
    })
    .into_iter()
    .collect::<Result<Vec<_>, LiftError>>()?;
    Ok(ShardRows { cells, groups })
}

/// The benchmarks the ablation study sweeps (one 2D and one 3D stencil —
/// enough to show every rewrite variant's contribution at both ranks).
pub const ABLATION_BENCHES: [&str; 2] = ["Jacobi2D5pt", "Jacobi3D7pt"];

/// Total grid cells of a shardable experiment, computed without running
/// anything — the denominator a campaign needs to name its missing cells
/// even when *no* shard managed to report. Mirrors the work-list
/// construction of the corresponding `*_shard` function exactly. `None`
/// for unknown experiments.
pub fn experiment_cells(experiment: &str, ablation_benches: &[&str]) -> Option<usize> {
    let devices = DeviceProfile::all();
    match experiment {
        "fig7" => Some(devices.len() * fig7_names().len()),
        "fig8" => Some(
            devices
                .iter()
                .map(|d| {
                    // Large sizes are skipped on the ARM GPU, as in the paper.
                    let sizes = if d.name.contains("Mali") { 1 } else { 2 };
                    fig8_names().len() * sizes
                })
                .sum(),
        ),
        "ablation" => Some(devices.len() * ablation_benches.len()),
        "bench" => Some(devices.len()),
        _ => None,
    }
}

/// One row of a single-benchmark report: the tuned best of one variant on
/// one device (`winner` marks the per-device fastest).
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Variant name.
    pub variant: String,
    /// Modeled runtime in seconds.
    pub time_s: f64,
    /// Throughput in giga-elements/s.
    pub gelems: f64,
    /// The winning parameter values for this variant.
    pub config: Vec<(String, i64)>,
    /// Whether this variant won on this device.
    pub winner: bool,
    /// Whether the variant uses overlapped tiling.
    pub tiled: bool,
    /// Whether it stages through local memory.
    pub local_mem: bool,
    /// Simulator evaluations spent before the winning configuration was
    /// first scored (1 = the warm-started first proposal won).
    pub evals_to_best: usize,
    /// Configurations the static verifier rejected during tuning.
    pub pruned_verify: usize,
    /// Configurations the cost model pruned as dominated during tuning.
    pub pruned_model: usize,
    /// Successful simulator executions during tuning.
    pub sims: usize,
}

/// Runs one Table-1 benchmark in isolation (`lift-harness bench <name>`):
/// explore + tune on every device profile, reporting every variant's best
/// configuration — the quickest way to inspect a single benchmark's search
/// space (e.g. the per-dimension tile sizes a 3D stencil settled on).
///
/// # Errors
///
/// [`LiftError::UnknownBenchmark`] for a name outside Table 1, plus any
/// pipeline error.
pub fn bench_one(name: &str, large: bool) -> Result<Vec<BenchRow>, LiftError> {
    Ok(bench_shard(name, large, (0, 1))?.flatten())
}

/// One shard of a single-benchmark sweep (cells are the device profiles;
/// see [`Shard`]).
///
/// # Errors
///
/// As [`bench_one`], plus [`LiftError::InvalidConfig`] for an invalid
/// shard.
pub fn bench_shard(
    name: &str,
    large: bool,
    shard: Shard,
) -> Result<ShardRows<BenchRow>, LiftError> {
    let shard = validate_shard(shard)?;
    // Resolve the name early so a typo fails before minutes of tuning.
    let bench = suite()
        .into_iter()
        .find(|b| b.name == name)
        .ok_or_else(|| LiftError::UnknownBenchmark(name.to_string()))?;
    let sizes = bench.size(large);
    let work: Vec<DeviceProfile> = DeviceProfile::all().into_iter().collect();
    let cells = work.len();
    let mine = shard_cells(work, shard);
    let (outer, inner) = split_budget(threads(), mine.len());
    let groups = parallel_map(outer, mine, |(cell, profile)| {
        let dev = VirtualDevice::new(profile);
        let result = tune(&bench, &sizes, &dev, inner)?;
        Ok::<(usize, Vec<BenchRow>), LiftError>((
            cell,
            result
                .all
                .iter()
                .map(|v| BenchRow {
                    bench: name.to_string(),
                    device: dev.profile().name.to_string(),
                    variant: v.name.clone(),
                    time_s: v.time_s,
                    gelems: v.gelems_per_s,
                    config: v.config.clone(),
                    winner: v.name == result.winner.name,
                    tiled: v.tiled,
                    local_mem: v.local_mem,
                    evals_to_best: v.evals_to_best,
                    pruned_verify: v.pruned_verify,
                    pruned_model: v.pruned_model,
                    sims: v.sims,
                })
                .collect(),
        ))
    })
    .into_iter()
    .collect::<Result<Vec<_>, LiftError>>()?;
    Ok(ShardRows { cells, groups })
}

/// One statically-verified (benchmark × device × variant × configuration)
/// cell of the `lift-harness verify` sweep.
#[derive(Debug, Clone)]
pub struct VerifyRow {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Variant name.
    pub variant: String,
    /// The parameter assignment checked (tunables plus launch overrides).
    pub config: Vec<(String, i64)>,
    /// Every finding was a local-memory capacity overflow: the configuration
    /// simply does not fit the device, exactly the class the tuner prunes
    /// before simulation. Reported, but not a gate failure — the kernel
    /// itself has no defect.
    pub pruned: bool,
    /// Rendered findings; empty means every property proved.
    pub findings: Vec<String>,
}

/// Representative parameter assignments for one variant: each tunable's
/// smallest and largest usable candidate, crossed with the default launch
/// geometry and an explicit square-ish work-group. Shared by the `verify`
/// sweep and the cost-model accuracy sweep (`lift-harness model`), so the
/// model's accuracy is reported over exactly the configurations the
/// verifier gates.
pub(crate) fn rep_configs(variant: &Variant) -> Vec<Vec<(String, i64)>> {
    let mut tun_choices: Vec<Vec<(String, i64)>> = vec![Vec::new()];
    for t in &variant.tunables {
        let cands = t.candidates(64);
        let (Some(lo), Some(hi)) = (cands.first(), cands.last()) else {
            return Vec::new();
        };
        let mut next = Vec::new();
        for base in &tun_choices {
            for v in if lo == hi { vec![*lo] } else { vec![*lo, *hi] } {
                let mut c = base.clone();
                c.push((t.var().to_string(), v));
                next.push(c);
            }
        }
        // Cap the cross product; two tunables already give four corners.
        next.truncate(8);
        tun_choices = next;
    }
    let mut launches: Vec<Vec<(String, i64)>> = vec![Vec::new()];
    let mut square = vec![("lx".to_string(), 4)];
    if variant.dims >= 2 {
        square.push(("ly".to_string(), 4));
    }
    if variant.dims >= 3 {
        square.push(("lz".to_string(), 2));
    }
    launches.push(square);
    let mut out = Vec::new();
    for tc in &tun_choices {
        for l in &launches {
            let mut c = tc.clone();
            c.extend(l.iter().cloned());
            out.push(c);
        }
    }
    out
}

/// Statically verifies every Table-1 benchmark × device × variant under
/// representative configurations (each tunable's smallest and largest
/// usable candidate, crossed with two launch geometries) — no simulation
/// runs. A configuration the pipeline
/// itself rejects (inexpressible launch geometry, work-group over the
/// device limit) is skipped: there is no kernel to verify.
///
/// # Errors
///
/// Any [`LiftError`] other than [`LiftError::InvalidConfig`] — a variant
/// that fails to compile must fail the gate, not vanish from it.
pub fn verify_sweep() -> Result<Vec<VerifyRow>, LiftError> {
    verify_sweep_with(threads())
}

/// [`verify_sweep`] under an explicit thread budget.
pub fn verify_sweep_with(thread_budget: usize) -> Result<Vec<VerifyRow>, LiftError> {
    let mut work: Vec<(Benchmark, DeviceProfile)> = Vec::new();
    for bench in suite() {
        for profile in DeviceProfile::all() {
            work.push((bench.clone(), profile));
        }
    }
    let outer = thread_budget.min(work.len()).max(1);
    let groups = parallel_map(outer, work, |(bench, profile)| {
        let dev = VirtualDevice::new(profile);
        let sizes = bench.size(false);
        let variants = Pipeline::from_benchmark(&bench, &sizes)?.explore()?;
        let cache = std::sync::Arc::new(KernelCache::new());
        let mut rows = Vec::new();
        for name in variants.names().iter().map(|n| n.to_string()) {
            let variant = variants.get(&name).expect("name came from the set");
            for cfg in rep_configs(variant) {
                let params: Vec<(&str, i64)> = cfg.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let compiled = variants
                    .clone()
                    .on(&dev)
                    .with_cache(cache.clone())
                    .with_config(&name, &params);
                let stencil = match compiled {
                    Ok(s) => s,
                    Err(LiftError::InvalidConfig(_)) => continue,
                    Err(e) => return Err(e),
                };
                let findings = stencil.verify()?;
                let pruned = !findings.is_empty()
                    && findings
                        .iter()
                        .all(|f| f.kind == FindingKind::LocalMemCapacity);
                rows.push(VerifyRow {
                    bench: bench.name.to_string(),
                    device: dev.profile().name.to_string(),
                    variant: name.clone(),
                    config: cfg,
                    pruned,
                    findings: findings.iter().map(|f| f.to_string()).collect(),
                });
            }
        }
        Ok::<Vec<VerifyRow>, LiftError>(rows)
    })
    .into_iter()
    .collect::<Result<Vec<_>, LiftError>>()?;
    Ok(groups.into_iter().flatten().collect())
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub bench: String,
    /// Dimensionality.
    pub dims: usize,
    /// Stencil points.
    pub points: usize,
    /// Input size used (scaled).
    pub input_size: String,
    /// The paper's input size.
    pub paper_size: String,
    /// Number of grids.
    pub grids: usize,
}

/// Regenerates Table 1 (benchmark inventory).
pub fn table1() -> Vec<Table1Row> {
    suite()
        .iter()
        .map(|b| Table1Row {
            bench: b.name.to_string(),
            dims: b.dims,
            points: b.points,
            input_size: fmt_size(b.small),
            paper_size: fmt_size(b.paper_small),
            grids: b.grids,
        })
        .collect()
}

fn fmt_size(s: &[usize]) -> String {
    s.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("×")
}
