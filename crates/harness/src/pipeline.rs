//! The end-to-end Lift pipeline for one benchmark on one device.

use lift_codegen::{compile_kernel, substitute_sizes};
use lift_oclsim::{BufferData, LaunchConfig, VirtualDevice};
use lift_rewrite::strategy::{enumerate_variants, Tunable, Variant};
use lift_stencils::refkernels::reference_kernel;
use lift_stencils::Benchmark;
use lift_tuner::{ParamSpace, ParamSpec, Tuner};

/// One tuned implementation with its best configuration.
#[derive(Debug, Clone)]
pub struct TunedVariant {
    /// Variant name (`"global"`, `"tiled-local"`, `"ppcg"`, `"reference"`).
    pub name: String,
    /// Modeled runtime in seconds.
    pub time_s: f64,
    /// Giga-elements updated per second (the paper's Fig. 7 metric).
    pub gelems_per_s: f64,
    /// The winning parameter values.
    pub config: Vec<(String, i64)>,
    /// The winning launch configuration (global, local).
    pub launch: ([usize; 3], [usize; 3]),
    /// Whether the variant uses overlapped tiling.
    pub tiled: bool,
    /// Whether it stages through local memory.
    pub local_mem: bool,
    /// Tuner evaluations spent.
    pub evaluations: usize,
}

/// The outcome of exploring + tuning one benchmark on one device.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Grid sizes used.
    pub sizes: Vec<usize>,
    /// The fastest tuned variant.
    pub winner: TunedVariant,
    /// Best result per explored variant.
    pub all: Vec<TunedVariant>,
}

fn round_up(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

/// Work-group size candidates per dimensionality.
fn local_space(dims: usize, max_wg: usize) -> Vec<ParamSpec> {
    match dims {
        1 => vec![ParamSpec::pow2("lx", 32, max_wg as i64)],
        2 => vec![
            ParamSpec::pow2("lx", 8, 64),
            ParamSpec::pow2("ly", 4, 32),
        ],
        _ => vec![
            ParamSpec::pow2("lx", 8, 64),
            ParamSpec::pow2("ly", 2, 16),
            ParamSpec::new("lz", vec![1, 2]),
        ],
    }
}

fn value_of(cfg: &[(String, i64)], name: &str) -> Option<i64> {
    cfg.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// Derives the launch configuration for a variant given its bound
/// parameters.
fn launch_for(
    variant: &Variant,
    out_sizes: &[usize],
    cfg: &[(String, i64)],
) -> Option<LaunchConfig> {
    let l = |name: &str, default: usize| {
        value_of(cfg, name).map(|v| v as usize).unwrap_or(default)
    };
    let (lx, ly, lz) = (l("lx", 32), l("ly", 1), l("lz", 1));
    let dims = variant.dims;

    // Output extents in launch order: x = innermost.
    let ox = *out_sizes.last()?;
    let oy = if dims >= 2 { out_sizes[dims - 2] } else { 1 };
    let oz = if dims >= 3 { out_sizes[dims - 3] } else { 1 };

    if variant.tiled {
        // One work-group per tile.
        let ts = value_of(cfg, "TS")?;
        let t = variant.tunables.iter().find(|t| t.var() == "TS")?;
        let Tunable::TileSize {
            nbh_size,
            nbh_step,
            lens,
            ..
        } = t
        else {
            return None;
        };
        let v = ts - (nbh_size - nbh_step);
        let groups: Vec<usize> = lens
            .iter()
            .map(|len| ((len - ts) / v + 1) as usize)
            .collect();
        match variant.dims {
            1 => Some(LaunchConfig::d1(groups[0] * lx, lx)),
            _ => Some(LaunchConfig::d2(
                groups[1] * lx,
                groups[0] * ly,
                lx,
                ly,
            )),
        }
    } else {
        let cf = value_of(cfg, "CF").unwrap_or(1).max(1) as usize;
        match dims {
            1 => Some(LaunchConfig::d1(round_up(ox.div_ceil(cf), lx), lx)),
            2 => Some(LaunchConfig::d2(
                round_up(ox.div_ceil(cf), lx),
                round_up(oy, ly),
                lx,
                ly,
            )),
            _ => {
                // The z dimension may be strip-mined away ("ppcg" style):
                // detect via the variant name.
                let gz = if variant.name == "ppcg" {
                    lz
                } else {
                    round_up(oz, lz)
                };
                Some(LaunchConfig::d3(
                    [round_up(ox.div_ceil(cf), lx), round_up(oy, ly), gz],
                    [lx, ly, lz],
                ))
            }
        }
    }
}

/// Compiles and executes one bound configuration, returning the modeled
/// time if it runs and validates.
#[allow(clippy::too_many_arguments)]
fn evaluate_config(
    variant: &Variant,
    cfg: &[(String, i64)],
    out_sizes: &[usize],
    inputs: &[BufferData],
    golden: &[f32],
    dev: &VirtualDevice,
    kernel_name: &str,
    validate: bool,
) -> Option<f64> {
    let tun_values: Vec<(String, i64)> = variant
        .tunables
        .iter()
        .filter_map(|t| value_of(cfg, t.var()).map(|v| (t.var().to_string(), v)))
        .collect();
    let bound = if tun_values.is_empty() {
        variant.program.clone()
    } else {
        lift_rewrite::strategy::bind_tunables(variant, &tun_values)?
    };
    // Any residual variables (none expected) are rejected by codegen.
    let bound = substitute_sizes(&bound, &lift_arith::Bindings::new());
    let kernel = compile_kernel(kernel_name, &bound).ok()?;
    let launch = launch_for(variant, out_sizes, cfg)?;
    let out = dev.run(&kernel, inputs, launch).ok()?;
    if validate && !outputs_match(out.output.as_f32(), golden) {
        return None;
    }
    Some(out.time_s)
}

fn outputs_match(got: &[f32], want: &[f32]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(a, b)| (a - b).abs() <= 1e-3 * b.abs().max(1.0))
}

/// Runs the full Lift flow (explore → tune → validate) for `bench` on
/// `dev`.
///
/// # Panics
///
/// Panics if no variant produces a single valid configuration — that means
/// the compiler pipeline is broken for this benchmark, which tests must
/// surface loudly.
pub fn tune_lift(
    bench: &Benchmark,
    sizes: &[usize],
    dev: &VirtualDevice,
    budget: usize,
    seed: u64,
) -> BenchResult {
    let prog = bench.program(sizes);
    let variants = enumerate_variants(&prog);
    let inputs: Vec<BufferData> = bench
        .gen_inputs(sizes, seed)
        .into_iter()
        .map(BufferData::F32)
        .collect();
    let golden = bench.golden(
        &inputs
            .iter()
            .map(|b| b.as_f32().to_vec())
            .collect::<Vec<_>>(),
        sizes,
    );
    let out_elems = bench.out_elements(sizes);

    let mut all = Vec::new();
    for variant in &variants {
        if let Some(t) = tune_variant(
            variant, bench, sizes, &inputs, &golden, dev, budget, seed, out_elems,
        ) {
            all.push(t);
        }
    }
    assert!(
        !all.is_empty(),
        "no valid configuration found for {} on {}",
        bench.name,
        dev.profile().name
    );
    let winner = all
        .iter()
        .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
        .expect("non-empty")
        .clone();
    BenchResult {
        bench: bench.name.to_string(),
        device: dev.profile().name.to_string(),
        sizes: sizes.to_vec(),
        winner,
        all,
    }
}

#[allow(clippy::too_many_arguments)]
fn tune_variant(
    variant: &Variant,
    bench: &Benchmark,
    sizes: &[usize],
    inputs: &[BufferData],
    golden: &[f32],
    dev: &VirtualDevice,
    budget: usize,
    seed: u64,
    out_elems: usize,
) -> Option<TunedVariant> {
    let max_wg = dev.profile().max_wg_size;
    let mut specs = Vec::new();
    for t in &variant.tunables {
        let cap = match t {
            Tunable::TileSize { lens, .. } => lens.iter().copied().min().unwrap_or(64).min(64),
            Tunable::CoarsenFactor { .. } => 16,
        };
        let mut cands = t.candidates(cap);
        if let Tunable::TileSize { nbh_size, .. } = t {
            // Degenerate tiles (little more than the neighbourhood) produce
            // one output per work-group and pathological launch sizes; no
            // sane tuner budget should be spent simulating them.
            cands.retain(|u| *u >= nbh_size + 3);
        }
        if cands.is_empty() {
            return None;
        }
        specs.push(ParamSpec::new(t.var().to_string(), cands));
    }
    let n_tunables = specs.len();
    specs.extend(local_space(variant.dims, max_wg));
    let space = ParamSpace::new(specs).with_constraint(move |cfg| {
        // Work-group size within the device limit.
        let wg: i64 = cfg[n_tunables..].iter().product();
        wg as usize <= max_wg
    });
    let names: Vec<String> = space
        .params()
        .iter()
        .map(|p| p.name().to_string())
        .collect();

    let validate = std::env::var("LIFT_NO_VALIDATE").map(|v| v != "1").unwrap_or(true);
    let tuner = Tuner::new(space, budget).with_seed(seed ^ hash(&variant.name));
    let result = tuner.run(|cfg| {
        let named: Vec<(String, i64)> = names
            .iter()
            .cloned()
            .zip(cfg.iter().copied())
            .collect();
        evaluate_config(
            variant,
            &named,
            sizes,
            inputs,
            golden,
            dev,
            &format!("{}_{}", bench.name.to_lowercase(), variant.name.replace('-', "_")),
            validate,
        )
    });
    let best = result.best?;
    let config: Vec<(String, i64)> = names.into_iter().zip(best.values).collect();
    let launch = launch_for(variant, sizes, &config)?;
    Some(TunedVariant {
        name: variant.name.clone(),
        time_s: best.score,
        gelems_per_s: out_elems as f64 / best.score / 1e9,
        config,
        launch: (launch.global, launch.local),
        tiled: variant.tiled,
        local_mem: variant.local_mem,
        evaluations: result.evaluations,
    })
}

fn hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Tunes the PPCG baseline for `bench` (Fig. 8 benchmarks only).
pub fn tune_ppcg(
    bench: &Benchmark,
    sizes: &[usize],
    dev: &VirtualDevice,
    budget: usize,
    seed: u64,
) -> Option<TunedVariant> {
    let prog = bench.program(sizes);
    let k = lift_ppcg::compile(&prog).ok()?;
    let variant = Variant {
        name: "ppcg".into(),
        program: k.program,
        tunables: k.tunables,
        dims: k.dims,
        tiled: k.dims == 2,
        local_mem: k.dims == 2,
        unrolled: false,
    };
    let inputs: Vec<BufferData> = bench
        .gen_inputs(sizes, seed)
        .into_iter()
        .map(BufferData::F32)
        .collect();
    let golden = bench.golden(
        &inputs
            .iter()
            .map(|b| b.as_f32().to_vec())
            .collect::<Vec<_>>(),
        sizes,
    );
    tune_variant(
        &variant,
        bench,
        sizes,
        &inputs,
        &golden,
        dev,
        budget,
        seed,
        bench.out_elements(sizes),
    )
}

/// Executes the hand-written reference kernel for a Fig. 7 benchmark (no
/// tuning — references are fixed).
///
/// # Panics
///
/// Panics if the reference kernel fails to execute or produces wrong
/// results — hand-written kernels are part of the repository and must work.
pub fn run_reference(bench: &Benchmark, sizes: &[usize], dev: &VirtualDevice, seed: u64) -> TunedVariant {
    let r = reference_kernel(bench, sizes);
    let inputs: Vec<BufferData> = bench
        .gen_inputs(sizes, seed)
        .into_iter()
        .map(BufferData::F32)
        .collect();
    let golden = bench.golden(
        &inputs
            .iter()
            .map(|b| b.as_f32().to_vec())
            .collect::<Vec<_>>(),
        sizes,
    );
    let cfg = LaunchConfig::d3(r.global, r.local);
    let out = dev
        .run(&r.kernel, &inputs, cfg)
        .unwrap_or_else(|e| panic!("reference kernel for {} failed: {e}", bench.name));
    assert!(
        outputs_match(out.output.as_f32(), &golden),
        "reference kernel for {} produced wrong results",
        bench.name
    );
    let out_elems = bench.out_elements(sizes);
    TunedVariant {
        name: "reference".into(),
        time_s: out.time_s,
        gelems_per_s: out_elems as f64 / out.time_s / 1e9,
        config: vec![],
        launch: (r.global, r.local),
        tiled: false,
        local_mem: bench.name == "Hotspot2D",
        evaluations: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_oclsim::DeviceProfile;

    #[test]
    fn tune_lift_end_to_end_small() {
        let bench = lift_stencils::by_name("Jacobi2D5pt");
        let sizes = [18usize, 18];
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let r = tune_lift(&bench, &sizes, &dev, 4, 1);
        assert!(r.winner.time_s > 0.0);
        assert!(r.all.len() >= 2, "expected several variants, got {:?}",
            r.all.iter().map(|v| &v.name).collect::<Vec<_>>());
        // Every surviving variant validated against the golden output.
        for v in &r.all {
            assert!(v.gelems_per_s > 0.0, "{} has no throughput", v.name);
        }
    }

    #[test]
    fn reference_runs_and_validates() {
        let bench = lift_stencils::by_name("Hotspot2D");
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let r = run_reference(&bench, &[32, 32], &dev, 1);
        assert!(r.time_s > 0.0);
        assert!(r.local_mem);
    }

    #[test]
    fn ppcg_tunes_2d() {
        let bench = lift_stencils::by_name("Jacobi2D5pt");
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let r = tune_ppcg(&bench, &[18, 18], &dev, 6, 1).expect("ppcg result");
        assert!(r.tiled);
        assert!(r.time_s > 0.0);
    }

    #[test]
    fn ppcg_tunes_3d() {
        let bench = lift_stencils::by_name("Heat");
        let dev = VirtualDevice::new(DeviceProfile::mali_t628());
        let r = tune_ppcg(&bench, &[8, 8, 8], &dev, 4, 1).expect("ppcg result");
        assert!(!r.tiled);
    }
}
