//! Cost-model accuracy and tuning-efficiency tracking: the
//! `lift-harness model` command.
//!
//! Two sweeps, one report:
//!
//! 1. **Accuracy** — every Table-1 benchmark × device × variant under the
//!    same representative configurations the `verify` sweep gates. Each
//!    kernel is *predicted* with the static cost model
//!    ([`CompiledStencil::estimate`], which never executes a lane) and
//!    then *simulated*; the per-cell Spearman rank correlation between
//!    the two time series says how well the model orders configurations.
//!    Because every Table-1 kernel is launch-determined, the estimates
//!    are bit-exact and the correlation is 1.0 — the report exists so CI
//!    notices the day a new kernel or model change breaks that.
//! 2. **Tuning efficiency** — the Figure-7 grid tuned twice, once with
//!    the model's warm-start + pruning (the default) and once with
//!    `LIFT_COST_PRUNE=off`. Both runs must settle on the *same* winner
//!    (bit-identical score); the report records how many simulator
//!    evaluations each needed before first scoring it (`evals_to_best`)
//!    and how many simulations tuning the whole cell cost (`sims`) —
//!    i.e. what the model saves.
//!
//! `lift-harness model` exits non-zero when the minimum Spearman drops
//! below [`SPEARMAN_GATE`] or any tuning cell's winners diverge — the CI
//! `model-accuracy` job is just this command.

use lift_driver::{Budget, LiftError, Pipeline};
use lift_oclsim::{BufferData, DeviceProfile, VirtualDevice};
use lift_stencils::suite;
use lift_tuner::parallel_map;

use crate::experiments::rep_configs;
use crate::report::json_str;
use crate::{seed, threads, tune_budget};

/// The CI gate on per-cell rank correlation. The exact model scores 1.0;
/// the gate sits at the issue's floor so a future *approximate* model
/// (new hardware counters, calibrated constants) has headroom without
/// silently degrading below useful.
pub const SPEARMAN_GATE: f64 = 0.8;

/// One predicted-vs-simulated comparison point.
#[derive(Debug, Clone)]
pub struct ModelPoint {
    /// Variant name.
    pub variant: String,
    /// The parameter assignment.
    pub config: Vec<(String, i64)>,
    /// The static model's runtime prediction, in seconds.
    pub predicted_s: f64,
    /// The simulator's modeled runtime, in seconds.
    pub simulated_s: f64,
    /// Whether the model claimed the prediction is exact.
    pub exact: bool,
}

/// One (benchmark × device) cell of the accuracy sweep.
#[derive(Debug, Clone)]
pub struct ModelCell {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// The comparison points (variants × representative configs).
    pub points: Vec<ModelPoint>,
    /// Spearman rank correlation between predicted and simulated times.
    pub spearman: f64,
    /// How many points were bit-exact (prediction == simulation).
    pub exact_points: usize,
}

/// One (benchmark × device) cell of the tuning-efficiency sweep.
#[derive(Debug, Clone)]
pub struct TuneCell {
    /// Benchmark name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Whether model-guided and model-off tuning found the same winner
    /// (same variant, same configuration, bit-identical score).
    pub winner_match: bool,
    /// Simulator evaluations before the winner was first scored, with the
    /// model's warm-start + pruning.
    pub evals_to_best_model: usize,
    /// The same count with `LIFT_COST_PRUNE=off`.
    pub evals_to_best_off: usize,
    /// Total successful simulator executions across every variant of the
    /// cell — the full cost of tuning it and certifying the winner — with
    /// the model.
    pub sims_model: usize,
    /// …and without.
    pub sims_off: usize,
}

/// The `model` command's full result.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Accuracy cells, in (device, benchmark) sweep order.
    pub cells: Vec<ModelCell>,
    /// Tuning-efficiency cells, in the Figure-7 grid order.
    pub tuning: Vec<TuneCell>,
    /// Tuner evaluations per variant used in the efficiency sweep.
    pub budget: usize,
}

/// Average ranks (1-based), ties sharing the mean of their positions —
/// the standard Spearman tie treatment.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation: Pearson over average ranks. Degenerate
/// inputs (fewer than two points, or a constant series) score 1.0 when
/// the rankings agree exactly and 0.0 otherwise, so an all-ties cell
/// neither fails nor inflates the gate.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 {
        return 1.0;
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let (mut num, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (x, y) in ra.iter().zip(&rb) {
        num += (x - mean) * (y - mean);
        va += (x - mean) * (x - mean);
        vb += (y - mean) * (y - mean);
    }
    if va == 0.0 || vb == 0.0 {
        return if ra == rb { 1.0 } else { 0.0 };
    }
    num / (va * vb).sqrt()
}

/// The accuracy sweep: predict and simulate every benchmark × device ×
/// variant × representative configuration.
fn accuracy_cells(thread_budget: usize) -> Result<Vec<ModelCell>, LiftError> {
    let mut work: Vec<(lift_stencils::Benchmark, DeviceProfile)> = Vec::new();
    for profile in DeviceProfile::all() {
        for bench in suite() {
            work.push((bench, profile.clone()));
        }
    }
    let outer = thread_budget.min(work.len()).max(1);
    parallel_map(outer, work, |(bench, profile)| {
        let dev = VirtualDevice::new(profile);
        let sizes = bench.size(false);
        let variants = Pipeline::from_benchmark(&bench, &sizes)?.explore()?;
        let inputs: Vec<BufferData> = bench
            .gen_inputs(&sizes, seed())
            .into_iter()
            .map(BufferData::F32)
            .collect();
        let mut points = Vec::new();
        for name in variants.names().iter().map(|n| n.to_string()) {
            let variant = variants.get(&name).expect("name came from the set");
            for cfg in rep_configs(variant) {
                let params: Vec<(&str, i64)> = cfg.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let compiled = match variants.clone().on(&dev).with_config(&name, &params) {
                    Ok(s) => s,
                    // Inexpressible geometry: nothing to predict or run.
                    Err(LiftError::InvalidConfig(_)) => continue,
                    Err(e) => return Err(e),
                };
                // Configurations the verifier rejects (e.g. over local
                // memory) never reach the simulator during tuning either.
                if !compiled.verify()?.is_empty() {
                    continue;
                }
                let est = compiled.estimate()?;
                let measured = compiled.run(&inputs)?;
                points.push(ModelPoint {
                    variant: name.clone(),
                    config: cfg,
                    predicted_s: est.time(dev.profile()),
                    simulated_s: measured.time_s,
                    exact: est.exact,
                });
            }
        }
        let predicted: Vec<f64> = points.iter().map(|p| p.predicted_s).collect();
        let simulated: Vec<f64> = points.iter().map(|p| p.simulated_s).collect();
        let exact_points = points
            .iter()
            .filter(|p| p.exact && p.predicted_s.to_bits() == p.simulated_s.to_bits())
            .count();
        Ok(ModelCell {
            bench: bench.name.to_string(),
            device: dev.profile().name.to_string(),
            spearman: spearman(&predicted, &simulated),
            exact_points,
            points,
        })
    })
    .into_iter()
    .collect()
}

/// The tuning-efficiency sweep: the Figure-7 grid tuned with the model
/// and with `LIFT_COST_PRUNE=off`, compared cell by cell.
fn tuning_cells(thread_budget: usize) -> Result<Vec<TuneCell>, LiftError> {
    let mut work: Vec<(DeviceProfile, &'static str)> = Vec::new();
    for profile in DeviceProfile::all() {
        for name in lift_stencils::fig7_names() {
            work.push((profile.clone(), name));
        }
    }
    let outer = thread_budget.min(work.len()).max(1);
    let inner = (thread_budget / outer).max(1);
    parallel_map(outer, work, |(profile, name)| {
        let dev = VirtualDevice::new(profile);
        let bench = lift_stencils::by_name(name);
        let sizes = bench.size(false);
        let tune = |setting: &str| {
            Ok::<_, LiftError>(
                Pipeline::from_benchmark(&bench, &sizes)?
                    .explore()?
                    .on(&dev)
                    .tune_full(
                        Budget::evaluations(tune_budget())
                            .with_seed(seed())
                            .with_threads(inner)
                            .with_cost_prune(setting),
                    )?
                    .report,
            )
        };
        let with_model = tune("1.0")?;
        let without = tune("off")?;
        let sims = |r: &lift_driver::BenchResult| r.all.iter().map(|v| v.sims).sum();
        Ok(TuneCell {
            bench: name.to_string(),
            device: dev.profile().name.to_string(),
            winner_match: with_model.winner.name == without.winner.name
                && with_model.winner.config == without.winner.config
                && with_model.winner.time_s.to_bits() == without.winner.time_s.to_bits(),
            evals_to_best_model: with_model.winner.evals_to_best,
            evals_to_best_off: without.winner.evals_to_best,
            sims_model: sims(&with_model),
            sims_off: sims(&without),
        })
    })
    .into_iter()
    .collect()
}

/// Runs both sweeps (see the module docs).
///
/// # Errors
///
/// Any [`LiftError`] from compilation, estimation, simulation or tuning —
/// a kernel the model refuses to estimate fails the sweep, it does not
/// vanish from it.
pub fn model_report() -> Result<ModelReport, LiftError> {
    model_report_with(threads())
}

/// [`model_report`] under an explicit thread budget.
pub fn model_report_with(thread_budget: usize) -> Result<ModelReport, LiftError> {
    Ok(ModelReport {
        cells: accuracy_cells(thread_budget)?,
        tuning: tuning_cells(thread_budget)?,
        budget: tune_budget(),
    })
}

impl ModelReport {
    /// The worst per-cell rank correlation (1.0 for an empty sweep).
    pub fn min_spearman(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| c.spearman)
            .fold(1.0, |a, b| if b < a { b } else { a })
    }

    /// Total comparison points across all accuracy cells.
    pub fn points(&self) -> usize {
        self.cells.iter().map(|c| c.points.len()).sum()
    }

    /// How many of those were bit-exact.
    pub fn exact_points(&self) -> usize {
        self.cells.iter().map(|c| c.exact_points).sum()
    }

    /// Whether every tuning cell found the same winner with and without
    /// the model.
    pub fn all_winners_match(&self) -> bool {
        self.tuning.iter().all(|t| t.winner_match)
    }

    /// Aggregate evaluations-to-best speedup: Σ without-model ÷ Σ with.
    pub fn evals_to_best_ratio(&self) -> f64 {
        let with: usize = self.tuning.iter().map(|t| t.evals_to_best_model).sum();
        let without: usize = self.tuning.iter().map(|t| t.evals_to_best_off).sum();
        without as f64 / (with as f64).max(1.0)
    }

    /// Aggregate simulator-execution savings across whole cells:
    /// Σ without-model sims ÷ Σ with-model sims. This is the issue's
    /// "fewer simulator evaluations to reach the same best config" —
    /// with the model, losing variants are pruned after a handful of
    /// simulations instead of consuming their full budget.
    pub fn sims_ratio(&self) -> f64 {
        let with: usize = self.tuning.iter().map(|t| t.sims_model).sum();
        let without: usize = self.tuning.iter().map(|t| t.sims_off).sum();
        without as f64 / (with as f64).max(1.0)
    }

    /// The CI gate: empty when the report passes, else one line per
    /// violated property.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cells {
            if c.spearman < SPEARMAN_GATE {
                out.push(format!(
                    "{} on {}: Spearman {:.3} < {SPEARMAN_GATE}",
                    c.bench, c.device, c.spearman
                ));
            }
        }
        for t in &self.tuning {
            if !t.winner_match {
                out.push(format!(
                    "{} on {}: model-guided and model-off tuning disagree on the winner",
                    t.bench, t.device
                ));
            }
        }
        out
    }

    /// The machine-readable document (`lift-harness model --json`).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"bench\": {}, \"device\": {}, \"points\": {}, \
                     \"exact_points\": {}, \"spearman\": {:.6}}}",
                    json_str(&c.bench),
                    json_str(&c.device),
                    c.points.len(),
                    c.exact_points,
                    c.spearman
                )
            })
            .collect();
        let tuning: Vec<String> = self
            .tuning
            .iter()
            .map(|t| {
                format!(
                    "    {{\"bench\": {}, \"device\": {}, \"winner_match\": {}, \
                     \"evals_to_best_model\": {}, \"evals_to_best_off\": {}, \
                     \"sims_model\": {}, \"sims_off\": {}}}",
                    json_str(&t.bench),
                    json_str(&t.device),
                    t.winner_match,
                    t.evals_to_best_model,
                    t.evals_to_best_off,
                    t.sims_model,
                    t.sims_off
                )
            })
            .collect();
        format!(
            "{{\n\
             \"schema\": \"lift-cost-model/1\",\n\
             \"budget\": {},\n\
             \"min_spearman\": {:.6},\n\
             \"points\": {},\n\
             \"exact_points\": {},\n\
             \"all_winners_match\": {},\n\
             \"evals_to_best_ratio\": {:.3},\n\
             \"sims_ratio\": {:.3},\n\
             \"accuracy\": [\n{}\n  ],\n\
             \"tuning\": [\n{}\n  ]\n\
             }}\n",
            self.budget,
            self.min_spearman(),
            self.points(),
            self.exact_points(),
            self.all_winners_match(),
            self.evals_to_best_ratio(),
            self.sims_ratio(),
            cells.join(",\n"),
            tuning.join(",\n")
        )
    }

    /// A human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Cost model: predicted vs simulated runtime (Spearman rank correlation)\n");
        let mut devices: Vec<&str> = self.cells.iter().map(|c| c.device.as_str()).collect();
        devices.dedup();
        for dev in devices {
            out.push_str(&format!("\n  [{dev}]\n"));
            for c in self.cells.iter().filter(|c| c.device == dev) {
                out.push_str(&format!(
                    "  {:<14}{:>4} configs   spearman {:>6.3}   {}/{} bit-exact\n",
                    c.bench,
                    c.points.len(),
                    c.spearman,
                    c.exact_points,
                    c.points.len()
                ));
            }
        }
        out.push_str(&format!(
            "\nTuning with the model vs LIFT_COST_PRUNE=off (budget {}):\n",
            self.budget
        ));
        for t in &self.tuning {
            out.push_str(&format!(
                "  {:<14}{:<22} {}  evals-to-best {:>3} vs {:>3}   sims {:>4} vs {:>4}\n",
                t.bench,
                t.device,
                if t.winner_match {
                    "same winner"
                } else {
                    "WINNERS DIVERGED"
                },
                t.evals_to_best_model,
                t.evals_to_best_off,
                t.sims_model,
                t.sims_off
            ));
        }
        out.push_str(&format!(
            "\nmin spearman {:.3}, {}/{} points bit-exact, evals-to-best ratio {:.1}x, \
             sims ratio {:.1}x\n",
            self.min_spearman(),
            self.exact_points(),
            self.points(),
            self.evals_to_best_ratio(),
            self.sims_ratio()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_handles_perfect_inverse_and_ties() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(spearman(&a, &a), 1.0);
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(spearman(&a, &rev), -1.0);
        // Monotone but non-linear: rank correlation is still perfect.
        let sq = [1.0, 4.0, 9.0, 16.0];
        assert_eq!(spearman(&a, &sq), 1.0);
        // Ties share average ranks instead of poisoning the score.
        let tied = [1.0, 2.0, 2.0, 3.0];
        assert!(spearman(&tied, &tied) == 1.0);
        // Degenerate cells: agreement scores 1, disagreement 0.
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(spearman(&flat, &flat), 1.0);
        assert_eq!(spearman(&flat, &a), 0.0);
        assert_eq!(spearman(&[1.0], &[9.0]), 1.0);
    }

    #[test]
    fn report_rendering_and_gate() {
        let report = ModelReport {
            cells: vec![ModelCell {
                bench: "Heat".into(),
                device: "Nvidia Tesla K20c".into(),
                points: vec![ModelPoint {
                    variant: "global".into(),
                    config: vec![("lx".into(), 4)],
                    predicted_s: 1e-5,
                    simulated_s: 1e-5,
                    exact: true,
                }],
                spearman: 1.0,
                exact_points: 1,
            }],
            tuning: vec![TuneCell {
                bench: "Heat".into(),
                device: "Nvidia Tesla K20c".into(),
                winner_match: true,
                evals_to_best_model: 1,
                evals_to_best_off: 7,
                sims_model: 12,
                sims_off: 40,
            }],
            budget: 10,
        };
        assert!(report.gate_failures().is_empty());
        assert_eq!(report.evals_to_best_ratio(), 7.0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"lift-cost-model/1\""));
        assert!(json.contains("\"min_spearman\": 1.000000"));
        assert!(json.contains("\"evals_to_best_ratio\": 7.000"));
        assert!(json.contains("\"sims_ratio\": 3.333"));
        let text = report.render();
        assert!(text.contains("same winner"));
        assert!(text.contains("1/1 bit-exact"));

        // A bad cell and a diverged winner both gate.
        let mut bad = report.clone();
        bad.cells[0].spearman = 0.5;
        bad.tuning[0].winner_match = false;
        let failures = bad.gate_failures();
        assert_eq!(failures.len(), 2);
        assert!(failures[0].contains("Spearman 0.500"), "{failures:?}");
        assert!(failures[1].contains("disagree"), "{failures:?}");
    }
}
