//! Command-line driver for the paper's experiments.
//!
//! ```text
//! lift-harness table1             # Table 1 (benchmark inventory)
//! lift-harness fig7               # Figure 7 (Lift vs hand-written kernels)
//! lift-harness fig8               # Figure 8 (Lift vs PPCG)
//! lift-harness ablation           # per-variant rewrite-rule ablation
//! lift-harness bench <name>       # one Table-1 benchmark in isolation
//! lift-harness bench <name> --large   # …at the large grid size
//! lift-harness all                # every experiment above
//! lift-harness --json fig7        # machine-readable output for CI
//! lift-harness --threads 8 all    # parallel sweep (same results, sooner)
//! lift-harness --list-benchmarks  # exact names, ranks and domain sizes
//! lift-harness perf [--json]      # simulator perf report → BENCH_sim.json
//! lift-harness verify [--json]    # static verifier over every kernel
//!                                 # (non-zero exit on any finding)
//! lift-harness model [--json]     # cost-model accuracy + tuning savings
//!                                 # (non-zero exit below the gates)
//! lift-harness compare a.json b.json  # diff two reports; non-zero exit
//!                                     # on any regression
//!
//! # Distributed & resumable tuning:
//! lift-harness --checkpoint ck.json fig7         # resumable (kill + rerun)
//! lift-harness --json --shard 0/3 fig7 > p0.json # one worker's share
//! lift-harness merge p0.json p1.json p2.json     # == single-process --json
//! lift-harness --json --spawn-workers 3 fig7     # shard + merge in one go
//! lift-harness campaign fig7 --workers 3         # supervised: retry, timeout,
//!                                                # checkpoint adoption
//! ```
//!
//! `--threads N` (equivalently `LIFT_TUNE_THREADS=N`) fans the benchmark ×
//! device sweep and the tuner's configuration batches out over `N` workers
//! *within* this process. `--shard i/n` distributes the same grid *across*
//! processes: each worker prints a partial JSON report and `merge`
//! recombines a complete set byte-identically to the single-process
//! document. `--checkpoint PATH` (equivalently `LIFT_CHECKPOINT=PATH`)
//! makes tuning resumable: a killed run rerun with the same flag picks up
//! from the file and prints exactly what the uninterrupted run would
//! have. None of the three ever changes results — only wall-clock.
//!
//! `campaign` is the fault-tolerant big sibling of `--spawn-workers`: a
//! supervision loop drives the shard queue through worker slots with
//! liveness timeouts, bounded retries with backoff, and checkpoint
//! adoption — a replacement worker resumes its dead predecessor's
//! `<path>.shard<i>of<n>` file, so even a faulted campaign's merged
//! report is byte-identical to the fault-free single-process run.
//!
//! Exit codes: 0 on success, 1 when an experiment fails (e.g. no valid
//! configuration for a benchmark — a broken compiler must fail CI) or a
//! `compare` finds a regression, 2 for usage errors, 3 when
//! infrastructure fails (a shard worker dies or a campaign shard exhausts
//! its retries — the experiment itself may be fine, rerun or adopt).

#![forbid(unsafe_code)]

use lift_harness::report::{
    json_ablation, json_bench, json_fig7, json_fig8, json_str, json_table1, json_verify,
    merge_parts, partial_ablation, partial_bench, partial_fig7, partial_fig8, render_ablation,
    render_bench, render_fig7, render_fig8, render_table1, render_verify,
};
use lift_harness::{
    ablation_shard, ablation_with, bench_one, bench_shard, fig7_shard, fig7_with, fig8_shard,
    fig8_with, parallel_map, table1, threads, validate_shard, verify_sweep, LiftError, Shard,
    ABLATION_BENCHES,
};

const USAGE: &str = "\
lift-harness — regenerate the paper's tables and figures

USAGE:
    lift-harness [FLAGS] [table1|fig7|fig8|ablation|bench <name>|all]
    lift-harness merge <part.json>...
    lift-harness campaign <fig7|fig8|ablation|bench <name>> [OPTIONS]
                                    (supervised sharded sweep: a work queue
                                     of shards driven through worker slots
                                     with liveness timeouts, bounded
                                     retries + backoff, and checkpoint
                                     adoption — dead workers' successors
                                     resume their checkpoints, keeping the
                                     merged report byte-identical to a
                                     fault-free single-process run)
    lift-harness perf [--json]      (writes BENCH_sim.json: fig7 sweep wall
                                     time under both simulator engines +
                                     per-kernel launch microbenchmarks)
    lift-harness verify [--json]    (static bounds/race/divergence/init
                                     verification of every benchmark x
                                     device x variant kernel; exits 1 on
                                     any finding — the CI safety gate)
    lift-harness model [--json]     (static cost model vs the simulator:
                                     per-cell Spearman rank correlation
                                     over benchmark x device x variant x
                                     config, plus evaluations-to-best with
                                     and without model guidance; exits 1
                                     when a cell's correlation falls below
                                     0.8 or the guided and unguided tuners
                                     disagree on a winner)
    lift-harness compare <a.json> <b.json>
                                    (diff two --json reports or two
                                     BENCH_sim.json files: config deltas,
                                     prune-count drift, throughput or
                                     speedup regressions; exits 1 on any
                                     regression)
    lift-harness --list-benchmarks [--json]

FLAGS:
    --json                machine-readable JSON instead of text
    --large               use the large grid size (bench <name> only)
    --threads <N>         worker threads within this process
                          (= LIFT_TUNE_THREADS)
    --checkpoint <PATH>   resumable tuning: write search state to PATH and
                          resume from it on rerun (= LIFT_CHECKPOINT)
    --shard <i/n>         run only grid cells with index % n == i and print
                          a partial JSON report (fig7/fig8/ablation/bench;
                          implies --json)
    --spawn-workers <N>   fork N shard worker processes and merge their
                          partial reports (requires --json)
    --list-benchmarks     list benchmark names, ranks and domain sizes
    -h, --help            this help

CAMPAIGN OPTIONS (campaign <experiment> only):
    --workers <N>         concurrent worker slots (default 2)
    --shards <M>          work-queue shards (default: --workers)
    --timeout <SECS>      kill a worker after SECS without checkpoint
                          progress and requeue its shard (default 600)
    --retries <K>         re-runs allowed per shard beyond the first
                          attempt (default 2); an exhausted shard leaves
                          a partial report + missing-cell manifest and
                          exit code 3
    --summary <PATH>      write the machine-readable campaign summary
                          (per-shard attempts/retries/adoptions/timeouts/
                          quarantines/wall time) to PATH
    --fault <i:PLAN>      inject LIFT_FAULT=PLAN into shard i's first
                          attempt (repeatable; plans: exit-after:<k>,
                          stall[-after:<k>], truncate-checkpoint:<k>) —
                          deterministic chaos testing of the supervisor

EXIT CODES:
    0   success
    1   experiment failure (no valid configuration, verifier finding,
        model gate) or a `compare` regression
    2   command-line misuse
    3   infrastructure failure: a shard worker died, or a campaign shard
        exhausted its retries (partial report + missing-cell manifest
        were still emitted)

Sharding, checkpointing, threading and campaign supervision never change
results: any combination — including workers killed and resumed through
checkpoint adoption — reproduces the single-process, single-thread output
byte-for-byte for the same seed.

ENVIRONMENT:
    LIFT_TUNE_BUDGET      tuner evaluations per variant (default 10)
    LIFT_TUNE_THREADS     worker threads (default 1)
    LIFT_CHECKPOINT       checkpoint file (default: none)
    LIFT_CHECKPOINT_EVERY tells between checkpoint writes (default 16)
    LIFT_FULL_SIZES=1     the paper's original grid sizes (slow)
    LIFT_SEED             experiment seed (default 2018)
    LIFT_COST_PRUNE       cost-model tuning guidance: `off`/`0` disables
                          warm-start + pruning, a positive float sets the
                          domination threshold k (default 1.0). Never
                          changes tuning results, only how many simulator
                          evaluations reach them.
    LIFT_FAULT            deterministic fault injection (testing only):
                          exit-after:<k> | stall[-after:<k>] |
                          truncate-checkpoint:<k>. Injected processes
                          exit with code 86.
";

/// Exit code for infrastructure failures (dead shard workers, campaign
/// shards out of retries) — distinct from experiment failures (1) and
/// CLI misuse (2) so CI can retry infra without masking regressions.
const EXIT_INFRA: i32 = 3;

/// Renders one experiment to its output document, sweeping on up to
/// `thread_budget` workers.
fn section(cmd: &str, json: bool, thread_budget: usize) -> Result<String, LiftError> {
    Ok(match (cmd, json) {
        ("table1", true) => json_table1(&table1()),
        ("table1", false) => render_table1(&table1()),
        ("fig7", true) => json_fig7(&fig7_with(thread_budget)?),
        ("fig7", false) => render_fig7(&fig7_with(thread_budget)?),
        ("fig8", true) => json_fig8(&fig8_with(thread_budget)?),
        ("fig8", false) => render_fig8(&fig8_with(thread_budget)?),
        ("ablation", true) => json_ablation(&ablation_with(&ABLATION_BENCHES, thread_budget)?),
        ("ablation", false) => render_ablation(&ablation_with(&ABLATION_BENCHES, thread_budget)?),
        _ => unreachable!("callers dispatch only known experiments"),
    })
}

/// Renders the four `all` sections, generating them concurrently when a
/// thread budget allows — each section is an independent sweep, so this
/// overlaps e.g. Figure 7's tuning with the ablation study's. The budget
/// is *divided* across the concurrent sections (each sweep splits its
/// share further), not handed to every layer in full.
fn all_sections(json: bool) -> Result<Vec<String>, LiftError> {
    let cmds = vec!["table1", "fig7", "fig8", "ablation"];
    let concurrent = threads().min(cmds.len()).max(1);
    let share = (threads() / concurrent).max(1);
    parallel_map(concurrent, cmds, |cmd| section(cmd, json, share))
        .into_iter()
        .collect()
}

fn run_bench(name: &str, large: bool, json: bool) -> Result<(), LiftError> {
    let rows = bench_one(name, large)?;
    print!(
        "{}",
        if json {
            json_bench(&rows)
        } else {
            render_bench(&rows)
        }
    );
    Ok(())
}

/// Runs one shard of a sweep and prints its partial JSON report.
fn run_shard(
    cmd: &str,
    bench_name: Option<&str>,
    large: bool,
    shard: Shard,
) -> Result<(), LiftError> {
    let doc = match cmd {
        "fig7" => partial_fig7(shard, &fig7_shard(shard, threads())?),
        "fig8" => partial_fig8(shard, &fig8_shard(shard, threads())?),
        "ablation" => {
            partial_ablation(shard, &ablation_shard(&ABLATION_BENCHES, shard, threads())?)
        }
        "bench" => {
            let name = bench_name.expect("checked by the caller");
            partial_bench(name, large, shard, &bench_shard(name, large, shard)?)
        }
        _ => unreachable!("callers dispatch only shardable experiments"),
    };
    print!("{doc}");
    Ok(())
}

/// Forks `n` shard workers (this binary with `--shard i/n`), collects
/// their partial reports and prints the merged document. The workers
/// inherit this process's environment; when checkpointing is on each one
/// derives its own `<path>.shard<i>of<n>` file from the inherited
/// `LIFT_CHECKPOINT` (shard mode always does, see `main`) — checkpoint
/// files must never be shared across processes.
fn spawn_workers(n: usize, cmd: &str, bench_name: Option<&str>, large: bool) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut children = Vec::new();
    for i in 0..n {
        let mut c = std::process::Command::new(&exe);
        c.arg("--json").arg("--shard").arg(format!("{i}/{n}"));
        c.arg(cmd);
        if let Some(name) = bench_name {
            c.arg(name);
        }
        if large {
            c.arg("--large");
        }
        c.stdout(std::process::Stdio::piped());
        c.stderr(std::process::Stdio::piped());
        match c.spawn() {
            Ok(child) => children.push((i, child)),
            Err(e) => {
                // Kill and reap the workers already launched: a failed
                // spawn must not leave orphans 0..i tuning into the void.
                for (_, mut orphan) in children {
                    let _ = orphan.kill();
                    let _ = orphan.wait();
                }
                return Err(format!("cannot spawn shard {i}/{n}: {e}"));
            }
        }
    }
    let mut parts = Vec::new();
    let mut failed = false;
    for (i, child) in children {
        let out = child
            .wait_with_output()
            .map_err(|e| format!("shard {i}/{n} did not finish: {e}"))?;
        // Relay the worker's stderr under an attributable prefix rather
        // than letting n workers interleave raw on the shared stream.
        for line in String::from_utf8_lossy(&out.stderr).lines() {
            eprintln!("lift-harness: shard {i}/{n}: {line}");
        }
        if !out.status.success() {
            eprintln!("lift-harness: shard worker {i}/{n} failed ({})", out.status);
            failed = true;
            continue;
        }
        let text = String::from_utf8(out.stdout)
            .map_err(|e| format!("shard {i}/{n} wrote non-UTF-8 output: {e}"))?;
        parts.push((format!("shard {i}/{n}"), text));
    }
    if failed {
        return Err("one or more shard workers failed".into());
    }
    print!("{}", merge_parts(&parts)?);
    Ok(())
}

/// Parses `campaign` arguments, runs the supervised sweep, and exits:
/// 0 when every shard completed (stdout carries the merged document,
/// byte-identical to the single-process `--json` run), [`EXIT_INFRA`]
/// when a shard exhausted its retries (stdout still carries the partial
/// document; stderr and the summary carry the missing-cell manifest),
/// 2 on misuse.
#[allow(clippy::too_many_arguments)]
fn run_campaign_cmd(
    args: &[String],
    large: bool,
    workers: Option<&str>,
    shards: Option<&str>,
    timeout: Option<&str>,
    retries: Option<&str>,
    summary: Option<&str>,
    faults: &[String],
    conflicting_mode: bool,
) -> ! {
    if conflicting_mode {
        usage_error("campaign supervises its own workers; drop --shard/--spawn-workers");
    }
    let Some(experiment) = args.first() else {
        usage_error("campaign needs an experiment: campaign <fig7|fig8|ablation|bench <name>>");
    };
    if !matches!(experiment.as_str(), "fig7" | "fig8" | "ablation" | "bench") {
        usage_error(&format!(
            "campaign cannot run `{experiment}`; use fig7|fig8|ablation|bench <name>"
        ));
    }
    let mut opts = lift_harness::CampaignOptions::new(experiment);
    opts.large = large;
    if experiment == "bench" {
        let Some(name) = args.get(1) else {
            usage_error("campaign bench needs a benchmark name");
        };
        opts.bench = Some(name.clone());
        if args.len() > 2 {
            usage_error(&format!("unexpected argument `{}`", args[2]));
        }
    } else {
        if args.len() > 1 {
            usage_error(&format!("unexpected argument `{}`", args[1]));
        }
        if large {
            usage_error("--large only applies to `campaign bench <name>`");
        }
    }
    let positive = |flag: &str, v: &str| -> usize {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!("{flag} needs a positive integer, got `{v}`")),
        }
    };
    if let Some(v) = workers {
        opts.workers = positive("--workers", v);
    }
    opts.shards = match shards {
        Some(v) => positive("--shards", v),
        None => opts.workers,
    };
    if let Some(v) = timeout {
        opts.timeout = std::time::Duration::from_secs(positive("--timeout", v) as u64);
    }
    if let Some(v) = retries {
        opts.retries = v.parse::<usize>().unwrap_or_else(|_| {
            usage_error(&format!(
                "--retries needs a non-negative integer, got `{v}`"
            ))
        });
    }
    for f in faults {
        let parsed = f.split_once(':').and_then(|(i, plan)| {
            i.parse::<usize>()
                .ok()
                .filter(|i| *i < opts.shards)
                .map(|i| (i, plan.to_string()))
        });
        let Some(pair) = parsed else {
            usage_error(&format!(
                "--fault needs <shard>:<plan> with shard < {}, got `{f}`",
                opts.shards
            ));
        };
        opts.faults.push(pair);
    }
    if let Ok(base) = std::env::var("LIFT_CHECKPOINT") {
        if !base.is_empty() {
            opts.checkpoint = Some(std::path::PathBuf::from(base));
        }
    }
    let report = match lift_harness::run_campaign(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lift-harness: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = summary {
        if let Err(e) = std::fs::write(path, &report.summary) {
            eprintln!("lift-harness: cannot write summary {path}: {e}");
            std::process::exit(1);
        }
    }
    eprint!("{}", report.render_summary());
    print!("{}", report.document);
    if !report.complete {
        eprintln!(
            "lift-harness: campaign incomplete: cells {:?} missing after retries; exit {EXIT_INFRA}",
            report.missing_cells
        );
        std::process::exit(EXIT_INFRA);
    }
    std::process::exit(0);
}

/// Reads and merges partial reports from files.
fn run_merge(files: &[String]) -> Result<(), String> {
    let mut parts = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        parts.push((f.clone(), text));
    }
    print!("{}", merge_parts(&parts)?);
    Ok(())
}

/// Prints the benchmark inventory: exact names (as `bench <name>` and the
/// shard documentation reference them), rank and domain sizes.
fn list_benchmarks(json: bool) {
    let fmt_size = |s: &[usize]| {
        s.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x")
    };
    let suite = lift_stencils::suite();
    if json {
        let rows: Vec<String> = suite
            .iter()
            .map(|b| {
                format!(
                    "{{\"name\": {}, \"rank\": {}, \"small\": {}, \"large\": {}}}",
                    json_str(b.name),
                    b.dims,
                    json_str(&fmt_size(b.small)),
                    b.large
                        .map(|l| json_str(&fmt_size(l)))
                        .unwrap_or_else(|| "null".to_string())
                )
            })
            .collect();
        println!("[\n  {}\n]", rows.join(",\n  "));
    } else {
        println!("Table-1 benchmarks (names as `bench <name>` expects them):");
        println!(
            "  {:<14}{:>5}  {:<14}{:<14}",
            "Name", "Rank", "Small", "Large"
        );
        for b in &suite {
            println!(
                "  {:<14}{:>4}D  {:<14}{:<14}",
                b.name,
                b.dims,
                fmt_size(b.small),
                b.large.map(fmt_size).unwrap_or_else(|| "—".to_string())
            );
        }
        println!(
            "\n{} benchmarks; sizes honour LIFT_FULL_SIZES=1.",
            suite.len()
        );
    }
}

fn run(cmd: &str, json: bool) -> Result<(), LiftError> {
    match cmd {
        "table1" | "fig7" | "fig8" | "ablation" => print!("{}", section(cmd, json, threads())?),
        "all" if json => {
            // One parseable document, not four concatenated arrays.
            let s = all_sections(true)?;
            print!(
                "{{\n\"table1\": {},\n\"fig7\": {},\n\"fig8\": {},\n\"ablation\": {}\n}}\n",
                s[0].trim_end(),
                s[1].trim_end(),
                s[2].trim_end(),
                s[3].trim_end()
            );
        }
        "all" => {
            for (i, s) in all_sections(false)?.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print!("{s}");
            }
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use table1|fig7|fig8|ablation|bench <name>|all|\
                 merge|perf|verify|model|compare (or --help)"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let mut json = false;
    let mut large = false;
    let mut list = false;
    let mut threads_flag: Option<String> = None;
    let mut checkpoint_flag: Option<String> = None;
    let mut shard_flag: Option<String> = None;
    let mut workers_flag: Option<String> = None;
    let mut campaign_workers_flag: Option<String> = None;
    let mut shards_flag: Option<String> = None;
    let mut timeout_flag: Option<String> = None;
    let mut retries_flag: Option<String> = None;
    let mut summary_flag: Option<String> = None;
    let mut fault_flags: Vec<String> = Vec::new();
    let mut expect_value: Option<&'static str> = None;
    let mut positional: Vec<String> = Vec::new();
    const VALUE_FLAGS: [&str; 10] = [
        "--threads",
        "--checkpoint",
        "--shard",
        "--spawn-workers",
        "--workers",
        "--shards",
        "--timeout",
        "--retries",
        "--summary",
        "--fault",
    ];
    for arg in std::env::args().skip(1) {
        if let Some(flag) = expect_value.take() {
            match flag {
                "--threads" => threads_flag = Some(arg),
                "--checkpoint" => checkpoint_flag = Some(arg),
                "--shard" => shard_flag = Some(arg),
                "--spawn-workers" => workers_flag = Some(arg),
                "--workers" => campaign_workers_flag = Some(arg),
                "--shards" => shards_flag = Some(arg),
                "--timeout" => timeout_flag = Some(arg),
                "--retries" => retries_flag = Some(arg),
                "--summary" => summary_flag = Some(arg),
                "--fault" => fault_flags.push(arg),
                _ => unreachable!(),
            }
            continue;
        }
        match arg.as_str() {
            "--json" => json = true,
            "--large" => large = true,
            "--list-benchmarks" => list = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            f if VALUE_FLAGS.contains(&f) => {
                expect_value = Some(
                    VALUE_FLAGS
                        .iter()
                        .find(|v| **v == f)
                        .expect("contains checked"),
                );
            }
            other => positional.push(other.to_string()),
        }
    }
    if let Some(flag) = expect_value {
        usage_error(&format!("{flag} needs a value"));
    }
    if list {
        if !positional.is_empty() {
            usage_error("--list-benchmarks takes no experiment");
        }
        list_benchmarks(json);
        return;
    }
    if let Some(t) = threads_flag {
        let Ok(n) = t.parse::<usize>() else {
            usage_error(&format!("--threads needs a positive integer, got `{t}`"));
        };
        if n == 0 {
            usage_error("--threads needs a positive integer, got `0`");
        }
        // The flag is sugar for the environment knob every layer reads
        // (sweep fan-out, tuner batches); set before any worker spawns.
        std::env::set_var("LIFT_TUNE_THREADS", n.to_string());
    }
    if let Some(path) = checkpoint_flag {
        if path.is_empty() {
            usage_error("--checkpoint needs a file path");
        }
        // Same pattern: the driver resolves LIFT_CHECKPOINT for every
        // tuning session the sweep starts.
        std::env::set_var("LIFT_CHECKPOINT", path);
    }
    let shard: Option<Shard> = shard_flag.map(|s| {
        let parts: Vec<&str> = s.split('/').collect();
        let parsed = match parts.as_slice() {
            [i, n] => i
                .parse::<usize>()
                .ok()
                .zip(n.parse::<usize>().ok())
                .and_then(|p| validate_shard(p).ok()),
            _ => None,
        };
        parsed.unwrap_or_else(|| {
            usage_error(&format!("--shard needs i/n with 0 <= i < n, got `{s}`"))
        })
    });
    if let Some((i, n)) = shard {
        // Checkpoint files must not be shared across processes: each
        // manager rewrites the whole file from its own in-memory state, so
        // concurrent shard workers pointed at one path would clobber each
        // other's entries. Shard mode therefore always derives its own
        // `<path>.shard<i>of<n>` — whether the base path came from
        // `--checkpoint`, the environment, or a `--spawn-workers` parent.
        if let Ok(base) = std::env::var("LIFT_CHECKPOINT") {
            if !base.is_empty() {
                std::env::set_var("LIFT_CHECKPOINT", format!("{base}.shard{i}of{n}"));
            }
        }
    }

    let cmd = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    if cmd == "campaign" {
        run_campaign_cmd(
            &positional[1..],
            large,
            campaign_workers_flag.as_deref(),
            shards_flag.as_deref(),
            timeout_flag.as_deref(),
            retries_flag.as_deref(),
            summary_flag.as_deref(),
            &fault_flags,
            shard.is_some() || workers_flag.is_some(),
        );
    }
    if campaign_workers_flag.is_some()
        || shards_flag.is_some()
        || timeout_flag.is_some()
        || retries_flag.is_some()
        || summary_flag.is_some()
        || !fault_flags.is_empty()
    {
        usage_error(
            "--workers/--shards/--timeout/--retries/--summary/--fault apply to `campaign` only",
        );
    }

    if cmd == "merge" {
        let files = &positional[1..];
        if files.is_empty() {
            usage_error("merge needs at least one partial-report file");
        }
        if let Err(e) = run_merge(files) {
            eprintln!("lift-harness: {e}");
            std::process::exit(1);
        }
        return;
    }

    if cmd == "verify" {
        if positional.len() > 1 {
            usage_error("verify takes no further arguments");
        }
        match verify_sweep() {
            Ok(rows) => {
                let findings: usize = rows
                    .iter()
                    .filter(|r| !r.pruned)
                    .map(|r| r.findings.len())
                    .sum();
                print!(
                    "{}",
                    if json {
                        json_verify(&rows)
                    } else {
                        render_verify(&rows)
                    }
                );
                if findings > 0 {
                    eprintln!("lift-harness: static verification found {findings} problem(s)");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("lift-harness: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cmd == "compare" {
        let files = &positional[1..];
        let [a, b] = files else {
            usage_error("compare needs exactly two report files: compare <a.json> <b.json>");
        };
        let read = |f: &String| {
            std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("lift-harness: {f}: {e}");
                std::process::exit(1);
            })
        };
        match lift_harness::compare_docs(a, &read(a), b, &read(b)) {
            Ok(c) => {
                print!("{}", c.render());
                if c.regressed() {
                    eprintln!("lift-harness: {} regression(s) vs {a}", c.regressions.len());
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("lift-harness: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cmd == "model" {
        if positional.len() > 1 {
            usage_error("model takes no further arguments");
        }
        match lift_harness::model_report() {
            Ok(report) => {
                print!(
                    "{}",
                    if json {
                        report.to_json()
                    } else {
                        report.render()
                    }
                );
                let failures = report.gate_failures();
                if !failures.is_empty() {
                    for f in &failures {
                        eprintln!("lift-harness: model gate: {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("lift-harness: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cmd == "perf" {
        if positional.len() > 1 {
            usage_error("perf takes no further arguments");
        }
        match lift_harness::perf::perf_report() {
            Ok(report) => {
                let doc = report.to_json();
                if let Err(e) = std::fs::write("BENCH_sim.json", &doc) {
                    eprintln!("lift-harness: cannot write BENCH_sim.json: {e}");
                    std::process::exit(1);
                }
                // --json prints the document that was written; the default
                // is a human-readable summary.
                print!("{}", if json { doc } else { report.render() });
            }
            Err(e) => {
                eprintln!("lift-harness: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if positional.len() > 2 || (positional.len() == 2 && cmd != "bench") {
        usage_error(&format!(
            "unexpected argument `{}`",
            positional.last().expect("len checked")
        ));
    }
    let bench_name = positional.get(1).cloned();
    if cmd == "bench" && bench_name.is_none() {
        usage_error("`bench` needs a benchmark name; try `lift-harness --list-benchmarks`");
    }
    if large && cmd != "bench" {
        usage_error("--large only applies to `bench <name>`");
    }

    let shardable = matches!(cmd.as_str(), "fig7" | "fig8" | "ablation" | "bench");
    if let Some(n) = workers_flag {
        let Ok(n) = n.parse::<usize>() else {
            usage_error("--spawn-workers needs a positive integer");
        };
        if n == 0 {
            usage_error("--spawn-workers needs a positive integer, got `0`");
        }
        if shard.is_some() {
            usage_error("--spawn-workers and --shard are mutually exclusive");
        }
        if !shardable {
            usage_error("--spawn-workers applies to fig7|fig8|ablation|bench <name>");
        }
        if !json {
            usage_error("--spawn-workers is JSON-only; add --json");
        }
        if let Err(e) = spawn_workers(n, &cmd, bench_name.as_deref(), large) {
            eprintln!("lift-harness: {e}");
            // Dead or unmergeable workers are an infrastructure failure,
            // not an experiment failure: the sweep itself may be fine.
            std::process::exit(EXIT_INFRA);
        }
        return;
    }

    let result = if let Some(shard) = shard {
        if !shardable {
            usage_error("--shard applies to fig7|fig8|ablation|bench <name>");
        }
        if !json {
            usage_error("--shard writes a partial JSON report; add --json");
        }
        run_shard(&cmd, bench_name.as_deref(), large, shard)
    } else if cmd == "bench" {
        run_bench(bench_name.as_deref().expect("checked above"), large, json)
    } else {
        run(&cmd, json)
    };
    if let Err(e) = result {
        eprintln!("lift-harness: {e}");
        // Surface the full cause chain: the unified error type links back
        // to the originating crate's diagnostic.
        let mut src = std::error::Error::source(&e);
        while let Some(cause) = src {
            eprintln!("  caused by: {cause}");
            src = cause.source();
        }
        std::process::exit(1);
    }
}
