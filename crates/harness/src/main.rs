//! Command-line driver for the paper's experiments.
//!
//! ```text
//! lift-harness table1             # Table 1 (benchmark inventory)
//! lift-harness fig7               # Figure 7 (Lift vs hand-written kernels)
//! lift-harness fig8               # Figure 8 (Lift vs PPCG)
//! lift-harness ablation           # per-variant rewrite-rule ablation
//! lift-harness bench <name>       # one Table-1 benchmark in isolation
//! lift-harness bench <name> --large   # …at the large grid size
//! lift-harness all                # every experiment above
//! lift-harness --json fig7        # machine-readable output for CI
//! ```
//!
//! Exit codes: 0 on success, 1 when an experiment fails (e.g. no valid
//! configuration for a benchmark — a broken compiler must fail CI), 2 for
//! usage errors.

use lift_harness::report::{
    json_ablation, json_bench, json_fig7, json_fig8, json_table1, render_ablation, render_bench,
    render_fig7, render_fig8, render_table1,
};
use lift_harness::{ablation, bench_one, fig7, fig8, table1, LiftError};

const ABLATION_BENCHES: [&str; 2] = ["Jacobi2D5pt", "Jacobi3D7pt"];

fn run_bench(name: &str, large: bool, json: bool) -> Result<(), LiftError> {
    let rows = bench_one(name, large)?;
    print!(
        "{}",
        if json {
            json_bench(&rows)
        } else {
            render_bench(&rows)
        }
    );
    Ok(())
}

fn run(cmd: &str, json: bool) -> Result<(), LiftError> {
    match cmd {
        "table1" => {
            let rows = table1();
            print!(
                "{}",
                if json {
                    json_table1(&rows)
                } else {
                    render_table1(&rows)
                }
            );
        }
        "fig7" => {
            let rows = fig7()?;
            print!(
                "{}",
                if json {
                    json_fig7(&rows)
                } else {
                    render_fig7(&rows)
                }
            );
        }
        "fig8" => {
            let rows = fig8()?;
            print!(
                "{}",
                if json {
                    json_fig8(&rows)
                } else {
                    render_fig8(&rows)
                }
            );
        }
        "ablation" => {
            let rows = ablation(&ABLATION_BENCHES)?;
            print!(
                "{}",
                if json {
                    json_ablation(&rows)
                } else {
                    render_ablation(&rows)
                }
            );
        }
        "all" if json => {
            // One parseable document, not four concatenated arrays.
            print!(
                "{{\n\"table1\": {},\n\"fig7\": {},\n\"fig8\": {},\n\"ablation\": {}\n}}\n",
                json_table1(&table1()).trim_end(),
                json_fig7(&fig7()?).trim_end(),
                json_fig8(&fig8()?).trim_end(),
                json_ablation(&ablation(&ABLATION_BENCHES)?).trim_end()
            );
        }
        "all" => {
            for (i, sub) in ["table1", "fig7", "fig8", "ablation"].iter().enumerate() {
                if i > 0 {
                    println!();
                }
                run(sub, json)?;
            }
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use table1|fig7|fig8|ablation|bench <name>|all"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() {
    let mut json = false;
    let mut large = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--large" => large = true,
            other => positional.push(other.to_string()),
        }
    }
    let cmd = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if positional.len() > 2 || (positional.len() == 2 && cmd != "bench") {
        eprintln!("unexpected argument `{}`", positional.last().unwrap());
        std::process::exit(2);
    }
    let result = if cmd == "bench" {
        let Some(name) = positional.get(1) else {
            eprintln!("`bench` needs a benchmark name; try `lift-harness table1` for the list");
            std::process::exit(2);
        };
        run_bench(name, large, json)
    } else {
        if large {
            eprintln!("--large only applies to `bench <name>`");
            std::process::exit(2);
        }
        run(&cmd, json)
    };
    if let Err(e) = result {
        eprintln!("lift-harness: {e}");
        // Surface the full cause chain: the unified error type links back
        // to the originating crate's diagnostic.
        let mut src = std::error::Error::source(&e);
        while let Some(cause) = src {
            eprintln!("  caused by: {cause}");
            src = cause.source();
        }
        std::process::exit(1);
    }
}
