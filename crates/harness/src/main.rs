//! Command-line driver for the paper's experiments.
//!
//! ```text
//! lift-harness table1     # Table 1 (benchmark inventory)
//! lift-harness fig7       # Figure 7 (Lift vs hand-written kernels)
//! lift-harness fig8       # Figure 8 (Lift vs PPCG)
//! lift-harness ablation   # per-variant rewrite-rule ablation
//! lift-harness all        # everything above
//! ```

use lift_harness::{ablation, fig7, fig8, table1};
use lift_harness::report::{render_ablation, render_fig7, render_fig8, render_table1};

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match cmd.as_str() {
        "table1" => print!("{}", render_table1(&table1())),
        "fig7" => print!("{}", render_fig7(&fig7())),
        "fig8" => print!("{}", render_fig8(&fig8())),
        "ablation" => print!(
            "{}",
            render_ablation(&ablation(&["Jacobi2D5pt", "Jacobi3D7pt"]))
        ),
        "all" => {
            print!("{}", render_table1(&table1()));
            println!();
            print!("{}", render_fig7(&fig7()));
            println!();
            print!("{}", render_fig8(&fig8()));
            println!();
            print!(
                "{}",
                render_ablation(&ablation(&["Jacobi2D5pt", "Jacobi3D7pt"]))
            );
        }
        other => {
            eprintln!("unknown experiment `{other}`; use table1|fig7|fig8|ablation|all");
            std::process::exit(2);
        }
    }
}
