//! Command-line driver for the paper's experiments.
//!
//! ```text
//! lift-harness table1             # Table 1 (benchmark inventory)
//! lift-harness fig7               # Figure 7 (Lift vs hand-written kernels)
//! lift-harness fig8               # Figure 8 (Lift vs PPCG)
//! lift-harness ablation           # per-variant rewrite-rule ablation
//! lift-harness bench <name>       # one Table-1 benchmark in isolation
//! lift-harness bench <name> --large   # …at the large grid size
//! lift-harness all                # every experiment above
//! lift-harness --json fig7        # machine-readable output for CI
//! lift-harness --threads 8 all    # parallel sweep (same results, sooner)
//! ```
//!
//! `--threads N` (equivalently `LIFT_TUNE_THREADS=N`) fans the benchmark ×
//! device sweep and the tuner's configuration batches out over `N` workers.
//! Results are bit-identical to `--threads 1` for the same seed — only
//! wall-clock changes.
//!
//! Exit codes: 0 on success, 1 when an experiment fails (e.g. no valid
//! configuration for a benchmark — a broken compiler must fail CI), 2 for
//! usage errors.

use lift_harness::report::{
    json_ablation, json_bench, json_fig7, json_fig8, json_table1, render_ablation, render_bench,
    render_fig7, render_fig8, render_table1,
};
use lift_harness::{
    ablation_with, bench_one, fig7_with, fig8_with, parallel_map, table1, threads, LiftError,
};

const ABLATION_BENCHES: [&str; 2] = ["Jacobi2D5pt", "Jacobi3D7pt"];

/// Renders one experiment to its output document, sweeping on up to
/// `thread_budget` workers.
fn section(cmd: &str, json: bool, thread_budget: usize) -> Result<String, LiftError> {
    Ok(match (cmd, json) {
        ("table1", true) => json_table1(&table1()),
        ("table1", false) => render_table1(&table1()),
        ("fig7", true) => json_fig7(&fig7_with(thread_budget)?),
        ("fig7", false) => render_fig7(&fig7_with(thread_budget)?),
        ("fig8", true) => json_fig8(&fig8_with(thread_budget)?),
        ("fig8", false) => render_fig8(&fig8_with(thread_budget)?),
        ("ablation", true) => json_ablation(&ablation_with(&ABLATION_BENCHES, thread_budget)?),
        ("ablation", false) => render_ablation(&ablation_with(&ABLATION_BENCHES, thread_budget)?),
        _ => unreachable!("callers dispatch only known experiments"),
    })
}

/// Renders the four `all` sections, generating them concurrently when a
/// thread budget allows — each section is an independent sweep, so this
/// overlaps e.g. Figure 7's tuning with the ablation study's. The budget
/// is *divided* across the concurrent sections (each sweep splits its
/// share further), not handed to every layer in full.
fn all_sections(json: bool) -> Result<Vec<String>, LiftError> {
    let cmds = vec!["table1", "fig7", "fig8", "ablation"];
    let concurrent = threads().min(cmds.len()).max(1);
    let share = (threads() / concurrent).max(1);
    parallel_map(concurrent, cmds, |cmd| section(cmd, json, share))
        .into_iter()
        .collect()
}

fn run_bench(name: &str, large: bool, json: bool) -> Result<(), LiftError> {
    let rows = bench_one(name, large)?;
    print!(
        "{}",
        if json {
            json_bench(&rows)
        } else {
            render_bench(&rows)
        }
    );
    Ok(())
}

fn run(cmd: &str, json: bool) -> Result<(), LiftError> {
    match cmd {
        "table1" | "fig7" | "fig8" | "ablation" => print!("{}", section(cmd, json, threads())?),
        "all" if json => {
            // One parseable document, not four concatenated arrays.
            let s = all_sections(true)?;
            print!(
                "{{\n\"table1\": {},\n\"fig7\": {},\n\"fig8\": {},\n\"ablation\": {}\n}}\n",
                s[0].trim_end(),
                s[1].trim_end(),
                s[2].trim_end(),
                s[3].trim_end()
            );
        }
        "all" => {
            for (i, s) in all_sections(false)?.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print!("{s}");
            }
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use table1|fig7|fig8|ablation|bench <name>|all"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() {
    let mut json = false;
    let mut large = false;
    let mut threads_flag: Option<String> = None;
    let mut expect_threads = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if expect_threads {
            threads_flag = Some(arg);
            expect_threads = false;
            continue;
        }
        match arg.as_str() {
            "--json" => json = true,
            "--large" => large = true,
            "--threads" => expect_threads = true,
            other => positional.push(other.to_string()),
        }
    }
    if expect_threads {
        eprintln!("--threads needs a worker count");
        std::process::exit(2);
    }
    if let Some(t) = threads_flag {
        let Ok(n) = t.parse::<usize>() else {
            eprintln!("--threads needs a positive integer, got `{t}`");
            std::process::exit(2);
        };
        if n == 0 {
            eprintln!("--threads needs a positive integer, got `0`");
            std::process::exit(2);
        }
        // The flag is sugar for the environment knob every layer reads
        // (sweep fan-out, tuner batches); set before any worker spawns.
        std::env::set_var("LIFT_TUNE_THREADS", n.to_string());
    }
    let cmd = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if positional.len() > 2 || (positional.len() == 2 && cmd != "bench") {
        eprintln!("unexpected argument `{}`", positional.last().unwrap());
        std::process::exit(2);
    }
    let result = if cmd == "bench" {
        let Some(name) = positional.get(1) else {
            eprintln!("`bench` needs a benchmark name; try `lift-harness table1` for the list");
            std::process::exit(2);
        };
        run_bench(name, large, json)
    } else {
        if large {
            eprintln!("--large only applies to `bench <name>`");
            std::process::exit(2);
        }
        run(&cmd, json)
    };
    if let Err(e) = result {
        eprintln!("lift-harness: {e}");
        // Surface the full cause chain: the unified error type links back
        // to the originating crate's diagnostic.
        let mut src = std::error::Error::source(&e);
        while let Some(cause) = src {
            eprintln!("  caused by: {cause}");
            src = cause.source();
        }
        std::process::exit(1);
    }
}
