//! The campaign supervision contract, exercised through the real binary
//! with deterministic fault injection: workers crash, stall and corrupt
//! their checkpoints on command, and the supervisor must retry, adopt,
//! quarantine — and still produce a merged report byte-identical to the
//! fault-free single-process run. Exhausted retries must degrade
//! gracefully: partial document, missing-cell manifest, infra exit code.

use std::process::Command;

use lift_tuner::json::Value;

const BENCH: &str = "Jacobi2D5pt";
/// Injected-fault processes die with this code (see the driver's seam).
const FAULT_EXIT: i32 = 86;
/// Infrastructure-failure exit code of `lift-harness`.
const EXIT_INFRA: i32 = 3;

fn bin() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_lift-harness"));
    // Small budget: the contract under test is supervision, not tuning.
    c.env("LIFT_TUNE_BUDGET", "2");
    // A campaign inheriting a checkpoint path would anchor its shards
    // there; tests must stay hermetic.
    c.env_remove("LIFT_CHECKPOINT");
    c.env_remove("LIFT_FAULT");
    c
}

fn stdout_of(c: &mut Command) -> String {
    let out = c.output().expect("binary runs");
    assert!(
        out.status.success(),
        "exit {:?}, stderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn tmp_summary(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lift-campsum-{tag}-{}.json", std::process::id()))
}

fn summary_u64(summary: &Value, field: &str) -> u64 {
    summary
        .get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("summary field `{field}` missing or not an integer"))
}

#[test]
fn fault_free_campaign_matches_the_single_process_run() {
    let reference = stdout_of(bin().args(["--json", "bench", BENCH]));
    let campaign = stdout_of(bin().args(["campaign", "bench", BENCH, "--workers", "3"]));
    assert_eq!(campaign, reference, "campaign != single run");
}

#[test]
fn crashed_worker_is_retried_via_checkpoint_adoption_byte_identically() {
    let reference = stdout_of(bin().args(["--json", "bench", BENCH]));
    let summary_path = tmp_summary("crash");
    let summary_str = summary_path.display().to_string();
    // Shard 0's first attempt is killed by an injected fault after two
    // applied tells; its replacement must adopt the checkpoint and the
    // merged document must not change by a byte.
    let campaign = stdout_of(bin().args([
        "campaign",
        "bench",
        BENCH,
        "--workers",
        "2",
        "--fault",
        "0:exit-after:2",
        "--summary",
        &summary_str,
    ]));
    assert_eq!(campaign, reference, "faulted campaign != single run");
    let summary = Value::parse(&std::fs::read_to_string(&summary_path).expect("summary written"))
        .expect("summary parses");
    assert!(
        summary_u64(&summary, "total_retries") >= 1,
        "a retry happened"
    );
    assert!(
        summary_u64(&summary, "total_adoptions") >= 1,
        "the replacement adopted the dead worker's checkpoint"
    );
    assert_eq!(summary.get("complete").and_then(Value::as_bool), Some(true));
    // The faulted shard's tally carries its own history.
    let shards = summary
        .get("shards")
        .and_then(Value::as_arr)
        .expect("shards");
    assert!(summary_u64(&shards[0], "attempts") >= 2);
    assert_eq!(shards[0].get("ok").and_then(Value::as_bool), Some(true));
    std::fs::remove_file(&summary_path).ok();
}

#[test]
fn stalled_worker_is_killed_by_the_timeout_and_requeued() {
    let reference = stdout_of(bin().args(["--json", "bench", BENCH]));
    let summary_path = tmp_summary("stall");
    let summary_str = summary_path.display().to_string();
    // Shard 1 stalls immediately (before any checkpoint progress); the
    // liveness timeout must kill it and the requeued attempt completes.
    let campaign = stdout_of(bin().args([
        "campaign",
        "bench",
        BENCH,
        "--workers",
        "2",
        "--timeout",
        "2",
        "--fault",
        "1:stall-after:0",
        "--summary",
        &summary_str,
    ]));
    assert_eq!(campaign, reference, "stalled campaign != single run");
    let summary = Value::parse(&std::fs::read_to_string(&summary_path).expect("summary written"))
        .expect("summary parses");
    assert!(
        summary_u64(&summary, "total_timeouts") >= 1,
        "timeout fired"
    );
    assert!(
        summary_u64(&summary, "total_retries") >= 1,
        "shard requeued"
    );
    std::fs::remove_file(&summary_path).ok();
}

#[test]
fn corrupted_checkpoint_write_is_quarantined_and_converges() {
    let reference = stdout_of(bin().args(["--json", "bench", BENCH]));
    let summary_path = tmp_summary("quar");
    let summary_str = summary_path.display().to_string();
    // Shard 0's first attempt tears its second checkpoint write (a raw
    // truncation over the file, past the atomic rename) and dies; the
    // replacement must quarantine the damage, restart fresh, and still
    // converge byte-identically.
    let campaign = stdout_of(bin().args([
        "campaign",
        "bench",
        BENCH,
        "--workers",
        "2",
        "--fault",
        "0:truncate-checkpoint:2",
        "--summary",
        &summary_str,
    ]));
    assert_eq!(campaign, reference, "quarantined campaign != single run");
    let summary = Value::parse(&std::fs::read_to_string(&summary_path).expect("summary written"))
        .expect("summary parses");
    assert!(
        summary_u64(&summary, "total_quarantines") >= 1,
        "the torn checkpoint was quarantined"
    );
    std::fs::remove_file(&summary_path).ok();
}

#[test]
fn exhausted_retries_degrade_to_a_partial_report_with_manifest() {
    let summary_path = tmp_summary("exhaust");
    let summary_str = summary_path.display().to_string();
    // Shard 1 dies instantly on every allowed attempt (retries 0 means
    // one attempt total); shard 0 completes. The campaign must emit the
    // surviving cells, name the missing ones, and exit with the
    // infra-failure code.
    let out = bin()
        .args([
            "campaign",
            "bench",
            BENCH,
            "--workers",
            "2",
            "--retries",
            "0",
            "--fault",
            "1:exit-after:0",
            "--summary",
            &summary_str,
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(EXIT_INFRA),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = Value::parse(&std::fs::read_to_string(&summary_path).expect("summary written"))
        .expect("summary parses");
    assert_eq!(
        summary.get("complete").and_then(Value::as_bool),
        Some(false)
    );
    let missing = summary
        .get("missing_cells")
        .and_then(Value::as_arr)
        .expect("manifest present");
    assert!(!missing.is_empty(), "the lost cells are named");
    // The partial document still carries the surviving shard's rows (the
    // bench sweep has 3 cells; shard 1 of 2 owns cell 1).
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(
        doc.contains("\"bench\""),
        "partial document emitted:\n{doc}"
    );
    // stderr names the failure attributably.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("shard 1/2"), "attributable diagnosis:\n{err}");
    assert!(err.contains("missing"), "manifest announced:\n{err}");
    std::fs::remove_file(&summary_path).ok();
}

#[test]
fn injected_fault_kills_a_bare_worker_with_the_fault_code() {
    // The seam itself, without a supervisor: a worker under
    // LIFT_FAULT=exit-after dies with the distinct fault exit code, so
    // supervisors and CI can tell injected crashes from real ones.
    let out = bin()
        .args(["--json", "bench", BENCH])
        .env("LIFT_FAULT", "exit-after:1")
        .env(
            "LIFT_CHECKPOINT",
            std::env::temp_dir().join(format!("lift-bare-fault-{}.json", std::process::id())),
        )
        .env("LIFT_CHECKPOINT_EVERY", "1")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(FAULT_EXIT));
    // Junk plans are ignored with a warning, never armed half-parsed.
    let out = bin()
        .args(["--json", "bench", BENCH])
        .env("LIFT_FAULT", "segfault-please")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "junk LIFT_FAULT must not kill the run"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("ignoring invalid LIFT_FAULT"),
        "junk is reported"
    );
}

#[test]
fn campaign_cli_misuse_fails_loudly() {
    // (args, expected exit code)
    let cases: &[(&[&str], i32)] = &[
        (&["campaign"], 2),                               // no experiment
        (&["campaign", "table1"], 2),                     // not shardable
        (&["campaign", "bench"], 2),                      // no bench name
        (&["campaign", "fig7", "--workers", "0"], 2),     // zero workers
        (&["campaign", "fig7", "--workers", "x"], 2),     // junk workers
        (&["campaign", "fig7", "--timeout", "0"], 2),     // zero timeout
        (&["campaign", "fig7", "--retries", "-1"], 2),    // junk retries
        (&["campaign", "fig7", "--fault", "9:stall"], 2), // shard out of range
        (&["campaign", "fig7", "--fault", "stall"], 2),   // no shard prefix
        (&["campaign", "fig7", "--shard", "0/2"], 2),     // conflicting mode
        (&["campaign", "fig7", "--spawn-workers", "2"], 2),
        (&["campaign", "fig7", "--large"], 2), // --large without bench
        (&["--workers", "2", "fig7"], 2),      // campaign flag without campaign
        (&["--summary", "/tmp/x", "fig7"], 2),
    ];
    for (args, want) in cases {
        let out = bin().args(*args).output().expect("runs");
        assert_eq!(
            out.status.code(),
            Some(*want),
            "args {args:?}: stderr {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !String::from_utf8_lossy(&out.stderr).is_empty(),
            "args {args:?} must explain the failure"
        );
    }
    // --help documents the campaign surface and the exit-code contract.
    let help = stdout_of(bin().arg("--help"));
    for needle in [
        "campaign",
        "--workers",
        "--timeout",
        "--retries",
        "--summary",
        "--fault",
        "EXIT CODES",
        "exit-after",
        "truncate-checkpoint",
    ] {
        assert!(help.contains(needle), "--help misses {needle}");
    }
}
