//! Cross-engine byte-identity of harness reports, exercised through the
//! real binary: the Figure-7 JSON document produced with the bytecode-plan
//! simulator must be byte-for-byte the one produced by the pre-plan tree
//! interpreter (`LIFT_SIM_ENGINE=tree`). A shard keeps the tree-engine run
//! affordable under `cargo test`; CI diffs the full figure in release
//! mode.

use std::process::Command;

fn bin(engine: &str) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_lift-harness"));
    c.env("LIFT_TUNE_BUDGET", "2");
    c.env("LIFT_SIM_ENGINE", engine);
    c
}

fn stdout_of(c: &mut Command) -> String {
    let out = c.output().expect("binary runs");
    assert!(
        out.status.success(),
        "exit {:?}, stderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn fig7_json_is_byte_identical_across_simulator_engines() {
    let args = ["--json", "--shard", "0/6", "fig7"];
    let plan = stdout_of(bin("plan").args(args));
    let tree = stdout_of(bin("tree").args(args));
    assert!(
        plan.contains("bench") && plan.contains("lift_gelems"),
        "fig7 shard produced no rows:\n{plan}"
    );
    assert_eq!(plan, tree, "fig7 JSON diverges between simulator engines");
}
