//! The distributed-tuning contract, exercised through the real binary:
//! shard + merge and kill + resume both reproduce the single-process JSON
//! document byte-for-byte, and the new CLI surfaces fail loudly on
//! misuse.

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn bin() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_lift-harness"));
    // Keep the virtual-device work small: the contract under test is
    // byte-identity, not tuning quality.
    c.env("LIFT_TUNE_BUDGET", "2");
    c
}

fn stdout_of(c: &mut Command) -> String {
    let out = c.output().expect("binary runs");
    assert!(
        out.status.success(),
        "exit {:?}, stderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lift-dist-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

const BENCH: &str = "Jacobi2D5pt";

#[test]
fn shards_merge_byte_identically_to_the_single_process_run() {
    let reference = stdout_of(bin().args(["--json", "bench", BENCH]));
    let dir = tmp_dir("merge");
    let mut files = Vec::new();
    for i in 0..2 {
        let part = stdout_of(bin().args(["--json", "--shard", &format!("{i}/2"), "bench", BENCH]));
        let path = dir.join(format!("part{i}.json"));
        std::fs::write(&path, part).expect("write part");
        files.push(path.display().to_string());
    }
    let mut merge = bin();
    merge.arg("merge").args(&files);
    assert_eq!(
        stdout_of(&mut merge),
        reference,
        "merge(shards) != single run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spawn_workers_matches_the_single_process_run() {
    let reference = stdout_of(bin().args(["--json", "bench", BENCH]));
    let spawned = stdout_of(bin().args(["--json", "--spawn-workers", "3", "bench", BENCH]));
    assert_eq!(spawned, reference, "--spawn-workers 3 != single run");
}

#[test]
fn spawn_workers_failure_is_an_infra_exit_with_attributable_stderr() {
    // Every worker inherits the injected fault and dies; the parent must
    // report the infrastructure exit code (3, distinct from experiment
    // failures) and relay each worker's stderr under a `shard i/n:`
    // prefix so the diagnosis stays attributable.
    let out = bin()
        .args(["--json", "--spawn-workers", "2", "bench", BENCH])
        .env("LIFT_FAULT", "exit-after:0")
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("shard 0/2:"),
        "attributed worker stderr:\n{err}"
    );
    assert!(
        err.contains("shard 1/2:"),
        "attributed worker stderr:\n{err}"
    );
}

#[test]
fn killed_checkpointed_run_resumes_byte_identically() {
    let dir = tmp_dir("resume");
    let ck = dir.join("ck.json");
    let ck = ck.display().to_string();
    // A slightly larger budget so the kill lands mid-tuning (if the run
    // beats the kill, resume simply replays a complete checkpoint — the
    // assertion holds either way).
    let budget = "6";
    let reference = stdout_of(
        bin()
            .args(["--json", "bench", BENCH])
            .env("LIFT_TUNE_BUDGET", budget),
    );
    let mut victim = bin()
        .args(["--json", "--checkpoint", &ck, "bench", BENCH])
        .env("LIFT_TUNE_BUDGET", budget)
        .env("LIFT_CHECKPOINT_EVERY", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawns");
    std::thread::sleep(std::time::Duration::from_millis(700));
    victim.kill().ok();
    victim.wait().ok();
    let resumed = stdout_of(
        bin()
            .args(["--json", "--checkpoint", &ck, "bench", BENCH])
            .env("LIFT_TUNE_BUDGET", budget)
            .env("LIFT_CHECKPOINT_EVERY", "1"),
    );
    assert_eq!(resumed, reference, "resume-after-kill != uninterrupted run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_mode_derives_its_own_checkpoint_path() {
    // Checkpoint managers rewrite their whole file from process-local
    // state, so concurrent shard workers must never share one path: shard
    // mode derives `<path>.shard<i>of<n>` whether the base path came from
    // the flag, the environment, or a --spawn-workers parent.
    let dir = tmp_dir("shard-ck");
    let base = dir.join("ck.json");
    let base_str = base.display().to_string();
    stdout_of(
        bin()
            .args([
                "--json",
                "--shard",
                "0/2",
                "--checkpoint",
                &base_str,
                "bench",
                BENCH,
            ])
            .env("LIFT_CHECKPOINT_EVERY", "1"),
    );
    assert!(
        dir.join("ck.json.shard0of2").exists(),
        "the worker writes its derived file"
    );
    assert!(
        !base.exists(),
        "the shared base path is never written by a shard worker"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn list_benchmarks_names_the_whole_suite() {
    let text = stdout_of(bin().arg("--list-benchmarks"));
    let json = stdout_of(bin().args(["--list-benchmarks", "--json"]));
    for b in lift_stencils::suite() {
        assert!(text.contains(b.name), "text listing misses {}", b.name);
        assert!(
            json.contains(&format!("\"name\": \"{}\"", b.name)),
            "json listing misses {}",
            b.name
        );
    }
    assert!(text.contains("3D"), "ranks are listed");
}

#[test]
fn cli_misuse_fails_loudly() {
    // (args, expected exit code)
    let cases: &[(&[&str], i32)] = &[
        (&["--shard", "0/2", "bench", BENCH], 2),   // no --json
        (&["--shard", "3/2", "--json", "fig7"], 2), // i >= n
        (&["--shard", "zero/2", "--json", "fig7"], 2),
        (&["--shard", "0/2", "--json", "table1"], 2), // not shardable
        (&["--spawn-workers", "2", "table1", "--json"], 2),
        (
            &["--spawn-workers", "2", "--shard", "0/2", "--json", "fig7"],
            2,
        ),
        (&["merge"], 2), // no files
        (&["merge", "/no/such/file.json"], 1),
        (&["--checkpoint"], 2), // missing value
    ];
    for (args, want) in cases {
        let out = bin().args(*args).output().expect("runs");
        assert_eq!(
            out.status.code(),
            Some(*want),
            "args {args:?}: stderr {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !String::from_utf8_lossy(&out.stderr).is_empty(),
            "args {args:?} must explain the failure"
        );
    }
    // --help succeeds and documents the new surfaces.
    let help = stdout_of(bin().arg("--help"));
    for needle in [
        "--shard",
        "--checkpoint",
        "--spawn-workers",
        "merge",
        "--list-benchmarks",
    ] {
        assert!(help.contains(needle), "--help misses {needle}");
    }
}
