//! Structural type checking with symbolic array sizes.
//!
//! Every primitive's typing rule follows §3 of the paper; array sizes are
//! [`ArithExpr`]s compared structurally after canonicalisation, which is
//! exactly strong enough for the size algebra the stencil pipeline produces
//! (`pad`/`slide`/`split`/`join`/`transpose` compositions and the overlapped
//! tiling rewrite).

use std::error::Error;
use std::fmt;

use lift_arith::ArithExpr;

use crate::expr::{Expr, FunDecl};
use crate::pattern::Pattern;
use crate::types::Type;

/// A type checking failure with a human-readable description.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    msg: String,
}

impl TypeError {
    fn new(msg: impl Into<String>) -> Self {
        TypeError { msg: msg.into() }
    }

    /// The diagnostic message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.msg)
    }
}

impl Error for TypeError {}

macro_rules! bail {
    ($($arg:tt)*) => {
        return Err(TypeError::new(format!($($arg)*)))
    };
}

/// Infers the type of an expression.
///
/// # Errors
///
/// Returns a [`TypeError`] describing the first ill-typed application found.
pub fn typecheck(expr: &Expr) -> Result<Type, TypeError> {
    match expr {
        Expr::Param(p) => Ok(p.ty().clone()),
        Expr::Literal(s) => Ok(Type::Scalar(s.kind())),
        Expr::Apply(app) => {
            let arg_tys: Result<Vec<Type>, TypeError> = app.args.iter().map(typecheck).collect();
            apply_fun(&app.fun, &arg_tys?)
        }
    }
}

/// Infers the *result* type of a unary top-level function (the usual shape of
/// a whole stencil program `fun(A => …)`).
///
/// # Errors
///
/// Fails if the declaration is not a lambda or its body is ill-typed.
pub fn typecheck_fun(f: &FunDecl) -> Result<Type, TypeError> {
    match f {
        FunDecl::Lambda(l) => typecheck(&l.body),
        other => bail!("expected a top-level lambda, found `{other}`"),
    }
}

/// Computes the result type of applying `fun` to arguments of types `args`.
///
/// # Errors
///
/// Returns a [`TypeError`] if the application is ill-typed.
pub fn apply_fun(fun: &FunDecl, args: &[Type]) -> Result<Type, TypeError> {
    match fun {
        FunDecl::Lambda(l) => {
            if l.params.len() != args.len() {
                bail!(
                    "lambda of {} parameters applied to {} arguments",
                    l.params.len(),
                    args.len()
                );
            }
            for (p, a) in l.params.iter().zip(args) {
                if p.ty() != a {
                    bail!(
                        "lambda parameter `{}` has type {} but argument has type {a}",
                        p.name(),
                        p.ty()
                    );
                }
            }
            typecheck(&l.body)
        }
        FunDecl::UserFun(u) => {
            if u.arity() != args.len() {
                bail!(
                    "user function `{}` of arity {} applied to {} arguments",
                    u.name(),
                    u.arity(),
                    args.len()
                );
            }
            for ((name, pty), a) in u.params().iter().zip(args) {
                if pty != a {
                    bail!(
                        "user function `{}` parameter `{name}` expects {pty}, got {a}",
                        u.name()
                    );
                }
            }
            Ok(u.ret().clone())
        }
        FunDecl::Pattern(p) => apply_pattern(p, args),
    }
}

fn one_array<'a>(p: &Pattern, args: &'a [Type]) -> Result<(&'a Type, &'a ArithExpr), TypeError> {
    if args.len() != 1 {
        bail!("`{}` expects 1 argument, got {}", p.name(), args.len());
    }
    args[0]
        .as_array()
        .ok_or_else(|| TypeError::new(format!("`{}` expects an array, got {}", p.name(), args[0])))
}

fn apply_pattern(p: &Pattern, args: &[Type]) -> Result<Type, TypeError> {
    match p {
        Pattern::Map { f, .. } => {
            let (elem, n) = one_array(p, args)?;
            let out = apply_fun(f, std::slice::from_ref(elem))?;
            Ok(Type::array(out, n.clone()))
        }
        Pattern::Reduce { f, .. } => {
            if args.len() != 2 {
                bail!(
                    "`reduce` expects (init, array), got {} arguments",
                    args.len()
                );
            }
            let init = &args[0];
            let (elem, _) = args[1].as_array().ok_or_else(|| {
                TypeError::new(format!("`reduce` expects an array input, got {}", args[1]))
            })?;
            let out = apply_fun(f, &[init.clone(), elem.clone()])?;
            if &out != init {
                bail!("`reduce` operator must return the accumulator type {init}, returned {out}");
            }
            Ok(init.clone())
        }
        Pattern::Zip { arity } => {
            if args.len() != *arity || *arity < 2 {
                bail!("`zip` of arity {arity} applied to {} arguments", args.len());
            }
            let mut elems = Vec::with_capacity(*arity);
            let (_, n0) = args[0]
                .as_array()
                .ok_or_else(|| TypeError::new(format!("`zip` expects arrays, got {}", args[0])))?;
            for a in args {
                let (e, n) = a
                    .as_array()
                    .ok_or_else(|| TypeError::new(format!("`zip` expects arrays, got {a}")))?;
                if n != n0 {
                    bail!("`zip` requires equal lengths, got {n0} and {n}");
                }
                elems.push(e.clone());
            }
            Ok(Type::array(Type::Tuple(elems), n0.clone()))
        }
        Pattern::Split { chunk } => {
            let (elem, n) = one_array(p, args)?;
            let outer = ArithExpr::div(n.clone(), chunk.clone());
            Ok(Type::array(Type::array(elem.clone(), chunk.clone()), outer))
        }
        Pattern::Join => {
            let (elem, n) = one_array(p, args)?;
            let (inner, m) = elem.as_array().ok_or_else(|| {
                TypeError::new(format!("`join` expects a nested array, got {}", args[0]))
            })?;
            Ok(Type::array(inner.clone(), m.clone() * n.clone()))
        }
        Pattern::Transpose => {
            let (elem, n) = one_array(p, args)?;
            let (inner, m) = elem.as_array().ok_or_else(|| {
                TypeError::new(format!(
                    "`transpose` expects a nested array, got {}",
                    args[0]
                ))
            })?;
            Ok(Type::array(
                Type::array(inner.clone(), n.clone()),
                m.clone(),
            ))
        }
        Pattern::Slide { size, step } => {
            let (elem, n) = one_array(p, args)?;
            // (n − size + step) / step neighbourhoods of length `size`.
            let count = ArithExpr::div(n.clone() - size.clone() + step.clone(), step.clone());
            Ok(Type::array(Type::array(elem.clone(), size.clone()), count))
        }
        Pattern::Pad { left, right, .. } => {
            let (elem, n) = one_array(p, args)?;
            Ok(Type::array(
                elem.clone(),
                left.clone() + n.clone() + right.clone(),
            ))
        }
        Pattern::PadValue { left, right, value } => {
            let (elem, n) = one_array(p, args)?;
            match elem.leaf_scalar() {
                Some(k) if k == value.kind() => {}
                _ => bail!("`padValue` constant {value} does not match element type {elem}"),
            }
            Ok(Type::array(
                elem.clone(),
                left.clone() + n.clone() + right.clone(),
            ))
        }
        Pattern::At { .. } => {
            let (elem, _) = one_array(p, args)?;
            Ok(elem.clone())
        }
        Pattern::Get { index } => {
            if args.len() != 1 {
                bail!("`get` expects 1 argument, got {}", args.len());
            }
            let comps = args[0]
                .as_tuple()
                .ok_or_else(|| TypeError::new(format!("`get` expects a tuple, got {}", args[0])))?;
            comps.get(*index).cloned().ok_or_else(|| {
                TypeError::new(format!(
                    "`get({index})` out of bounds for tuple of {} components",
                    comps.len()
                ))
            })
        }
        Pattern::ArrayGen { fun, sizes } => {
            if !args.is_empty() {
                bail!("`array` generator takes no array arguments");
            }
            if sizes.is_empty() {
                bail!("`array` generator needs at least one dimension");
            }
            if fun.arity() != 2 * sizes.len() {
                bail!(
                    "`array` generator `{}` must take {} i32 parameters ({} indices + {} sizes), has {}",
                    fun.name(),
                    2 * sizes.len(),
                    sizes.len(),
                    sizes.len(),
                    fun.arity()
                );
            }
            for (name, t) in fun.params() {
                if t != &Type::i32() {
                    bail!(
                        "`array` generator `{}` parameter `{name}` must be i32, is {t}",
                        fun.name()
                    );
                }
            }
            let mut ty = fun.ret().clone();
            for s in sizes.iter().rev() {
                ty = Type::array(ty, s.clone());
            }
            Ok(ty)
        }
        Pattern::Iterate { f, .. } => {
            let (_, _) = one_array(p, args)?;
            let out = apply_fun(f, args)?;
            if out != args[0] {
                bail!(
                    "`iterate` body must preserve its type, got {} → {out}",
                    args[0]
                );
            }
            Ok(out)
        }
        Pattern::ToLocal { f } | Pattern::ToGlobal { f } | Pattern::ToPrivate { f } => {
            apply_fun(f, args)
        }
        Pattern::Id => {
            if args.len() != 1 {
                bail!("`id` expects 1 argument, got {}", args.len());
            }
            Ok(args[0].clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::expr::Param;
    use crate::pattern::Boundary;
    use crate::userfun::add_f32;

    fn n() -> ArithExpr {
        ArithExpr::var("N")
    }

    fn arr_f32(sz: impl Into<ArithExpr>) -> Type {
        Type::array(Type::f32(), sz)
    }

    #[test]
    fn literal_and_param_types() {
        assert_eq!(typecheck(&Expr::f32(1.0)).unwrap(), Type::f32());
        let p = Param::fresh("A", arr_f32(n()));
        assert_eq!(typecheck(&Expr::Param(p)).unwrap(), arr_f32(n()));
    }

    #[test]
    fn pad_grows_array() {
        let p = Param::fresh("A", arr_f32(n()));
        let e = pad(1, 2, Boundary::Clamp, Expr::Param(p));
        assert_eq!(typecheck(&e).unwrap(), arr_f32(n() + 3));
    }

    #[test]
    fn slide_counts_neighbourhoods() {
        let p = Param::fresh("A", arr_f32(n()));
        let e = slide(3, 1, pad(1, 1, Boundary::Clamp, Expr::Param(p)));
        // (N+2 − 3 + 1)/1 = N neighbourhoods of size 3.
        assert_eq!(typecheck(&e).unwrap(), Type::array(arr_f32(3), n()));
    }

    #[test]
    fn paper_listing2_types() {
        // map(sumNbh, slide(3, 1, pad(1, 1, clamp, A))) : [f32]_N
        let stencil = lam(arr_f32(n()), |a| {
            let sum = lam(arr_f32(3), |nbh| reduce(add_f32(), Expr::f32(0.0), nbh));
            map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        assert_eq!(typecheck_fun(&stencil).unwrap(), arr_f32(n()));
    }

    #[test]
    fn split_join_roundtrip_type() {
        let p = Param::fresh("A", arr_f32(16));
        let e = join(split(4, Expr::Param(p)));
        assert_eq!(typecheck(&e).unwrap(), arr_f32(16));
    }

    #[test]
    fn transpose_swaps_dims() {
        let p = Param::fresh("A", Type::array_2d(Type::f32(), n(), 4));
        let e = transpose(Expr::Param(p));
        assert_eq!(typecheck(&e).unwrap(), Type::array_2d(Type::f32(), 4, n()));
    }

    #[test]
    fn zip_requires_equal_lengths() {
        let a = Param::fresh("A", arr_f32(n()));
        let b = Param::fresh("B", arr_f32(n() + 1));
        let e = zip2(Expr::Param(a), Expr::Param(b));
        assert!(typecheck(&e).is_err());
    }

    #[test]
    fn zip_produces_tuples() {
        let a = Param::fresh("A", arr_f32(n()));
        let b = Param::fresh("B", Type::array(Type::i32(), n()));
        let e = zip2(Expr::Param(a), Expr::Param(b));
        assert_eq!(
            typecheck(&e).unwrap(),
            Type::array(Type::Tuple(vec![Type::f32(), Type::i32()]), n())
        );
    }

    #[test]
    fn get_projects_components() {
        let a = Param::fresh("A", arr_f32(n()));
        let b = Param::fresh("B", Type::array(Type::i32(), n()));
        let zipped = zip2(Expr::Param(a), Expr::Param(b));
        let f = lam(Type::Tuple(vec![Type::f32(), Type::i32()]), |t| get(1, t));
        let e = map(f, zipped);
        assert_eq!(typecheck(&e).unwrap(), Type::array(Type::i32(), n()));
    }

    #[test]
    fn reduce_checks_accumulator() {
        let a = Param::fresh("A", arr_f32(n()));
        // Using an i32 init with an f32 reduction operator must fail.
        let e = reduce(add_f32(), Expr::i32(0), Expr::Param(a));
        assert!(typecheck(&e).is_err());
    }

    #[test]
    fn at_indexes_arrays() {
        let a = Param::fresh("A", Type::array_2d(Type::f32(), n(), 3));
        let row = at(1, Expr::Param(a));
        assert_eq!(typecheck(&row).unwrap(), arr_f32(3));
    }

    #[test]
    fn pad_value_kind_mismatch_rejected() {
        let a = Param::fresh("A", arr_f32(n()));
        let e = pad_value(1, 1, crate::scalar::Scalar::I32(0), Expr::Param(a));
        let err = typecheck(&e).unwrap_err();
        assert!(err.message().contains("padValue"));
    }

    #[test]
    fn lambda_argument_mismatch_rejected() {
        let f = lam(arr_f32(3), |x| x);
        let a = Param::fresh("A", arr_f32(4));
        let e = Expr::apply(f, [Expr::Param(a)]);
        assert!(typecheck(&e).is_err());
    }

    #[test]
    fn tiling_shape_algebra() {
        // join(map(tile => map(f, slide(3,1,tile)), slide(u, u-2, A))) has
        // the same element count as map(f, slide(3, 1, A)) for concrete
        // sizes: N = 18, u = 6, v = 4: (18-6+4)/4 = 4 tiles, each (6-3+1) = 4
        // neighbourhoods → join: 16 = (18-3+1)/1.
        let a = Param::fresh("A", arr_f32(18));
        let direct = slide(3, 1, Expr::Param(a.clone()));
        let direct_ty = typecheck(&direct).unwrap();
        assert_eq!(direct_ty.shape()[0], ArithExpr::from(16));

        let tiles = slide(6, 4, Expr::Param(a));
        let nested = map(lam(arr_f32(6), |tile| slide(3, 1, tile)), tiles);
        let joined = join(nested);
        let ty = typecheck(&joined).unwrap();
        assert_eq!(ty.shape()[0], ArithExpr::from(16));
    }
}
