//! Scalar kinds and scalar constant values.

use std::fmt;

/// The scalar element kinds supported by generated OpenCL kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// 32-bit IEEE-754 float (`float` in OpenCL C).
    F32,
    /// 32-bit signed integer (`int` in OpenCL C).
    I32,
    /// Boolean (`bool`/`int` in OpenCL C).
    Bool,
}

impl ScalarKind {
    /// The OpenCL C spelling of the type.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarKind::F32 => "float",
            ScalarKind::I32 => "int",
            ScalarKind::Bool => "bool",
        }
    }

    /// Size of one element in bytes (as laid out in device buffers).
    pub fn size_bytes(self) -> usize {
        4
    }
}

impl fmt::Display for ScalarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarKind::F32 => write!(f, "f32"),
            ScalarKind::I32 => write!(f, "i32"),
            ScalarKind::Bool => write!(f, "bool"),
        }
    }
}

/// A scalar constant, used for IR literals, `padConstant` values and as the
/// runtime value representation of the kernel interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// A float value.
    F32(f32),
    /// An integer value.
    I32(i32),
    /// A boolean value.
    Bool(bool),
}

impl Scalar {
    /// The kind of this value.
    pub fn kind(self) -> ScalarKind {
        match self {
            Scalar::F32(_) => ScalarKind::F32,
            Scalar::I32(_) => ScalarKind::I32,
            Scalar::Bool(_) => ScalarKind::Bool,
        }
    }

    /// Interprets the value as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `F32` — kernels are typechecked, so a
    /// kind mismatch at runtime is a compiler bug, not a user error.
    pub fn as_f32(self) -> f32 {
        match self {
            Scalar::F32(v) => v,
            other => panic!("expected f32 scalar, found {other:?}"),
        }
    }

    /// Interprets the value as `i32`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `I32`.
    pub fn as_i32(self) -> i32 {
        match self {
            Scalar::I32(v) => v,
            other => panic!("expected i32 scalar, found {other:?}"),
        }
    }

    /// Interprets the value as `bool`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::Bool(v) => v,
            other => panic!("expected bool scalar, found {other:?}"),
        }
    }
}

impl From<f32> for Scalar {
    fn from(v: f32) -> Self {
        Scalar::F32(v)
    }
}

impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Scalar::I32(v)
    }
}

impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::F32(v) => write!(f, "{v:?}f"),
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip() {
        assert_eq!(Scalar::F32(1.5).kind(), ScalarKind::F32);
        assert_eq!(Scalar::I32(-3).kind(), ScalarKind::I32);
        assert_eq!(Scalar::Bool(true).kind(), ScalarKind::Bool);
    }

    #[test]
    fn accessors() {
        assert_eq!(Scalar::from(2.5f32).as_f32(), 2.5);
        assert_eq!(Scalar::from(7i32).as_i32(), 7);
        assert!(Scalar::from(true).as_bool());
    }

    #[test]
    #[should_panic(expected = "expected f32")]
    fn wrong_kind_panics() {
        let _ = Scalar::I32(1).as_f32();
    }

    #[test]
    fn display() {
        assert_eq!(Scalar::F32(0.0).to_string(), "0.0f");
        assert_eq!(Scalar::I32(42).to_string(), "42");
        assert_eq!(ScalarKind::F32.c_name(), "float");
    }
}
