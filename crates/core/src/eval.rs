//! A reference interpreter for high-level Lift expressions.
//!
//! This is the *semantic oracle* of the project: slow, obviously-correct,
//! materialising denotational semantics for every primitive. It is used to
//!
//! * validate that rewrite rules preserve semantics (property tests pitting
//!   `eval(lhs)` against `eval(rhs)` on random inputs), and
//! * cross-check the OpenCL code generator + virtual device against an
//!   independent executable meaning of the same program.
//!
//! Unlike the code generator it happily materialises `pad`, `slide` and
//! friends, and it ignores all lowering annotations (`mapGlb` ≡ `map`).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use lift_arith::{ArithExpr, Bindings};

use crate::expr::{Expr, FunDecl};
use crate::pattern::{Pattern, ReduceKind};
use crate::scalar::Scalar;
use crate::types::Type;

/// A fully materialised runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum DataValue {
    /// A scalar.
    Scalar(Scalar),
    /// An array of values.
    Array(Vec<DataValue>),
    /// A tuple of values.
    Tuple(Vec<DataValue>),
}

impl DataValue {
    /// Builds a 1D float array.
    pub fn from_f32s(v: impl IntoIterator<Item = f32>) -> DataValue {
        DataValue::Array(
            v.into_iter()
                .map(|x| DataValue::Scalar(Scalar::F32(x)))
                .collect(),
        )
    }

    /// Builds a row-major 2D float array.
    pub fn from_f32s_2d(data: &[f32], rows: usize, cols: usize) -> DataValue {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        DataValue::Array(
            (0..rows)
                .map(|r| DataValue::from_f32s(data[r * cols..(r + 1) * cols].iter().copied()))
                .collect(),
        )
    }

    /// Builds a row-major 3D float array (`z` outermost).
    pub fn from_f32s_3d(data: &[f32], z: usize, y: usize, x: usize) -> DataValue {
        assert_eq!(data.len(), z * y * x, "shape mismatch");
        DataValue::Array(
            (0..z)
                .map(|k| DataValue::from_f32s_2d(&data[k * y * x..(k + 1) * y * x], y, x))
                .collect(),
        )
    }

    /// Flattens to a row-major float vector.
    ///
    /// # Panics
    ///
    /// Panics on non-f32 leaves (use only on float data).
    pub fn flatten_f32(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.collect_f32(&mut out);
        out
    }

    fn collect_f32(&self, out: &mut Vec<f32>) {
        match self {
            DataValue::Scalar(s) => out.push(s.as_f32()),
            DataValue::Array(v) | DataValue::Tuple(v) => {
                for x in v {
                    x.collect_f32(out);
                }
            }
        }
    }

    fn as_array(&self) -> Result<&[DataValue], EvalError> {
        match self {
            DataValue::Array(v) => Ok(v),
            other => Err(EvalError::new(format!("expected array, got {other:?}"))),
        }
    }

    fn as_scalar(&self) -> Result<Scalar, EvalError> {
        match self {
            DataValue::Scalar(s) => Ok(*s),
            other => Err(EvalError::new(format!("expected scalar, got {other:?}"))),
        }
    }
}

/// An evaluation failure (ill-formed program or environment).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    msg: String,
}

impl EvalError {
    fn new(msg: impl Into<String>) -> Self {
        EvalError { msg: msg.into() }
    }

    /// The diagnostic message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.msg)
    }
}

impl Error for EvalError {}

fn cst(e: &ArithExpr) -> Result<i64, EvalError> {
    e.eval(&Bindings::new())
        .map_err(|err| EvalError::new(format!("size `{e}` not concrete: {err}")))
}

/// Evaluates a top-level unary (or n-ary) lambda on argument values.
///
/// All array sizes must be concrete (substitute first if needed).
///
/// # Errors
///
/// Fails on arity mismatches, non-concrete sizes and ill-formed data.
pub fn eval_fun(f: &FunDecl, args: &[DataValue]) -> Result<DataValue, EvalError> {
    let mut env = HashMap::new();
    apply(f, args, &mut env)
}

type Env = HashMap<u32, DataValue>;

fn eval_expr(e: &Expr, env: &mut Env) -> Result<DataValue, EvalError> {
    match e {
        Expr::Param(p) => env
            .get(&p.id())
            .cloned()
            .ok_or_else(|| EvalError::new(format!("unbound parameter `{}`", p.name()))),
        Expr::Literal(s) => Ok(DataValue::Scalar(*s)),
        Expr::Apply(app) => {
            let args: Result<Vec<DataValue>, EvalError> =
                app.args.iter().map(|a| eval_expr(a, env)).collect();
            apply(&app.fun, &args?, env)
        }
    }
}

fn apply(f: &FunDecl, args: &[DataValue], env: &mut Env) -> Result<DataValue, EvalError> {
    match f {
        FunDecl::Lambda(l) => {
            if l.params.len() != args.len() {
                return Err(EvalError::new(format!(
                    "lambda of {} params applied to {} args",
                    l.params.len(),
                    args.len()
                )));
            }
            for (p, a) in l.params.iter().zip(args) {
                env.insert(p.id(), a.clone());
            }
            eval_expr(&l.body, env)
        }
        FunDecl::UserFun(u) => {
            let scalars: Result<Vec<Scalar>, EvalError> =
                args.iter().map(DataValue::as_scalar).collect();
            Ok(DataValue::Scalar(u.call(&scalars?)))
        }
        FunDecl::Pattern(p) => apply_pattern(p, args, env),
    }
}

fn apply_pattern(p: &Pattern, args: &[DataValue], env: &mut Env) -> Result<DataValue, EvalError> {
    match p {
        Pattern::Id => Ok(args[0].clone()),
        Pattern::Map { f, .. } => {
            let xs = args[0].as_array()?.to_vec();
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                out.push(apply(f, &[x], env)?);
            }
            Ok(DataValue::Array(out))
        }
        Pattern::Reduce { f, kind } => {
            let _ = matches!(
                kind,
                ReduceKind::Par | ReduceKind::Seq | ReduceKind::SeqUnroll
            );
            let mut acc = args[0].clone();
            for x in args[1].as_array()? {
                acc = apply(f, &[acc, x.clone()], env)?;
            }
            Ok(acc)
        }
        Pattern::Zip { arity } => {
            let arrays: Result<Vec<&[DataValue]>, EvalError> =
                args.iter().map(|a| a.as_array()).collect();
            let arrays = arrays?;
            let n = arrays[0].len();
            if arrays.iter().any(|a| a.len() != n) {
                return Err(EvalError::new("zip of unequal lengths"));
            }
            let _ = arity;
            Ok(DataValue::Array(
                (0..n)
                    .map(|i| DataValue::Tuple(arrays.iter().map(|a| a[i].clone()).collect()))
                    .collect(),
            ))
        }
        Pattern::Split { chunk } => {
            let xs = args[0].as_array()?;
            let m = cst(chunk)? as usize;
            if m == 0 || xs.len() % m != 0 {
                return Err(EvalError::new(format!(
                    "split({m}) of array of length {}",
                    xs.len()
                )));
            }
            Ok(DataValue::Array(
                xs.chunks(m).map(|c| DataValue::Array(c.to_vec())).collect(),
            ))
        }
        Pattern::Join => {
            let xs = args[0].as_array()?;
            let mut out = Vec::new();
            for x in xs {
                out.extend(x.as_array()?.iter().cloned());
            }
            Ok(DataValue::Array(out))
        }
        Pattern::Transpose => {
            let xs = args[0].as_array()?;
            if xs.is_empty() {
                return Ok(DataValue::Array(Vec::new()));
            }
            let inner = xs[0].as_array()?.len();
            let mut out = vec![Vec::with_capacity(xs.len()); inner];
            for row in xs {
                let row = row.as_array()?;
                if row.len() != inner {
                    return Err(EvalError::new("transpose of ragged array"));
                }
                for (j, v) in row.iter().enumerate() {
                    out[j].push(v.clone());
                }
            }
            Ok(DataValue::Array(
                out.into_iter().map(DataValue::Array).collect(),
            ))
        }
        Pattern::Slide { size, step } => {
            let xs = args[0].as_array()?;
            let (size, step) = (cst(size)? as usize, cst(step)? as usize);
            if step == 0 || size == 0 {
                return Err(EvalError::new("slide with zero size/step"));
            }
            if xs.len() < size {
                return Err(EvalError::new(format!(
                    "slide({size}, {step}) of array of length {}",
                    xs.len()
                )));
            }
            let count = (xs.len() - size) / step + 1;
            Ok(DataValue::Array(
                (0..count)
                    .map(|i| DataValue::Array(xs[i * step..i * step + size].to_vec()))
                    .collect(),
            ))
        }
        Pattern::Pad {
            left,
            right,
            boundary,
        } => {
            let xs = args[0].as_array()?;
            let (l, r) = (cst(left)?, cst(right)?);
            let n = xs.len() as i64;
            let mut out = Vec::with_capacity((l + n + r) as usize);
            for i in -l..n + r {
                out.push(xs[boundary.reindex(i, n) as usize].clone());
            }
            Ok(DataValue::Array(out))
        }
        Pattern::PadValue { left, right, value } => {
            let xs = args[0].as_array()?;
            let (l, r) = (cst(left)? as usize, cst(right)? as usize);
            let filler = fill_like(
                &xs.first().cloned().unwrap_or(DataValue::Scalar(*value)),
                *value,
            );
            let mut out = Vec::with_capacity(l + xs.len() + r);
            out.extend(std::iter::repeat_n(filler.clone(), l));
            out.extend(xs.iter().cloned());
            out.extend(std::iter::repeat_n(filler, r));
            Ok(DataValue::Array(out))
        }
        Pattern::At { index } => {
            let xs = args[0].as_array()?;
            let i = cst(index)? as usize;
            xs.get(i)
                .cloned()
                .ok_or_else(|| EvalError::new(format!("at({i}) out of bounds ({})", xs.len())))
        }
        Pattern::Get { index } => match &args[0] {
            DataValue::Tuple(ts) => ts
                .get(*index)
                .cloned()
                .ok_or_else(|| EvalError::new(format!("get({index}) out of bounds"))),
            other => Err(EvalError::new(format!("get on non-tuple {other:?}"))),
        },
        Pattern::ArrayGen { fun, sizes } => {
            let sizes: Result<Vec<i64>, EvalError> = sizes.iter().map(cst).collect();
            let sizes = sizes?;
            gen_array(fun, &sizes, &mut Vec::new())
        }
        Pattern::Iterate { times, f } => {
            let mut v = args[0].clone();
            for _ in 0..cst(times)? {
                v = apply(f, &[v], env)?;
            }
            Ok(v)
        }
        Pattern::ToLocal { f } | Pattern::ToGlobal { f } | Pattern::ToPrivate { f } => {
            apply(f, args, env)
        }
    }
}

/// A value with the same nesting as `template` but every leaf = `value`.
fn fill_like(template: &DataValue, value: Scalar) -> DataValue {
    match template {
        DataValue::Scalar(_) => DataValue::Scalar(value),
        DataValue::Array(v) => DataValue::Array(v.iter().map(|x| fill_like(x, value)).collect()),
        DataValue::Tuple(v) => DataValue::Tuple(v.iter().map(|x| fill_like(x, value)).collect()),
    }
}

fn gen_array(
    fun: &std::sync::Arc<crate::userfun::UserFun>,
    sizes: &[i64],
    idxs: &mut Vec<i64>,
) -> Result<DataValue, EvalError> {
    if idxs.len() == sizes.len() {
        let mut args: Vec<Scalar> = idxs.iter().map(|i| Scalar::I32(*i as i32)).collect();
        args.extend(sizes.iter().map(|s| Scalar::I32(*s as i32)));
        return Ok(DataValue::Scalar(fun.call(&args)));
    }
    let n = sizes[idxs.len()];
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        idxs.push(i);
        out.push(gen_array(fun, sizes, idxs)?);
        idxs.pop();
    }
    Ok(DataValue::Array(out))
}

/// Builds a [`DataValue`] of zeros shaped like `ty` (sizes concrete).
///
/// # Errors
///
/// Fails on non-concrete sizes.
pub fn zero_of_type(ty: &Type) -> Result<DataValue, EvalError> {
    match ty {
        Type::Scalar(k) => Ok(DataValue::Scalar(match k {
            crate::scalar::ScalarKind::F32 => Scalar::F32(0.0),
            crate::scalar::ScalarKind::I32 => Scalar::I32(0),
            crate::scalar::ScalarKind::Bool => Scalar::Bool(false),
        })),
        Type::Tuple(ts) => Ok(DataValue::Tuple(
            ts.iter().map(zero_of_type).collect::<Result<_, _>>()?,
        )),
        Type::Array(elem, n) => {
            let n = cst(n)? as usize;
            let e = zero_of_type(elem)?;
            Ok(DataValue::Array(vec![e; n]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::ndim::{pad2, slide2};
    use crate::pattern::Boundary;
    use crate::userfun::add_f32;

    #[test]
    fn listing2_semantics() {
        let prog = lam(Type::array(Type::f32(), 5), |a| {
            let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), nbh)
            });
            map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        let input = DataValue::from_f32s([1.0, 2.0, 3.0, 4.0, 5.0]);
        let out = eval_fun(&prog, &[input]).unwrap();
        // clamp-padded: [1,1,2,3,4,5,5]; sums of 3: 4, 6, 9, 12, 14.
        assert_eq!(out.flatten_f32(), vec![4.0, 6.0, 9.0, 12.0, 14.0]);
    }

    #[test]
    fn paper_pad2_example() {
        // §3.4: pad2(1,1,clamp, [[a,b],[c,d]]) doubles every border.
        let prog = lam(Type::array_2d(Type::f32(), 2, 2), |g| {
            pad2(1, 1, Boundary::Clamp, g)
        });
        let input = DataValue::from_f32s_2d(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let out = eval_fun(&prog, &[input]).unwrap();
        assert_eq!(
            out.flatten_f32(),
            vec![
                1.0, 1.0, 2.0, 2.0, //
                1.0, 1.0, 2.0, 2.0, //
                3.0, 3.0, 4.0, 4.0, //
                3.0, 3.0, 4.0, 4.0,
            ]
        );
    }

    #[test]
    fn paper_slide2_example() {
        // §3.4: slide2(2,1) over [[a,b,c],[d,e,f],[g,h,i]] yields four 2×2
        // neighbourhoods [[a,b],[d,e]], [[b,c],[e,f]], [[d,e],[g,h]],
        // [[e,f],[h,i]].
        let prog = lam(Type::array_2d(Type::f32(), 3, 3), |g| slide2(2, 1, g));
        let input = DataValue::from_f32s_2d(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], 3, 3);
        let out = eval_fun(&prog, &[input]).unwrap();
        assert_eq!(
            out.flatten_f32(),
            vec![
                1.0, 2.0, 4.0, 5.0, // window (0,0)
                2.0, 3.0, 5.0, 6.0, // window (0,1)
                4.0, 5.0, 7.0, 8.0, // window (1,0)
                5.0, 6.0, 8.0, 9.0, // window (1,1)
            ]
        );
    }

    #[test]
    fn split_join_roundtrip() {
        let prog = lam(Type::array(Type::f32(), 6), |a| join(split(2, a)));
        let input = DataValue::from_f32s([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = eval_fun(&prog, std::slice::from_ref(&input)).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn pad_value_fills_subarrays() {
        // padValue on the outer dim of a 2D array fills whole rows.
        let prog = lam(Type::array_2d(Type::f32(), 2, 3), |g| {
            pad_value(1, 0, 7.0f32, g)
        });
        let input = DataValue::from_f32s_2d(&[1.0; 6], 2, 3);
        let out = eval_fun(&prog, &[input]).unwrap();
        assert_eq!(
            out.flatten_f32(),
            vec![7.0, 7.0, 7.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        );
    }

    #[test]
    fn iterate_applies_repeatedly() {
        let double = lam(Type::array(Type::f32(), 2), |a| {
            map(lam(Type::f32(), |x| call(&add_f32(), [x.clone(), x])), a)
        });
        let prog = lam(Type::array(Type::f32(), 2), |a| iterate(3, double, a));
        let input = DataValue::from_f32s([1.0, 2.0]);
        let out = eval_fun(&prog, &[input]).unwrap();
        assert_eq!(out.flatten_f32(), vec![8.0, 16.0]);
    }

    #[test]
    fn mirror_and_wrap_pad() {
        let p_mirror = lam(Type::array(Type::f32(), 3), |a| {
            pad(2, 2, Boundary::Mirror, a)
        });
        let input = DataValue::from_f32s([1.0, 2.0, 3.0]);
        let out = eval_fun(&p_mirror, std::slice::from_ref(&input)).unwrap();
        assert_eq!(out.flatten_f32(), vec![2.0, 1.0, 1.0, 2.0, 3.0, 3.0, 2.0]);

        let p_wrap = lam(Type::array(Type::f32(), 3), |a| {
            pad(1, 1, Boundary::Wrap, a)
        });
        let out = eval_fun(&p_wrap, &[input]).unwrap();
        assert_eq!(out.flatten_f32(), vec![3.0, 1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn errors_are_reported() {
        let prog = lam(Type::array(Type::f32(), 5), |a| split(2, a));
        let input = DataValue::from_f32s([0.0; 5]);
        let err = eval_fun(&prog, &[input]).unwrap_err();
        assert!(err.message().contains("split"));
    }
}
