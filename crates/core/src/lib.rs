//! The Lift data-parallel intermediate language, extended for stencils.
//!
//! This crate implements the IR of *High Performance Stencil Code Generation
//! with Lift* (CGO 2018): a small functional language whose programs are
//! compositions of data-parallel primitives. The paper's contribution — and
//! the heart of this crate — is that **stencil computations decompose into
//! three reusable 1D primitives**:
//!
//! 1. [`pad`](build::pad) — boundary handling (clamp / mirror / wrap
//!    re-indexing, or constant values via [`pad_value`](build::pad_value)),
//! 2. [`slide`](build::slide) — neighbourhood creation with a sliding window,
//! 3. [`map`](build::map) — the (only) data-parallel application of the
//!    stencil function to every neighbourhood.
//!
//! Multi-dimensional stencils are *compositions* of these 1D building blocks
//! (see [`ndim`]), exactly as in §3.4 of the paper.
//!
//! The crate provides:
//!
//! * [`types`] — array/tuple/scalar types carrying symbolic sizes,
//! * [`expr`] — expressions: λ-calculus over [`pattern::Pattern`] primitives,
//! * [`pattern`] — all primitives incl. the OpenCL-specific low-level forms
//!   (`mapGlb`, `mapWrg`, `mapLcl`, `mapSeq`, `reduceSeq`, `toLocal`, …),
//! * [`typecheck`] — the structural type checker with symbolic size algebra,
//! * [`build`] — an ergonomic builder DSL,
//! * [`ndim`] — the derived n-dimensional combinators `pad2/3`, `slide2/3`,
//!   `map2/3`,
//! * [`visit`] — generic traversal/rewriting infrastructure used by the
//!   rewrite-rule engine.
//!
//! # Example: the paper's 3-point Jacobi (Listing 2)
//!
//! ```
//! use lift_core::prelude::*;
//!
//! let n = ArithExpr::var("N");
//! let input = Type::array(Type::f32(), n);
//! // fun(A => map(sumNbh, slide(3, 1, pad(1, 1, clamp, A))))
//! let stencil = lam(input, |a| {
//!     let sum = lam(Type::array(Type::f32(), 3), |nbh| {
//!         reduce(add_f32(), Expr::f32(0.0), nbh)
//!     });
//!     map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
//! });
//! let ty = typecheck_fun(&stencil).unwrap();
//! assert_eq!(ty.to_string(), "[f32]_N");
//! ```
//!
//! One deliberate simplification relative to the paper's Fig. 3 types:
//! `reduce` here returns the accumulator `U` directly rather than a
//! one-element array `[U]_1` — this is how the paper's own listings use it
//! (Listing 2 maps `sumNbh` straight over the neighbourhoods).

#![forbid(unsafe_code)]

pub mod build;
pub mod eval;
pub mod expr;
pub mod ndim;
pub mod pattern;
pub mod pretty;
pub mod scalar;
pub mod typecheck;
pub mod types;
pub mod userfun;
pub mod visit;

/// Convenient glob-import of the whole builder surface.
pub mod prelude {
    pub use crate::build::*;
    pub use crate::expr::{Expr, FunDecl, Lambda, Param, ParamRef};
    pub use crate::ndim::*;
    pub use crate::pattern::{Boundary, MapKind, Pattern, ReduceKind};
    pub use crate::scalar::{Scalar, ScalarKind};
    pub use crate::typecheck::{typecheck, typecheck_fun, TypeError};
    pub use crate::types::Type;
    pub use crate::userfun::{add_f32, id_f32, max_f32, mul_f32, UserFun};
    pub use lift_arith::ArithExpr;
}
