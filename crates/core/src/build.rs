//! An ergonomic builder DSL for Lift expressions.
//!
//! Free functions mirror the paper's surface syntax: Listing 2's
//!
//! ```text
//! map(sumNbh, slide(3, 1, pad(1, 1, clamp, A)))
//! ```
//!
//! is written
//!
//! ```
//! use lift_core::prelude::*;
//! let n = ArithExpr::var("N");
//! let program = lam(Type::array(Type::f32(), n), |a| {
//!     let sum_nbh = lam(Type::array(Type::f32(), 3), |nbh| {
//!         reduce(add_f32(), Expr::f32(0.0), nbh)
//!     });
//!     map(sum_nbh, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
//! });
//! assert!(typecheck_fun(&program).is_ok());
//! ```

use std::sync::Arc;

use lift_arith::ArithExpr;

use crate::expr::{Expr, FunDecl, Param};
use crate::pattern::{Boundary, MapKind, Pattern, ReduceKind};
use crate::scalar::Scalar;
use crate::types::Type;
use crate::userfun::UserFun;

/// Builds a unary lambda `λx: ty. body(x)`.
pub fn lam(ty: Type, body: impl FnOnce(Expr) -> Expr) -> FunDecl {
    let p = Param::fresh("x", ty);
    let b = body(Expr::Param(p.clone()));
    FunDecl::lambda(vec![p], b)
}

/// Builds a binary lambda `λx y. body(x, y)`.
pub fn lam2(ty1: Type, ty2: Type, body: impl FnOnce(Expr, Expr) -> Expr) -> FunDecl {
    let p1 = Param::fresh("x", ty1);
    let p2 = Param::fresh("y", ty2);
    let b = body(Expr::Param(p1.clone()), Expr::Param(p2.clone()));
    FunDecl::lambda(vec![p1, p2], b)
}

/// Builds a named unary lambda, for nicer pretty-printing of top-level
/// programs (`fun(A => …)`).
pub fn lam_named(name: &str, ty: Type, body: impl FnOnce(Expr) -> Expr) -> FunDecl {
    let p = Param::fresh(name, ty);
    let b = body(Expr::Param(p.clone()));
    FunDecl::lambda(vec![p], b)
}

/// Builds a named binary lambda.
pub fn lam2_named(
    n1: &str,
    ty1: Type,
    n2: &str,
    ty2: Type,
    body: impl FnOnce(Expr, Expr) -> Expr,
) -> FunDecl {
    let p1 = Param::fresh(n1, ty1);
    let p2 = Param::fresh(n2, ty2);
    let b = body(Expr::Param(p1.clone()), Expr::Param(p2.clone()));
    FunDecl::lambda(vec![p1, p2], b)
}

/// Converts a function-like value ([`FunDecl`], `Arc<UserFun>`, [`Pattern`])
/// into a [`FunDecl`].
pub fn fun(f: impl Into<FunDecl>) -> FunDecl {
    f.into()
}

fn map_kind(kind: MapKind, f: impl Into<FunDecl>, input: Expr) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::Map { kind, f: f.into() }),
        [input],
    )
}

/// `map(f, input)` — the high-level data-parallel map.
pub fn map(f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_kind(MapKind::Par, f, input)
}

/// `mapSeq(f, input)` — sequential loop inside one work-item.
pub fn map_seq(f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_kind(MapKind::Seq, f, input)
}

/// `mapSeqUnroll(f, input)` — unrolled sequential map.
pub fn map_seq_unroll(f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_kind(MapKind::SeqUnroll, f, input)
}

/// `mapGlb_d(f, input)` — parallel over global work-item ids in dimension `d`.
pub fn map_glb(d: u8, f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_kind(MapKind::Glb(d), f, input)
}

/// `mapWrg_d(f, input)` — parallel over work-group ids in dimension `d`.
pub fn map_wrg(d: u8, f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_kind(MapKind::Wrg(d), f, input)
}

/// `mapLcl_d(f, input)` — parallel over local work-item ids in dimension `d`.
pub fn map_lcl(d: u8, f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_kind(MapKind::Lcl(d), f, input)
}

/// `reduce(f, init, input)` — high-level reduction.
pub fn reduce(f: impl Into<FunDecl>, init: Expr, input: Expr) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::Reduce {
            kind: ReduceKind::Par,
            f: f.into(),
        }),
        [init, input],
    )
}

/// `reduceSeq(f, init, input)` — sequential accumulation.
pub fn reduce_seq(f: impl Into<FunDecl>, init: Expr, input: Expr) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::Reduce {
            kind: ReduceKind::Seq,
            f: f.into(),
        }),
        [init, input],
    )
}

/// `reduceUnroll(f, init, input)` — unrolled sequential accumulation (§4.3).
pub fn reduce_unroll(f: impl Into<FunDecl>, init: Expr, input: Expr) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::Reduce {
            kind: ReduceKind::SeqUnroll,
            f: f.into(),
        }),
        [init, input],
    )
}

/// `zip(a, b)`.
pub fn zip2(a: Expr, b: Expr) -> Expr {
    Expr::apply(FunDecl::pattern(Pattern::Zip { arity: 2 }), [a, b])
}

/// `zip3(a, b, c)` — used by the acoustic benchmark (§3.5).
pub fn zip3(a: Expr, b: Expr, c: Expr) -> Expr {
    Expr::apply(FunDecl::pattern(Pattern::Zip { arity: 3 }), [a, b, c])
}

/// `split(chunk, input)`.
pub fn split(chunk: impl Into<ArithExpr>, input: Expr) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::Split {
            chunk: chunk.into(),
        }),
        [input],
    )
}

/// `join(input)`.
pub fn join(input: Expr) -> Expr {
    Expr::apply(FunDecl::pattern(Pattern::Join), [input])
}

/// `transpose(input)`.
pub fn transpose(input: Expr) -> Expr {
    Expr::apply(FunDecl::pattern(Pattern::Transpose), [input])
}

/// `slide(size, step, input)` — the paper's neighbourhood-creation primitive.
pub fn slide(size: impl Into<ArithExpr>, step: impl Into<ArithExpr>, input: Expr) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::Slide {
            size: size.into(),
            step: step.into(),
        }),
        [input],
    )
}

/// `pad(l, r, h, input)` — the paper's re-indexing boundary primitive.
pub fn pad(
    left: impl Into<ArithExpr>,
    right: impl Into<ArithExpr>,
    boundary: Boundary,
    input: Expr,
) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::Pad {
            left: left.into(),
            right: right.into(),
            boundary,
        }),
        [input],
    )
}

/// `padValue(l, r, c, input)` — the value variant of `pad` (constant
/// boundaries).
pub fn pad_value(
    left: impl Into<ArithExpr>,
    right: impl Into<ArithExpr>,
    value: impl Into<Scalar>,
    input: Expr,
) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::PadValue {
            left: left.into(),
            right: right.into(),
            value: value.into(),
        }),
        [input],
    )
}

/// `at(i, input)` — constant-index array access, written `input[i]` in the
/// paper.
pub fn at(index: impl Into<ArithExpr>, input: Expr) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::At {
            index: index.into(),
        }),
        [input],
    )
}

/// 3D constant-index access `input[i][j][k]` (outermost index first).
pub fn at3(
    i: impl Into<ArithExpr>,
    j: impl Into<ArithExpr>,
    k: impl Into<ArithExpr>,
    input: Expr,
) -> Expr {
    at(k, at(j, at(i, input)))
}

/// 2D constant-index access `input[i][j]`.
pub fn at2(i: impl Into<ArithExpr>, j: impl Into<ArithExpr>, input: Expr) -> Expr {
    at(j, at(i, input))
}

/// `get(i, input)` — tuple component access, written `input.i` in the paper.
pub fn get(index: usize, input: Expr) -> Expr {
    Expr::apply(FunDecl::pattern(Pattern::Get { index }), [input])
}

/// `array(n, f)` — 1D generated array (lazily computed by `f(i, n)`).
pub fn array_gen(fun: Arc<UserFun>, n: impl Into<ArithExpr>) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::ArrayGen {
            fun,
            sizes: vec![n.into()],
        }),
        [],
    )
}

/// `array3(o, n, m, f)` — 3D generated array (§3.5's on-the-fly mask).
pub fn array_gen3(
    fun: Arc<UserFun>,
    o: impl Into<ArithExpr>,
    n: impl Into<ArithExpr>,
    m: impl Into<ArithExpr>,
) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::ArrayGen {
            fun,
            sizes: vec![o.into(), n.into(), m.into()],
        }),
        [],
    )
}

/// `iterate(times, f, input)`.
pub fn iterate(times: impl Into<ArithExpr>, f: impl Into<FunDecl>, input: Expr) -> Expr {
    Expr::apply(
        FunDecl::pattern(Pattern::Iterate {
            times: times.into(),
            f: f.into(),
        }),
        [input],
    )
}

/// `toLocal(f)` — redirect `f`'s output into local memory (§4.2).
pub fn to_local(f: impl Into<FunDecl>) -> FunDecl {
    FunDecl::pattern(Pattern::ToLocal { f: f.into() })
}

/// `toGlobal(f)` — redirect `f`'s output into global memory.
pub fn to_global(f: impl Into<FunDecl>) -> FunDecl {
    FunDecl::pattern(Pattern::ToGlobal { f: f.into() })
}

/// `toPrivate(f)` — redirect `f`'s output into private memory.
pub fn to_private(f: impl Into<FunDecl>) -> FunDecl {
    FunDecl::pattern(Pattern::ToPrivate { f: f.into() })
}

/// The identity function as a [`FunDecl`].
pub fn id() -> FunDecl {
    FunDecl::pattern(Pattern::Id)
}

/// Applies a scalar [`UserFun`] to arguments.
pub fn call(f: &Arc<UserFun>, args: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::apply(FunDecl::UserFun(f.clone()), args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::typecheck;
    use crate::userfun::add_f32;

    #[test]
    fn builders_produce_wellformed_exprs() {
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), 8)));
        let e = map(id(), slide(3, 1, pad(1, 1, Boundary::Clamp, a)));
        assert!(typecheck(&e).is_ok());
    }

    #[test]
    fn call_userfun() {
        let e = call(&add_f32(), [Expr::f32(1.0), Expr::f32(2.0)]);
        assert_eq!(typecheck(&e).unwrap(), Type::f32());
    }

    #[test]
    fn at_nested_accesses() {
        let a = Expr::Param(Param::fresh("A", Type::array_3d(Type::f32(), 3, 3, 3)));
        let e = at3(1, 1, 1, a);
        assert_eq!(typecheck(&e).unwrap(), Type::f32());
    }

    #[test]
    fn lam2_binds_two_params() {
        let f = lam2(Type::f32(), Type::f32(), |a, b| call(&add_f32(), [a, b]));
        let l = f.as_lambda().expect("lambda");
        assert_eq!(l.params.len(), 2);
    }
}
