//! The Lift primitives ("patterns"), including the paper's two stencil
//! additions `slide` and `pad`, and the OpenCL-specific low-level forms.

use std::fmt;
use std::sync::Arc;

use lift_arith::ArithExpr;

use crate::expr::FunDecl;
use crate::scalar::Scalar;
use crate::userfun::UserFun;

/// How a `map` is executed on the device.
///
/// The high-level [`MapKind::Par`] form expresses *potential* data
/// parallelism only; lowering rewrite rules replace it by one of the
/// OpenCL-specific forms (§5 of the paper, following Steuwer et al.,
/// CGO 2017).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    /// High-level, not yet mapped to the OpenCL thread hierarchy.
    Par,
    /// A sequential loop inside one work-item.
    Seq,
    /// A sequential loop, fully unrolled (requires a constant trip count).
    SeqUnroll,
    /// Parallel across global work-items in NDRange dimension `d`.
    Glb(u8),
    /// Parallel across work-groups in NDRange dimension `d`.
    Wrg(u8),
    /// Parallel across the work-items of one work-group in dimension `d`.
    Lcl(u8),
}

impl MapKind {
    /// True for the kinds that execute as a sequential loop in one thread.
    pub fn is_sequential(self) -> bool {
        matches!(self, MapKind::Seq | MapKind::SeqUnroll)
    }
}

/// How a `reduce` is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// High-level, not yet lowered.
    Par,
    /// Sequential accumulation loop.
    Seq,
    /// Sequential accumulation, fully unrolled (§4.3 `reduceUnroll`).
    SeqUnroll,
}

/// Out-of-bounds re-indexing strategies for [`Pattern::Pad`].
///
/// These are the index functions `h` of the paper (§3.2): they *"must not
/// reorder the elements of the input array, but only map indices from outside
/// the array boundaries into a valid array index."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Boundary {
    /// `clamp(i, n) = min(max(i, 0), n-1)` — repeat the edge value.
    Clamp,
    /// Reflect at the border: `-1 ↦ 0`, `-2 ↦ 1`, `n ↦ n-1`, ….
    Mirror,
    /// Wrap around (toroidal): `i ↦ i mod n`.
    Wrap,
}

impl Boundary {
    /// Applies the re-indexing to a concrete index (reference semantics).
    ///
    /// `i` may lie outside `[0, n)`; the result is always inside.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn reindex(self, i: i64, n: i64) -> i64 {
        assert!(n > 0, "boundary re-indexing into an empty array");
        match self {
            Boundary::Clamp => i.clamp(0, n - 1),
            Boundary::Mirror => {
                // Reflection with period 2n: …, 1, 0 | 0, 1, …, n-1 | n-1, …
                let m = i.rem_euclid(2 * n);
                if m < n {
                    m
                } else {
                    2 * n - 1 - m
                }
            }
            Boundary::Wrap => i.rem_euclid(n),
        }
    }

    /// The OpenCL C spelling used by the code generator's index math.
    pub fn c_name(self) -> &'static str {
        match self {
            Boundary::Clamp => "clamp",
            Boundary::Mirror => "mirror",
            Boundary::Wrap => "wrap",
        }
    }
}

/// A Lift primitive.
///
/// Applying a pattern to arguments forms an expression; the typing rules live
/// in [`crate::typecheck`], the data-layout semantics in the code generator's
/// view system, and the reference semantics in the evaluator used for
/// testing.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// `map f : [T]_n → [U]_n` — the only source of data parallelism.
    Map {
        /// Execution flavour (high-level or OpenCL-mapped).
        kind: MapKind,
        /// The function applied to every element.
        f: FunDecl,
    },
    /// `reduce f : (U, [T]_n) → U` applied as `reduce(f, init, in)`.
    Reduce {
        /// Execution flavour.
        kind: ReduceKind,
        /// The binary reduction operator `(U, T) → U`.
        f: FunDecl,
    },
    /// `zip : ([T1]_n, …, [Tk]_n) → [{T1…Tk}]_n`.
    Zip {
        /// Number of zipped arrays (≥ 2).
        arity: usize,
    },
    /// `split m : [T]_n → [[T]_m]_{n/m}`.
    Split {
        /// Chunk length `m` (must evenly divide `n`).
        chunk: ArithExpr,
    },
    /// `join : [[T]_m]_n → [T]_{m·n}`.
    Join,
    /// `transpose : [[T]_m]_n → [[T]_n]_m`.
    Transpose,
    /// **New in the paper**: `slide size step : [T]_n →
    /// [[T]_size]_{(n−size+step)/step}` — overlapping neighbourhoods.
    Slide {
        /// Window length.
        size: ArithExpr,
        /// Window advance per step.
        step: ArithExpr,
    },
    /// **New in the paper**: `pad l r h : [T]_n → [T]_{l+n+r}` — boundary
    /// handling by re-indexing into the input.
    Pad {
        /// Elements virtually prepended.
        left: ArithExpr,
        /// Elements virtually appended.
        right: ArithExpr,
        /// The re-indexing function `h`.
        boundary: Boundary,
    },
    /// The value variant of `pad`: out-of-bounds positions produce a
    /// constant instead of re-reading the input (used for constant and
    /// dampening boundary conditions).
    PadValue {
        /// Elements virtually prepended.
        left: ArithExpr,
        /// Elements virtually appended.
        right: ArithExpr,
        /// The constant produced outside the original array.
        value: Scalar,
    },
    /// `at i : [T]_n → T` — constant-index access (written `in[i]`).
    At {
        /// The (compile-time) index.
        index: ArithExpr,
    },
    /// `get i : {T1…Tk} → Ti` — tuple component access (written `in.i`).
    Get {
        /// The component index (0-based).
        index: usize,
    },
    /// `array(n1, …, nd, f)` — a lazily generated array; `f` receives the
    /// `d` indices followed by the `d` sizes (used e.g. for the acoustic
    /// benchmark's on-the-fly neighbour-count mask, §3.5).
    ArrayGen {
        /// Generator: arity `2·d`, all-`i32` parameters.
        fun: Arc<UserFun>,
        /// The generated array shape, outermost first.
        sizes: Vec<ArithExpr>,
    },
    /// `iterate m f : [T]_n → [T]_n` — repeated application (type-preserving
    /// in this implementation; the paper evaluates single-iteration stencils
    /// and performs time-stepping on the host).
    Iterate {
        /// Number of iterations.
        times: ArithExpr,
        /// The iterated function.
        f: FunDecl,
    },
    /// Low-level: make `f` write its result to OpenCL local memory (§4.2).
    ToLocal {
        /// The wrapped function.
        f: FunDecl,
    },
    /// Low-level: make `f` write its result to global memory.
    ToGlobal {
        /// The wrapped function.
        f: FunDecl,
    },
    /// Low-level: make `f` write its result to private memory.
    ToPrivate {
        /// The wrapped function.
        f: FunDecl,
    },
    /// The polymorphic identity function.
    Id,
}

impl Pattern {
    /// The number of expression arguments the pattern is applied to.
    pub fn arity(&self) -> usize {
        match self {
            Pattern::Reduce { .. } => 2,
            Pattern::Zip { arity } => *arity,
            Pattern::ArrayGen { .. } => 0,
            Pattern::ToLocal { .. } | Pattern::ToGlobal { .. } | Pattern::ToPrivate { .. } => 1,
            _ => 1,
        }
    }

    /// A short name for diagnostics and pretty printing.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Map { kind, .. } => match kind {
                MapKind::Par => "map",
                MapKind::Seq => "mapSeq",
                MapKind::SeqUnroll => "mapSeqUnroll",
                MapKind::Glb(_) => "mapGlb",
                MapKind::Wrg(_) => "mapWrg",
                MapKind::Lcl(_) => "mapLcl",
            },
            Pattern::Reduce { kind, .. } => match kind {
                ReduceKind::Par => "reduce",
                ReduceKind::Seq => "reduceSeq",
                ReduceKind::SeqUnroll => "reduceUnroll",
            },
            Pattern::Zip { .. } => "zip",
            Pattern::Split { .. } => "split",
            Pattern::Join => "join",
            Pattern::Transpose => "transpose",
            Pattern::Slide { .. } => "slide",
            Pattern::Pad { .. } => "pad",
            Pattern::PadValue { .. } => "padValue",
            Pattern::At { .. } => "at",
            Pattern::Get { .. } => "get",
            Pattern::ArrayGen { .. } => "array",
            Pattern::Iterate { .. } => "iterate",
            Pattern::ToLocal { .. } => "toLocal",
            Pattern::ToGlobal { .. } => "toGlobal",
            Pattern::ToPrivate { .. } => "toPrivate",
            Pattern::Id => "id",
        }
    }

    /// The nested function declaration, for patterns that carry one.
    pub fn nested_fun(&self) -> Option<&FunDecl> {
        match self {
            Pattern::Map { f, .. }
            | Pattern::Reduce { f, .. }
            | Pattern::Iterate { f, .. }
            | Pattern::ToLocal { f }
            | Pattern::ToGlobal { f }
            | Pattern::ToPrivate { f } => Some(f),
            _ => None,
        }
    }

    /// Mutable access to the nested function declaration.
    pub fn nested_fun_mut(&mut self) -> Option<&mut FunDecl> {
        match self {
            Pattern::Map { f, .. }
            | Pattern::Reduce { f, .. }
            | Pattern::Iterate { f, .. }
            | Pattern::ToLocal { f }
            | Pattern::ToGlobal { f }
            | Pattern::ToPrivate { f } => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Map {
                kind: MapKind::Glb(d) | MapKind::Wrg(d) | MapKind::Lcl(d),
                ..
            } => write!(f, "{}{}", self.name(), d),
            Pattern::Split { chunk } => write!(f, "split({chunk})"),
            Pattern::Slide { size, step } => write!(f, "slide({size}, {step})"),
            Pattern::Pad {
                left,
                right,
                boundary,
            } => write!(f, "pad({left}, {right}, {})", boundary.c_name()),
            Pattern::PadValue { left, right, value } => {
                write!(f, "padValue({left}, {right}, {value})")
            }
            Pattern::At { index } => write!(f, "at({index})"),
            Pattern::Get { index } => write!(f, "get({index})"),
            Pattern::Iterate { times, .. } => write!(f, "iterate({times})"),
            _ => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_clamp() {
        assert_eq!(Boundary::Clamp.reindex(-2, 10), 0);
        assert_eq!(Boundary::Clamp.reindex(-1, 10), 0);
        assert_eq!(Boundary::Clamp.reindex(0, 10), 0);
        assert_eq!(Boundary::Clamp.reindex(9, 10), 9);
        assert_eq!(Boundary::Clamp.reindex(10, 10), 9);
        assert_eq!(Boundary::Clamp.reindex(15, 10), 9);
    }

    #[test]
    fn boundary_mirror() {
        assert_eq!(Boundary::Mirror.reindex(-1, 10), 0);
        assert_eq!(Boundary::Mirror.reindex(-2, 10), 1);
        assert_eq!(Boundary::Mirror.reindex(10, 10), 9);
        assert_eq!(Boundary::Mirror.reindex(11, 10), 8);
        assert_eq!(Boundary::Mirror.reindex(3, 10), 3);
    }

    #[test]
    fn boundary_wrap() {
        assert_eq!(Boundary::Wrap.reindex(-1, 10), 9);
        assert_eq!(Boundary::Wrap.reindex(10, 10), 0);
        assert_eq!(Boundary::Wrap.reindex(12, 10), 2);
        assert_eq!(Boundary::Wrap.reindex(5, 10), 5);
    }

    #[test]
    fn boundary_results_always_in_bounds() {
        for b in [Boundary::Clamp, Boundary::Mirror, Boundary::Wrap] {
            for n in 1..6 {
                for i in -3 * n..3 * n {
                    let r = b.reindex(i, n);
                    assert!((0..n).contains(&r), "{b:?}({i}, {n}) = {r} out of bounds");
                }
            }
        }
    }

    #[test]
    fn arity() {
        assert_eq!(Pattern::Join.arity(), 1);
        assert_eq!(Pattern::Zip { arity: 3 }.arity(), 3);
        assert_eq!(
            Pattern::Reduce {
                kind: ReduceKind::Par,
                f: FunDecl::pattern(Pattern::Id)
            }
            .arity(),
            2
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(
            Pattern::Slide {
                size: 3.into(),
                step: 1.into()
            }
            .to_string(),
            "slide(3, 1)"
        );
        assert_eq!(
            Pattern::Map {
                kind: MapKind::Glb(0),
                f: FunDecl::pattern(Pattern::Id)
            }
            .to_string(),
            "mapGlb0"
        );
    }

    #[test]
    #[should_panic(expected = "empty array")]
    fn reindex_empty_panics() {
        Boundary::Clamp.reindex(0, 0);
    }
}
