//! Lift types: scalars, tuples and arrays with symbolic sizes.

use std::fmt;

use lift_arith::{ArithEnv, ArithExpr, EvalArithError};

use crate::scalar::ScalarKind;

/// A Lift type.
///
/// Arrays carry their length *in the type* as a symbolic [`ArithExpr`]
/// (written `[T]_n` in the paper); nesting encodes multi-dimensionality.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// A scalar.
    Scalar(ScalarKind),
    /// A tuple `{T1, …, Tk}` as produced by `zip`.
    Tuple(Vec<Type>),
    /// An array `[T]_n`.
    Array(Box<Type>, ArithExpr),
}

impl Type {
    /// The `f32` scalar type.
    pub fn f32() -> Type {
        Type::Scalar(ScalarKind::F32)
    }

    /// The `i32` scalar type.
    pub fn i32() -> Type {
        Type::Scalar(ScalarKind::I32)
    }

    /// The `bool` scalar type.
    pub fn bool() -> Type {
        Type::Scalar(ScalarKind::Bool)
    }

    /// Builds `[elem]_n`.
    pub fn array(elem: Type, n: impl Into<ArithExpr>) -> Type {
        Type::Array(Box::new(elem), n.into())
    }

    /// Builds the 2D array `[[elem]_cols]_rows`.
    pub fn array_2d(elem: Type, rows: impl Into<ArithExpr>, cols: impl Into<ArithExpr>) -> Type {
        Type::array(Type::array(elem, cols), rows)
    }

    /// Builds the 3D array `[[[elem]_x]_y]_z` (outermost size first).
    pub fn array_3d(
        elem: Type,
        z: impl Into<ArithExpr>,
        y: impl Into<ArithExpr>,
        x: impl Into<ArithExpr>,
    ) -> Type {
        Type::array(Type::array_2d(elem, y, x), z)
    }

    /// For an array type, its element type and length.
    pub fn as_array(&self) -> Option<(&Type, &ArithExpr)> {
        match self {
            Type::Array(t, n) => Some((t, n)),
            _ => None,
        }
    }

    /// For a tuple type, its component types.
    pub fn as_tuple(&self) -> Option<&[Type]> {
        match self {
            Type::Tuple(ts) => Some(ts),
            _ => None,
        }
    }

    /// For a scalar type, its kind.
    pub fn as_scalar(&self) -> Option<ScalarKind> {
        match self {
            Type::Scalar(k) => Some(*k),
            _ => None,
        }
    }

    /// Number of leading array dimensions.
    ///
    /// ```
    /// use lift_core::types::Type;
    /// assert_eq!(Type::array_2d(Type::f32(), 4, 8).dims(), 2);
    /// ```
    pub fn dims(&self) -> usize {
        match self {
            Type::Array(t, _) => 1 + t.dims(),
            _ => 0,
        }
    }

    /// The sizes of the leading array dimensions, outermost first.
    pub fn shape(&self) -> Vec<ArithExpr> {
        let mut out = Vec::new();
        let mut t = self;
        while let Type::Array(inner, n) = t {
            out.push(n.clone());
            t = inner;
        }
        out
    }

    /// The type below all leading array dimensions.
    pub fn leaf(&self) -> &Type {
        match self {
            Type::Array(t, _) => t.leaf(),
            other => other,
        }
    }

    /// The scalar kind at the leaf, if the leaf is a scalar.
    pub fn leaf_scalar(&self) -> Option<ScalarKind> {
        self.leaf().as_scalar()
    }

    /// Total number of scalar elements under `env` (arrays only).
    ///
    /// # Errors
    ///
    /// Fails if a size expression mentions an unbound variable.
    pub fn element_count(&self, env: &impl ArithEnv) -> Result<usize, EvalArithError> {
        match self {
            Type::Scalar(_) => Ok(1),
            Type::Tuple(ts) => {
                let mut total = 0;
                for t in ts {
                    total += t.element_count(env)?;
                }
                Ok(total)
            }
            Type::Array(t, n) => Ok(t.element_count(env)? * n.eval_usize(env)?),
        }
    }

    /// Substitutes an arithmetic variable in every size expression.
    pub fn substitute(&self, name: &str, replacement: &ArithExpr) -> Type {
        match self {
            Type::Scalar(_) => self.clone(),
            Type::Tuple(ts) => {
                Type::Tuple(ts.iter().map(|t| t.substitute(name, replacement)).collect())
            }
            Type::Array(t, n) => Type::Array(
                Box::new(t.substitute(name, replacement)),
                n.substitute(name, replacement),
            ),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(k) => write!(f, "{k}"),
            Type::Tuple(ts) => {
                write!(f, "{{")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
            Type::Array(t, n) => write!(f, "[{t}]_{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_arith::Bindings;

    #[test]
    fn shape_and_dims() {
        let n = ArithExpr::var("N");
        let t = Type::array_3d(Type::f32(), n.clone(), 8, 4);
        assert_eq!(t.dims(), 3);
        assert_eq!(t.shape(), vec![n, ArithExpr::from(8), ArithExpr::from(4)]);
        assert_eq!(t.leaf(), &Type::f32());
    }

    #[test]
    fn display_matches_paper_notation() {
        let t = Type::array(Type::f32(), ArithExpr::var("N"));
        assert_eq!(t.to_string(), "[f32]_N");
        let tup = Type::Tuple(vec![Type::f32(), Type::i32()]);
        assert_eq!(tup.to_string(), "{f32, i32}");
    }

    #[test]
    fn element_count_evaluates() {
        let t = Type::array_2d(Type::f32(), ArithExpr::var("N"), 4);
        let env = Bindings::from_iter([("N", 8)]);
        assert_eq!(t.element_count(&env).unwrap(), 32);
    }

    #[test]
    fn substitute_sizes() {
        let t = Type::array(Type::f32(), ArithExpr::var("N") + 2);
        let s = t.substitute("N", &ArithExpr::from(6));
        assert_eq!(s, Type::array(Type::f32(), 8));
    }

    #[test]
    fn leaf_scalar() {
        assert_eq!(
            Type::array_2d(Type::i32(), 2, 2).leaf_scalar(),
            Some(ScalarKind::I32)
        );
        assert_eq!(Type::Tuple(vec![Type::f32()]).leaf_scalar(), None);
    }
}
