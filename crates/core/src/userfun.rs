//! User functions: opaque scalar operations with both C source (embedded in
//! generated OpenCL kernels) and Rust semantics (used by the virtual device
//! and the reference interpreter).

use std::fmt;
use std::sync::Arc;

use crate::scalar::Scalar;
use crate::types::Type;

/// The executable semantics of a user function.
pub type UserFunImpl = dyn Fn(&[Scalar]) -> Scalar + Send + Sync;

/// An arbitrary scalar function, written in C and embedded into generated
/// OpenCL code, with a parallel Rust implementation for simulation.
///
/// This mirrors the paper's `userFun` primitive: *"userFuns define arbitrary
/// functions which operate on scalar values. These functions are written in C
/// and are embedded in the generated OpenCL code."*
///
/// # Example
///
/// ```
/// use lift_core::userfun::UserFun;
/// use lift_core::types::Type;
/// use lift_core::scalar::Scalar;
///
/// let square = UserFun::new(
///     "square",
///     [("x", Type::f32())],
///     Type::f32(),
///     "return x * x;",
///     |args| Scalar::F32(args[0].as_f32() * args[0].as_f32()),
/// );
/// assert_eq!(square.arity(), 1);
/// ```
pub struct UserFun {
    name: String,
    params: Vec<(String, Type)>,
    ret: Type,
    c_body: String,
    eval: Arc<UserFunImpl>,
}

impl UserFun {
    /// Creates a user function.
    ///
    /// `c_body` is the body of the C function (including `return`); the
    /// signature is generated from `params`/`ret` when the kernel is printed.
    /// `eval` must implement identical semantics in Rust.
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        params: impl IntoIterator<Item = (S, Type)>,
        ret: Type,
        c_body: impl Into<String>,
        eval: impl Fn(&[Scalar]) -> Scalar + Send + Sync + 'static,
    ) -> Arc<UserFun> {
        Arc::new(UserFun {
            name: name.into(),
            params: params.into_iter().map(|(n, t)| (n.into(), t)).collect(),
            ret,
            c_body: c_body.into(),
            eval: Arc::new(eval),
        })
    }

    /// The function name (also the C identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter names and types.
    pub fn params(&self) -> &[(String, Type)] {
        &self.params
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// The return type.
    pub fn ret(&self) -> &Type {
        &self.ret
    }

    /// The C body embedded into generated kernels.
    pub fn c_body(&self) -> &str {
        &self.c_body
    }

    /// Renders the complete C function definition.
    pub fn c_definition(&self) -> String {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(n, t)| {
                let c = t
                    .as_scalar()
                    .map(|k| k.c_name())
                    .unwrap_or("float /* non-scalar */");
                format!("{c} {n}")
            })
            .collect();
        let ret = self
            .ret
            .as_scalar()
            .map(|k| k.c_name())
            .unwrap_or("float /* non-scalar */");
        format!(
            "{ret} {name}({params}) {{ {body} }}",
            name = self.name,
            params = params.join(", "),
            body = self.c_body,
        )
    }

    /// Evaluates the function on scalar arguments (simulation semantics).
    ///
    /// # Panics
    ///
    /// Panics if the argument count differs from the arity — applications are
    /// typechecked, so this indicates a compiler bug.
    pub fn call(&self, args: &[Scalar]) -> Scalar {
        assert_eq!(
            args.len(),
            self.arity(),
            "user function `{}` called with wrong arity",
            self.name
        );
        (self.eval)(args)
    }
}

impl fmt::Debug for UserFun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UserFun")
            .field("name", &self.name)
            .field("params", &self.params)
            .field("ret", &self.ret)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for UserFun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl PartialEq for UserFun {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.params == other.params && self.ret == other.ret
    }
}

/// `float add(float a, float b) { return a + b; }`
pub fn add_f32() -> Arc<UserFun> {
    UserFun::new(
        "add",
        [("a", Type::f32()), ("b", Type::f32())],
        Type::f32(),
        "return a + b;",
        |args| Scalar::F32(args[0].as_f32() + args[1].as_f32()),
    )
}

/// `float mult(float a, float b) { return a * b; }`
pub fn mul_f32() -> Arc<UserFun> {
    UserFun::new(
        "mult",
        [("a", Type::f32()), ("b", Type::f32())],
        Type::f32(),
        "return a * b;",
        |args| Scalar::F32(args[0].as_f32() * args[1].as_f32()),
    )
}

/// `float maxf(float a, float b) { return fmax(a, b); }`
pub fn max_f32() -> Arc<UserFun> {
    UserFun::new(
        "maxf",
        [("a", Type::f32()), ("b", Type::f32())],
        Type::f32(),
        "return fmax(a, b);",
        |args| Scalar::F32(args[0].as_f32().max(args[1].as_f32())),
    )
}

/// `float id(float x) { return x; }` — the identity used by copy patterns
/// such as `toLocal(map(id))` (§4.2 of the paper).
pub fn id_f32() -> Arc<UserFun> {
    UserFun::new(
        "id",
        [("x", Type::f32())],
        Type::f32(),
        "return x;",
        |args| args[0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_semantics() {
        assert_eq!(
            add_f32().call(&[Scalar::F32(1.0), Scalar::F32(2.5)]),
            Scalar::F32(3.5)
        );
        assert_eq!(
            mul_f32().call(&[Scalar::F32(2.0), Scalar::F32(4.0)]),
            Scalar::F32(8.0)
        );
        assert_eq!(
            max_f32().call(&[Scalar::F32(2.0), Scalar::F32(4.0)]),
            Scalar::F32(4.0)
        );
        assert_eq!(id_f32().call(&[Scalar::F32(9.0)]), Scalar::F32(9.0));
    }

    #[test]
    fn c_definition_renders() {
        let def = add_f32().c_definition();
        assert_eq!(def, "float add(float a, float b) { return a + b; }");
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn wrong_arity_panics() {
        add_f32().call(&[Scalar::F32(1.0)]);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(*add_f32(), *add_f32());
        assert_ne!(*add_f32(), *mul_f32());
    }
}
