//! Lift expressions: a small λ-calculus over data-parallel primitives.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::pattern::Pattern;
use crate::scalar::Scalar;
use crate::types::Type;
use crate::userfun::UserFun;

static NEXT_PARAM_ID: AtomicU32 = AtomicU32::new(0);

/// A λ-bound parameter.
///
/// Parameters carry their type and a process-unique id; occurrences inside a
/// lambda body reference the parameter by shared [`ParamRef`] identity, so
/// substitution-free binding resolution is possible (no capture issues).
#[derive(Debug)]
pub struct Param {
    id: u32,
    name: String,
    ty: Type,
}

/// Shared handle to a [`Param`].
pub type ParamRef = Arc<Param>;

impl Param {
    /// Creates a parameter with a fresh unique id.
    pub fn fresh(name: impl Into<String>, ty: Type) -> ParamRef {
        Arc::new(Param {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            ty,
        })
    }

    /// The process-unique id of this parameter.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The display name (not necessarily unique).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared type.
    pub fn ty(&self) -> &Type {
        &self.ty
    }
}

/// A Lift expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A reference to a λ-bound parameter.
    Param(ParamRef),
    /// A scalar literal.
    Literal(Scalar),
    /// Application of a function declaration to arguments.
    Apply(Box<Apply>),
}

/// A function application node.
#[derive(Debug, Clone)]
pub struct Apply {
    /// The applied function: a lambda, a primitive pattern, or a user
    /// function.
    pub fun: FunDecl,
    /// The arguments (most primitives are unary; `zip`/`reduce` take more).
    pub args: Vec<Expr>,
}

/// Anything that can be applied to arguments.
#[derive(Debug, Clone)]
pub enum FunDecl {
    /// An anonymous function.
    Lambda(Arc<Lambda>),
    /// A built-in data-parallel primitive.
    Pattern(Box<Pattern>),
    /// An opaque scalar function (C source + Rust semantics).
    UserFun(Arc<UserFun>),
}

/// An anonymous function `λ p1 … pk. body`.
#[derive(Debug)]
pub struct Lambda {
    /// The bound parameters.
    pub params: Vec<ParamRef>,
    /// The function body.
    pub body: Expr,
}

impl Expr {
    /// An `f32` literal.
    pub fn f32(v: f32) -> Expr {
        Expr::Literal(Scalar::F32(v))
    }

    /// An `i32` literal.
    pub fn i32(v: i32) -> Expr {
        Expr::Literal(Scalar::I32(v))
    }

    /// Applies `fun` to `args`.
    pub fn apply(fun: FunDecl, args: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Apply(Box::new(Apply {
            fun,
            args: args.into_iter().collect(),
        }))
    }

    /// Returns the application node if this is an application.
    pub fn as_apply(&self) -> Option<&Apply> {
        match self {
            Expr::Apply(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the pattern if this is an application of a primitive.
    pub fn applied_pattern(&self) -> Option<&Pattern> {
        match self {
            Expr::Apply(a) => a.fun.as_pattern(),
            _ => None,
        }
    }
}

impl FunDecl {
    /// Wraps a pattern.
    pub fn pattern(p: Pattern) -> FunDecl {
        FunDecl::Pattern(Box::new(p))
    }

    /// Builds a lambda from parts.
    pub fn lambda(params: Vec<ParamRef>, body: Expr) -> FunDecl {
        FunDecl::Lambda(Arc::new(Lambda { params, body }))
    }

    /// Returns the pattern if this declaration is one.
    pub fn as_pattern(&self) -> Option<&Pattern> {
        match self {
            FunDecl::Pattern(p) => Some(p),
            _ => None,
        }
    }

    /// Returns the lambda if this declaration is one.
    pub fn as_lambda(&self) -> Option<&Lambda> {
        match self {
            FunDecl::Lambda(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the user function if this declaration is one.
    pub fn as_userfun(&self) -> Option<&Arc<UserFun>> {
        match self {
            FunDecl::UserFun(u) => Some(u),
            _ => None,
        }
    }

    /// Function composition `self ∘ g` as a fresh unary lambda
    /// `λx. self(g(x))`.
    ///
    /// The argument type of the composed function is `arg_ty` (the input of
    /// `g`).
    pub fn compose(self, g: FunDecl, arg_ty: Type) -> FunDecl {
        let p = Param::fresh("x", arg_ty);
        let inner = Expr::apply(g, [Expr::Param(p.clone())]);
        let body = Expr::apply(self, [inner]);
        FunDecl::lambda(vec![p], body)
    }
}

impl From<Arc<UserFun>> for FunDecl {
    fn from(u: Arc<UserFun>) -> Self {
        FunDecl::UserFun(u)
    }
}

impl From<Pattern> for FunDecl {
    fn from(p: Pattern) -> Self {
        FunDecl::pattern(p)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_expr(self, f, 0)
    }
}

impl fmt::Display for FunDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_fun(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::userfun::add_f32;

    #[test]
    fn params_have_unique_ids() {
        let a = Param::fresh("x", Type::f32());
        let b = Param::fresh("x", Type::f32());
        assert_ne!(a.id(), b.id());
        assert_eq!(a.name(), b.name());
    }

    #[test]
    fn apply_structure() {
        let e = Expr::apply(FunDecl::from(add_f32()), [Expr::f32(1.0), Expr::f32(2.0)]);
        let a = e.as_apply().expect("is apply");
        assert_eq!(a.args.len(), 2);
        assert!(a.fun.as_userfun().is_some());
    }

    #[test]
    fn compose_builds_nested_apply() {
        let f = FunDecl::from(add_f32()); // not unary, but structure is what we test
        let g = FunDecl::pattern(Pattern::Id);
        let c = f.compose(g, Type::f32());
        let lam = c.as_lambda().expect("composition is a lambda");
        assert_eq!(lam.params.len(), 1);
        let outer = lam.body.as_apply().expect("body is apply");
        assert!(outer.args[0].as_apply().is_some());
    }
}
