//! Derived n-dimensional combinators (§3.4 of the paper).
//!
//! Multi-dimensional stencils are expressed *by composition* of the 1D
//! primitives:
//!
//! * `map_n(f) = map_{n−1}(map(f))`,
//! * `pad_n(l, r, h) = map_{n−1}(pad(l, r, h)) ∘ pad_{n−1}(l, r, h)`,
//! * `slide_n = reorder ∘ slide ∘ map(slide_{n−1})`, where `reorder` is a
//!   combination of `map^d(transpose)` calls that moves the window
//!   dimensions innermost.
//!
//! The combinators need the argument's type to build intermediate lambdas,
//! so they infer it with the type checker.

use lift_arith::ArithExpr;

use crate::build::{lam, map, pad, pad_value};
use crate::expr::{Expr, FunDecl};
use crate::pattern::{Boundary, Pattern};
use crate::scalar::Scalar;
use crate::typecheck::typecheck;
use crate::types::Type;

/// Infers the element type of an array-typed expression.
///
/// # Panics
///
/// Panics if `e` is ill-typed or not an array — the n-dimensional builders
/// are compiler-construction tools, so this indicates a bug at the call
/// site, not a runtime input error.
fn elem_type(e: &Expr) -> Type {
    let ty = typecheck(e).unwrap_or_else(|err| panic!("ndim builder on ill-typed input: {err}"));
    match ty.as_array() {
        Some((elem, _)) => elem.clone(),
        None => panic!("ndim builder expects an array, got {ty}"),
    }
}

/// Applies the unary function `f` under `depth` nested `map`s.
///
/// `depth = 0` applies `f` directly; `depth = d` rewrites to
/// `map(λx. map_at_depth(d−1, f, x))`.
///
/// # Panics
///
/// Panics if the input is ill-typed for the requested depth.
pub fn map_at_depth(depth: usize, f: FunDecl, input: Expr) -> Expr {
    if depth == 0 {
        return Expr::apply(f, [input]);
    }
    let elem = elem_type(&input);
    map(lam(elem, |x| map_at_depth(depth - 1, f, x)), input)
}

/// `map_nd(rank, f) = map^rank(f)` — maps `f` over the elements of a
/// `rank`-dimensional array (ranks 1–3). [`map2`] and [`map3`] are the
/// fixed-rank spellings of this combinator.
///
/// # Panics
///
/// Panics on ranks outside 1–3 or if `input` is not (at least) a
/// `rank`-dimensional array.
pub fn map_nd(rank: usize, f: impl Into<FunDecl>, input: Expr) -> Expr {
    assert!((1..=3).contains(&rank), "map_nd supports ranks 1-3");
    if rank == 1 {
        return map(f, input);
    }
    map_at_depth(
        rank - 1,
        FunDecl::pattern(Pattern::Map {
            kind: crate::pattern::MapKind::Par,
            f: f.into(),
        }),
        input,
    )
}

/// `map2(f) = map(map(f))` — maps `f` over the elements of a 2D array.
///
/// # Panics
///
/// Panics if `input` is not (at least) a 2D array.
pub fn map2(f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_nd(2, f, input)
}

/// `map3(f) = map(map(map(f)))`.
///
/// # Panics
///
/// Panics if `input` is not (at least) a 3D array.
pub fn map3(f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_nd(3, f, input)
}

/// `pad2(l, r, h) = map(pad(l, r, h)) ∘ pad(l, r, h)` — pads both dimensions
/// of a 2D array with the same boundary handling.
///
/// # Panics
///
/// Panics if `input` is not a 2D array.
pub fn pad2(
    l: impl Into<ArithExpr>,
    r: impl Into<ArithExpr>,
    boundary: Boundary,
    input: Expr,
) -> Expr {
    let (l, r) = (l.into(), r.into());
    let outer = pad(l.clone(), r.clone(), boundary, input);
    let elem = elem_type(&outer);
    map(lam(elem, |row| pad(l, r, boundary, row)), outer)
}

/// `pad3(l, r, h)` — pads all three dimensions of a 3D array.
///
/// # Panics
///
/// Panics if `input` is not a 3D array.
pub fn pad3(
    l: impl Into<ArithExpr>,
    r: impl Into<ArithExpr>,
    boundary: Boundary,
    input: Expr,
) -> Expr {
    let (l, r) = (l.into(), r.into());
    let outer = pad(l.clone(), r.clone(), boundary, input);
    let plane = elem_type(&outer);
    let row = match plane.as_array().map(|(e, _)| e.clone()) {
        Some(rw) => rw,
        None => panic!("pad3 expects a 3D array"),
    };
    map(
        lam(plane, move |p| {
            let padded = pad(l.clone(), r.clone(), boundary, p);
            map(lam(row, |rw| pad(l, r, boundary, rw)), padded)
        }),
        outer,
    )
}

/// `pad2` with a constant boundary value.
///
/// # Panics
///
/// Panics if `input` is not a 2D array.
pub fn pad2_value(
    l: impl Into<ArithExpr>,
    r: impl Into<ArithExpr>,
    value: impl Into<Scalar>,
    input: Expr,
) -> Expr {
    let (l, r, v) = (l.into(), r.into(), value.into());
    let outer = pad_value(l.clone(), r.clone(), v, input);
    let elem = elem_type(&outer);
    map(lam(elem, |row| pad_value(l, r, v, row)), outer)
}

/// `pad3` with a constant boundary value — as used by the acoustic
/// benchmark: `pad3(1, 1, 1, zero, grid)`.
///
/// # Panics
///
/// Panics if `input` is not a 3D array.
pub fn pad3_value(
    l: impl Into<ArithExpr>,
    r: impl Into<ArithExpr>,
    value: impl Into<Scalar>,
    input: Expr,
) -> Expr {
    let (l, r, v) = (l.into(), r.into(), value.into());
    let outer = pad_value(l.clone(), r.clone(), v, input);
    let plane = elem_type(&outer);
    let row = match plane.as_array().map(|(e, _)| e.clone()) {
        Some(rw) => rw,
        None => panic!("pad3_value expects a 3D array"),
    };
    map(
        lam(plane, move |p| {
            let padded = pad_value(l.clone(), r.clone(), v, p);
            map(lam(row, |rw| pad_value(l, r, v, rw)), padded)
        }),
        outer,
    )
}

/// The adjacent-swap schedule that sorts `order` ascending (bubble sort):
/// each emitted depth `d` stands for one `map_at_depth(d, transpose)`
/// swapping dimensions `d` and `d + 1`, applied in emission order.
pub fn adjacent_sort_depths(order: &mut [usize]) -> Vec<usize> {
    let mut depths = Vec::new();
    loop {
        let mut swapped = false;
        for i in 0..order.len().saturating_sub(1) {
            if order[i] > order[i + 1] {
                order.swap(i, i + 1);
                depths.push(i);
                swapped = true;
            }
        }
        if !swapped {
            return depths;
        }
    }
}

/// The transpose depths `slide_nd` emits (in application order) to move the
/// `rank` window dimensions innermost. Exposed so the stencil recogniser in
/// `lift-rewrite` can destructure the composition exactly as it was built.
pub fn slide_reorder_depths(rank: usize) -> Vec<usize> {
    // After sliding every dimension the order is interleaved
    // [g0 w0 g1 w1 …]; the target is [g0 … g_{r−1} w0 … w_{r−1}].
    let mut order: Vec<usize> = (0..rank).flat_map(|d| [d, rank + d]).collect();
    adjacent_sort_depths(&mut order)
}

/// `slide_nd(sizes, steps)` — creates `rank`-dimensional neighbourhoods
/// (ranks 1–3) with an independent window size and step *per dimension*
/// (outermost first): every dimension is slid innermost-first and the
/// resulting `2·rank` dimensions are re-ordered so the window dimensions
/// are innermost (§3.4). [`slide2`] and [`slide3`] are the uniform-window
/// spellings of this combinator, and `slide_nd(&[v], &[v], …)` per
/// dimension is exactly `split` — which is how the tiling rule decomposes
/// element-wise grids.
///
/// # Panics
///
/// Panics on ranks outside 1–3, mismatched `sizes`/`steps` lengths, or if
/// `input` is not a `rank`-dimensional array.
pub fn slide_nd(sizes: &[ArithExpr], steps: &[ArithExpr], input: Expr) -> Expr {
    let rank = sizes.len();
    assert!((1..=3).contains(&rank), "slide_nd supports ranks 1-3");
    assert_eq!(steps.len(), rank, "one step per slid dimension");
    // Slide every dimension, innermost first.
    let mut e = input;
    for d in (0..rank).rev() {
        e = map_at_depth(
            d,
            FunDecl::pattern(Pattern::Slide {
                size: sizes[d].clone(),
                step: steps[d].clone(),
            }),
            e,
        );
    }
    // Move the window dimensions innermost.
    for d in slide_reorder_depths(rank) {
        e = map_at_depth(d, FunDecl::pattern(Pattern::Transpose), e);
    }
    e
}

/// `slide2(size, step) = map(transpose) ∘ slide ∘ map(slide)` — creates 2D
/// neighbourhoods (§3.4).
///
/// The result type is `[[ [[T]_size]_size ]_m']_n'`: a 2D grid of 2D
/// windows.
///
/// # Panics
///
/// Panics if `input` is not a 2D array.
pub fn slide2(size: impl Into<ArithExpr>, step: impl Into<ArithExpr>, input: Expr) -> Expr {
    let (size, step) = (size.into(), step.into());
    slide_nd(&[size.clone(), size], &[step.clone(), step], input)
}

/// `slide3(size, step)` — creates 3D neighbourhoods by sliding every
/// dimension and re-ordering the six resulting dimensions so the three
/// window dimensions are innermost (§3.4).
///
/// # Panics
///
/// Panics if `input` is not a 3D array.
pub fn slide3(size: impl Into<ArithExpr>, step: impl Into<ArithExpr>, input: Expr) -> Expr {
    let (size, step) = (size.into(), step.into());
    slide_nd(
        &[size.clone(), size.clone(), size],
        &[step.clone(), step.clone(), step],
        input,
    )
}

/// `zip` of two 2D arrays element-wise: `[[{T,U}]_m]_n` (zips every
/// dimension, not just the outermost).
///
/// # Panics
///
/// Panics if the inputs are not equal-shaped 2D arrays.
pub fn zip2_2d(a: Expr, b: Expr) -> Expr {
    let outer = crate::build::zip2(a, b);
    let elem = elem_type(&outer);
    map(
        lam(elem, |t| {
            crate::build::zip2(crate::build::get(0, t.clone()), crate::build::get(1, t))
        }),
        outer,
    )
}

/// `zip` of two 3D arrays element-wise.
///
/// # Panics
///
/// Panics if the inputs are not equal-shaped 3D arrays.
pub fn zip2_3d(a: Expr, b: Expr) -> Expr {
    let outer = crate::build::zip2(a, b);
    let elem = elem_type(&outer);
    map(
        lam(elem, |t| {
            zip2_2d(crate::build::get(0, t.clone()), crate::build::get(1, t))
        }),
        outer,
    )
}

/// `zip3` of three 2D arrays element-wise.
///
/// # Panics
///
/// Panics if the inputs are not equal-shaped 2D arrays.
pub fn zip3_2d(a: Expr, b: Expr, c: Expr) -> Expr {
    let outer = crate::build::zip3(a, b, c);
    let elem = elem_type(&outer);
    map(
        lam(elem, |t| {
            crate::build::zip3(
                crate::build::get(0, t.clone()),
                crate::build::get(1, t.clone()),
                crate::build::get(2, t),
            )
        }),
        outer,
    )
}

/// Element-wise `zip` of equal-shaped `rank`-dimensional arrays (ranks
/// 1–3, arities 2–3): the rank-generic spelling of
/// [`zip2_2d`]/[`zip3_3d`] and friends.
///
/// # Panics
///
/// Panics on an unsupported rank/arity combination or ill-shaped inputs.
pub fn zip_nd(rank: usize, mut comps: Vec<Expr>) -> Expr {
    let pop = |c: &mut Vec<Expr>| c.remove(0);
    match (rank, comps.len()) {
        (1, 2) => {
            let (a, b) = (pop(&mut comps), pop(&mut comps));
            crate::build::zip2(a, b)
        }
        (1, 3) => {
            let (a, b, c) = (pop(&mut comps), pop(&mut comps), pop(&mut comps));
            crate::build::zip3(a, b, c)
        }
        (2, 2) => {
            let (a, b) = (pop(&mut comps), pop(&mut comps));
            zip2_2d(a, b)
        }
        (2, 3) => {
            let (a, b, c) = (pop(&mut comps), pop(&mut comps), pop(&mut comps));
            zip3_2d(a, b, c)
        }
        (3, 2) => {
            let (a, b) = (pop(&mut comps), pop(&mut comps));
            zip2_3d(a, b)
        }
        (3, 3) => {
            let (a, b, c) = (pop(&mut comps), pop(&mut comps), pop(&mut comps));
            zip3_3d(a, b, c)
        }
        (r, k) => panic!("zip_nd: unsupported rank {r} / arity {k}"),
    }
}

/// `zip3` of three 3D arrays element-wise — the shape the acoustic
/// benchmark's `zip3` uses (§3.5).
///
/// # Panics
///
/// Panics if the inputs are not equal-shaped 3D arrays.
pub fn zip3_3d(a: Expr, b: Expr, c: Expr) -> Expr {
    let outer = crate::build::zip3(a, b, c);
    let elem = elem_type(&outer);
    map(
        lam(elem, |t| {
            zip3_2d(
                crate::build::get(0, t.clone()),
                crate::build::get(1, t.clone()),
                crate::build::get(2, t),
            )
        }),
        outer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::id;
    use crate::expr::Param;

    fn var(n: &str) -> ArithExpr {
        ArithExpr::var(n)
    }

    fn grid2(n: impl Into<ArithExpr>, m: impl Into<ArithExpr>) -> Expr {
        Expr::Param(Param::fresh("G", Type::array_2d(Type::f32(), n, m)))
    }

    fn grid3(o: impl Into<ArithExpr>, n: impl Into<ArithExpr>, m: impl Into<ArithExpr>) -> Expr {
        Expr::Param(Param::fresh("G", Type::array_3d(Type::f32(), o, n, m)))
    }

    #[test]
    fn map2_preserves_shape() {
        let e = map2(id(), grid2(var("N"), var("M")));
        let ty = typecheck(&e).unwrap();
        assert_eq!(ty, Type::array_2d(Type::f32(), var("N"), var("M")));
    }

    #[test]
    fn map3_preserves_shape() {
        let e = map3(id(), grid3(2, 3, 4));
        let ty = typecheck(&e).unwrap();
        assert_eq!(ty, Type::array_3d(Type::f32(), 2, 3, 4));
    }

    #[test]
    fn pad2_grows_both_dims() {
        let e = pad2(1, 1, Boundary::Clamp, grid2(var("N"), var("M")));
        let ty = typecheck(&e).unwrap();
        assert_eq!(ty, Type::array_2d(Type::f32(), var("N") + 2, var("M") + 2));
    }

    #[test]
    fn pad3_value_grows_all_dims() {
        let e = pad3_value(1, 1, 0.0f32, grid3(var("O"), var("N"), var("M")));
        let ty = typecheck(&e).unwrap();
        assert_eq!(
            ty,
            Type::array_3d(Type::f32(), var("O") + 2, var("N") + 2, var("M") + 2)
        );
    }

    #[test]
    fn slide2_type_matches_paper() {
        // slide2(2, 1) on a 3×3 grid: 2×2 grid of 2×2 neighbourhoods.
        let e = slide2(2, 1, grid2(3, 3));
        let ty = typecheck(&e).unwrap();
        let expected = Type::array(Type::array(Type::array_2d(Type::f32(), 2, 2), 2), 2);
        assert_eq!(ty, expected);
    }

    #[test]
    fn slide2_symbolic_counts() {
        let e = slide2(3, 1, grid2(var("N"), var("M")));
        let ty = typecheck(&e).unwrap();
        let shape = ty.shape();
        assert_eq!(shape[0], var("N") - 2);
        assert_eq!(shape[1], var("M") - 2);
        assert_eq!(shape[2], ArithExpr::from(3));
        assert_eq!(shape[3], ArithExpr::from(3));
    }

    #[test]
    fn slide3_produces_3d_neighbourhoods() {
        let e = slide3(3, 1, grid3(var("O") + 2, var("N") + 2, var("M") + 2));
        let ty = typecheck(&e).unwrap();
        let shape = ty.shape();
        assert_eq!(shape.len(), 6);
        assert_eq!(shape[0], var("O"));
        assert_eq!(shape[1], var("N"));
        assert_eq!(shape[2], var("M"));
        assert_eq!(shape[3], ArithExpr::from(3));
        assert_eq!(shape[4], ArithExpr::from(3));
        assert_eq!(shape[5], ArithExpr::from(3));
    }

    #[test]
    #[should_panic(expected = "expects an array")]
    fn map_at_depth_on_scalar_panics() {
        map_at_depth(1, id(), Expr::f32(0.0));
    }

    #[test]
    fn zip2_2d_zips_every_dimension() {
        let a = grid2(4, 6);
        let b = grid2(4, 6);
        let e = zip2_2d(a, b);
        let ty = typecheck(&e).unwrap();
        assert_eq!(
            ty,
            Type::array_2d(Type::Tuple(vec![Type::f32(), Type::f32()]), 4, 6)
        );
    }

    #[test]
    fn zip3_3d_zips_every_dimension() {
        let (a, b, c) = (grid3(2, 3, 4), grid3(2, 3, 4), grid3(2, 3, 4));
        let e = zip3_3d(a, b, c);
        let ty = typecheck(&e).unwrap();
        assert_eq!(
            ty,
            Type::array_3d(
                Type::Tuple(vec![Type::f32(), Type::f32(), Type::f32()]),
                2,
                3,
                4
            )
        );
    }
}
