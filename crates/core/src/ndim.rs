//! Derived n-dimensional combinators (§3.4 of the paper).
//!
//! Multi-dimensional stencils are expressed *by composition* of the 1D
//! primitives:
//!
//! * `map_n(f) = map_{n−1}(map(f))`,
//! * `pad_n(l, r, h) = map_{n−1}(pad(l, r, h)) ∘ pad_{n−1}(l, r, h)`,
//! * `slide_n = reorder ∘ slide ∘ map(slide_{n−1})`, where `reorder` is a
//!   combination of `map^d(transpose)` calls that moves the window
//!   dimensions innermost.
//!
//! The combinators need the argument's type to build intermediate lambdas,
//! so they infer it with the type checker.

use lift_arith::ArithExpr;

use crate::build::{lam, map, pad, pad_value, slide};
use crate::expr::{Expr, FunDecl};
use crate::pattern::{Boundary, Pattern};
use crate::scalar::Scalar;
use crate::typecheck::typecheck;
use crate::types::Type;

/// Infers the element type of an array-typed expression.
///
/// # Panics
///
/// Panics if `e` is ill-typed or not an array — the n-dimensional builders
/// are compiler-construction tools, so this indicates a bug at the call
/// site, not a runtime input error.
fn elem_type(e: &Expr) -> Type {
    let ty = typecheck(e).unwrap_or_else(|err| panic!("ndim builder on ill-typed input: {err}"));
    match ty.as_array() {
        Some((elem, _)) => elem.clone(),
        None => panic!("ndim builder expects an array, got {ty}"),
    }
}

/// Applies the unary function `f` under `depth` nested `map`s.
///
/// `depth = 0` applies `f` directly; `depth = d` rewrites to
/// `map(λx. map_at_depth(d−1, f, x))`.
///
/// # Panics
///
/// Panics if the input is ill-typed for the requested depth.
pub fn map_at_depth(depth: usize, f: FunDecl, input: Expr) -> Expr {
    if depth == 0 {
        return Expr::apply(f, [input]);
    }
    let elem = elem_type(&input);
    map(lam(elem, |x| map_at_depth(depth - 1, f, x)), input)
}

/// `map2(f) = map(map(f))` — maps `f` over the elements of a 2D array.
///
/// # Panics
///
/// Panics if `input` is not (at least) a 2D array.
pub fn map2(f: impl Into<FunDecl>, input: Expr) -> Expr {
    map_at_depth(
        1,
        FunDecl::pattern(Pattern::Map {
            kind: crate::pattern::MapKind::Par,
            f: f.into(),
        }),
        input,
    )
}

/// `map3(f) = map(map(map(f)))`.
///
/// # Panics
///
/// Panics if `input` is not (at least) a 3D array.
pub fn map3(f: impl Into<FunDecl>, input: Expr) -> Expr {
    let inner = FunDecl::pattern(Pattern::Map {
        kind: crate::pattern::MapKind::Par,
        f: f.into(),
    });
    let middle = {
        let elem2 = match typecheck(&input)
            .expect("map3 on ill-typed input")
            .as_array()
            .map(|(e, _)| e.clone())
        {
            Some(e) => e,
            None => panic!("map3 expects a 3D array"),
        };
        let row = match elem2.as_array().map(|(e, _)| e.clone()) {
            Some(r) => r,
            None => panic!("map3 expects a 3D array"),
        };
        lam(elem2, move |plane| {
            map(lam(row, |r| Expr::apply(inner, [r])), plane)
        })
    };
    map(middle, input)
}

/// `pad2(l, r, h) = map(pad(l, r, h)) ∘ pad(l, r, h)` — pads both dimensions
/// of a 2D array with the same boundary handling.
///
/// # Panics
///
/// Panics if `input` is not a 2D array.
pub fn pad2(
    l: impl Into<ArithExpr>,
    r: impl Into<ArithExpr>,
    boundary: Boundary,
    input: Expr,
) -> Expr {
    let (l, r) = (l.into(), r.into());
    let outer = pad(l.clone(), r.clone(), boundary, input);
    let elem = elem_type(&outer);
    map(lam(elem, |row| pad(l, r, boundary, row)), outer)
}

/// `pad3(l, r, h)` — pads all three dimensions of a 3D array.
///
/// # Panics
///
/// Panics if `input` is not a 3D array.
pub fn pad3(
    l: impl Into<ArithExpr>,
    r: impl Into<ArithExpr>,
    boundary: Boundary,
    input: Expr,
) -> Expr {
    let (l, r) = (l.into(), r.into());
    let outer = pad(l.clone(), r.clone(), boundary, input);
    let plane = elem_type(&outer);
    let row = match plane.as_array().map(|(e, _)| e.clone()) {
        Some(rw) => rw,
        None => panic!("pad3 expects a 3D array"),
    };
    map(
        lam(plane, move |p| {
            let padded = pad(l.clone(), r.clone(), boundary, p);
            map(lam(row, |rw| pad(l, r, boundary, rw)), padded)
        }),
        outer,
    )
}

/// `pad2` with a constant boundary value.
///
/// # Panics
///
/// Panics if `input` is not a 2D array.
pub fn pad2_value(
    l: impl Into<ArithExpr>,
    r: impl Into<ArithExpr>,
    value: impl Into<Scalar>,
    input: Expr,
) -> Expr {
    let (l, r, v) = (l.into(), r.into(), value.into());
    let outer = pad_value(l.clone(), r.clone(), v, input);
    let elem = elem_type(&outer);
    map(lam(elem, |row| pad_value(l, r, v, row)), outer)
}

/// `pad3` with a constant boundary value — as used by the acoustic
/// benchmark: `pad3(1, 1, 1, zero, grid)`.
///
/// # Panics
///
/// Panics if `input` is not a 3D array.
pub fn pad3_value(
    l: impl Into<ArithExpr>,
    r: impl Into<ArithExpr>,
    value: impl Into<Scalar>,
    input: Expr,
) -> Expr {
    let (l, r, v) = (l.into(), r.into(), value.into());
    let outer = pad_value(l.clone(), r.clone(), v, input);
    let plane = elem_type(&outer);
    let row = match plane.as_array().map(|(e, _)| e.clone()) {
        Some(rw) => rw,
        None => panic!("pad3_value expects a 3D array"),
    };
    map(
        lam(plane, move |p| {
            let padded = pad_value(l.clone(), r.clone(), v, p);
            map(lam(row, |rw| pad_value(l, r, v, rw)), padded)
        }),
        outer,
    )
}

/// `slide2(size, step) = map(transpose) ∘ slide ∘ map(slide)` — creates 2D
/// neighbourhoods (§3.4).
///
/// The result type is `[[ [[T]_size]_size ]_m']_n'`: a 2D grid of 2D
/// windows.
///
/// # Panics
///
/// Panics if `input` is not a 2D array.
pub fn slide2(size: impl Into<ArithExpr>, step: impl Into<ArithExpr>, input: Expr) -> Expr {
    let (size, step) = (size.into(), step.into());
    let elem = elem_type(&input);
    let inner = map(
        lam(elem, |row| slide(size.clone(), step.clone(), row)),
        input,
    );
    let outer = slide(size, step, inner);
    map_at_depth(1, FunDecl::pattern(Pattern::Transpose), outer)
}

/// `slide3(size, step)` — creates 3D neighbourhoods by sliding every
/// dimension and re-ordering the six resulting dimensions so the three
/// window dimensions are innermost (§3.4).
///
/// # Panics
///
/// Panics if `input` is not a 3D array.
pub fn slide3(size: impl Into<ArithExpr>, step: impl Into<ArithExpr>, input: Expr) -> Expr {
    let (size, step) = (size.into(), step.into());
    // Slide the innermost dimension: map(map(slide)).
    let plane_ty = elem_type(&input);
    let row_ty = match plane_ty.as_array().map(|(e, _)| e.clone()) {
        Some(r) => r,
        None => panic!("slide3 expects a 3D array"),
    };
    let s_inner = map(
        lam(plane_ty, {
            let (size, step) = (size.clone(), step.clone());
            move |plane| {
                map(
                    lam(row_ty, |row| slide(size.clone(), step.clone(), row)),
                    plane,
                )
            }
        }),
        input,
    );
    // Slide the middle dimension: map(slide).
    let elem = elem_type(&s_inner);
    let s_middle = map(
        lam(elem, {
            let (size, step) = (size.clone(), step.clone());
            move |x| slide(size, step, x)
        }),
        s_inner,
    );
    // Slide the outermost dimension.
    let s_outer = slide(size, step, s_middle);
    // Dimensions are now [o' s3 n' s2 m' s]; reorder to [o' n' m' s3 s2 s]
    // by swapping adjacent dimensions with transposes at depths 1, 3, 2.
    let t1 = map_at_depth(1, FunDecl::pattern(Pattern::Transpose), s_outer);
    let t2 = map_at_depth(3, FunDecl::pattern(Pattern::Transpose), t1);
    map_at_depth(2, FunDecl::pattern(Pattern::Transpose), t2)
}

/// `zip` of two 2D arrays element-wise: `[[{T,U}]_m]_n` (zips every
/// dimension, not just the outermost).
///
/// # Panics
///
/// Panics if the inputs are not equal-shaped 2D arrays.
pub fn zip2_2d(a: Expr, b: Expr) -> Expr {
    let outer = crate::build::zip2(a, b);
    let elem = elem_type(&outer);
    map(
        lam(elem, |t| {
            crate::build::zip2(crate::build::get(0, t.clone()), crate::build::get(1, t))
        }),
        outer,
    )
}

/// `zip` of two 3D arrays element-wise.
///
/// # Panics
///
/// Panics if the inputs are not equal-shaped 3D arrays.
pub fn zip2_3d(a: Expr, b: Expr) -> Expr {
    let outer = crate::build::zip2(a, b);
    let elem = elem_type(&outer);
    map(
        lam(elem, |t| {
            zip2_2d(crate::build::get(0, t.clone()), crate::build::get(1, t))
        }),
        outer,
    )
}

/// `zip3` of three 2D arrays element-wise.
///
/// # Panics
///
/// Panics if the inputs are not equal-shaped 2D arrays.
pub fn zip3_2d(a: Expr, b: Expr, c: Expr) -> Expr {
    let outer = crate::build::zip3(a, b, c);
    let elem = elem_type(&outer);
    map(
        lam(elem, |t| {
            crate::build::zip3(
                crate::build::get(0, t.clone()),
                crate::build::get(1, t.clone()),
                crate::build::get(2, t),
            )
        }),
        outer,
    )
}

/// `zip3` of three 3D arrays element-wise — the shape the acoustic
/// benchmark's `zip3` uses (§3.5).
///
/// # Panics
///
/// Panics if the inputs are not equal-shaped 3D arrays.
pub fn zip3_3d(a: Expr, b: Expr, c: Expr) -> Expr {
    let outer = crate::build::zip3(a, b, c);
    let elem = elem_type(&outer);
    map(
        lam(elem, |t| {
            zip3_2d(
                crate::build::get(0, t.clone()),
                crate::build::get(1, t.clone()),
                crate::build::get(2, t),
            )
        }),
        outer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::id;
    use crate::expr::Param;

    fn var(n: &str) -> ArithExpr {
        ArithExpr::var(n)
    }

    fn grid2(n: impl Into<ArithExpr>, m: impl Into<ArithExpr>) -> Expr {
        Expr::Param(Param::fresh("G", Type::array_2d(Type::f32(), n, m)))
    }

    fn grid3(o: impl Into<ArithExpr>, n: impl Into<ArithExpr>, m: impl Into<ArithExpr>) -> Expr {
        Expr::Param(Param::fresh("G", Type::array_3d(Type::f32(), o, n, m)))
    }

    #[test]
    fn map2_preserves_shape() {
        let e = map2(id(), grid2(var("N"), var("M")));
        let ty = typecheck(&e).unwrap();
        assert_eq!(ty, Type::array_2d(Type::f32(), var("N"), var("M")));
    }

    #[test]
    fn map3_preserves_shape() {
        let e = map3(id(), grid3(2, 3, 4));
        let ty = typecheck(&e).unwrap();
        assert_eq!(ty, Type::array_3d(Type::f32(), 2, 3, 4));
    }

    #[test]
    fn pad2_grows_both_dims() {
        let e = pad2(1, 1, Boundary::Clamp, grid2(var("N"), var("M")));
        let ty = typecheck(&e).unwrap();
        assert_eq!(ty, Type::array_2d(Type::f32(), var("N") + 2, var("M") + 2));
    }

    #[test]
    fn pad3_value_grows_all_dims() {
        let e = pad3_value(1, 1, 0.0f32, grid3(var("O"), var("N"), var("M")));
        let ty = typecheck(&e).unwrap();
        assert_eq!(
            ty,
            Type::array_3d(Type::f32(), var("O") + 2, var("N") + 2, var("M") + 2)
        );
    }

    #[test]
    fn slide2_type_matches_paper() {
        // slide2(2, 1) on a 3×3 grid: 2×2 grid of 2×2 neighbourhoods.
        let e = slide2(2, 1, grid2(3, 3));
        let ty = typecheck(&e).unwrap();
        let expected = Type::array(Type::array(Type::array_2d(Type::f32(), 2, 2), 2), 2);
        assert_eq!(ty, expected);
    }

    #[test]
    fn slide2_symbolic_counts() {
        let e = slide2(3, 1, grid2(var("N"), var("M")));
        let ty = typecheck(&e).unwrap();
        let shape = ty.shape();
        assert_eq!(shape[0], var("N") - 2);
        assert_eq!(shape[1], var("M") - 2);
        assert_eq!(shape[2], ArithExpr::from(3));
        assert_eq!(shape[3], ArithExpr::from(3));
    }

    #[test]
    fn slide3_produces_3d_neighbourhoods() {
        let e = slide3(3, 1, grid3(var("O") + 2, var("N") + 2, var("M") + 2));
        let ty = typecheck(&e).unwrap();
        let shape = ty.shape();
        assert_eq!(shape.len(), 6);
        assert_eq!(shape[0], var("O"));
        assert_eq!(shape[1], var("N"));
        assert_eq!(shape[2], var("M"));
        assert_eq!(shape[3], ArithExpr::from(3));
        assert_eq!(shape[4], ArithExpr::from(3));
        assert_eq!(shape[5], ArithExpr::from(3));
    }

    #[test]
    #[should_panic(expected = "expects an array")]
    fn map_at_depth_on_scalar_panics() {
        map_at_depth(1, id(), Expr::f32(0.0));
    }

    #[test]
    fn zip2_2d_zips_every_dimension() {
        let a = grid2(4, 6);
        let b = grid2(4, 6);
        let e = zip2_2d(a, b);
        let ty = typecheck(&e).unwrap();
        assert_eq!(
            ty,
            Type::array_2d(Type::Tuple(vec![Type::f32(), Type::f32()]), 4, 6)
        );
    }

    #[test]
    fn zip3_3d_zips_every_dimension() {
        let (a, b, c) = (grid3(2, 3, 4), grid3(2, 3, 4), grid3(2, 3, 4));
        let e = zip3_3d(a, b, c);
        let ty = typecheck(&e).unwrap();
        assert_eq!(
            ty,
            Type::array_3d(
                Type::Tuple(vec![Type::f32(), Type::f32(), Type::f32()]),
                2,
                3,
                4
            )
        );
    }
}
