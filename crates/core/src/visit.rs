//! Generic traversal and rewriting over Lift expressions.
//!
//! The rewrite-rule engine (crate `lift-rewrite`) expresses every
//! optimisation as a local transformation `Expr → Option<Expr>`; this module
//! supplies the machinery to apply such transformations at specific
//! positions, everywhere, or to enumerate candidate positions. Traversal
//! descends through `Apply` arguments *and* into the bodies of lambdas and
//! pattern-nested functions, so rules can fire anywhere in a program.

use crate::expr::{Expr, FunDecl, Lambda};
use crate::pattern::Pattern;

/// A local rewrite: returns the replacement when it matches at this node.
pub type LocalRewrite<'a> = &'a dyn Fn(&Expr) -> Option<Expr>;

/// Applies `rule` at the first matching node (pre-order), returning the
/// rewritten expression, or `None` if the rule matched nowhere.
pub fn rewrite_first(e: &Expr, rule: LocalRewrite) -> Option<Expr> {
    if let Some(new) = rule(e) {
        return Some(new);
    }
    match e {
        Expr::Param(_) | Expr::Literal(_) => None,
        Expr::Apply(app) => {
            if let Some(new_fun) = rewrite_first_fun(&app.fun, rule) {
                return Some(Expr::apply(new_fun, app.args.iter().cloned()));
            }
            for (i, a) in app.args.iter().enumerate() {
                if let Some(new_a) = rewrite_first(a, rule) {
                    let mut args = app.args.clone();
                    args[i] = new_a;
                    return Some(Expr::apply(app.fun.clone(), args));
                }
            }
            None
        }
    }
}

fn rewrite_first_fun(f: &FunDecl, rule: LocalRewrite) -> Option<FunDecl> {
    match f {
        FunDecl::Lambda(l) => {
            rewrite_first(&l.body, rule).map(|body| FunDecl::lambda(l.params.clone(), body))
        }
        FunDecl::UserFun(_) => None,
        FunDecl::Pattern(p) => rewrite_first_pattern(p, rule).map(FunDecl::pattern),
    }
}

fn rewrite_first_pattern(p: &Pattern, rule: LocalRewrite) -> Option<Pattern> {
    let nested = p.nested_fun()?;
    let new = rewrite_first_fun(nested, rule)?;
    let mut out = p.clone();
    *out.nested_fun_mut().expect("pattern had a nested fun") = new;
    Some(out)
}

/// Applies `rule` wherever it matches, bottom-up, at most once per node.
///
/// Because children are rewritten before parents, a rule whose output
/// re-matches its own input does not loop.
pub fn rewrite_everywhere(e: &Expr, rule: LocalRewrite) -> Expr {
    let rebuilt = match e {
        Expr::Param(_) | Expr::Literal(_) => e.clone(),
        Expr::Apply(app) => {
            let fun = rewrite_everywhere_fun(&app.fun, rule);
            let args: Vec<Expr> = app
                .args
                .iter()
                .map(|a| rewrite_everywhere(a, rule))
                .collect();
            Expr::apply(fun, args)
        }
    };
    rule(&rebuilt).unwrap_or(rebuilt)
}

fn rewrite_everywhere_fun(f: &FunDecl, rule: LocalRewrite) -> FunDecl {
    match f {
        FunDecl::Lambda(l) => FunDecl::lambda(l.params.clone(), rewrite_everywhere(&l.body, rule)),
        FunDecl::UserFun(_) => f.clone(),
        FunDecl::Pattern(p) => {
            if p.nested_fun().is_some() {
                let mut out = p.as_ref().clone();
                let nested = out.nested_fun_mut().expect("checked above");
                *nested = rewrite_everywhere_fun(nested, rule);
                FunDecl::pattern(out)
            } else {
                f.clone()
            }
        }
    }
}

/// Pre-order positions (0-based) at which `pred` holds.
///
/// Positions index expression nodes only, but the traversal descends into
/// lambda bodies, so rules can target nodes inside nested functions.
pub fn find_positions(e: &Expr, pred: &dyn Fn(&Expr) -> bool) -> Vec<usize> {
    let mut out = Vec::new();
    let mut idx = 0;
    walk(e, &mut |node| {
        if pred(node) {
            out.push(idx);
        }
        idx += 1;
    });
    out
}

/// Applies `rule` only at pre-order position `pos`.
///
/// Returns `None` if the position does not exist or the rule does not match
/// there.
pub fn rewrite_at(e: &Expr, pos: usize, rule: LocalRewrite) -> Option<Expr> {
    let mut idx = 0usize;
    rewrite_at_inner(e, pos, &mut idx, rule)
}

fn rewrite_at_inner(e: &Expr, pos: usize, idx: &mut usize, rule: LocalRewrite) -> Option<Expr> {
    let here = *idx;
    *idx += 1;
    if here == pos {
        return rule(e);
    }
    match e {
        Expr::Param(_) | Expr::Literal(_) => None,
        Expr::Apply(app) => {
            if let Some(new_fun) = rewrite_at_fun(&app.fun, pos, idx, rule) {
                return Some(Expr::apply(new_fun, app.args.iter().cloned()));
            }
            for (i, a) in app.args.iter().enumerate() {
                if let Some(new_a) = rewrite_at_inner(a, pos, idx, rule) {
                    let mut args = app.args.clone();
                    args[i] = new_a;
                    return Some(Expr::apply(app.fun.clone(), args));
                }
            }
            None
        }
    }
}

fn rewrite_at_fun(f: &FunDecl, pos: usize, idx: &mut usize, rule: LocalRewrite) -> Option<FunDecl> {
    match f {
        FunDecl::Lambda(l) => rewrite_at_inner(&l.body, pos, idx, rule)
            .map(|body| FunDecl::lambda(l.params.clone(), body)),
        FunDecl::UserFun(_) => None,
        FunDecl::Pattern(p) => {
            let nested = p.nested_fun()?;
            let new = rewrite_at_fun(nested, pos, idx, rule)?;
            let mut out = p.as_ref().clone();
            *out.nested_fun_mut().expect("pattern had a nested fun") = new;
            Some(FunDecl::pattern(out))
        }
    }
}

/// Pre-order walk over every expression node (including inside lambdas).
pub fn walk(e: &Expr, visit: &mut dyn FnMut(&Expr)) {
    visit(e);
    if let Expr::Apply(app) = e {
        walk_fun(&app.fun, visit);
        for a in &app.args {
            walk(a, visit);
        }
    }
}

fn walk_fun(f: &FunDecl, visit: &mut dyn FnMut(&Expr)) {
    match f {
        FunDecl::Lambda(l) => walk(&l.body, visit),
        FunDecl::UserFun(_) => {}
        FunDecl::Pattern(p) => {
            if let Some(nested) = p.nested_fun() {
                walk_fun(nested, visit);
            }
        }
    }
}

/// Counts expression nodes (as visited by [`walk`]).
pub fn count_nodes(e: &Expr) -> usize {
    let mut n = 0;
    walk(e, &mut |_| n += 1);
    n
}

/// Rebuilds a lambda with a transformed body, keeping the parameters.
pub fn map_lambda_body(l: &Lambda, f: impl FnOnce(&Expr) -> Expr) -> FunDecl {
    FunDecl::lambda(l.params.clone(), f(&l.body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::expr::Param;
    use crate::pattern::{Boundary, MapKind};
    use crate::types::Type;
    use lift_arith::ArithExpr;

    fn sample() -> Expr {
        let a = Expr::Param(Param::fresh(
            "A",
            Type::array(Type::f32(), ArithExpr::var("N")),
        ));
        map(id(), slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
    }

    fn is_slide(e: &Expr) -> bool {
        matches!(e.applied_pattern(), Some(Pattern::Slide { .. }))
    }

    #[test]
    fn walk_visits_all_nodes() {
        // map(id)(slide(pad(A))): nodes = map-apply, slide-apply, pad-apply, A.
        assert_eq!(count_nodes(&sample()), 4);
    }

    #[test]
    fn find_positions_locates_slide() {
        let pos = find_positions(&sample(), &is_slide);
        assert_eq!(pos, vec![1]);
    }

    #[test]
    fn rewrite_first_replaces_once() {
        // Replace the slide node by its own input (drops the slide).
        let rule = |e: &Expr| -> Option<Expr> {
            if is_slide(e) {
                Some(e.as_apply().expect("apply").args[0].clone())
            } else {
                None
            }
        };
        let out = rewrite_first(&sample(), &rule).expect("matched");
        assert_eq!(find_positions(&out, &is_slide), Vec::<usize>::new());
        assert_eq!(count_nodes(&out), 3);
    }

    #[test]
    fn rewrite_at_position() {
        let rule = |e: &Expr| -> Option<Expr> {
            is_slide(e).then(|| e.as_apply().expect("apply").args[0].clone())
        };
        assert!(rewrite_at(&sample(), 0, &rule).is_none()); // map node: no match
        assert!(rewrite_at(&sample(), 1, &rule).is_some()); // slide node
        assert!(rewrite_at(&sample(), 99, &rule).is_none()); // out of range
    }

    #[test]
    fn rewrite_everywhere_descends_into_lambdas() {
        // map(λx. slide(3,1,x)) — the slide sits inside a lambda body.
        let a = Expr::Param(Param::fresh(
            "A",
            Type::array_2d(Type::f32(), ArithExpr::var("N"), 8),
        ));
        let e = map(lam(Type::array(Type::f32(), 8), |row| slide(3, 1, row)), a);
        // find_positions descends into the lambda body and sees the slide.
        let pos = find_positions(&e, &is_slide);
        assert_eq!(pos.len(), 1);
        // rewrite_first also reaches it.
        let rule = |node: &Expr| -> Option<Expr> {
            is_slide(node).then(|| node.as_apply().expect("apply").args[0].clone())
        };
        let out = rewrite_first(&e, &rule).expect("matched inside lambda");
        assert_eq!(find_positions(&out, &is_slide).len(), 0);
    }

    #[test]
    fn rewrite_everywhere_changes_map_kinds() {
        let out = rewrite_everywhere(&sample(), &|e| match e.applied_pattern() {
            Some(Pattern::Map {
                kind: MapKind::Par,
                f,
            }) => Some(Expr::apply(
                FunDecl::pattern(Pattern::Map {
                    kind: MapKind::Glb(0),
                    f: f.clone(),
                }),
                e.as_apply().expect("apply").args.iter().cloned(),
            )),
            _ => None,
        });
        let glb = find_positions(&out, &|e| {
            matches!(
                e.applied_pattern(),
                Some(Pattern::Map {
                    kind: MapKind::Glb(0),
                    ..
                })
            )
        });
        assert_eq!(glb.len(), 1);
    }
}
