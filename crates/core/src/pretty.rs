//! Pretty printing of Lift expressions in the paper's surface notation.

use std::fmt;

use crate::expr::{Expr, FunDecl};

/// Formats an expression; `depth` guards very deep nests.
pub(crate) fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    match e {
        Expr::Param(p) => write!(f, "{}", p.name()),
        Expr::Literal(s) => write!(f, "{s}"),
        Expr::Apply(app) => {
            fmt_fun(&app.fun, f, depth)?;
            write!(f, "(")?;
            for (i, a) in app.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(a, f, depth + 1)?;
            }
            write!(f, ")")
        }
    }
}

/// Formats a function declaration.
pub(crate) fn fmt_fun(fun: &FunDecl, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    match fun {
        FunDecl::Lambda(l) => {
            write!(f, "fun(")?;
            for (i, p) in l.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", p.name())?;
            }
            write!(f, " => ")?;
            fmt_expr(&l.body, f, depth + 1)?;
            write!(f, ")")
        }
        FunDecl::UserFun(u) => write!(f, "{}", u.name()),
        FunDecl::Pattern(p) => {
            if let Some(nested) = p.nested_fun() {
                // Print as e.g. `map(f)` so the applied argument list follows.
                write!(f, "{}", pattern_head(p))?;
                write!(f, "(")?;
                fmt_fun(nested, f, depth + 1)?;
                write!(f, ")")
            } else {
                write!(f, "{p}")
            }
        }
    }
}

fn pattern_head(p: &crate::pattern::Pattern) -> String {
    use crate::pattern::{MapKind, Pattern};
    match p {
        Pattern::Map {
            kind: MapKind::Glb(d) | MapKind::Wrg(d) | MapKind::Lcl(d),
            ..
        } => format!("{}{}", p.name(), d),
        Pattern::Iterate { times, .. } => format!("iterate({times})"),
        _ => p.name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;
    use crate::expr::{Expr, Param};
    use crate::pattern::Boundary;
    use crate::types::Type;
    use crate::userfun::add_f32;
    use lift_arith::ArithExpr;

    #[test]
    fn listing2_prints_like_the_paper() {
        let n = ArithExpr::var("N");
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), n)));
        let sum = lam_named("nbh", Type::array(Type::f32(), 3), |nbh| {
            reduce(add_f32(), Expr::f32(0.0), nbh)
        });
        let e = map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)));
        let s = e.to_string();
        assert_eq!(
            s,
            "map(fun(nbh => reduce(add)(0.0f, nbh)))(slide(3, 1)(pad(1, 1, clamp)(A)))"
        );
    }

    #[test]
    fn low_level_maps_show_dimension() {
        let a = Expr::Param(Param::fresh("A", Type::array(Type::f32(), 8)));
        let e = map_glb(0, id(), a);
        assert_eq!(e.to_string(), "mapGlb0(id)(A)");
    }
}
