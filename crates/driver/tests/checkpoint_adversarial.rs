//! Adversarial checkpoint recovery: every way a checkpoint file can be
//! damaged in the field — truncation, bit flips, version skew, a stale
//! atomic-write temp from a crash — must restore cleanly. Damage is
//! quarantined and the run restarts fresh; version skew is an intact
//! file from another build and stays a hard, explained error. Nothing
//! here may panic, and every recovered run must converge to the
//! fault-free report (determinism makes a fresh restart equivalent to
//! the run the checkpoint would have resumed).
//!
//! Checkpoint managers are process-wide singletons per path, so every
//! test works in its own directory under a unique name.

use std::path::{Path, PathBuf};

use lift_driver::{BenchResult, LiftError, Pipeline, TuneOptions};
use lift_oclsim::{DeviceProfile, VirtualDevice};

const BENCH: &str = "Jacobi2D5pt";
const SIZES: &[usize] = &[18, 18];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lift-adv-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> TuneOptions {
    TuneOptions::evaluations(3)
        .with_seed(11)
        .with_checkpoint_every(1)
}

fn run(opts: TuneOptions) -> Result<BenchResult, LiftError> {
    let dev = VirtualDevice::new(DeviceProfile::k20c());
    Ok(Pipeline::for_benchmark(BENCH, SIZES)?
        .explore()?
        .on(&dev)
        .tune_full(opts)?
        .report)
}

/// The bit-exact identity of a report: variant names, times, configs and
/// evaluation counts. Two runs agree iff their fingerprints are equal.
type Fingerprint = Vec<(String, u64, Vec<(String, i64)>, usize)>;

fn fingerprint(report: &BenchResult) -> Fingerprint {
    report
        .all
        .iter()
        .map(|v| {
            (
                v.name.clone(),
                v.time_s.to_bits(),
                v.config.clone(),
                v.evaluations,
            )
        })
        .collect()
}

fn fault_free() -> Fingerprint {
    fingerprint(&run(opts()).expect("fault-free run tunes"))
}

/// A real checkpoint document to damage, written through the normal path.
fn genuine_checkpoint(dir: &Path) -> String {
    let path = dir.join("donor.json");
    run(opts().with_checkpoint(&path)).expect("donor run tunes");
    std::fs::read_to_string(&path).expect("donor checkpoint exists")
}

#[test]
fn truncated_checkpoint_quarantines_and_converges() {
    let dir = tmp_dir("trunc");
    let text = genuine_checkpoint(&dir);
    let path = dir.join("ck.json");
    // A torn write: the first half of a valid document.
    std::fs::write(&path, &text.as_bytes()[..text.len() / 2]).unwrap();
    let report = run(opts().with_checkpoint(&path)).expect("truncation is not fatal");
    assert_eq!(
        fingerprint(&report),
        fault_free(),
        "recovered run converges"
    );
    assert!(
        dir.join("ck.json.corrupt-1").exists(),
        "truncated file preserved in quarantine"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_checkpoint_quarantines_and_converges() {
    let dir = tmp_dir("flip");
    let text = genuine_checkpoint(&dir);
    // Flip a bit in the middle of the document — deterministically, at
    // the first structural `{` past the midpoint, which reliably breaks
    // JSON nesting.
    let mut bytes = text.into_bytes();
    let mid = bytes.len() / 2;
    let pos = (mid..bytes.len())
        .find(|&i| bytes[i] == b'{')
        .expect("a brace past the midpoint");
    bytes[pos] ^= 0x40;
    let path = dir.join("ck.json");
    std::fs::write(&path, &bytes).unwrap();
    let report = run(opts().with_checkpoint(&path)).expect("bit rot is not fatal");
    assert_eq!(
        fingerprint(&report),
        fault_free(),
        "recovered run converges"
    );
    let quarantined = dir.join("ck.json.corrupt-1");
    assert!(quarantined.exists(), "damaged file preserved in quarantine");
    assert_eq!(
        std::fs::read(&quarantined).unwrap(),
        bytes,
        "quarantine preserves the damaged bytes untouched"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_skew_is_a_hard_versioned_rejection() {
    let dir = tmp_dir("skew");
    let path = dir.join("ck.json");
    // A well-formed file from a hypothetical future build: intact work,
    // so it must be rejected loudly, never quarantined or overwritten.
    let doc = r#"{"schema_version": 99, "entries": {}}"#;
    std::fs::write(&path, doc).unwrap();
    let err = run(opts().with_checkpoint(&path)).expect_err("version skew fails loudly");
    // tune_full surfaces per-variant checkpoint errors as the tuning
    // outcome; whichever shape arrives, the message must name the skew.
    let msg = err.to_string();
    assert!(msg.contains("schema_version 99"), "{msg}");
    assert!(
        std::fs::read_to_string(&path).unwrap() == doc,
        "the skewed file is left exactly as found"
    );
    assert!(
        !dir.join("ck.json.corrupt-1").exists(),
        "version skew is not quarantined — the file is intact"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_tmp_from_a_crash_is_swept() {
    let dir = tmp_dir("tmp");
    let text = genuine_checkpoint(&dir);
    let path = dir.join("ck.json");
    std::fs::write(&path, &text).unwrap();
    // A crash between staging and rename leaves a half-written sibling.
    let tmp = dir.join("ck.json.tmp");
    std::fs::write(&tmp, &text.as_bytes()[..text.len() / 3]).unwrap();
    let report = run(opts().with_checkpoint(&path)).expect("stale temp is not fatal");
    assert_eq!(
        fingerprint(&report),
        fault_free(),
        "the intact checkpoint resumes normally"
    );
    assert!(!tmp.exists(), "the stale temp file was swept on startup");
    std::fs::remove_dir_all(&dir).ok();
}
