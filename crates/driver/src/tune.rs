//! Exploration + tuning orchestration behind the staged [`crate::Pipeline`]
//! API, plus the two baselines (hand-written reference kernels and the PPCG
//! strategy).
//!
//! This is the single home of the flow that used to be duplicated between
//! `examples/quickstart.rs` and the old private `harness::pipeline`:
//! bind tunables → generate OpenCL (through the kernel cache) → execute on
//! the virtual device → validate → keep the fastest modeled configuration.

use lift_arith::Bindings;
use lift_codegen::{compile_kernel, substitute_sizes};
use lift_oclsim::{BufferData, LaunchConfig, VirtualDevice};
use lift_rewrite::strategy::{bind_tunables, Tunable, Variant};
use lift_stencils::refkernels::reference_kernel;
use lift_stencils::Benchmark;
use lift_tuner::{parallel_map, ParamSpace, ParamSpec, Search};

use crate::cache::{program_fingerprint, CacheKey, KernelCache};
use crate::checkpoint::CellCheckpoint;
use crate::error::LiftError;

/// One tuned implementation with its best configuration.
#[derive(Debug, Clone)]
pub struct TunedVariant {
    /// Variant name (`"global"`, `"tiled-local"`, `"ppcg"`, `"reference"`).
    pub name: String,
    /// Modeled runtime in seconds.
    pub time_s: f64,
    /// Giga-elements updated per second (the paper's Fig. 7 metric).
    pub gelems_per_s: f64,
    /// The winning parameter values.
    pub config: Vec<(String, i64)>,
    /// The winning launch configuration (global, local).
    pub launch: ([usize; 3], [usize; 3]),
    /// Whether the variant uses overlapped tiling.
    pub tiled: bool,
    /// Whether it stages through local memory.
    pub local_mem: bool,
    /// Tuner evaluations spent.
    pub evaluations: usize,
    /// Successful simulator evaluations applied before the winning
    /// configuration was first measured (1 = the warm-started first
    /// proposal already won; 0 = nothing succeeded).
    pub evals_to_best: usize,
    /// Configurations rejected by the static verifier before simulation.
    pub pruned_verify: usize,
    /// Configurations dropped by the static cost model before simulation
    /// (estimate provably dominated by the incumbent's).
    pub pruned_model: usize,
    /// Successful simulator executions — evaluations minus both prune
    /// classes minus configurations that failed before producing a score.
    pub sims: usize,
}

/// The outcome of exploring + tuning one program on one device.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark (or program) name.
    pub bench: String,
    /// Device name.
    pub device: String,
    /// Grid sizes used.
    pub sizes: Vec<usize>,
    /// The fastest tuned variant.
    pub winner: TunedVariant,
    /// Best result per explored variant.
    pub all: Vec<TunedVariant>,
}

/// Everything the tuner needs about the program being tuned, independent of
/// where the program came from (Table-1 benchmark or user expression).
pub(crate) struct TuneContext<'a> {
    /// Display name used in reports and errors.
    pub name: String,
    /// Concrete output extents, outermost first.
    pub out_sizes: Vec<usize>,
    /// Input buffers, one per program parameter.
    pub inputs: Vec<BufferData>,
    /// Reference output to validate against (skipped when absent).
    pub golden: Option<Vec<f32>>,
    pub device: &'a VirtualDevice,
    pub cache: &'a KernelCache,
    pub budget: usize,
    pub seed: u64,
    /// Worker threads for parallel evaluation (1 = fully sequential). The
    /// thread count never changes results — only wall-clock.
    pub threads: usize,
    /// Checkpoint handle for resumable tuning (`None` = no
    /// checkpointing). Restoring never changes results either — it only
    /// skips re-evaluating what a previous process already measured.
    pub checkpoint: Option<CellCheckpoint>,
    /// Cost-model guidance (pruning + warm-start); see [`CostModel`].
    pub cost: CostModel,
}

/// How the static cost model steers a search (see `lift_oclsim::cost`):
/// when enabled, the initial proposal block is reordered so the model's
/// top-ranked configurations are simulated first, and any configuration
/// whose *exact* estimate matches or exceeds `k ×` the incumbent's exact
/// estimate is dropped without simulating (told as failed, counted in
/// `pruned_model`). Estimates are pure functions of
/// (plan, launch, device), and prune decisions are made on fixed-size
/// proposal windows, so results stay bit-identical across thread counts
/// and shards. Resolved once from `LIFT_COST_PRUNE` (see
/// [`crate::TuneOptions::resolved_cost_prune`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// `false` (`LIFT_COST_PRUNE=off`) restores pure-PRNG proposal order
    /// and simulates every proposal, byte-reproducing unguided reports.
    pub enabled: bool,
    /// The domination threshold: prune when
    /// `estimate(candidate) >= k × estimate(incumbent)`. `k = 1.0` (the
    /// default) is provably safe on exactly-estimated kernels — a worse
    /// candidate can never have beaten the incumbent, and an exactly-tied
    /// one loses the (score, proposal-index) tie-break to the incumbent,
    /// which was told first; `k < 1` prunes aggressively and may change
    /// winners.
    pub k: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            enabled: true,
            k: 1.0,
        }
    }
}

impl CostModel {
    /// The disabled setting (`LIFT_COST_PRUNE=off`).
    pub fn off() -> Self {
        CostModel {
            enabled: false,
            k: 1.0,
        }
    }

    /// Parses a `LIFT_COST_PRUNE` value: `off`/`0` disables, a positive
    /// float sets `k`, anything else (or `None`) is the default.
    pub fn from_setting(setting: Option<&str>) -> Self {
        match setting.map(|s| s.trim().to_ascii_lowercase()) {
            Some(v) if v == "off" => CostModel::off(),
            Some(v) => match v.parse::<f64>() {
                Ok(k) if k > 0.0 && k.is_finite() => CostModel { enabled: true, k },
                // `0` (in any spelling) is the numeric way to say "off".
                Ok(0.0) => CostModel::off(),
                // Junk must not silently disable the safety-neutral
                // default, nor invent a threshold.
                _ => CostModel::default(),
            },
            None => CostModel::default(),
        }
    }
}

/// The `LIFT_TUNE_THREADS` fallback used when no explicit thread count was
/// configured (see `TuneOptions::threads`).
pub(crate) fn env_threads() -> usize {
    std::env::var("LIFT_TUNE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(1)
}

fn round_up(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

/// Work-group size candidates per dimensionality, derived from the device
/// profile's `max_wg_size`.
///
/// The preferred windows (e.g. 8–64 × 4–32 in 2D) assume a device that
/// admits at least a 32-wide group; on smaller devices they would make
/// *every* configuration violate the work-group constraint and tuning
/// would report `NoValidConfiguration`, so the per-dimension pow2 bounds
/// are clamped to `max_wg_size` and the lower bounds open down to 1.
fn local_space(dims: usize, max_wg: usize) -> Vec<ParamSpec> {
    let m = (max_wg as i64).max(1);
    let dim = |name: &str, lo: i64, hi: i64| ParamSpec::pow2(name, lo.min(m), hi.min(m));
    match dims {
        1 => vec![dim("lx", 32, m)],
        2 => {
            let (lx_lo, ly_lo) = if m >= 32 { (8, 4) } else { (1, 1) };
            vec![dim("lx", lx_lo, 64), dim("ly", ly_lo, 32)]
        }
        _ => {
            let (lx_lo, ly_lo) = if m >= 16 { (8, 2) } else { (1, 1) };
            let mut lz = vec![1];
            if m >= 2 {
                lz.push(2);
            }
            vec![
                dim("lx", lx_lo, 64),
                dim("ly", ly_lo, 16),
                ParamSpec::new("lz", lz),
            ]
        }
    }
}

fn value_of(cfg: &[(String, i64)], name: &str) -> Option<i64> {
    cfg.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// Derives the launch configuration for a variant given its bound
/// parameters.
pub(crate) fn launch_for(
    variant: &Variant,
    out_sizes: &[usize],
    cfg: &[(String, i64)],
) -> Option<LaunchConfig> {
    let l = |name: &str, default: usize| value_of(cfg, name).map(|v| v as usize).unwrap_or(default);
    let (lx, ly, lz) = (l("lx", 32), l("ly", 1), l("lz", 1));
    let dims = variant.dims;

    // Output extents in launch order: x = innermost.
    let ox = *out_sizes.last()?;
    let oy = if dims >= 2 { out_sizes[dims - 2] } else { 1 };
    let oz = if dims >= 3 { out_sizes[dims - 3] } else { 1 };

    if variant.tiled {
        // One work-group per tile: the group count per dimension follows
        // from that dimension's tile-size tunable (`TS0` outermost).
        let mut groups = Vec::new();
        for t in &variant.tunables {
            let Tunable::TileSize {
                var,
                nbh_size,
                nbh_step,
                len,
            } = t
            else {
                continue;
            };
            let ts = value_of(cfg, var)?;
            let v = ts - (nbh_size - nbh_step);
            groups.push(((len - ts) / v + 1) as usize);
        }
        match groups.len() {
            1 => Some(LaunchConfig::d1(groups[0] * lx, lx)),
            2 => Some(LaunchConfig::d2(groups[1] * lx, groups[0] * ly, lx, ly)),
            3 => Some(LaunchConfig::d3(
                [groups[2] * lx, groups[1] * ly, groups[0] * lz],
                [lx, ly, lz],
            )),
            _ => None,
        }
    } else {
        let cf = value_of(cfg, "CF").unwrap_or(1).max(1) as usize;
        match dims {
            1 => Some(LaunchConfig::d1(round_up(ox.div_ceil(cf), lx), lx)),
            2 => Some(LaunchConfig::d2(
                round_up(ox.div_ceil(cf), lx),
                round_up(oy, ly),
                lx,
                ly,
            )),
            _ => {
                // A strip-mined z dimension (the PPCG 3D mapping) runs as a
                // sequential per-thread loop: the global z size stays one
                // group deep instead of covering the output extent. The
                // variant declares this explicitly — matching on its *name*
                // would silently mis-launch any future strip-mining
                // lowering introduced under a different name.
                let gz = if variant.strip_mined_z {
                    lz
                } else {
                    round_up(oz, lz)
                };
                Some(LaunchConfig::d3(
                    [round_up(ox.div_ceil(cf), lx), round_up(oy, ly), gz],
                    [lx, ly, lz],
                ))
            }
        }
    }
}

/// The kernel function name generated for a variant.
pub(crate) fn kernel_name(program_name: &str, variant_name: &str) -> String {
    let sanitize = |s: &str| {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
    };
    format!("{}_{}", sanitize(program_name), sanitize(variant_name))
}

/// Compiles a variant with its tunables bound, through the cache. The
/// returned [`PlannedKernel`](lift_oclsim::PlannedKernel) carries both the
/// kernel AST and its simulator execution plan, so every launch of this
/// configuration — and of every other launch shape of the same binding —
/// reuses one plan.
pub(crate) fn compile_bound(
    cache: &KernelCache,
    device: &VirtualDevice,
    program_name: &str,
    variant: &Variant,
    variant_fp: u64,
    tun_values: &[(String, i64)],
) -> Result<std::sync::Arc<lift_oclsim::PlannedKernel>, LiftError> {
    let kname = kernel_name(program_name, &variant.name);
    let key = CacheKey {
        program: variant_fp,
        variant: kname.clone(),
        params: tun_values.to_vec(),
        device: device.profile().name.to_string(),
    };
    cache.get_or_compile(key, || {
        let bound = if tun_values.is_empty() {
            variant.program.clone()
        } else {
            bind_tunables(variant, tun_values).ok_or_else(|| {
                LiftError::InvalidConfig(format!(
                    "invalid tunable values {tun_values:?} for variant `{}`",
                    variant.name
                ))
            })?
        };
        // Any residual variables (none expected) are rejected by codegen.
        let bound = substitute_sizes(&bound, &Bindings::new());
        compile_kernel(&kname, &bound).map_err(Into::into)
    })
}

pub(crate) fn outputs_match(got: &[f32], want: &[f32]) -> bool {
    got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(a, b)| (a - b).abs() <= 1e-3 * b.abs().max(1.0))
}

/// Compiles and executes one bound configuration, returning the modeled
/// time if it runs and validates. During a search a failing configuration
/// is worthless, not fatal — but the *cause* is returned rather than
/// swallowed, so when not a single configuration works the resulting
/// [`LiftError::NoValidConfiguration`] can say why (the first failure per
/// variant is kept in its detail/source chain).
fn evaluate_config(
    ctx: &TuneContext<'_>,
    variant: &Variant,
    variant_fp: u64,
    cfg: &[(String, i64)],
    validate: bool,
) -> Result<f64, LiftError> {
    let tun_values: Vec<(String, i64)> = variant
        .tunables
        .iter()
        .filter_map(|t| value_of(cfg, t.var()).map(|v| (t.var().to_string(), v)))
        .collect();
    if tun_values.iter().any(|(n, v)| {
        variant
            .tunables
            .iter()
            .find(|t| t.var() == n)
            .is_some_and(|t| !t.is_valid(*v))
    }) {
        return Err(LiftError::InvalidConfig(format!(
            "tunable values {tun_values:?} are invalid for variant `{}`",
            variant.name
        )));
    }
    let kernel = compile_bound(
        ctx.cache,
        ctx.device,
        &ctx.name,
        variant,
        variant_fp,
        &tun_values,
    )?;
    let launch = launch_for(variant, &ctx.out_sizes, cfg).ok_or_else(|| {
        LiftError::InvalidConfig(format!(
            "cannot derive a launch configuration for `{}` from {cfg:?}",
            variant.name
        ))
    })?;
    // Statically-unsafe configurations never reach the simulator: the
    // verifier proves bounds, barrier convergence, race freedom and
    // initialization per (kernel, launch) and the result is cached on the
    // compiled plan.
    let findings = kernel.verify(launch, ctx.device.profile())?;
    if !findings.is_empty() {
        return Err(LiftError::Verify {
            kernel: findings[0].kernel.clone(),
            findings: findings.as_ref().clone(),
        });
    }
    let out = ctx.device.run_planned(&kernel, &ctx.inputs, launch)?;
    if validate {
        if let Some(golden) = &ctx.golden {
            if !outputs_match(out.output.as_f32(), golden) {
                return Err(LiftError::Validation {
                    variant: variant.name.clone(),
                    detail: format!("output diverges from the golden reference under {cfg:?}"),
                });
            }
        }
    }
    Ok(out.time_s)
}

/// The static model's predicted time for one configuration, with whether
/// the prediction is exact (see `lift_oclsim::cost`). `None` when no
/// estimate exists: invalid tunables, no launch, compile failure, or the
/// kernel's control flow defeats the analyzer. Pure in (cfg, device) —
/// the estimate itself is memoised on the cached compiled plan, so a
/// config is analyzed once no matter how often the search consults it.
fn model_time(
    ctx: &TuneContext<'_>,
    variant: &Variant,
    variant_fp: u64,
    cfg: &[(String, i64)],
) -> Option<(f64, bool)> {
    let tun_values: Vec<(String, i64)> = variant
        .tunables
        .iter()
        .filter_map(|t| value_of(cfg, t.var()).map(|v| (t.var().to_string(), v)))
        .collect();
    if tun_values.iter().any(|(n, v)| {
        variant
            .tunables
            .iter()
            .find(|t| t.var() == n)
            .is_some_and(|t| !t.is_valid(*v))
    }) {
        return None;
    }
    let kernel = compile_bound(
        ctx.cache,
        ctx.device,
        &ctx.name,
        variant,
        variant_fp,
        &tun_values,
    )
    .ok()?;
    let launch = launch_for(variant, &ctx.out_sizes, cfg)?;
    let est = kernel.estimate(launch, ctx.device.profile()).ok()?;
    Some((est.time(ctx.device.profile()), est.exact))
}

/// The outcome of tuning one variant: the best configuration (when any
/// worked) and the first failure hit (when any failed) — kept so an
/// all-variants-failed run can report *why* instead of a bare
/// "no valid configuration".
pub(crate) struct VariantOutcome {
    pub tuned: Option<TunedVariant>,
    pub first_failure: Option<LiftError>,
}

/// Tunes every variant and returns the per-variant bests plus the winner.
///
/// Variants are tuned concurrently on up to `ctx.threads` workers, each
/// evaluating its configuration batches on the remaining share of the
/// thread budget. Results are identical to the sequential sweep for the
/// same seed: every variant searches its own deterministic stream, the
/// bests are collected in exploration order, and the winner tie-breaks by
/// (time, exploration index).
///
/// # Errors
///
/// [`LiftError::NoValidConfiguration`] when not a single variant produced a
/// configuration that compiles, runs and validates; its `failures` carry
/// the first error each variant hit.
pub(crate) fn tune_variants(
    ctx: &TuneContext<'_>,
    variants: &[Variant],
) -> Result<BenchResult, LiftError> {
    let outer = ctx.threads.min(variants.len()).max(1);
    // Distribute the whole thread budget: every variant worker gets the
    // base share and the first `extra` ones absorb the remainder, so e.g.
    // 8 threads over 5 variants run as 3×2 + 2×1 workers instead of
    // stranding 3 threads. Worker counts never affect results.
    let base = (ctx.threads / outer).max(1);
    let extra = ctx.threads.saturating_sub(base * outer);
    let indexed: Vec<(usize, &Variant)> = variants.iter().enumerate().collect();
    let outcomes = parallel_map(outer, indexed, |(i, v)| {
        tune_variant_batched(ctx, v, base + usize::from(i < extra))
    });
    let mut all = Vec::new();
    let mut failures = Vec::new();
    for (variant, outcome) in variants.iter().zip(outcomes) {
        match outcome.tuned {
            Some(t) => all.push(t),
            None => {
                if let Some(e) = outcome.first_failure {
                    failures.push((variant.name.clone(), Box::new(e)));
                }
            }
        }
    }
    let winner = all
        .iter()
        .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
        .cloned()
        .ok_or_else(|| LiftError::NoValidConfiguration {
            program: ctx.name.clone(),
            device: ctx.device.profile().name.to_string(),
            failures,
        })?;
    Ok(BenchResult {
        bench: ctx.name.clone(),
        device: ctx.device.profile().name.to_string(),
        sizes: ctx.out_sizes.clone(),
        winner,
        all,
    })
}

/// Tunes one variant on `ctx.threads` evaluation workers.
pub(crate) fn tune_variant(ctx: &TuneContext<'_>, variant: &Variant) -> VariantOutcome {
    tune_variant_batched(ctx, variant, ctx.threads.max(1))
}

/// Tunes one variant with the batched ask/tell engine, evaluating each
/// batch on up to `eval_threads` workers. `tuned` is `None` when no
/// configuration of this variant is valid (other variants may still win);
/// `first_failure` then explains the earliest proposal's failure.
///
/// Determinism: [`Search`] proposes from the seed's RNG stream regardless
/// of batch size, tells are applied in proposal order, and the first
/// failure is recorded in proposal order — so any `eval_threads` produces
/// the identical outcome.
fn tune_variant_batched(
    ctx: &TuneContext<'_>,
    variant: &Variant,
    eval_threads: usize,
) -> VariantOutcome {
    let max_wg = ctx.device.profile().max_wg_size;
    let variant_fp = program_fingerprint(&variant.program);
    let mut specs = Vec::new();
    for t in &variant.tunables {
        let cap = match t {
            Tunable::TileSize { len, .. } => (*len).min(64),
            Tunable::CoarsenFactor { .. } => 16,
        };
        let mut cands = t.candidates(cap);
        if let Tunable::TileSize { nbh_size, .. } = t {
            // Degenerate tiles (little more than the neighbourhood) produce
            // one output per work-group and pathological launch sizes; no
            // sane tuner budget should be spent simulating them.
            cands.retain(|u| *u >= nbh_size + 3);
        }
        if cands.is_empty() {
            return VariantOutcome {
                tuned: None,
                first_failure: Some(LiftError::InvalidConfig(format!(
                    "tunable `{}` of variant `{}` has no usable candidate values",
                    t.var(),
                    variant.name
                ))),
            };
        }
        specs.push(ParamSpec::new(t.var().to_string(), cands));
    }
    let n_tunables = specs.len();
    specs.extend(local_space(variant.dims, max_wg));
    let space = ParamSpace::new(specs).with_constraint(move |cfg| {
        // Work-group size within the device limit.
        let wg: i64 = cfg[n_tunables..].iter().product();
        wg as usize <= max_wg
    });
    let names: Vec<String> = space
        .params()
        .iter()
        .map(|p| p.name().to_string())
        .collect();

    let validate = std::env::var("LIFT_NO_VALIDATE")
        .map(|v| v != "1")
        .unwrap_or(true);
    let search_seed = ctx.seed ^ hash(&variant.name);
    let ck_key = ctx.checkpoint.as_ref().map(|c| c.key(&variant.name));
    let mut first_failure: Option<LiftError> = None;
    // The raw failure message as written to the checkpoint file; kept
    // separate from `first_failure` so repeated resumes never re-wrap it.
    let mut failure_msg: Option<String> = None;
    // Configurations the static verifier rejected and the cost model
    // pruned; resumes restore the counts so interrupted and uninterrupted
    // runs report the same totals.
    let mut pruned_verify = 0usize;
    let mut pruned_model = 0usize;
    // A checkpointed search resumes from its recorded state instead of
    // starting over; a snapshot that does not belong to this run (other
    // space, seed or budget) is a hard, explained failure rather than a
    // silent restart that would break the resumed-run-equals-uninterrupted
    // guarantee.
    let mut search = match ctx
        .checkpoint
        .as_ref()
        .zip(ck_key.as_deref())
        .and_then(|(c, key)| c.mgr.lookup(key))
    {
        Some(entry) => {
            if entry.state.seed != search_seed || entry.state.budget != ctx.budget {
                return VariantOutcome {
                    tuned: None,
                    first_failure: Some(LiftError::Checkpoint(format!(
                        "checkpointed search for variant `{}` was recorded with seed {} and \
                         budget {}, but this run uses seed {search_seed} and budget {}; \
                         delete the checkpoint or rerun with the original options",
                        variant.name, entry.state.seed, entry.state.budget, ctx.budget
                    ))),
                };
            }
            failure_msg = entry.first_failure;
            pruned_verify = entry.pruned_verify;
            pruned_model = entry.pruned_model;
            first_failure = failure_msg
                .clone()
                .map(|m| LiftError::Checkpoint(format!("recorded before resume: {m}")));
            match Search::restore(space, entry.state) {
                Ok(s) => s,
                Err(e) => {
                    return VariantOutcome {
                        tuned: None,
                        first_failure: Some(LiftError::Checkpoint(format!(
                            "cannot resume variant `{}`: {e}",
                            variant.name
                        ))),
                    }
                }
            }
        }
        None => {
            let mut s = Search::new(space, ctx.budget, search_seed);
            if ctx.cost.enabled {
                // Model-ranked warm-start: the first batch simulated is the
                // model's top proposals instead of pure PRNG draws. The
                // ranker is a pure function of (cfg, device), so the
                // reorder — and everything downstream — is deterministic.
                s.warm_start_by(|cfg| {
                    let named: Vec<(String, i64)> =
                        names.iter().cloned().zip(cfg.iter().copied()).collect();
                    model_time(ctx, variant, variant_fp, &named).map(|(t, _)| t)
                });
            }
            s
        }
    };
    loop {
        // With the model enabled, proposals are consumed one at a time so
        // every prune decision consults the *freshest* incumbent — under
        // warm-start the first proposal is the model's top pick, and once
        // its simulation establishes the incumbent, each later proposal
        // is pruned or simulated against the tightest threshold available
        // (with an exact model, that is the minimal-simulation lossless
        // pruner). Decisions depend only on the tell history — never on
        // the worker count — so results stay bit-identical across thread
        // counts, shards and checkpoint resumes; the few configurations
        // that survive pruning still fan out across variants and sweep
        // cells. Without the model, batch size never affects results, so
        // it just keeps the pool fed.
        let ask_n = if ctx.cost.enabled {
            1
        } else {
            eval_threads * 2
        };
        let batch = search.ask(ask_n);
        if batch.is_empty() {
            break;
        }
        // The prune threshold for this window: the incumbent's *exact*
        // estimate. Until something succeeds there is no incumbent and
        // nothing is pruned, so the search can never starve itself.
        let threshold: Option<f64> = if ctx.cost.enabled {
            search.best().and_then(|b| {
                let named: Vec<(String, i64)> = names
                    .iter()
                    .cloned()
                    .zip(b.values.iter().copied())
                    .collect();
                model_time(ctx, variant, variant_fp, &named)
                    .filter(|(_, exact)| *exact)
                    .map(|(t, _)| t)
            })
        } else {
            None
        };
        // Split the window into simulate/prune, preserving proposal order.
        // Only an *exact* candidate estimate may prune: an exact estimate
        // equals the simulated time bit-for-bit, so with `k >= 1` a pruned
        // configuration provably cannot improve the incumbent — a strictly
        // worse one loses on score, and an exactly-tied one (est == inc at
        // k = 1) loses the (score, proposal-index) tie-break, because the
        // incumbent was necessarily told at an earlier proposal index.
        let decisions: Vec<(Vec<i64>, bool)> = batch
            .into_iter()
            .map(|cfg| {
                let prune = threshold.is_some_and(|inc| {
                    let named: Vec<(String, i64)> =
                        names.iter().cloned().zip(cfg.iter().copied()).collect();
                    model_time(ctx, variant, variant_fp, &named)
                        .is_some_and(|(t, exact)| exact && t >= ctx.cost.k * inc)
                });
                (cfg, prune)
            })
            .collect();
        let to_eval: Vec<Vec<i64>> = decisions
            .iter()
            .filter(|(_, prune)| !prune)
            .map(|(cfg, _)| cfg.clone())
            .collect();
        let evaluated = parallel_map(eval_threads, to_eval, |cfg| {
            let named: Vec<(String, i64)> =
                names.iter().cloned().zip(cfg.iter().copied()).collect();
            evaluate_config(ctx, variant, variant_fp, &named, validate)
        });
        // Tell in batch order == proposal order: the trace, incumbent and
        // recorded first failure stay deterministic. A pruned proposal is
        // told as failed without ever reaching the simulator; it is not a
        // *failure* (nothing is wrong with it), so it never claims the
        // first-failure slot.
        let tells = decisions.len();
        let mut scores = evaluated.into_iter();
        for (cfg, prune) in decisions {
            if prune {
                pruned_model += 1;
                search.tell(&cfg, None);
                continue;
            }
            match scores.next().expect("one score per unpruned proposal") {
                Ok(s) => search.tell(&cfg, Some(s)),
                Err(e) => {
                    if matches!(e, LiftError::Verify { .. }) {
                        pruned_verify += 1;
                    }
                    if first_failure.is_none() {
                        failure_msg = Some(e.to_string());
                        first_failure = Some(e);
                    }
                    search.tell(&cfg, None);
                }
            }
        }
        if let Some((c, key)) = ctx.checkpoint.as_ref().zip(ck_key.as_deref()) {
            c.mgr.record(
                key,
                search.snapshot(),
                failure_msg.clone(),
                pruned_verify,
                pruned_model,
                tells,
            );
        }
        // Fault-injection seam: fires *after* this batch is checkpointed,
        // so an injected crash always dies with its completed work durable
        // — the scenario checkpoint adoption exists to recover.
        crate::fault::after_tells(tells);
    }
    // Record the finished search too, so a later process replays the
    // result instead of re-tuning a completed variant.
    if let Some((c, key)) = ctx.checkpoint.as_ref().zip(ck_key.as_deref()) {
        c.mgr.record(
            key,
            search.snapshot(),
            failure_msg.clone(),
            pruned_verify,
            pruned_model,
            0,
        );
    }
    let evaluations = search.evaluations();
    let result = search.into_result();
    let tuned = result.best.and_then(|best| {
        // How many successful simulations it took to first measure the
        // winning score — the paper-scale "evaluations to best" metric.
        // Derived from the trace (which checkpoints carry), so resumed
        // runs report the same number as uninterrupted ones.
        let evals_to_best = result
            .trace
            .iter()
            .position(|c| c.score == best.score)
            .map(|i| i + 1)
            .unwrap_or(result.trace.len());
        let config: Vec<(String, i64)> = names.into_iter().zip(best.values).collect();
        let launch = launch_for(variant, &ctx.out_sizes, &config)?;
        let out_elems: usize = ctx.out_sizes.iter().product();
        Some(TunedVariant {
            name: variant.name.clone(),
            time_s: best.score,
            gelems_per_s: out_elems as f64 / best.score / 1e9,
            config,
            launch: (launch.global, launch.local),
            tiled: variant.tiled,
            local_mem: variant.local_mem,
            evaluations,
            evals_to_best,
            pruned_verify,
            pruned_model,
            sims: result.trace.len(),
        })
    });
    VariantOutcome {
        tuned,
        first_failure,
    }
}

/// Fingerprint of a variant's lowered program (cache key component).
pub(crate) fn program_fingerprint_of(variant: &Variant) -> u64 {
    program_fingerprint(&variant.program)
}

fn hash(s: &str) -> u64 {
    crate::cache::fnv1a(s.as_bytes())
}

pub(crate) fn bench_inputs(bench: &Benchmark, sizes: &[usize], seed: u64) -> Vec<BufferData> {
    bench
        .gen_inputs(sizes, seed)
        .into_iter()
        .map(BufferData::F32)
        .collect()
}

pub(crate) fn bench_golden(bench: &Benchmark, inputs: &[BufferData], sizes: &[usize]) -> Vec<f32> {
    bench.golden(
        &inputs
            .iter()
            .map(|b| b.as_f32().to_vec())
            .collect::<Vec<_>>(),
        sizes,
    )
}

/// The PPCG baseline as a [`Variant`], ready for the shared tuner.
pub(crate) fn ppcg_variant(prog: &lift_core::expr::FunDecl) -> Result<Variant, LiftError> {
    let k = lift_ppcg::compile(prog)?;
    Ok(Variant {
        name: "ppcg".into(),
        program: k.program,
        tunables: k.tunables,
        dims: k.dims,
        tiled: k.dims == 2,
        local_mem: k.dims == 2,
        unrolled: false,
        strip_mined_z: k.strip_mined_z,
    })
}

/// Tunes the PPCG baseline for `bench` (Fig. 8 benchmarks only).
///
/// # Errors
///
/// [`LiftError::Ppcg`] when the baseline cannot compile the program shape;
/// [`LiftError::NoValidConfiguration`] when tuning finds nothing valid.
pub fn ppcg_baseline(
    bench: &Benchmark,
    sizes: &[usize],
    dev: &VirtualDevice,
    opts: crate::TuneOptions,
) -> Result<TunedVariant, LiftError> {
    let prog = bench.program(sizes);
    let variant = ppcg_variant(&prog)?;
    let inputs = bench_inputs(bench, sizes, opts.seed);
    let golden = bench_golden(bench, &inputs, sizes);
    let manager = opts
        .resolved_checkpoint()
        .map(|p| crate::checkpoint::CheckpointManager::at(&p, opts.resolved_checkpoint_every()))
        .transpose()?;
    let ctx = TuneContext {
        name: bench.name.to_string(),
        out_sizes: sizes.to_vec(),
        inputs,
        golden: Some(golden),
        device: dev,
        cache: KernelCache::global(),
        budget: opts.evaluations,
        seed: opts.seed,
        threads: opts.resolved_threads(),
        checkpoint: manager
            .clone()
            .map(|mgr| CellCheckpoint::new(mgr, bench.name, dev.profile().name, sizes)),
        cost: opts.resolved_cost_prune(),
    };
    let outcome = tune_variant(&ctx, &variant);
    if let Some(mgr) = manager {
        mgr.flush()?;
    }
    outcome
        .tuned
        .ok_or_else(|| LiftError::NoValidConfiguration {
            program: format!("{} (ppcg)", bench.name),
            device: dev.profile().name.to_string(),
            failures: outcome
                .first_failure
                .into_iter()
                .map(|e| ("ppcg".to_string(), Box::new(e)))
                .collect(),
        })
}

/// Executes the hand-written reference kernel for a Fig. 7 benchmark (no
/// tuning — references are fixed).
///
/// # Errors
///
/// [`LiftError::Sim`] when the kernel fails to execute and
/// [`LiftError::Validation`] when it produces wrong results — hand-written
/// kernels are part of the repository and must work.
pub fn reference_baseline(
    bench: &Benchmark,
    sizes: &[usize],
    dev: &VirtualDevice,
    seed: u64,
) -> Result<TunedVariant, LiftError> {
    let r = reference_kernel(bench, sizes);
    let inputs = bench_inputs(bench, sizes, seed);
    let golden = bench_golden(bench, &inputs, sizes);
    let cfg = LaunchConfig::d3(r.global, r.local);
    let out = dev.run(&r.kernel, &inputs, cfg)?;
    if !outputs_match(out.output.as_f32(), &golden) {
        return Err(LiftError::Validation {
            variant: format!("reference:{}", bench.name),
            detail: "output diverges from the golden reference".into(),
        });
    }
    let out_elems = bench.out_elements(sizes);
    Ok(TunedVariant {
        name: "reference".into(),
        time_s: out.time_s,
        gelems_per_s: out_elems as f64 / out.time_s / 1e9,
        config: vec![],
        launch: (r.global, r.local),
        tiled: false,
        local_mem: bench.name == "Hotspot2D",
        evaluations: 1,
        evals_to_best: 1,
        pruned_verify: 0,
        pruned_model: 0,
        sims: 1,
    })
}
