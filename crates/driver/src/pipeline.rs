//! The staged pipeline: `Pipeline` → `VariantSet` → `DeviceSession` →
//! `CompiledStencil`.
//!
//! Each stage owns exactly the information it has established, so misuse is
//! a *compile* error: there is no way to run a kernel that has not been
//! compiled, no way to tune without choosing a device, and no way to
//! explore an ill-typed program. Every stage is inspectable — the variant
//! list, the lowered expressions, the generated OpenCL source and the
//! modeled runtime are all available without leaving the API.

use std::sync::Arc;

use lift_core::eval::{eval_fun, DataValue};
use lift_core::expr::FunDecl;
use lift_core::typecheck::typecheck_fun;
use lift_core::types::Type;
use lift_oclsim::{BufferData, IteratedOutput, LaunchConfig, Rotation, RunOutput, VirtualDevice};
use lift_rewrite::strategy::{enumerate_variants, Variant};
use lift_stencils::Benchmark;

use crate::cache::KernelCache;
use crate::error::LiftError;
use crate::tune::{
    bench_golden, bench_inputs, compile_bound, launch_for, program_fingerprint_of, tune_variants,
    BenchResult, TuneContext,
};

/// Tuning options: the evaluation budget per variant, the search seed,
/// the worker-thread count and the optional checkpoint file.
///
/// Threading only changes wall-clock, never results: for the same seed,
/// `threads: 1` and `threads: N` produce identical winners, configurations
/// and scores (the ask/tell engine proposes deterministically and applies
/// scores in proposal order). Checkpointing shares the guarantee: a run
/// resumed from `checkpoint` finishes bit-identically to one that was
/// never interrupted — the file only lets it skip re-evaluating what an
/// earlier process already measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneOptions {
    /// Tuner evaluations per (variant, device) pair.
    pub evaluations: usize,
    /// Seed for the deterministic search.
    pub seed: u64,
    /// Worker threads for parallel evaluation across variants and
    /// configuration batches. `0` (the default) defers to the
    /// `LIFT_TUNE_THREADS` environment variable, falling back to 1
    /// (sequential).
    pub threads: usize,
    /// Checkpoint file for resumable tuning. `None` (the default) defers
    /// to the `LIFT_CHECKPOINT` environment variable, falling back to no
    /// checkpointing. Each process needs its own file — see
    /// [`CheckpointManager`](crate::CheckpointManager).
    pub checkpoint: Option<std::path::PathBuf>,
    /// Applied tells between checkpoint writes. `0` (the default) defers
    /// to `LIFT_CHECKPOINT_EVERY`, falling back to 16.
    pub checkpoint_every: usize,
    /// Cost-model guidance setting, as the raw `LIFT_COST_PRUNE` syntax:
    /// `"off"`/`"0"` disables pruning and warm-start, a positive float
    /// sets the domination threshold `k`. `None` (the default) defers to
    /// the `LIFT_COST_PRUNE` environment variable, falling back to
    /// enabled with `k = 1.0` (the provably-safe setting). See
    /// [`CostModel`](crate::CostModel).
    pub cost_prune: Option<String>,
}

/// The historical name of [`TuneOptions`] (PR 1 introduced it as the
/// "budget"); kept as an alias so existing sessions read naturally.
pub type Budget = TuneOptions;

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            evaluations: 10,
            seed: 2018,          // the CGO year, as everywhere in this repo
            threads: 0,          // LIFT_TUNE_THREADS, else sequential
            checkpoint: None,    // LIFT_CHECKPOINT, else no checkpointing
            checkpoint_every: 0, // LIFT_CHECKPOINT_EVERY, else 16
            cost_prune: None,    // LIFT_COST_PRUNE, else on with k = 1.0
        }
    }
}

impl TuneOptions {
    /// A budget of `evaluations` per variant with the default seed.
    pub fn evaluations(evaluations: usize) -> Self {
        TuneOptions {
            evaluations,
            ..TuneOptions::default()
        }
    }

    /// Replaces the search seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count explicitly, overriding
    /// `LIFT_TUNE_THREADS`. Passing `0` restores the default behaviour
    /// (defer to the environment variable, else run sequentially) — it
    /// does *not* mean "no threads".
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective thread count: the explicit setting, else
    /// `LIFT_TUNE_THREADS`, else 1.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            crate::tune::env_threads()
        }
    }

    /// Enables checkpointing to `path` (see
    /// [`TuneOptions::checkpoint`]).
    pub fn with_checkpoint(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the checkpoint write cadence in applied tells. Passing `0`
    /// restores the default behaviour (defer to `LIFT_CHECKPOINT_EVERY`,
    /// else 16).
    pub fn with_checkpoint_every(mut self, tells: usize) -> Self {
        self.checkpoint_every = tells;
        self
    }

    /// The effective checkpoint path: the explicit setting, else
    /// `LIFT_CHECKPOINT` (when non-empty), else none.
    pub fn resolved_checkpoint(&self) -> Option<std::path::PathBuf> {
        if self.checkpoint.is_some() {
            return self.checkpoint.clone();
        }
        std::env::var("LIFT_CHECKPOINT")
            .ok()
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from)
    }

    /// Sets the cost-model guidance explicitly (`"off"`, `"0"`, or a
    /// positive float for the threshold `k`), overriding
    /// `LIFT_COST_PRUNE`.
    pub fn with_cost_prune(mut self, setting: impl Into<String>) -> Self {
        self.cost_prune = Some(setting.into());
        self
    }

    /// The effective cost-model setting: the explicit setting, else
    /// `LIFT_COST_PRUNE`, else enabled with `k = 1.0`.
    pub fn resolved_cost_prune(&self) -> crate::tune::CostModel {
        match &self.cost_prune {
            Some(s) => crate::tune::CostModel::from_setting(Some(s)),
            None => crate::tune::CostModel::from_setting(
                std::env::var("LIFT_COST_PRUNE").ok().as_deref(),
            ),
        }
    }

    /// The effective checkpoint cadence: the explicit setting, else
    /// `LIFT_CHECKPOINT_EVERY`, else 16.
    pub fn resolved_checkpoint_every(&self) -> usize {
        if self.checkpoint_every > 0 {
            return self.checkpoint_every;
        }
        std::env::var("LIFT_CHECKPOINT_EVERY")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|n| *n > 0)
            .unwrap_or(16)
    }
}

/// Where the program came from — a Table-1 benchmark brings golden
/// references and input generators along.
#[derive(Debug, Clone)]
enum Provenance {
    Expression,
    Bench { bench: Benchmark, sizes: Vec<usize> },
}

/// Stage 1: a type-checked high-level stencil program.
#[derive(Debug, Clone)]
pub struct Pipeline {
    program: FunDecl,
    out_type: Type,
    provenance: Provenance,
}

impl Pipeline {
    /// Starts a session from a high-level expression (a top-level lambda).
    ///
    /// # Errors
    ///
    /// [`LiftError::Type`] if the program is ill-typed and
    /// [`LiftError::Unsupported`] if it is not a lambda producing a 1–3D
    /// grid.
    pub fn new(program: FunDecl) -> Result<Pipeline, LiftError> {
        let out_type = typecheck_fun(&program)?;
        if !matches!(program, FunDecl::Lambda(_)) {
            return Err(LiftError::Unsupported(
                "pipeline programs must be top-level lambdas".into(),
            ));
        }
        let dims = out_type.dims();
        if !(1..=3).contains(&dims) {
            return Err(LiftError::Unsupported(format!(
                "pipeline programs must produce a 1-3D grid, got {dims} dimensions"
            )));
        }
        Ok(Pipeline {
            program,
            out_type,
            provenance: Provenance::Expression,
        })
    }

    /// Starts a session from a Table-1 benchmark at the given grid sizes;
    /// tuning then validates every candidate against the benchmark's golden
    /// reference.
    ///
    /// # Errors
    ///
    /// [`LiftError::UnknownBenchmark`] for a name outside the suite, plus
    /// anything [`Pipeline::new`] reports.
    pub fn for_benchmark(name: &str, sizes: &[usize]) -> Result<Pipeline, LiftError> {
        let bench = lift_stencils::suite()
            .into_iter()
            .find(|b| b.name == name)
            .ok_or_else(|| LiftError::UnknownBenchmark(name.to_string()))?;
        Self::from_benchmark(&bench, sizes)
    }

    /// Like [`Pipeline::for_benchmark`], from an already-resolved
    /// [`Benchmark`].
    pub fn from_benchmark(bench: &Benchmark, sizes: &[usize]) -> Result<Pipeline, LiftError> {
        if sizes.len() != bench.dims {
            return Err(LiftError::InvalidConfig(format!(
                "benchmark `{}` is {}-dimensional but {} sizes were given",
                bench.name,
                bench.dims,
                sizes.len()
            )));
        }
        let mut p = Self::new(bench.program(sizes))?;
        p.provenance = Provenance::Bench {
            bench: bench.clone(),
            sizes: sizes.to_vec(),
        };
        Ok(p)
    }

    /// The high-level program.
    pub fn program(&self) -> &FunDecl {
        &self.program
    }

    /// The (already-checked) output type.
    pub fn output_type(&self) -> &Type {
        &self.out_type
    }

    /// Stage 2: rewrite-based exploration — derive the implementation space
    /// (±tiling, ±local memory, ±unrolling, ±coarsening).
    ///
    /// # Errors
    ///
    /// [`LiftError::NoValidConfiguration`] is *not* possible here;
    /// exploration always yields at least the `global` lowering. Errors
    /// only surface for programs whose sizes prevent enumeration.
    pub fn explore(self) -> Result<VariantSet, LiftError> {
        let variants = enumerate_variants(&self.program);
        Ok(VariantSet {
            pipeline: self,
            variants,
        })
    }
}

/// Stage 2 result: the explored implementation space.
#[derive(Debug, Clone)]
pub struct VariantSet {
    pipeline: Pipeline,
    variants: Vec<Variant>,
}

impl VariantSet {
    /// Every derived variant, in enumeration order.
    pub fn variants(&self) -> &[Variant] {
        &self.variants
    }

    /// The variant names, in enumeration order.
    pub fn names(&self) -> Vec<&str> {
        self.variants.iter().map(|v| v.name.as_str()).collect()
    }

    /// Looks up a variant by name.
    pub fn get(&self, name: &str) -> Option<&Variant> {
        self.variants.iter().find(|v| v.name == name)
    }

    /// The lowered (low-level) expression of a variant, pretty-printed —
    /// tunables still symbolic.
    ///
    /// # Errors
    ///
    /// [`LiftError::UnknownVariant`] for names exploration did not produce.
    pub fn lowered(&self, name: &str) -> Result<String, LiftError> {
        self.get(name)
            .map(|v| v.program.to_string())
            .ok_or_else(|| self.unknown(name))
    }

    /// The originating pipeline (program + output type).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Stage 3: fix the execution target.
    pub fn on(self, device: &VirtualDevice) -> DeviceSession {
        DeviceSession {
            set: self,
            device: device.clone(),
            cache: None,
        }
    }

    fn unknown(&self, name: &str) -> LiftError {
        LiftError::UnknownVariant {
            requested: name.to_string(),
            available: self.names().iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Stage 3: a device-bound session, ready to tune or to compile a chosen
/// configuration. Compilations go through the process-wide
/// [`KernelCache`] unless [`DeviceSession::with_cache`] installs a private
/// one.
#[derive(Debug)]
pub struct DeviceSession {
    set: VariantSet,
    device: VirtualDevice,
    cache: Option<Arc<KernelCache>>,
}

impl DeviceSession {
    /// Uses `cache` instead of the process-global kernel cache.
    pub fn with_cache(mut self, cache: Arc<KernelCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The chosen device.
    pub fn device(&self) -> &VirtualDevice {
        &self.device
    }

    /// The explored variants (stage-2 information remains inspectable).
    pub fn variants(&self) -> &[Variant] {
        self.set.variants()
    }

    fn cache(&self) -> &KernelCache {
        self.cache
            .as_deref()
            .unwrap_or_else(|| KernelCache::global())
    }

    fn program_name(&self) -> String {
        match &self.set.pipeline.provenance {
            Provenance::Bench { bench, .. } => bench.name.to_string(),
            Provenance::Expression => "stencil".to_string(),
        }
    }

    /// Concrete output extents, outermost first.
    fn out_sizes(&self) -> Result<Vec<usize>, LiftError> {
        self.set
            .pipeline
            .out_type
            .shape()
            .iter()
            .map(|e| {
                e.as_cst().map(|v| v as usize).ok_or_else(|| {
                    LiftError::InvalidConfig(format!(
                        "output size `{e}` is not concrete; substitute sizes first"
                    ))
                })
            })
            .collect()
    }

    /// Input buffers and (when available) a reference output: from the
    /// benchmark's generators and golden function, or — for free-standing
    /// expressions — synthetic deterministic data validated through the
    /// reference evaluator.
    fn inputs_and_golden(
        &self,
        seed: u64,
    ) -> Result<(Vec<BufferData>, Option<Vec<f32>>), LiftError> {
        match &self.set.pipeline.provenance {
            Provenance::Bench { bench, sizes } => {
                let inputs = bench_inputs(bench, sizes, seed);
                let golden = bench_golden(bench, &inputs, sizes);
                Ok((inputs, Some(golden)))
            }
            Provenance::Expression => {
                let FunDecl::Lambda(l) = &self.set.pipeline.program else {
                    unreachable!("checked in Pipeline::new");
                };
                let mut inputs = Vec::new();
                let mut values = Vec::new();
                let mut rng = lift_tuner::SplitMix64::new(seed ^ 0x9e3779b97f4a7c15);
                for p in &l.params {
                    let shape: Option<Vec<usize>> = p
                        .ty()
                        .shape()
                        .iter()
                        .map(|e| e.as_cst().map(|v| v as usize))
                        .collect();
                    let Some(shape) = shape else {
                        return Err(LiftError::InvalidConfig(format!(
                            "parameter `{}` has non-concrete type `{}`",
                            p.name(),
                            p.ty()
                        )));
                    };
                    if shape.is_empty() || shape.len() > 3 {
                        return Err(LiftError::Unsupported(format!(
                            "cannot synthesise tuning inputs for parameter `{}` of type \
                             `{}`; only 1-3D float arrays are supported",
                            p.name(),
                            p.ty()
                        )));
                    }
                    let n: usize = shape.iter().product();
                    let data: Vec<f32> = (0..n)
                        .map(|_| ((rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0)
                        .collect();
                    values.push(match shape.len() {
                        1 => DataValue::from_f32s(data.iter().copied()),
                        2 => DataValue::from_f32s_2d(&data, shape[0], shape[1]),
                        _ => DataValue::from_f32s_3d(&data, shape[0], shape[1], shape[2]),
                    });
                    inputs.push(BufferData::F32(data));
                }
                // The reference evaluator supplies the golden output; if it
                // cannot evaluate the program, tuning proceeds unvalidated.
                let golden = eval_fun(&self.set.pipeline.program, &values)
                    .ok()
                    .map(|v| v.flatten_f32());
                Ok((inputs, golden))
            }
        }
    }

    /// Stage 4a: auto-tune — search every variant's parameter space and
    /// return the fastest validated configuration as an executable kernel.
    ///
    /// # Errors
    ///
    /// [`LiftError::NoValidConfiguration`] when nothing compiles, runs and
    /// validates.
    pub fn tune(self, budget: Budget) -> Result<CompiledStencil, LiftError> {
        self.tune_full(budget).map(|o| o.winner)
    }

    /// Like [`DeviceSession::tune`], also returning the full per-variant
    /// report (the paper's ablation data).
    pub fn tune_full(self, budget: Budget) -> Result<TuneOutcome, LiftError> {
        let out_sizes = self.out_sizes()?;
        let (inputs, golden) = self.inputs_and_golden(budget.seed)?;
        let name = self.program_name();
        let manager = budget
            .resolved_checkpoint()
            .map(|p| {
                crate::checkpoint::CheckpointManager::at(&p, budget.resolved_checkpoint_every())
            })
            .transpose()?;
        let report = {
            let ctx = TuneContext {
                name: name.clone(),
                out_sizes: out_sizes.clone(),
                inputs,
                golden,
                device: &self.device,
                cache: self.cache(),
                budget: budget.evaluations,
                seed: budget.seed,
                threads: budget.resolved_threads(),
                checkpoint: manager.clone().map(|mgr| {
                    crate::checkpoint::CellCheckpoint::new(
                        mgr,
                        &name,
                        self.device.profile().name,
                        &out_sizes,
                    )
                }),
                cost: budget.resolved_cost_prune(),
            };
            tune_variants(&ctx, self.set.variants())?
        };
        if let Some(mgr) = manager {
            mgr.flush()?;
        }
        let winner = self.compile_configured(&report.winner.name, &report.winner.config)?;
        let winner = CompiledStencil {
            predicted_time_s: Some(report.winner.time_s),
            ..winner
        };
        Ok(TuneOutcome { winner, report })
    }

    /// Stage 4b: skip the search — compile one variant under an explicit
    /// configuration (tunables such as the per-dimension tile sizes
    /// `TS0`/`TS1`/`TS2` or `CF` plus the launch parameters
    /// `lx`/`ly`/`lz`).
    ///
    /// # Errors
    ///
    /// [`LiftError::UnknownVariant`] for a name exploration did not
    /// produce, [`LiftError::InvalidConfig`] for bad parameter names or
    /// values, and any compilation error.
    pub fn with_config(
        self,
        variant: &str,
        params: &[(&str, i64)],
    ) -> Result<CompiledStencil, LiftError> {
        let owned: Vec<(String, i64)> = params.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        self.compile_configured(variant, &owned)
    }

    fn compile_configured(
        &self,
        variant_name: &str,
        params: &[(String, i64)],
    ) -> Result<CompiledStencil, LiftError> {
        let variant = self
            .set
            .get(variant_name)
            .ok_or_else(|| self.set.unknown(variant_name))?;

        // Reject parameter names that mean nothing to this variant early —
        // a typo like `Ts` would otherwise silently fall back to defaults.
        for (n, _) in params {
            let is_tunable = variant.tunables.iter().any(|t| t.var() == n);
            let is_launch = matches!(n.as_str(), "lx" | "ly" | "lz");
            if !is_tunable && !is_launch {
                return Err(LiftError::InvalidConfig(format!(
                    "variant `{variant_name}` has no parameter `{n}` (tunables: {:?}, launch: lx/ly/lz)",
                    variant.tunables.iter().map(|t| t.var()).collect::<Vec<_>>()
                )));
            }
        }
        let mut tun_values = Vec::new();
        for t in &variant.tunables {
            let Some((_, v)) = params.iter().find(|(n, _)| n == t.var()) else {
                return Err(LiftError::InvalidConfig(format!(
                    "variant `{variant_name}` requires a value for tunable `{}`",
                    t.var()
                )));
            };
            if !t.is_valid(*v) {
                return Err(LiftError::InvalidConfig(format!(
                    "value {v} is invalid for tunable `{}` of variant `{variant_name}`",
                    t.var()
                )));
            }
            tun_values.push((t.var().to_string(), *v));
        }

        let out_sizes = self.out_sizes()?;
        let launch = launch_for(variant, &out_sizes, params).ok_or_else(|| {
            LiftError::InvalidConfig(format!(
                "cannot derive a launch configuration for `{variant_name}` from {params:?}"
            ))
        })?;
        if launch.wg_size() > self.device.profile().max_wg_size {
            return Err(LiftError::InvalidConfig(format!(
                "work-group size {} exceeds the device maximum {}",
                launch.wg_size(),
                self.device.profile().max_wg_size
            )));
        }

        let fp = program_fingerprint_of(variant);
        let kernel = compile_bound(
            self.cache(),
            &self.device,
            &self.program_name(),
            variant,
            fp,
            &tun_values,
        )?;
        Ok(CompiledStencil {
            kernel,
            launch,
            device: self.device.clone(),
            variant: variant.name.clone(),
            tiled: variant.tiled,
            local_mem: variant.local_mem,
            config: params.to_vec(),
            predicted_time_s: None,
        })
    }
}

/// A tuning run's complete outcome: the executable winner plus the
/// per-variant report.
#[derive(Debug)]
pub struct TuneOutcome {
    /// The fastest validated configuration, compiled and ready to run.
    pub winner: CompiledStencil,
    /// Per-variant bests (the ablation view) and the winner's summary.
    pub report: BenchResult,
}

/// Stage 4 result: a compiled, launch-configured kernel bound to a device.
/// Running it never recompiles (or re-plans — the simulator execution plan
/// is cached alongside the kernel); constructing the same configuration in
/// a later session hits the kernel cache.
#[derive(Debug, Clone)]
pub struct CompiledStencil {
    kernel: Arc<lift_oclsim::PlannedKernel>,
    launch: LaunchConfig,
    device: VirtualDevice,
    variant: String,
    tiled: bool,
    local_mem: bool,
    config: Vec<(String, i64)>,
    predicted_time_s: Option<f64>,
}

impl CompiledStencil {
    /// The generated OpenCL C source.
    pub fn source(&self) -> String {
        self.kernel.kernel().to_source()
    }

    /// The compiled kernel AST (shared with the cache).
    pub fn kernel(&self) -> &Arc<lift_codegen::Kernel> {
        self.kernel.kernel()
    }

    /// The launch configuration `run` will use.
    pub fn launch(&self) -> LaunchConfig {
        self.launch
    }

    /// The variant this kernel implements.
    pub fn variant(&self) -> &str {
        &self.variant
    }

    /// Whether the kernel uses overlapped tiling.
    pub fn tiled(&self) -> bool {
        self.tiled
    }

    /// Whether the kernel stages through local memory.
    pub fn local_mem(&self) -> bool {
        self.local_mem
    }

    /// The bound parameter values.
    pub fn config(&self) -> &[(String, i64)] {
        &self.config
    }

    /// The tuner's modeled runtime in seconds (absent for
    /// [`DeviceSession::with_config`] kernels that were never measured).
    pub fn predicted_time_s(&self) -> Option<f64> {
        self.predicted_time_s
    }

    /// The device the kernel is bound to.
    pub fn device(&self) -> &VirtualDevice {
        &self.device
    }

    /// Statically verifies the kernel for its launch configuration on its
    /// device — array bounds, barrier divergence, local-memory races,
    /// definite initialization and local-memory capacity (see
    /// [`lift_oclsim::verify`]). An empty report is a proof within the
    /// analysis' abstraction; results are memoised on the shared kernel.
    ///
    /// # Errors
    ///
    /// [`LiftError::Sim`] when the execution plan cannot be compiled.
    pub fn verify(&self) -> Result<Vec<lift_oclsim::VerifyFinding>, LiftError> {
        Ok(self
            .kernel
            .verify(self.launch, self.device.profile())?
            .as_ref()
            .clone())
    }

    /// Statically predicts the kernel's modeled runtime for its launch
    /// configuration on its device, without executing a lane (see
    /// [`lift_oclsim::cost`]). For kernels whose control flow is
    /// launch-determined — every Table-1 benchmark — the estimate equals
    /// the simulated [`RunOutput::time_s`] bit-for-bit; data-dependent
    /// kernels get a marked (`exact = false`) upper bound. Results are
    /// memoised on the shared kernel.
    ///
    /// # Errors
    ///
    /// [`LiftError::Sim`] when the plan cannot be compiled, the launch is
    /// invalid, the replay detects a certain fault, or a loop bound is
    /// data-dependent and no estimate exists.
    pub fn estimate(&self) -> Result<Arc<lift_oclsim::CostEstimate>, LiftError> {
        Ok(self.kernel.estimate(self.launch, self.device.profile())?)
    }

    /// Executes the kernel on `inputs` (one buffer per non-output
    /// parameter, in order).
    ///
    /// # Errors
    ///
    /// [`LiftError::Sim`] for launch misconfiguration or runtime faults.
    pub fn run(&self, inputs: &[BufferData]) -> Result<RunOutput, LiftError> {
        Ok(self.device.run_planned(&self.kernel, inputs, self.launch)?)
    }

    /// Executes `steps` time steps, rotating state buffers on the host (the
    /// paper's `iterate` semantics at evaluation time).
    ///
    /// # Errors
    ///
    /// As [`CompiledStencil::run`], plus missing state buffers for the
    /// rotation policy.
    pub fn run_iterated(
        &self,
        inputs: &[BufferData],
        steps: usize,
        rotation: Rotation,
    ) -> Result<IteratedOutput, LiftError> {
        Ok(self
            .device
            .run_iterated_planned(&self.kernel, inputs, self.launch, steps, rotation)?)
    }
}
