//! The unified error type for the whole pipeline.
//!
//! Every crate below the driver reports failures with its own error type
//! (`TypeError`, `EvalError`, `ViewError`, `CodegenError`, `SimError`,
//! `EvalArithError`, `PpcgError`). The driver folds them into one
//! [`LiftError`] enum with `From` conversions and [`std::error::Error`]
//! source chaining, so `?` works across every stage of a
//! [`Pipeline`](crate::Pipeline) session and callers match on one type.

use std::error::Error;
use std::fmt;

use lift_arith::EvalArithError;
use lift_codegen::view::ViewError;
use lift_codegen::CodegenError;
use lift_core::eval::EvalError;
use lift_core::typecheck::TypeError;
use lift_oclsim::SimError;
use lift_ppcg::PpcgError;

/// Any failure a pipeline session can produce, from type checking through
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub enum LiftError {
    /// The program is ill-typed.
    Type(TypeError),
    /// The reference evaluator rejected the program or its inputs.
    Eval(EvalError),
    /// A view access could not be resolved during code generation.
    View(ViewError),
    /// OpenCL code generation failed.
    Codegen(CodegenError),
    /// The virtual device rejected or faulted on a kernel.
    Sim(SimError),
    /// Static verification found the kernel unsafe for a launch
    /// configuration (out-of-bounds access, barrier divergence, local-memory
    /// race, uninitialized read, or local-memory overflow) before any
    /// simulation ran.
    Verify {
        /// The kernel (C function) name.
        kernel: String,
        /// Every finding the verifier produced for this launch.
        findings: Vec<lift_oclsim::VerifyFinding>,
    },
    /// Symbolic size arithmetic could not be evaluated.
    Arith(EvalArithError),
    /// The PPCG baseline compiler failed.
    Ppcg(PpcgError),
    /// No benchmark with the given name exists in the Table-1 suite.
    UnknownBenchmark(String),
    /// The requested variant was not produced by exploration.
    UnknownVariant {
        /// The name the caller asked for.
        requested: String,
        /// The names exploration actually produced.
        available: Vec<String>,
    },
    /// A configuration was rejected before compilation (bad parameter name,
    /// invalid tunable value, unusable launch geometry, …).
    InvalidConfig(String),
    /// Exploration + tuning found no configuration that compiles, runs and
    /// validates.
    NoValidConfiguration {
        /// The program or benchmark being tuned.
        program: String,
        /// The device profile name.
        device: String,
        /// The first failure each variant hit (variant name → error), in
        /// exploration order — the diagnosis that used to be swallowed
        /// when every evaluation collapsed to "no score". Empty only when
        /// a variant proposed no evaluable configuration at all.
        failures: Vec<(String, Box<LiftError>)>,
    },
    /// A kernel executed but produced results diverging from the reference.
    Validation {
        /// The variant that diverged.
        variant: String,
        /// What diverged.
        detail: String,
    },
    /// A tuning checkpoint could not be read, written, parsed or matched
    /// to the current run (I/O failure, corrupt JSON, a `schema_version`
    /// this build does not read, or a snapshot recorded for a different
    /// space/seed/budget).
    Checkpoint(String),
    /// The pipeline stage cannot handle this program shape.
    Unsupported(String),
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::Type(e) => write!(f, "{e}"),
            LiftError::Eval(e) => write!(f, "{e}"),
            LiftError::View(e) => write!(f, "{e}"),
            LiftError::Codegen(e) => write!(f, "{e}"),
            LiftError::Sim(e) => write!(f, "simulation error: {e}"),
            LiftError::Verify { kernel, findings } => {
                write!(
                    f,
                    "static verification failed for kernel `{kernel}` ({} finding{})",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" }
                )?;
                for x in findings {
                    write!(f, ": {x}")?;
                }
                Ok(())
            }
            LiftError::Arith(e) => write!(f, "arithmetic error: {e}"),
            LiftError::Ppcg(e) => write!(f, "{e}"),
            LiftError::UnknownBenchmark(n) => write!(f, "unknown benchmark `{n}`"),
            LiftError::UnknownVariant {
                requested,
                available,
            } => write!(
                f,
                "unknown variant `{requested}`; exploration produced {available:?}"
            ),
            LiftError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            LiftError::NoValidConfiguration {
                program,
                device,
                failures,
            } => {
                write!(f, "no valid configuration found for {program} on {device}")?;
                if !failures.is_empty() {
                    write!(f, "; first failure per variant:")?;
                    for (variant, err) in failures {
                        write!(f, " [`{variant}`: {err}]")?;
                    }
                }
                Ok(())
            }
            LiftError::Validation { variant, detail } => {
                write!(f, "variant `{variant}` failed validation: {detail}")
            }
            LiftError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            LiftError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl Error for LiftError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LiftError::Type(e) => Some(e),
            LiftError::Eval(e) => Some(e),
            LiftError::View(e) => Some(e),
            LiftError::Codegen(e) => Some(e),
            LiftError::Sim(e) => Some(e),
            LiftError::Arith(e) => Some(e),
            LiftError::Ppcg(e) => Some(e),
            LiftError::NoValidConfiguration { failures, .. } => failures
                .first()
                .map(|(_, e)| &**e as &(dyn Error + 'static)),
            _ => None,
        }
    }
}

impl From<TypeError> for LiftError {
    fn from(e: TypeError) -> Self {
        LiftError::Type(e)
    }
}

impl From<EvalError> for LiftError {
    fn from(e: EvalError) -> Self {
        LiftError::Eval(e)
    }
}

impl From<ViewError> for LiftError {
    fn from(e: ViewError) -> Self {
        LiftError::View(e)
    }
}

impl From<CodegenError> for LiftError {
    fn from(e: CodegenError) -> Self {
        LiftError::Codegen(e)
    }
}

impl From<SimError> for LiftError {
    fn from(e: SimError) -> Self {
        LiftError::Sim(e)
    }
}

impl From<EvalArithError> for LiftError {
    fn from(e: EvalArithError) -> Self {
        LiftError::Arith(e)
    }
}

impl From<PpcgError> for LiftError {
    fn from(e: PpcgError) -> Self {
        LiftError::Ppcg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_core::prelude::*;

    #[test]
    fn source_chains_to_the_originating_crate_error() {
        // An ill-typed application: map over a scalar.
        let bad = lam(Type::f32(), |x| map(add_f32(), x));
        let err: LiftError = typecheck_fun(&bad).unwrap_err().into();
        let src = err.source().expect("wraps a TypeError");
        assert!(src.is::<TypeError>(), "source is the original TypeError");
        assert!(err.to_string().contains("type error"));
    }

    #[test]
    fn question_mark_converts_across_stages() {
        fn stage() -> Result<(), LiftError> {
            let n = lift_arith::ArithExpr::var("N");
            let val = n.eval(&lift_arith::Bindings::new());
            val?;
            Ok(())
        }
        let err = stage().unwrap_err();
        assert!(matches!(err, LiftError::Arith(_)));
        assert!(err.source().unwrap().is::<EvalArithError>());
    }
}
