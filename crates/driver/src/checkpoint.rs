//! Durable tuning checkpoints: crash-safe, resumable search state.
//!
//! A [`CheckpointManager`] owns one checkpoint file and collects the
//! serialized [`SearchState`] of every search a tuning run performs —
//! keyed by `(program, device, sizes, variant)` so one file can cover a
//! whole harness sweep. The file is rewritten atomically (temp file +
//! rename) every [`TuneOptions::checkpoint_every`] applied tells, and a
//! fresh run pointed at the same file resumes every search from its last
//! recorded state — **bit-identically** to a run that was never
//! interrupted, because proposals are deterministic and re-evaluating a
//! configuration on the virtual device always reproduces its score.
//!
//! Managers are process-wide singletons per path (see
//! [`CheckpointManager::at`]): concurrent sweep cells share one manager
//! and serialize their writes on its lock. Distinct *processes* must use
//! distinct paths — the harness's shard mode (`--shard` and
//! `--spawn-workers`) derives `<path>.shard<i>of<n>` per worker for
//! exactly this reason.
//!
//! The file layout (version [`CHECKPOINT_SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "entries": {
//!     "Jacobi2D5pt@Nvidia Tesla K20c@18x18#tiled-local": {
//!       "state": { ... },          // SearchState JSON (its own schema)
//!       "first_failure": null,     // or the recorded failure message
//!       "pruned_verify": 0,        // configs the static verifier rejected
//!       "pruned_model": 0          // configs the cost model pruned
//!     }
//!   }
//! }
//! ```
//!
//! [`TuneOptions::checkpoint_every`]: crate::TuneOptions

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use lift_tuner::json::Value;
use lift_tuner::SearchState;

use crate::error::LiftError;
use crate::fault;

/// The version written into (and required from) every checkpoint file.
/// Version 2 split the verifier/cost-model prune counters; version-1 files
/// are rejected with a clear [`LiftError::Checkpoint`] (delete the file or
/// re-run with the build that wrote it).
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 2;

/// Why a checkpoint file failed to load. The distinction matters for
/// recovery: a [`ParseError::Version`] file is *intact* — some other build
/// wrote it and silently discarding it would throw away good work, so it
/// stays a hard error. A [`ParseError::Corrupt`] file is damaged (torn
/// write, bit rot, truncation) and can never load under any build, so
/// [`CheckpointManager::at`] quarantines it and restarts fresh.
#[derive(Debug)]
enum ParseError {
    /// Well-formed file written by an incompatible schema version.
    Version(String),
    /// Unreadable content: invalid JSON, missing/damaged fields.
    Corrupt(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Version(m) | ParseError::Corrupt(m) => f.write_str(m),
        }
    }
}

/// One checkpointed search: its engine state plus the first failure the
/// driver recorded for it (kept so a resumed all-variants-failed run can
/// still explain itself).
#[derive(Debug, Clone)]
pub(crate) struct CheckpointEntry {
    pub state: SearchState,
    pub first_failure: Option<String>,
    /// Configurations the static verifier rejected before simulation.
    pub pruned_verify: usize,
    /// Configurations the static cost model pruned before simulation.
    pub pruned_model: usize,
}

struct Inner {
    entries: BTreeMap<String, CheckpointEntry>,
    tells_since_write: usize,
    /// The first deferred write failure; surfaced by [`CheckpointManager::flush`]
    /// so a full disk cannot silently disable checkpointing.
    write_error: Option<String>,
}

/// The process-wide owner of one checkpoint file: it accumulates every
/// search's [`SearchState`] under `(program, device, sizes, variant)`
/// keys, rewrites the file atomically every `every` applied tells, and
/// hands recorded states back to resuming searches. One file covers a
/// whole sweep; one manager exists per path per process (see
/// [`CheckpointManager::at`]). Distinct processes must use distinct
/// paths.
pub struct CheckpointManager {
    path: PathBuf,
    every: usize,
    inner: Mutex<Inner>,
}

fn registry() -> &'static Mutex<HashMap<PathBuf, Arc<CheckpointManager>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, Arc<CheckpointManager>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

impl CheckpointManager {
    /// The manager for `path`, creating it (and loading any existing file)
    /// on first use. Every later call with the same path returns the same
    /// manager — concurrent sweep cells share the file safely — and keeps
    /// the first call's `every` cadence.
    ///
    /// First use also recovers from two crash leftovers instead of dying
    /// on them: a stale `<path>.tmp` abandoned mid-atomic-write is swept
    /// (the rename never happened, so it holds nothing the real file
    /// lacks), and a *corrupt* checkpoint is quarantined — renamed to the
    /// first free `<path>.corrupt-<k>` with a stderr warning — so the run
    /// restarts fresh rather than failing hard. Determinism makes the
    /// restart safe: a fresh search converges to the same result the
    /// checkpointed one would have.
    ///
    /// # Errors
    ///
    /// [`LiftError::Checkpoint`] when an existing file cannot be read
    /// (I/O), cannot be quarantined, or is intact but carries a
    /// `schema_version` this build does not read — that file is another
    /// build's good work and is never silently discarded.
    pub fn at(path: &Path, every: usize) -> Result<Arc<CheckpointManager>, LiftError> {
        let mut reg = registry().lock().expect("checkpoint registry poisoned");
        if let Some(mgr) = reg.get(path) {
            return Ok(mgr.clone());
        }
        sweep_stale_tmp(path);
        let entries = match std::fs::read_to_string(path) {
            Ok(text) => match parse_file(&text) {
                Ok(entries) => entries,
                Err(ParseError::Version(e)) => {
                    return Err(LiftError::Checkpoint(format!("{}: {e}", path.display())))
                }
                Err(ParseError::Corrupt(e)) => {
                    let quarantined = quarantine(path).map_err(LiftError::Checkpoint)?;
                    eprintln!(
                        "lift-driver: warning: checkpoint {} is corrupt ({e}); quarantined as {} \
                         and starting fresh",
                        path.display(),
                        quarantined.display()
                    );
                    BTreeMap::new()
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => {
                return Err(LiftError::Checkpoint(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        let mgr = Arc::new(CheckpointManager {
            path: path.to_path_buf(),
            every: every.max(1),
            inner: Mutex::new(Inner {
                entries,
                tells_since_write: 0,
                write_error: None,
            }),
        });
        reg.insert(path.to_path_buf(), mgr.clone());
        Ok(mgr)
    }

    /// The recorded entry for `key`, if the file (or this run) has one.
    pub(crate) fn lookup(&self, key: &str) -> Option<CheckpointEntry> {
        self.inner
            .lock()
            .expect("checkpoint lock poisoned")
            .entries
            .get(key)
            .cloned()
    }

    /// Records the latest state of one search and schedules a write once
    /// `tells_delta` accumulated tells reach the manager's cadence. Write
    /// failures are deferred to [`CheckpointManager::flush`] — tuning
    /// itself never aborts mid-search over a full disk.
    pub(crate) fn record(
        &self,
        key: &str,
        state: SearchState,
        first_failure: Option<String>,
        pruned_verify: usize,
        pruned_model: usize,
        tells_delta: usize,
    ) {
        let mut inner = self.inner.lock().expect("checkpoint lock poisoned");
        inner.entries.insert(
            key.to_string(),
            CheckpointEntry {
                state,
                first_failure,
                pruned_verify,
                pruned_model,
            },
        );
        inner.tells_since_write += tells_delta;
        if inner.tells_since_write >= self.every {
            inner.tells_since_write = 0;
            if let Err(e) = write_file(&self.path, &inner.entries) {
                inner.write_error.get_or_insert(e);
            }
        }
    }

    /// Writes the file now and reports any failure, including ones
    /// deferred from periodic writes.
    ///
    /// # Errors
    ///
    /// [`LiftError::Checkpoint`] naming the path and the I/O cause.
    pub fn flush(&self) -> Result<(), LiftError> {
        let mut inner = self.inner.lock().expect("checkpoint lock poisoned");
        inner.tells_since_write = 0;
        let result = write_file(&self.path, &inner.entries);
        if let Some(deferred) = inner.write_error.take() {
            return Err(LiftError::Checkpoint(deferred));
        }
        result.map_err(LiftError::Checkpoint)
    }
}

/// One tuning cell's handle into the shared manager: the manager plus the
/// cell prefix (`program@device@sizes`) its searches key under.
#[derive(Clone)]
pub(crate) struct CellCheckpoint {
    pub mgr: Arc<CheckpointManager>,
    pub cell: String,
}

impl CellCheckpoint {
    pub fn new(mgr: Arc<CheckpointManager>, name: &str, device: &str, sizes: &[usize]) -> Self {
        let sizes = sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("x");
        CellCheckpoint {
            mgr,
            cell: format!("{name}@{device}@{sizes}"),
        }
    }

    /// The file key for one variant's search within this cell.
    pub fn key(&self, variant: &str) -> String {
        format!("{}#{variant}", self.cell)
    }
}

/// The sibling temp path the atomic writer stages documents in.
fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// Removes a stale `<path>.tmp` left by a process killed between staging
/// and rename. It is always safe to drop: the rename never happened, so
/// the real checkpoint (if any) is intact and the temp holds at most a
/// superset the next run will regenerate deterministically.
fn sweep_stale_tmp(path: &Path) {
    let tmp = tmp_path(path);
    match std::fs::remove_file(&tmp) {
        Ok(()) => eprintln!(
            "lift-driver: warning: swept stale checkpoint temp file {} (crash leftover)",
            tmp.display()
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => eprintln!(
            "lift-driver: warning: cannot sweep stale temp file {}: {e}",
            tmp.display()
        ),
    }
}

/// Renames a corrupt checkpoint to the first free `<path>.corrupt-<k>`
/// (k = 1, 2, …) and returns the quarantine path, preserving the damaged
/// bytes for post-mortem instead of overwriting them.
fn quarantine(path: &Path) -> Result<PathBuf, String> {
    for k in 1..=1000u32 {
        let mut name = path.as_os_str().to_owned();
        name.push(format!(".corrupt-{k}"));
        let candidate = PathBuf::from(name);
        if candidate.exists() {
            continue;
        }
        return std::fs::rename(path, &candidate)
            .map(|()| candidate.clone())
            .map_err(|e| {
                format!(
                    "cannot quarantine corrupt checkpoint {} as {}: {e}",
                    path.display(),
                    candidate.display()
                )
            });
    }
    Err(format!(
        "cannot quarantine corrupt checkpoint {}: over 1000 quarantined copies already exist",
        path.display()
    ))
}

fn parse_file(text: &str) -> Result<BTreeMap<String, CheckpointEntry>, ParseError> {
    let v = Value::parse(text).map_err(ParseError::Corrupt)?;
    let version = v.get("schema_version").and_then(Value::as_u64);
    if version != Some(CHECKPOINT_SCHEMA_VERSION) {
        let msg = format!(
            "unsupported checkpoint schema_version {} (this build reads version {})",
            version.map_or("<missing>".to_string(), |x| x.to_string()),
            CHECKPOINT_SCHEMA_VERSION
        );
        // A parseable document with a wrong/missing version is another
        // build's intact file; an unparseable `schema_version` would have
        // failed JSON parsing above.
        return Err(if v.get("schema_version").is_none() {
            ParseError::Corrupt(msg)
        } else {
            ParseError::Version(msg)
        });
    }
    let Some(Value::Obj(members)) = v.get("entries") else {
        return Err(ParseError::Corrupt(
            "checkpoint field `entries` is missing or not an object".into(),
        ));
    };
    parse_entries(members).map_err(ParseError::Corrupt)
}

fn parse_entries(members: &[(String, Value)]) -> Result<BTreeMap<String, CheckpointEntry>, String> {
    let mut entries = BTreeMap::new();
    for (key, entry) in members {
        let state_json = entry
            .get("state")
            .ok_or_else(|| format!("entry `{key}` has no `state`"))?;
        let state =
            SearchState::from_json(state_json).map_err(|e| format!("entry `{key}`: {e}"))?;
        let first_failure = match entry.get("first_failure") {
            None | Some(Value::Null) => None,
            Some(other) => Some(
                other
                    .as_str()
                    .ok_or_else(|| format!("entry `{key}`: `first_failure` is not a string"))?
                    .to_string(),
            ),
        };
        let count = |field: &str| -> Result<usize, String> {
            match entry.get(field) {
                None | Some(Value::Null) => Ok(0),
                Some(Value::UInt(n)) => Ok(*n as usize),
                Some(Value::Int(n)) => Ok((*n).max(0) as usize),
                Some(_) => Err(format!("entry `{key}`: `{field}` is not an integer")),
            }
        };
        entries.insert(
            key.clone(),
            CheckpointEntry {
                state,
                first_failure,
                pruned_verify: count("pruned_verify")?,
                pruned_model: count("pruned_model")?,
            },
        );
    }
    Ok(entries)
}

fn render_file(entries: &BTreeMap<String, CheckpointEntry>) -> String {
    let members = entries
        .iter()
        .map(|(key, entry)| {
            (
                key.clone(),
                Value::Obj(vec![
                    ("state".into(), entry.state.to_json()),
                    (
                        "first_failure".into(),
                        entry
                            .first_failure
                            .as_ref()
                            .map(|m| Value::Str(m.clone()))
                            .unwrap_or(Value::Null),
                    ),
                    (
                        "pruned_verify".into(),
                        Value::UInt(entry.pruned_verify as u64),
                    ),
                    (
                        "pruned_model".into(),
                        Value::UInt(entry.pruned_model as u64),
                    ),
                ]),
            )
        })
        .collect();
    let doc = Value::Obj(vec![
        (
            "schema_version".into(),
            Value::UInt(CHECKPOINT_SCHEMA_VERSION),
        ),
        ("entries".into(), Value::Obj(members)),
    ]);
    let mut text = doc.to_json();
    text.push('\n');
    text
}

/// Atomic write: the complete document lands in a sibling temp file first,
/// then renames over the target, so a kill mid-write can never leave a
/// half-written checkpoint for the next run to trip over.
fn write_file(path: &Path, entries: &BTreeMap<String, CheckpointEntry>) -> Result<(), String> {
    let rendered = render_file(entries);
    fault::sabotage_checkpoint_write(path, &rendered);
    let tmp = tmp_path(path);
    std::fs::write(&tmp, rendered).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift_tuner::{ParamSpace, ParamSpec, Search};

    fn state() -> SearchState {
        Search::new(ParamSpace::new([ParamSpec::new("x", vec![1, 2, 3])]), 10, 7).snapshot()
    }

    #[test]
    fn file_round_trips_entries_and_failures() {
        let mut entries = BTreeMap::new();
        entries.insert(
            "B@dev@8x8#global".to_string(),
            CheckpointEntry {
                state: state(),
                first_failure: Some("local memory exhausted".into()),
                pruned_verify: 3,
                pruned_model: 7,
            },
        );
        entries.insert(
            "B@dev@8x8#tiled".to_string(),
            CheckpointEntry {
                state: state(),
                first_failure: None,
                pruned_verify: 0,
                pruned_model: 0,
            },
        );
        let text = render_file(&entries);
        let back = parse_file(&text).expect("parses");
        assert_eq!(back.len(), 2);
        assert_eq!(
            back["B@dev@8x8#global"].state,
            entries["B@dev@8x8#global"].state
        );
        assert_eq!(
            back["B@dev@8x8#global"].first_failure.as_deref(),
            Some("local memory exhausted")
        );
        assert_eq!(back["B@dev@8x8#tiled"].first_failure, None);
        assert_eq!(back["B@dev@8x8#global"].pruned_verify, 3);
        assert_eq!(back["B@dev@8x8#global"].pruned_model, 7);
        assert_eq!(back["B@dev@8x8#tiled"].pruned_verify, 0);
        assert_eq!(back["B@dev@8x8#tiled"].pruned_model, 0);
    }

    #[test]
    fn version_mismatch_is_a_clear_error() {
        let err = parse_file(r#"{"schema_version": 9, "entries": {}}"#).unwrap_err();
        assert!(matches!(err, ParseError::Version(_)), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("schema_version 9"), "{msg}");
        assert!(msg.contains("version 2"), "{msg}");
        // A version-1 file (pre cost-model prune split) is rejected the
        // same way: a clear error, never a panic or silent zeroing.
        let err = parse_file(r#"{"schema_version": 1, "entries": {}}"#).unwrap_err();
        assert!(matches!(err, ParseError::Version(_)), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("schema_version 1"), "{msg}");
        assert!(msg.contains("version 2"), "{msg}");
    }

    #[test]
    fn damage_classifies_as_corrupt_not_version_skew() {
        // No version field at all: indistinguishable from damage, so
        // corrupt (quarantine) rather than a hard versioned rejection.
        let err = parse_file(r#"{"entries": {}}"#).unwrap_err();
        assert!(matches!(err, ParseError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("<missing>"), "{err}");
        let err = parse_file("not json at all").unwrap_err();
        assert!(matches!(err, ParseError::Corrupt(_)), "{err:?}");
        // Right version, damaged payload: still corrupt.
        let err = parse_file(r#"{"schema_version": 2, "entries": {"k": {}}}"#).unwrap_err();
        assert!(matches!(err, ParseError::Corrupt(_)), "{err:?}");
        // A valid document truncated mid-stream: corrupt.
        let text = render_file(&BTreeMap::from([(
            "k".to_string(),
            CheckpointEntry {
                state: state(),
                first_failure: None,
                pruned_verify: 0,
                pruned_model: 0,
            },
        )]));
        let err = parse_file(&text[..text.len() / 2]).unwrap_err();
        assert!(matches!(err, ParseError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn corrupt_files_are_quarantined_and_stale_tmps_swept() {
        let dir = std::env::temp_dir().join(format!("lift-ck-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged.json");
        std::fs::write(&path, "{definitely not a checkpoint").unwrap();
        // A stale temp file from a simulated mid-write crash.
        std::fs::write(tmp_path(&path), "{half a docu").unwrap();
        let mgr = CheckpointManager::at(&path, 1).expect("corruption must not be fatal");
        assert!(!tmp_path(&path).exists(), "stale .tmp swept on startup");
        let quarantined = {
            let mut n = path.as_os_str().to_owned();
            n.push(".corrupt-1");
            PathBuf::from(n)
        };
        assert!(quarantined.exists(), "damaged file moved aside, not lost");
        assert_eq!(
            std::fs::read_to_string(&quarantined).unwrap(),
            "{definitely not a checkpoint",
            "quarantine preserves the damaged bytes for post-mortem"
        );
        assert!(mgr.lookup("k").is_none(), "manager starts fresh");
        mgr.record("k", state(), None, 0, 0, 1);
        mgr.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(parse_file(&text).unwrap().contains_key("k"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_picks_the_first_free_slot() {
        let dir = std::env::temp_dir().join(format!("lift-ck-slots-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        let slot = |k: u32| {
            let mut n = path.as_os_str().to_owned();
            n.push(format!(".corrupt-{k}"));
            PathBuf::from(n)
        };
        std::fs::write(slot(1), "earlier casualty").unwrap();
        std::fs::write(&path, "fresh damage").unwrap();
        let q = quarantine(&path).unwrap();
        assert_eq!(q, slot(2), "slot 1 taken, so the next free one");
        assert_eq!(
            std::fs::read_to_string(slot(1)).unwrap(),
            "earlier casualty"
        );
        assert_eq!(std::fs::read_to_string(slot(2)).unwrap(), "fresh damage");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn managers_are_shared_per_path_and_write_atomically() {
        let dir = std::env::temp_dir().join(format!("lift-ck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.json");
        let a = CheckpointManager::at(&path, 1).unwrap();
        let b = CheckpointManager::at(&path, 999).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one manager per path");
        a.record("k", state(), None, 0, 0, 5);
        assert!(path.exists(), "cadence 1 writes on the first record");
        assert!(b.lookup("k").is_some(), "shared state visible through both");
        b.flush().unwrap();
        // A fresh parse of the on-disk file sees the entry.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(parse_file(&text).unwrap().contains_key("k"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_keys_are_stable_and_collision_free() {
        let path = std::env::temp_dir().join(format!("lift-ck-keys-{}.json", std::process::id()));
        let mgr = CheckpointManager::at(&path, 1000).unwrap();
        let small = CellCheckpoint::new(mgr.clone(), "Heat", "K20c", &[8, 8, 8]);
        let large = CellCheckpoint::new(mgr, "Heat", "K20c", &[64, 64, 64]);
        assert_eq!(small.key("tiled"), "Heat@K20c@8x8x8#tiled");
        assert_ne!(
            small.key("tiled"),
            large.key("tiled"),
            "small and large runs of one bench must not share a search"
        );
        std::fs::remove_file(&path).ok();
    }
}
