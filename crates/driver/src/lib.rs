//! The staged session API: one entry point from a high-level stencil
//! expression to a tuned, cached, executable OpenCL kernel.
//!
//! The paper's value proposition is a single automated flow — expression →
//! rewrite-based exploration → view-based code generation → auto-tuned
//! execution. This crate is that flow as an API. Each stage returns a new
//! typed object, so the compiler enforces the order and every intermediate
//! result stays inspectable:
//!
//! ```
//! use lift_driver::{Budget, Pipeline};
//! use lift_oclsim::{BufferData, DeviceProfile, VirtualDevice};
//!
//! # fn main() -> Result<(), lift_driver::LiftError> {
//! let device = VirtualDevice::new(DeviceProfile::k20c());
//! let stencil = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])? // stage 1: typed program
//!     .explore()?                          // stage 2: rewrite-derived VariantSet
//!     .on(&device)                         // stage 3: DeviceSession
//!     .tune(Budget::evaluations(2))?;      // stage 4: CompiledStencil (winner)
//! assert!(stencil.source().contains("__kernel"));
//! let inputs: Vec<BufferData> = lift_stencils::by_name("Jacobi2D5pt")
//!     .gen_inputs(&[18, 18], 1)
//!     .into_iter()
//!     .map(BufferData::F32)
//!     .collect();
//! let out = stencil.run(&inputs)?;         // execute (no recompilation, ever)
//! assert_eq!(out.output.as_f32().len(), 18 * 18);
//! # Ok(())
//! # }
//! ```
//!
//! or, skipping the search, pick a configuration by hand — tiled variants
//! carry one independent tile-size tunable per grid dimension:
//!
//! ```
//! # use lift_driver::Pipeline;
//! # use lift_oclsim::{DeviceProfile, VirtualDevice};
//! # fn main() -> Result<(), lift_driver::LiftError> {
//! # let device = VirtualDevice::new(DeviceProfile::k20c());
//! let session = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])?
//!     .explore()?
//!     .on(&device);
//! let fixed = session.with_config(
//!     "tiled-local",
//!     &[("TS0", 8), ("TS1", 8), ("lx", 8), ("ly", 8)],
//! )?;
//! assert_eq!(fixed.variant(), "tiled-local");
//! # Ok(())
//! # }
//! ```
//!
//! Four design decisions carry the crate:
//!
//! * **Unified errors** — every fallible stage returns
//!   [`Result<_, LiftError>`]; [`LiftError`] wraps the seven per-crate
//!   error types with [`std::error::Error::source`] chaining. When tuning
//!   finds nothing valid, [`LiftError::NoValidConfiguration`] carries the
//!   first failure each variant hit instead of a bare verdict.
//! * **Kernel cache** — compilations are memoised process-wide in a
//!   [`KernelCache`] keyed by (program fingerprint, variant, bound
//!   parameters, device profile). Serving the same stencil twice compiles
//!   once; see [`KernelCache::stats`]. The cache is safe under concurrent
//!   tuning: racing threads on one key settle on a single cached kernel
//!   and the compile counter counts only the winning insert.
//! * **Parallel, deterministic tuning** — the search runs on the tuner's
//!   batched ask/tell engine across [`TuneOptions::threads`] workers
//!   (`LIFT_TUNE_THREADS` when unset), fanning out over variants and
//!   configuration batches. Thread count never changes results: the same
//!   seed yields identical winners, configurations and scores at any
//!   parallelism. With [`TuneOptions::checkpoint`] (`LIFT_CHECKPOINT`
//!   when unset) every search's state is persisted atomically as it
//!   progresses, and a later run resumes from the file bit-identically
//!   to a run that was never interrupted — see [`CheckpointManager`].
//! * **Baselines included** — [`reference_baseline`] (hand-written
//!   kernels) and [`ppcg_baseline`] (the fixed polyhedral strategy) run
//!   through the same machinery, which is how the harness regenerates the
//!   paper's figures without a second orchestration path.

#![forbid(unsafe_code)]

mod cache;
mod checkpoint;
mod error;
mod fault;
mod pipeline;
mod tune;

pub use cache::{CacheKey, CacheStats, KernelCache};
pub use checkpoint::{CheckpointManager, CHECKPOINT_SCHEMA_VERSION};
pub use error::LiftError;
pub use fault::FAULT_EXIT_CODE;
pub use lift_rewrite::strategy::{Tunable, Variant};
pub use pipeline::{
    Budget, CompiledStencil, DeviceSession, Pipeline, TuneOptions, TuneOutcome, VariantSet,
};
pub use tune::{ppcg_baseline, reference_baseline, BenchResult, CostModel, TunedVariant};

#[cfg(test)]
mod tests {
    use super::*;
    use lift_oclsim::{DeviceProfile, VirtualDevice};
    use std::sync::Arc;

    #[test]
    fn tune_end_to_end_small() {
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let outcome = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
            .expect("benchmark exists")
            .explore()
            .expect("explores")
            .on(&dev)
            .tune_full(Budget::evaluations(4).with_seed(1))
            .expect("tunes");
        assert!(outcome.report.winner.time_s > 0.0);
        assert!(
            outcome.report.all.len() >= 2,
            "expected several variants, got {:?}",
            outcome
                .report
                .all
                .iter()
                .map(|v| &v.name)
                .collect::<Vec<_>>()
        );
        for v in &outcome.report.all {
            assert!(v.gelems_per_s > 0.0, "{} has no throughput", v.name);
        }
        // The winner is executable and carries its modeled time.
        assert_eq!(
            outcome.winner.predicted_time_s(),
            Some(outcome.report.winner.time_s)
        );
        assert!(outcome.winner.source().contains("__kernel"));
    }

    #[test]
    fn reference_runs_and_validates() {
        let bench = lift_stencils::by_name("Hotspot2D");
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let r = reference_baseline(&bench, &[32, 32], &dev, 1).expect("runs");
        assert!(r.time_s > 0.0);
        assert!(r.local_mem);
    }

    #[test]
    fn ppcg_tunes_2d() {
        let bench = lift_stencils::by_name("Jacobi2D5pt");
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let r = ppcg_baseline(
            &bench,
            &[18, 18],
            &dev,
            TuneOptions::evaluations(6).with_seed(1),
        )
        .expect("ppcg result");
        assert!(r.tiled);
        assert!(r.time_s > 0.0);
    }

    #[test]
    fn ppcg_tunes_3d() {
        let bench = lift_stencils::by_name("Heat");
        let dev = VirtualDevice::new(DeviceProfile::mali_t628());
        let r = ppcg_baseline(
            &bench,
            &[8, 8, 8],
            &dev,
            TuneOptions::evaluations(4).with_seed(1),
        )
        .expect("ppcg result");
        assert!(!r.tiled);
    }

    #[test]
    fn unknown_benchmark_and_variant_are_errors_not_panics() {
        let err = Pipeline::for_benchmark("NoSuchBench", &[8, 8]).unwrap_err();
        assert!(matches!(err, LiftError::UnknownBenchmark(_)));

        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let err = Pipeline::for_benchmark("Jacobi2D5pt", &[10, 10])
            .unwrap()
            .explore()
            .unwrap()
            .on(&dev)
            .with_config("no-such-variant", &[])
            .unwrap_err();
        let LiftError::UnknownVariant { available, .. } = err else {
            panic!("expected UnknownVariant, got {err}");
        };
        assert!(available.iter().any(|n| n == "global"));
    }

    #[test]
    fn with_config_rejects_bad_parameters() {
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let session = || {
            Pipeline::for_benchmark("Jacobi2D5pt", &[10, 10])
                .unwrap()
                .explore()
                .unwrap()
                .on(&dev)
        };
        // Unknown parameter name.
        let err = session().with_config("global", &[("Ts", 4)]).unwrap_err();
        assert!(matches!(err, LiftError::InvalidConfig(_)), "{err}");
        // Missing required tunable.
        let err = session().with_config("tiled", &[]).unwrap_err();
        assert!(matches!(err, LiftError::InvalidConfig(_)), "{err}");
        // Invalid tunable value (5 is not a valid tile size for 12-padded).
        let err = session()
            .with_config("tiled", &[("TS0", 5), ("TS1", 4)])
            .unwrap_err();
        assert!(matches!(err, LiftError::InvalidConfig(_)), "{err}");
        // Oversized work-group.
        let err = session()
            .with_config("global", &[("lx", 4096)])
            .unwrap_err();
        assert!(matches!(err, LiftError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn expression_pipeline_validates_through_the_evaluator() {
        use lift_core::prelude::*;
        let n = 24usize;
        let program = lam_named("A", Type::array(Type::f32(), n), |a| {
            let sum = lam(Type::array(Type::f32(), 3), |nbh| {
                reduce(add_f32(), Expr::f32(0.0), nbh)
            });
            map(sum, slide(3, 1, pad(1, 1, Boundary::Clamp, a)))
        });
        let dev = VirtualDevice::new(DeviceProfile::hd7970());
        let compiled = Pipeline::new(program)
            .expect("typechecks")
            .explore()
            .expect("explores")
            .on(&dev)
            .tune(Budget::evaluations(4).with_seed(3))
            .expect("a free-standing expression tunes too");
        let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin()).collect();
        let out = compiled.run(&[input.clone().into()]).expect("runs");
        let expected: Vec<f32> = (0..n as i64)
            .map(|i| {
                let at = |j: i64| input[j.clamp(0, n as i64 - 1) as usize];
                at(i - 1) + at(i) + at(i + 1)
            })
            .collect();
        assert_eq!(out.output.as_f32(), expected.as_slice());
    }

    #[test]
    fn wrong_arity_sizes_are_an_error_not_a_panic() {
        let err = Pipeline::for_benchmark("Jacobi2D5pt", &[16]).unwrap_err();
        assert!(matches!(err, LiftError::InvalidConfig(_)), "{err}");
        let err = Pipeline::for_benchmark("Heat", &[8, 8, 8, 8]).unwrap_err();
        assert!(matches!(err, LiftError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn scalar_parameter_tuning_is_an_error_not_a_panic() {
        use lift_core::prelude::*;
        // Well-typed, but the scalar parameter has no buffer shape to
        // synthesise tuning inputs for.
        let prog = lam2(Type::f32(), Type::array(Type::f32(), 8usize), |s, a| {
            map(
                lam(Type::f32(), move |x| call(&add_f32(), [x, s.clone()])),
                a,
            )
        });
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let err = Pipeline::new(prog)
            .expect("typechecks")
            .explore()
            .expect("explores")
            .on(&dev)
            .tune(Budget::evaluations(2))
            .unwrap_err();
        assert!(matches!(err, LiftError::Unsupported(_)), "{err}");
    }

    #[test]
    fn ill_typed_program_is_rejected_at_stage_one() {
        use lift_core::prelude::*;
        let bad = lam(Type::f32(), |x| map(add_f32(), x));
        let err = Pipeline::new(bad).unwrap_err();
        assert!(matches!(err, LiftError::Type(_)));
    }

    type Fingerprint = (String, u64, Vec<(String, i64)>, usize);

    fn report_fingerprint(report: &BenchResult) -> Vec<Fingerprint> {
        report
            .all
            .iter()
            .map(|v| {
                (
                    v.name.clone(),
                    v.time_s.to_bits(),
                    v.config.clone(),
                    v.evaluations,
                )
            })
            .collect()
    }

    #[test]
    fn checkpointed_tuning_is_bit_identical_and_resumable() {
        let dir = std::env::temp_dir().join(format!("lift-ck-tune-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        let run = |opts: TuneOptions, cache: Arc<KernelCache>| {
            Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
                .unwrap()
                .explore()
                .unwrap()
                .on(&dev)
                .with_cache(cache)
                .tune_full(opts)
                .expect("tunes")
                .report
        };
        let opts = || {
            TuneOptions::evaluations(6)
                .with_seed(4)
                .with_checkpoint_every(1)
        };

        // A checkpointed run produces exactly the un-checkpointed result.
        let reference = run(opts(), Arc::new(KernelCache::new()));
        let first_path = dir.join("first.json");
        let first = run(
            opts().with_checkpoint(&first_path),
            Arc::new(KernelCache::new()),
        );
        assert_eq!(report_fingerprint(&first), report_fingerprint(&reference));
        assert!(first_path.exists(), "the checkpoint file was written");

        // Resuming from the completed file replays the result without a
        // single re-evaluation: the only compile is the winner's (a cache
        // key already counted, so compiles stays 0 on a fresh cache that
        // never tuned — assert via the evaluation counter instead).
        let copy_path = dir.join("resume.json");
        std::fs::copy(&first_path, &copy_path).unwrap();
        let cache = Arc::new(KernelCache::new());
        let resumed = run(opts().with_checkpoint(&copy_path), cache.clone());
        assert_eq!(report_fingerprint(&resumed), report_fingerprint(&reference));
        let stats = cache.stats();
        assert_eq!(
            stats.compiles, 1,
            "a completed checkpoint replays: only the winner compiles ({stats:?})"
        );

        // A checkpoint recorded under different options must refuse to
        // resume, loudly.
        let err = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
            .unwrap()
            .explore()
            .unwrap()
            .on(&dev)
            .with_cache(Arc::new(KernelCache::new()))
            .tune_full(
                TuneOptions::evaluations(6)
                    .with_seed(99)
                    .with_checkpoint(&copy_path),
            )
            .expect_err("seed mismatch must not silently retune");
        let LiftError::NoValidConfiguration { failures, .. } = &err else {
            panic!("expected NoValidConfiguration, got {err}");
        };
        assert!(
            failures
                .iter()
                .all(|(_, e)| matches!(**e, LiftError::Checkpoint(_))),
            "every variant reports the checkpoint mismatch: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_not_fatal() {
        let dir = std::env::temp_dir().join(format!("lift-ck-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        // The damaged file is moved aside and the run restarts fresh —
        // converging to the fault-free result, not failing hard.
        let reference = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
            .unwrap()
            .explore()
            .unwrap()
            .on(&dev)
            .tune_full(TuneOptions::evaluations(2).with_seed(4))
            .expect("fault-free run tunes")
            .report;
        let recovered = Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
            .unwrap()
            .explore()
            .unwrap()
            .on(&dev)
            .tune_full(
                TuneOptions::evaluations(2)
                    .with_seed(4)
                    .with_checkpoint(&path),
            )
            .expect("corruption is recovered from, not fatal")
            .report;
        assert_eq!(
            report_fingerprint(&recovered),
            report_fingerprint(&reference),
            "a quarantined restart converges to the fault-free report"
        );
        let quarantined = dir.join("corrupt.json.corrupt-1");
        assert!(quarantined.exists(), "damaged file preserved in quarantine");
        assert_eq!(std::fs::read_to_string(&quarantined).unwrap(), "{not json");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tuning_shares_kernels_through_the_cache() {
        // Within one tuning run the tuner sweeps work-group sizes far more
        // often than tunables; every such sweep must share one kernel.
        let cache = Arc::new(KernelCache::new());
        let dev = VirtualDevice::new(DeviceProfile::k20c());
        Pipeline::for_benchmark("Jacobi2D5pt", &[18, 18])
            .unwrap()
            .explore()
            .unwrap()
            .on(&dev)
            .with_cache(cache.clone())
            .tune(Budget::evaluations(8).with_seed(2))
            .expect("tunes");
        let stats = cache.stats();
        assert!(
            stats.hits > 0,
            "tuning must hit the cache across launch configs: {stats:?}"
        );
    }
}
